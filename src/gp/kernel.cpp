#include "gp/kernel.h"

#include <cmath>

#include "common/error.h"
#include "linalg/simd.h"

namespace robotune::gp {

namespace {

double squared_distance(std::span<const double> a, std::span<const double> b) {
  double ss = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    ss += d * d;
  }
  return ss;
}

constexpr double kSqrt5Const = 2.2360679774997896964091737;

/// Finishes a Matérn 5/2 evaluation from the scaled squared distance —
/// the scalar tail shared by operator() and each SIMD lane (z derivation
/// order matters for bit-identity: kSqrt5 * sqrt(ss) first, then the
/// caller applies any length-scale division before passing ss here).
double matern52_from_z(double z, double signal_variance) {
  return signal_variance * (1.0 + z + z * z / 3.0) * std::exp(-z);
}

}  // namespace

Matern52::Matern52(double length_scale, double signal_variance)
    : length_scale_(length_scale), signal_variance_(signal_variance) {
  require(length_scale > 0.0, "Matern52: length scale must be positive");
  require(signal_variance > 0.0, "Matern52: signal variance must be positive");
}

double Matern52::operator()(std::span<const double> a,
                            std::span<const double> b) const {
  static constexpr double kSqrt5 = 2.2360679774997896964091737;
  const double r = std::sqrt(squared_distance(a, b));
  const double z = kSqrt5 * r / length_scale_;
  return signal_variance_ * (1.0 + z + z * z / 3.0) * std::exp(-z);
}

void Matern52::accumulate_gradient(std::span<const double> a,
                                   std::span<const double> b,
                                   std::span<double> grad) const {
  // k(r) = s² (1 + z + z²/3) e^{-z} with z = √5 r / l.  Differentiating
  // through z and substituting z/r = √5/l collapses to
  //   ∂k/∂a_i = −(5 s² / 3 l²) (1 + z) e^{-z} (a_i − b_i),
  // which is well-defined at r = 0 (gradient vanishes).
  static constexpr double kSqrt5 = 2.2360679774997896964091737;
  const double r = std::sqrt(squared_distance(a, b));
  const double z = kSqrt5 * r / length_scale_;
  const double coef = -(5.0 / 3.0) * signal_variance_ * (1.0 + z) *
                      std::exp(-z) / (length_scale_ * length_scale_);
  for (std::size_t i = 0; i < a.size(); ++i) {
    grad[i] += coef * (a[i] - b[i]);
  }
}

void Matern52::accumulate_covariance_row(
    std::span<const std::vector<double>> points, std::span<const double> x,
    std::span<double> out) const {
  const std::size_t n = points.size();
  const std::size_t dims = x.size();
  std::size_t i = 0;
#if ROBOTUNE_SIMD_ENABLED
  namespace simd = linalg::simd;
  // Four *independent* points per block: each lane runs the scalar
  // recurrence (ascending-dimension distance sum, then scalar libm
  // sqrt/exp), so every entry is bit-identical to operator().
  for (; i + simd::kLanes <= n; i += simd::kLanes) {
    const double* p0 = points[i].data();
    const double* p1 = points[i + 1].data();
    const double* p2 = points[i + 2].data();
    const double* p3 = points[i + 3].data();
    simd::v4d ss = simd::broadcast(0.0);
    for (std::size_t d = 0; d < dims; ++d) {
      const simd::v4d t = simd::gather(p0, p1, p2, p3, d) -
                          simd::broadcast(x[d]);
      ss += t * t;
    }
    for (std::size_t lane = 0; lane < simd::kLanes; ++lane) {
      const double z = kSqrt5Const * std::sqrt(ss[lane]) / length_scale_;
      out[i + lane] += matern52_from_z(z, signal_variance_);
    }
  }
#endif
  for (; i < n; ++i) {
    const double z =
        kSqrt5Const * std::sqrt(squared_distance(points[i], x)) /
        length_scale_;
    out[i] += matern52_from_z(z, signal_variance_);
  }
}

std::vector<double> Matern52::log_params() const {
  return {std::log(length_scale_), std::log(signal_variance_)};
}

void Matern52::set_log_params(std::span<const double> values) {
  require(values.size() == 2, "Matern52: expected 2 parameters");
  length_scale_ = std::exp(values[0]);
  signal_variance_ = std::exp(values[1]);
}

std::string Matern52::describe() const {
  return "Matern52(l=" + std::to_string(length_scale_) +
         ", s2=" + std::to_string(signal_variance_) + ")";
}

std::unique_ptr<Kernel> Matern52::clone() const {
  return std::make_unique<Matern52>(*this);
}

Matern52Ard::Matern52Ard(std::size_t dims, double length_scale,
                         double signal_variance)
    : scales_(dims, length_scale), signal_variance_(signal_variance) {
  require(dims > 0, "Matern52Ard: need at least one dimension");
  require(length_scale > 0.0, "Matern52Ard: length scale must be positive");
  require(signal_variance > 0.0,
          "Matern52Ard: signal variance must be positive");
}

double Matern52Ard::operator()(std::span<const double> a,
                               std::span<const double> b) const {
  static constexpr double kSqrt5 = 2.2360679774997896964091737;
  double ss = 0.0;
  for (std::size_t i = 0; i < scales_.size(); ++i) {
    const double d = (a[i] - b[i]) / scales_[i];
    ss += d * d;
  }
  const double z = kSqrt5 * std::sqrt(ss);
  return signal_variance_ * (1.0 + z + z * z / 3.0) * std::exp(-z);
}

void Matern52Ard::accumulate_gradient(std::span<const double> a,
                                      std::span<const double> b,
                                      std::span<double> grad) const {
  // Same derivation as the isotropic kernel with the scaled distance
  // z = √5 √(Σ d_i²/l_i²):  ∂k/∂a_i = −(5 s²/3) (1+z) e^{-z} d_i / l_i².
  static constexpr double kSqrt5 = 2.2360679774997896964091737;
  double ss = 0.0;
  for (std::size_t i = 0; i < scales_.size(); ++i) {
    const double d = (a[i] - b[i]) / scales_[i];
    ss += d * d;
  }
  const double z = kSqrt5 * std::sqrt(ss);
  const double coef =
      -(5.0 / 3.0) * signal_variance_ * (1.0 + z) * std::exp(-z);
  for (std::size_t i = 0; i < scales_.size(); ++i) {
    grad[i] += coef * (a[i] - b[i]) / (scales_[i] * scales_[i]);
  }
}

void Matern52Ard::accumulate_covariance_row(
    std::span<const std::vector<double>> points, std::span<const double> x,
    std::span<double> out) const {
  const std::size_t n = points.size();
  const std::size_t dims = scales_.size();
  std::size_t i = 0;
#if ROBOTUNE_SIMD_ENABLED
  namespace simd = linalg::simd;
  for (; i + simd::kLanes <= n; i += simd::kLanes) {
    const double* p0 = points[i].data();
    const double* p1 = points[i + 1].data();
    const double* p2 = points[i + 2].data();
    const double* p3 = points[i + 3].data();
    simd::v4d ss = simd::broadcast(0.0);
    for (std::size_t d = 0; d < dims; ++d) {
      const simd::v4d t =
          (simd::gather(p0, p1, p2, p3, d) - simd::broadcast(x[d])) /
          simd::broadcast(scales_[d]);
      ss += t * t;
    }
    for (std::size_t lane = 0; lane < simd::kLanes; ++lane) {
      const double z = kSqrt5Const * std::sqrt(ss[lane]);
      out[i + lane] += matern52_from_z(z, signal_variance_);
    }
  }
#endif
  for (; i < n; ++i) {
    double ss = 0.0;
    for (std::size_t d = 0; d < dims; ++d) {
      const double t = (points[i][d] - x[d]) / scales_[d];
      ss += t * t;
    }
    const double z = kSqrt5Const * std::sqrt(ss);
    out[i] += matern52_from_z(z, signal_variance_);
  }
}

std::vector<double> Matern52Ard::log_params() const {
  std::vector<double> out;
  out.reserve(scales_.size() + 1);
  for (double s : scales_) out.push_back(std::log(s));
  out.push_back(std::log(signal_variance_));
  return out;
}

void Matern52Ard::set_log_params(std::span<const double> values) {
  require(values.size() == scales_.size() + 1,
          "Matern52Ard: parameter count mismatch");
  for (std::size_t i = 0; i < scales_.size(); ++i) {
    scales_[i] = std::exp(values[i]);
  }
  signal_variance_ = std::exp(values.back());
}

std::string Matern52Ard::describe() const {
  std::string out = "Matern52Ard(l=[";
  for (std::size_t i = 0; i < scales_.size(); ++i) {
    if (i > 0) out += ",";
    out += std::to_string(scales_[i]);
  }
  out += "], s2=" + std::to_string(signal_variance_) + ")";
  return out;
}

std::unique_ptr<Kernel> Matern52Ard::clone() const {
  return std::make_unique<Matern52Ard>(*this);
}

WhiteNoise::WhiteNoise(double noise_variance)
    : noise_variance_(noise_variance) {
  require(noise_variance >= 0.0, "WhiteNoise: variance must be non-negative");
}

double WhiteNoise::operator()(std::span<const double>,
                              std::span<const double>) const {
  // Off-diagonal / cross covariances are zero; the diagonal contribution is
  // routed through diagonal_noise() so that prediction at a training input
  // does not inherit the observation noise.
  return 0.0;
}

std::vector<double> WhiteNoise::log_params() const {
  return {std::log(std::max(noise_variance_, 1e-300))};
}

void WhiteNoise::set_log_params(std::span<const double> values) {
  require(values.size() == 1, "WhiteNoise: expected 1 parameter");
  noise_variance_ = std::exp(values[0]);
}

std::string WhiteNoise::describe() const {
  return "WhiteNoise(s2=" + std::to_string(noise_variance_) + ")";
}

std::unique_ptr<Kernel> WhiteNoise::clone() const {
  return std::make_unique<WhiteNoise>(*this);
}

SumKernel::SumKernel(std::unique_ptr<Kernel> a, std::unique_ptr<Kernel> b)
    : a_(std::move(a)), b_(std::move(b)) {
  require(a_ != nullptr && b_ != nullptr, "SumKernel: null component");
}

double SumKernel::operator()(std::span<const double> x,
                             std::span<const double> y) const {
  return (*a_)(x, y) + (*b_)(x, y);
}

void SumKernel::accumulate_gradient(std::span<const double> x,
                                    std::span<const double> y,
                                    std::span<double> grad) const {
  a_->accumulate_gradient(x, y, grad);
  b_->accumulate_gradient(x, y, grad);
}

void SumKernel::accumulate_covariance_row(
    std::span<const std::vector<double>> points, std::span<const double> x,
    std::span<double> out) const {
  // Per-entry this is a_(p,x) added before b_(p,x) — the same order the
  // scalar operator() sums them, so entries are bit-identical as long as
  // callers zero `out` first (our default kernels pair a Matérn with
  // white noise, whose contribution is exactly zero anyway).
  a_->accumulate_covariance_row(points, x, out);
  b_->accumulate_covariance_row(points, x, out);
}

double SumKernel::diagonal_noise() const {
  return a_->diagonal_noise() + b_->diagonal_noise();
}

std::size_t SumKernel::num_params() const {
  return a_->num_params() + b_->num_params();
}

std::vector<double> SumKernel::log_params() const {
  std::vector<double> out = a_->log_params();
  const std::vector<double> tail = b_->log_params();
  out.insert(out.end(), tail.begin(), tail.end());
  return out;
}

void SumKernel::set_log_params(std::span<const double> values) {
  require(values.size() == num_params(), "SumKernel: parameter count");
  a_->set_log_params(values.subspan(0, a_->num_params()));
  b_->set_log_params(values.subspan(a_->num_params()));
}

std::string SumKernel::describe() const {
  return a_->describe() + " + " + b_->describe();
}

std::unique_ptr<Kernel> SumKernel::clone() const {
  return std::make_unique<SumKernel>(a_->clone(), b_->clone());
}

std::unique_ptr<Kernel> default_kernel(double length_scale,
                                       double signal_variance,
                                       double noise_variance) {
  return std::make_unique<SumKernel>(
      std::make_unique<Matern52>(length_scale, signal_variance),
      std::make_unique<WhiteNoise>(noise_variance));
}

std::unique_ptr<Kernel> ard_kernel(std::size_t dims, double length_scale,
                                   double signal_variance,
                                   double noise_variance) {
  return std::make_unique<SumKernel>(
      std::make_unique<Matern52Ard>(dims, length_scale, signal_variance),
      std::make_unique<WhiteNoise>(noise_variance));
}

namespace {

/// Fills the Matérn part of `out` (scales + signal variance) if `kernel`
/// is one of the two Matérn shapes.  Iso scales broadcast to all dims.
bool fill_matern_part(const Kernel& kernel, std::size_t dims,
                      MaternHyperparams& out) {
  if (const auto* ard = dynamic_cast<const Matern52Ard*>(&kernel)) {
    const auto scales = ard->length_scales();
    if (scales.size() != dims) return false;
    out.length_scales.assign(scales.begin(), scales.end());
    out.signal_variance = ard->signal_variance();
    return true;
  }
  if (const auto* iso = dynamic_cast<const Matern52*>(&kernel)) {
    out.length_scales.assign(dims, iso->length_scale());
    out.signal_variance = iso->signal_variance();
    return true;
  }
  return false;
}

}  // namespace

std::optional<MaternHyperparams> extract_matern_hyperparams(
    const Kernel& kernel, std::size_t dims) {
  if (dims == 0) return std::nullopt;
  MaternHyperparams out;
  if (const auto* sum = dynamic_cast<const SumKernel*>(&kernel)) {
    const Kernel* matern = &sum->left();
    const Kernel* noise = &sum->right();
    if (dynamic_cast<const WhiteNoise*>(matern) != nullptr) {
      std::swap(matern, noise);
    }
    const auto* white = dynamic_cast<const WhiteNoise*>(noise);
    if (white == nullptr) return std::nullopt;
    if (!fill_matern_part(*matern, dims, out)) return std::nullopt;
    out.noise_variance = white->noise_variance();
    return out;
  }
  if (fill_matern_part(kernel, dims, out)) {
    out.noise_variance = 0.0;
    return out;
  }
  return std::nullopt;
}

}  // namespace robotune::gp
