// Random-Fourier-features surrogate — the sparse tier of the O(n³) GP
// wall (DESIGN.md §15).
//
// A Matérn 5/2 GP is approximated in weight space: m random features
// φ_j(x) = √(2s²/m)·cos(ωⱼᵀx + bⱼ) with ω drawn from the Matérn spectral
// density (a multivariate-t: z·√(5/u) for z ~ N(0,I), u ~ χ²₅), then a
// Bayesian linear regression over the feature weights.  Fit is O(n·m²),
// prediction O(m²), and incremental add/remove are rank-1 updates of the
// m×m feature Gram factor — independent of n entirely.
//
// The feature draw is deterministic in (seed, m, dims) and *independent
// of the hyperparameters*: raw frequencies are drawn once for the unit
// length-scale and rescaled per fit, so a hyperparameter refit never
// resamples the map and the surrogate stays reproducible across
// worker-count and scheduling differences.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "gp/kernel.h"
#include "gp/surrogate.h"
#include "linalg/matrix.h"

namespace robotune::gp {

struct RffOptions {
  /// Number of random features m.  Fit cost O(n·m²), predict O(m²).
  std::size_t num_features = 256;
  /// Seed for the (deterministic) spectral draw.
  std::uint64_t seed = 0x5eedULL;
};

class RffGp : public Surrogate {
 public:
  explicit RffGp(RffOptions options = {});

  /// Fits the feature-space posterior on (X, y) under the given Matérn
  /// hyperparameters (learned elsewhere — typically on an exact-GP
  /// subsample; this tier never optimizes them itself).  Can throw
  /// NumericalError from the m×m Cholesky; the model is left untrained
  /// in that case and the caller degrades to the exact tier.
  void fit(const std::vector<std::vector<double>>& x,
           std::span<const double> y, const MaternHyperparams& hypers);

  /// O(m²) incremental add: rank-1 *update* of the feature Gram factor
  /// (cannot fail for finite inputs) plus O(m) target-accumulator
  /// maintenance.  Never throws NumericalError.
  void add_point(const std::vector<double>& x, double y) override;

  /// O(m²) incremental remove via rank-1 *downdate* of a copy of the
  /// Gram factor, committed only on success — strong exception
  /// guarantee.  Throws NumericalError when the downdate loses positive
  /// definiteness (or under chaos injection).
  void remove_point(std::size_t index) override;

  using Surrogate::predict;

  Prediction predict(std::span<const double> x,
                     GpWorkspace& ws) const override;

  /// Analytic gradients: ∂φ_j/∂x = −√(2s²/m)·sin(ωⱼᵀx+bⱼ)·ωⱼ, folded
  /// through the posterior mean/variance in two O(m·d) passes — the fast
  /// path optimize_acquisition's L-BFGS descents need, same as the exact
  /// tier.
  void predict_with_gradient(std::span<const double> x, GpWorkspace& ws,
                             PredictGradient& out) const override;

  std::vector<Prediction> predict_batch(
      std::span<const std::vector<double>> points) const override;

  bool trained() const noexcept override { return fitted_; }
  std::size_t num_points() const noexcept override {
    return train_y_raw_.size();
  }
  double best_observed() const override;
  const char* tier() const noexcept override { return "rff"; }

  std::size_t num_features() const noexcept { return options_.num_features; }

 private:
  void draw_features(std::size_t dims);
  void apply_hypers(const MaternHyperparams& hypers);
  std::vector<double> features(std::span<const double> x) const;
  void refresh_targets();

  RffOptions options_;

  linalg::Matrix omega_raw_;  ///< m×d unit-scale spectral frequencies
  std::vector<double> bias_;  ///< m phases in [0, 2π)
  linalg::Matrix omega_;      ///< omega_raw_ row-scaled by 1/ℓ_d
  double feature_scale_ = 1.0;  ///< √(2s²/m)
  double noise_ = 1e-3;         ///< σₙ² (floored away from zero)

  std::vector<std::vector<double>> train_x_;
  std::vector<double> train_y_raw_;
  double y_mean_ = 0.0;
  double y_scale_ = 1.0;

  linalg::Matrix achol_;          ///< chol(ZᵀZ + σₙ²I), m×m
  std::vector<double> zty_raw_;   ///< Zᵀ·y_raw accumulator
  std::vector<double> zt1_;       ///< Zᵀ·1 accumulator
  std::vector<double> w_;         ///< posterior mean weights (standardized)
  bool fitted_ = false;
};

}  // namespace robotune::gp
