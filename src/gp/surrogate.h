// The surrogate-model interface the BO engine drives (DESIGN.md §15).
//
// Two implementations exist: the exact GaussianProcess (O(n³) fit,
// O(n²) predict) and the RffGp random-features tier (O(n·m²) fit, O(m²)
// predict), auto-selected past a size threshold.  Everything downstream
// of the fit — acquisition optimization, GP-Hedge, the observer hook —
// sees only this interface, so a tier switch never touches the proposal
// machinery.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "linalg/matrix.h"

namespace robotune::gp {

struct Prediction {
  double mean = 0.0;
  double variance = 0.0;
  double stddev() const;
};

/// Posterior mean/variance plus their gradients with respect to the query
/// point, everything in original (unstandardized) units.
struct PredictGradient {
  double mean = 0.0;
  double variance = 0.0;
  std::vector<double> dmean;      ///< ∂mean/∂x
  std::vector<double> dvariance;  ///< ∂variance/∂x
  double stddev() const;
};

/// Reusable scratch for the prediction hot path.  The surrogate owns one
/// for the convenience predict(x) overload; concurrent callers (the
/// parallel multi-start acquisition optimizer) pass a private instance
/// per task — the model itself is only read.  Buffers are sized at every
/// use, so one workspace can serve models of different sizes and tiers
/// back to back (stale-size bugs cannot occur); the clear() hook just
/// releases memory.
class GpWorkspace {
 public:
  void clear() {
    k_star.clear();
    v.clear();
    w.clear();
    kgrad.clear();
    k_rows = {};
    v_rows = {};
  }

 private:
  friend class GaussianProcess;
  friend class RffGp;
  std::vector<double> k_star;  ///< cross-covariances k(X, x) / features φ(x)
  std::vector<double> v;       ///< L⁻¹ k*
  std::vector<double> w;       ///< L⁻ᵀ v = K⁻¹ k*
  std::vector<double> kgrad;   ///< kernel-gradient / feature-sine scratch
  linalg::Matrix k_rows;       ///< batched cross-kernel matrix (row/query)
  linalg::Matrix v_rows;       ///< batched forward solves
};

/// Read-side contract shared by the exact GP and the sparse tier.  The
/// mutating half (add_point / remove_point) carries the strong exception
/// guarantee on every implementation: on NumericalError the model rolls
/// back and stays usable for prediction.
class Surrogate {
 public:
  virtual ~Surrogate() = default;

  /// Posterior at one point with caller-supplied scratch; thread-safe for
  /// concurrent calls with distinct workspaces (the model is only read).
  virtual Prediction predict(std::span<const double> x,
                             GpWorkspace& ws) const = 0;

  /// Posterior at one point, using the model-owned scratch workspace (no
  /// per-call heap allocations once warmed up).  Not safe to call
  /// concurrently on one instance.
  Prediction predict(std::span<const double> x) const {
    return predict(x, scratch_);
  }

  /// Posterior mean/variance *and* their analytic gradients in one pass —
  /// the fast path optimize_acquisition's L-BFGS descents rely on.
  virtual void predict_with_gradient(std::span<const double> x,
                                     GpWorkspace& ws,
                                     PredictGradient& out) const = 0;

  /// Posterior over a batch of points; each returned Prediction is
  /// bit-identical to predict() on the same point.  Uses the model-owned
  /// scratch (same single-thread caveat as the convenience predict(x)).
  virtual std::vector<Prediction> predict_batch(
      std::span<const std::vector<double>> points) const = 0;

  /// Posterior means over a list of points (used for response surfaces).
  std::vector<double> predict_mean(
      const std::vector<std::vector<double>>& points) const {
    std::vector<double> out;
    out.reserve(points.size());
    for (const auto& p : predict_batch(points)) out.push_back(p.mean);
    return out;
  }

  /// Incrementally folds one observation in without a refit.  Strong
  /// exception guarantee (see class comment).
  virtual void add_point(const std::vector<double>& x, double y) = 0;

  /// Incrementally removes training point `index` (rank-1 downdate /
  /// truncation).  Strong exception guarantee.  Requires >= 2 points.
  virtual void remove_point(std::size_t index) = 0;

  virtual bool trained() const noexcept = 0;
  virtual std::size_t num_points() const noexcept = 0;

  /// Best (lowest, in original units) observed target so far.
  virtual double best_observed() const = 0;

  /// Tier name for logs/metrics: "exact" or "rff".
  virtual const char* tier() const noexcept = 0;

 protected:
  Surrogate() = default;
  // The owned scratch is transient per-instance state; copies start cold.
  Surrogate(const Surrogate&) noexcept {}
  Surrogate& operator=(const Surrogate&) noexcept { return *this; }

  mutable GpWorkspace scratch_;
};

}  // namespace robotune::gp
