#include "gp/gaussian_process.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numbers>

#include "common/chaos.h"
#include "common/statistics.h"
#include "obs/metrics.h"
#include "opt/lbfgsb.h"

namespace robotune::gp {

double Prediction::stddev() const { return std::sqrt(std::max(0.0, variance)); }

double PredictGradient::stddev() const {
  return std::sqrt(std::max(0.0, variance));
}

GaussianProcess::GaussianProcess(std::unique_ptr<Kernel> kernel,
                                 GpOptions options, std::uint64_t seed)
    : kernel_(std::move(kernel)), options_(options), seed_(seed) {
  require(kernel_ != nullptr, "GaussianProcess: null kernel");
}

GaussianProcess::GaussianProcess(const GaussianProcess& other)
    : Surrogate(other),
      kernel_(other.kernel_->clone()),
      options_(other.options_),
      seed_(other.seed_),
      train_x_(other.train_x_),
      train_y_raw_(other.train_y_raw_),
      train_y_(other.train_y_),
      y_mean_(other.y_mean_),
      y_scale_(other.y_scale_),
      chol_(other.chol_),
      alpha_(other.alpha_),
      log_marginal_(other.log_marginal_) {}

GaussianProcess& GaussianProcess::operator=(const GaussianProcess& other) {
  if (this == &other) return *this;
  GaussianProcess copy(other);
  *this = std::move(copy);
  return *this;
}

void GaussianProcess::fit(const std::vector<std::vector<double>>& x,
                          std::span<const double> y) {
  require(!x.empty(), "GaussianProcess::fit: no training points");
  require(x.size() == y.size(), "GaussianProcess::fit: X/y size mismatch");
  train_x_ = x;
  train_y_raw_.assign(y.begin(), y.end());
  restandardize();

  if (options_.optimize_hyperparameters && train_x_.size() >= 4) {
    // Maximize the log marginal likelihood over log-hyperparameters by
    // minimizing its negation with multi-start L-BFGS (numeric gradient).
    const std::vector<double> start = kernel_->log_params();
    opt::Bounds bounds;
    bounds.lower.resize(start.size());
    bounds.upper.resize(start.size());
    for (std::size_t i = 0; i < start.size(); ++i) {
      bounds.lower[i] = start[i] - options_.log_search_radius;
      bounds.upper[i] = start[i] + options_.log_search_radius;
    }
    auto objective = opt::numeric_gradient(
        [this](std::span<const double> log_params) -> double {
          kernel_->set_log_params(log_params);
          try {
            factorize();
          } catch (const NumericalError&) {
            return 1e12;
          }
          return -log_marginal_;
        },
        1e-5);
    Rng rng(seed_);
    opt::MultiStartOptions ms;
    // Past the sparse switchover the warm start (the previous round's
    // optimum, passed as an explicit start candidate below) is a strong
    // prior; extra cold starts only multiply the O(n³) factorizations.
    const bool shrink =
        options_.shrink_restarts_at > 0 &&
        train_x_.size() >=
            static_cast<std::size_t>(options_.shrink_restarts_at);
    ms.starts = shrink ? 1 : options_.hyperparameter_restarts;
    ms.probe_candidates = 16;
    ms.lbfgsb.max_iterations = 50;
    const auto result =
        opt::multistart_minimize(objective, bounds, rng, ms, {start});
    kernel_->set_log_params(result.x);
  }
  factorize();
}

void GaussianProcess::add_point(const std::vector<double>& x, double y) {
  require(trained(), "GaussianProcess::add_point: fit() first");
  require(x.size() == train_x_.front().size(),
          "GaussianProcess::add_point: dimension mismatch");
  const std::size_t n = train_x_.size();

  // Cross-covariances against the existing points (raw kernel scale).
  std::vector<double> k_star(n, 0.0);
  kernel_->accumulate_covariance_row(train_x_, x, k_star);
  const double k_self =
      (*kernel_)(x, x) + kernel_->diagonal_noise() + 1e-10;

  // Extend L: new row l = L^{-1} k*, new diagonal sqrt(k** - l.l).
  const std::vector<double> l = linalg::solve_lower(chol_, k_star);
  const double d2 = k_self - linalg::dot(l, l);

  train_x_.push_back(x);
  train_y_raw_.push_back(y);
  obs::count("gp.add_point.calls");

  if (!(d2 > 1e-12)) {
    // Numerically degenerate (e.g. duplicate point): fall back to a full
    // refactorization with jitter escalation.  factorize() can throw
    // NumericalError even with jitter, so roll back the training-set
    // mutation first — callers (the BO engine's constant-liar fantasies,
    // the degradation ladder) rely on the strong exception guarantee to
    // keep using the model after a failed incremental update.
    obs::count("gp.add_point.degenerate");
    const double old_mean = y_mean_;
    const double old_scale = y_scale_;
    restandardize();
    try {
      factorize();
    } catch (const NumericalError&) {
      train_x_.pop_back();
      train_y_raw_.pop_back();
      train_y_.pop_back();
      y_mean_ = old_mean;
      y_scale_ = old_scale;
      for (std::size_t i = 0; i < train_y_.size(); ++i) {
        train_y_[i] = (train_y_raw_[i] - y_mean_) / y_scale_;
      }
      throw;
    }
    return;
  }

  // Geometric factor growth: one reallocate-and-copy per capacity
  // doubling instead of per observation — a long online session's factor
  // extends in place, O(n) writes for the new row.
  if (n + 1 > chol_.square_capacity()) {
    chol_.reserve_square(std::max<std::size_t>(
        n + 1, 2 * std::max<std::size_t>(1, chol_.square_capacity())));
    obs::count("gp.add_point.reserve");
  }
  chol_.grow_square();
  for (std::size_t j = 0; j < n; ++j) {
    chol_(n, j) = l[j];
    chol_(j, n) = 0.0;  // keep the (unread) upper triangle tidy
  }
  chol_(n, n) = std::sqrt(d2);

  // Re-standardize targets (O(n)) and re-solve for alpha (O(n²)).
  restandardize();
  alpha_ = linalg::cholesky_solve(chol_, train_y_);
  scratch_.clear();

  const double n_d = static_cast<double>(train_x_.size());
  log_marginal_ = -0.5 * linalg::dot(train_y_, alpha_) -
                  0.5 * linalg::log_det_from_cholesky(chol_) -
                  0.5 * n_d * std::log(2.0 * std::numbers::pi);
}

void GaussianProcess::remove_point(std::size_t index) {
  require(trained(), "GaussianProcess::remove_point: fit() first");
  const std::size_t n = train_x_.size();
  require(index < n, "GaussianProcess::remove_point: index out of range");
  require(n >= 2, "GaussianProcess::remove_point: cannot drop the last point");
  // Chaos site: fired before any mutation, so the strong exception
  // guarantee is trivially honest — the BO engine's constant-liar purge
  // falls back to its full-refit rung with the model intact.
  if (chaos::fail(chaos::Site::kCholesky)) {
    throw NumericalError(
        "GaussianProcess::remove_point: downdate failed (chaos)");
  }
  obs::count("gp.remove_point.calls");

  if (index + 1 < n) {
    // Interior removal: delete row/column `index` from the factor and
    // repair the trailing block.  With K partitioned around the removed
    // point, the trailing factor satisfies L33·L33ᵀ = K33 − L31·L31ᵀ −
    // v·vᵀ where v is the removed column's sub-diagonal slice — so the
    // new factor of K33 − L31·L31ᵀ is exactly the rank-1 *update* of L33
    // with v.  A positive update cannot fail (unlike a downdate).
    std::vector<double> v(n - 1 - index);
    for (std::size_t r = index + 1; r < n; ++r) {
      v[r - index - 1] = chol_(r, index);
    }
    // Shift trailing rows up / sub-diagonal columns left, in place.  Row
    // r's data is consumed before row r+1 overwrites it (ascending scan).
    for (std::size_t r = index + 1; r < n; ++r) {
      for (std::size_t c = 0; c < index; ++c) chol_(r - 1, c) = chol_(r, c);
      for (std::size_t c = index + 1; c <= r; ++c) {
        chol_(r - 1, c - 1) = chol_(r, c);
      }
    }
    chol_.shrink_square(n - 1);
    linalg::cholesky_update_rank1(chol_, index, v);
  } else {
    // LIFO removal (the constant-liar purge): the leading (n−1)² block
    // *is* the pre-add factor, bit for bit — truncation restores it.
    chol_.shrink_square(n - 1);
  }

  train_x_.erase(train_x_.begin() + static_cast<std::ptrdiff_t>(index));
  train_y_raw_.erase(train_y_raw_.begin() +
                     static_cast<std::ptrdiff_t>(index));
  restandardize();
  alpha_ = linalg::cholesky_solve(chol_, train_y_);
  scratch_.clear();

  const double n_d = static_cast<double>(train_x_.size());
  log_marginal_ = -0.5 * linalg::dot(train_y_, alpha_) -
                  0.5 * linalg::log_det_from_cholesky(chol_) -
                  0.5 * n_d * std::log(2.0 * std::numbers::pi);
}

void GaussianProcess::restandardize() {
  y_mean_ = stats::mean(train_y_raw_);
  y_scale_ = stats::stddev(train_y_raw_);
  if (!(y_scale_ > 1e-12)) y_scale_ = 1.0;
  train_y_.resize(train_y_raw_.size());
  for (std::size_t i = 0; i < train_y_.size(); ++i) {
    train_y_[i] = (train_y_raw_[i] - y_mean_) / y_scale_;
  }
}

void GaussianProcess::factorize() {
  const std::size_t n = train_x_.size();
  linalg::Matrix k(n, n);
  const double noise = kernel_->diagonal_noise();
  const std::span<const std::vector<double>> points(train_x_);
  for (std::size_t i = 0; i < n; ++i) {
    // Row i's lower triangle in one SIMD-blocked covariance sweep; the
    // freshly constructed matrix is zero-filled, so accumulation lands
    // the bare kernel values.
    kernel_->accumulate_covariance_row(points.subspan(0, i + 1), train_x_[i],
                                       k.row(i).subspan(0, i + 1));
    for (std::size_t j = 0; j < i; ++j) k(j, i) = k(i, j);
    k(i, i) += noise + 1e-10;  // numeric jitter
  }
  chol_ = linalg::cholesky(k);
  alpha_ = linalg::cholesky_solve(chol_, train_y_);
  scratch_.clear();  // training set changed; scratch sizes are stale

  const double n_d = static_cast<double>(n);
  log_marginal_ = -0.5 * linalg::dot(train_y_, alpha_) -
                  0.5 * linalg::log_det_from_cholesky(chol_) -
                  0.5 * n_d * std::log(2.0 * std::numbers::pi);
}

Prediction GaussianProcess::predict(std::span<const double> x,
                                    GpWorkspace& ws) const {
  require(trained(), "GaussianProcess::predict: not fitted");
  const std::size_t n = train_x_.size();
  ws.k_star.assign(n, 0.0);
  kernel_->accumulate_covariance_row(train_x_, x, ws.k_star);
  const double mean_std = linalg::dot(ws.k_star, alpha_);
  ws.v.resize(n);
  linalg::solve_lower(chol_, ws.k_star, ws.v);
  const double k_xx = (*kernel_)(x, x);
  const double var_std = std::max(0.0, k_xx - linalg::dot(ws.v, ws.v));

  Prediction p;
  p.mean = mean_std * y_scale_ + y_mean_;
  p.variance = var_std * y_scale_ * y_scale_;
  return p;
}

void GaussianProcess::predict_with_gradient(std::span<const double> x,
                                            GpWorkspace& ws,
                                            PredictGradient& out) const {
  require(trained(), "GaussianProcess::predict_with_gradient: not fitted");
  const std::size_t n = train_x_.size();
  const std::size_t dims = x.size();

  ws.k_star.assign(n, 0.0);
  kernel_->accumulate_covariance_row(train_x_, x, ws.k_star);
  const double mean_std = linalg::dot(ws.k_star, alpha_);
  ws.v.resize(n);
  linalg::solve_lower(chol_, ws.k_star, ws.v);
  const double k_xx = (*kernel_)(x, x);
  const double var_raw = k_xx - linalg::dot(ws.v, ws.v);

  // ∂μ/∂x = Jᵀ α and ∂σ²/∂x = −2 Jᵀ (K⁻¹ k*) with J_i = ∂k(x, X_i)/∂x.
  // K⁻¹ k* = L⁻ᵀ (L⁻¹ k*) = L⁻ᵀ v reuses the forward solve; each row of J
  // is produced once and folded into both gradients.
  ws.w.resize(n);
  linalg::solve_lower_transposed(chol_, ws.v, ws.w);
  out.dmean.assign(dims, 0.0);
  out.dvariance.assign(dims, 0.0);
  ws.kgrad.resize(dims);
  for (std::size_t i = 0; i < n; ++i) {
    std::fill(ws.kgrad.begin(), ws.kgrad.end(), 0.0);
    kernel_->accumulate_gradient(x, train_x_[i], ws.kgrad);
    linalg::axpy(alpha_[i], ws.kgrad, out.dmean);
    linalg::axpy(-2.0 * ws.w[i], ws.kgrad, out.dvariance);
  }

  out.mean = mean_std * y_scale_ + y_mean_;
  out.variance = std::max(0.0, var_raw) * y_scale_ * y_scale_;
  const double var_scale = y_scale_ * y_scale_;
  for (std::size_t d = 0; d < dims; ++d) {
    out.dmean[d] *= y_scale_;
    // The variance clip at 0 is a kink: report the zero subgradient there.
    out.dvariance[d] = var_raw > 0.0 ? out.dvariance[d] * var_scale : 0.0;
  }
}

std::vector<Prediction> GaussianProcess::predict_batch(
    std::span<const std::vector<double>> points) const {
  require(trained(), "GaussianProcess::predict_batch: not fitted");
  const std::size_t n = train_x_.size();
  const std::size_t m = points.size();
  obs::count("gp.predict_batch.calls");
  obs::count("gp.predict_batch.points", m);

  // One cross-kernel matrix (row per query point, contiguous) and one
  // multi-RHS forward solve instead of m separate k*/solve round trips.
  // Per-row arithmetic matches predict() exactly, so each Prediction is
  // bit-identical to the per-point path.  The scratch matrices reuse
  // their allocations across calls (every element is overwritten).
  linalg::Matrix& k_star = scratch_.k_rows;
  k_star.resize(m, n);
  for (std::size_t j = 0; j < m; ++j) {
    require(points[j].size() == train_x_.front().size(),
            "GaussianProcess::predict_batch: dimension mismatch");
    const auto row = k_star.row(j);
    std::fill(row.begin(), row.end(), 0.0);
    kernel_->accumulate_covariance_row(train_x_, points[j], row);
  }
  linalg::Matrix& v = scratch_.v_rows;
  linalg::solve_lower_rows(chol_, k_star, v);

  std::vector<Prediction> out(m);
  for (std::size_t j = 0; j < m; ++j) {
    const double mean_std = linalg::dot(k_star.row(j), alpha_);
    const double k_xx = (*kernel_)(points[j], points[j]);
    const double var_std =
        std::max(0.0, k_xx - linalg::dot(v.row(j), v.row(j)));
    out[j].mean = mean_std * y_scale_ + y_mean_;
    out[j].variance = var_std * y_scale_ * y_scale_;
  }
  return out;
}

double GaussianProcess::log_marginal_likelihood() const {
  require(trained(), "GaussianProcess::log_marginal_likelihood: not fitted");
  return log_marginal_;
}

double GaussianProcess::best_observed() const {
  require(trained(), "GaussianProcess::best_observed: not fitted");
  return *std::min_element(train_y_raw_.begin(), train_y_raw_.end());
}

}  // namespace robotune::gp
