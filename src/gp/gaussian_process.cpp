#include "gp/gaussian_process.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numbers>

#include "common/statistics.h"
#include "opt/lbfgsb.h"

namespace robotune::gp {

double Prediction::stddev() const { return std::sqrt(std::max(0.0, variance)); }

GaussianProcess::GaussianProcess(std::unique_ptr<Kernel> kernel,
                                 GpOptions options, std::uint64_t seed)
    : kernel_(std::move(kernel)), options_(options), seed_(seed) {
  require(kernel_ != nullptr, "GaussianProcess: null kernel");
}

GaussianProcess::GaussianProcess(const GaussianProcess& other)
    : kernel_(other.kernel_->clone()),
      options_(other.options_),
      seed_(other.seed_),
      train_x_(other.train_x_),
      train_y_raw_(other.train_y_raw_),
      train_y_(other.train_y_),
      y_mean_(other.y_mean_),
      y_scale_(other.y_scale_),
      chol_(other.chol_),
      alpha_(other.alpha_),
      log_marginal_(other.log_marginal_) {}

GaussianProcess& GaussianProcess::operator=(const GaussianProcess& other) {
  if (this == &other) return *this;
  GaussianProcess copy(other);
  *this = std::move(copy);
  return *this;
}

void GaussianProcess::fit(const std::vector<std::vector<double>>& x,
                          std::span<const double> y) {
  require(!x.empty(), "GaussianProcess::fit: no training points");
  require(x.size() == y.size(), "GaussianProcess::fit: X/y size mismatch");
  train_x_ = x;
  train_y_raw_.assign(y.begin(), y.end());

  y_mean_ = stats::mean(train_y_raw_);
  y_scale_ = stats::stddev(train_y_raw_);
  if (!(y_scale_ > 1e-12)) y_scale_ = 1.0;
  train_y_.resize(train_y_raw_.size());
  for (std::size_t i = 0; i < train_y_.size(); ++i) {
    train_y_[i] = (train_y_raw_[i] - y_mean_) / y_scale_;
  }

  if (options_.optimize_hyperparameters && train_x_.size() >= 4) {
    // Maximize the log marginal likelihood over log-hyperparameters by
    // minimizing its negation with multi-start L-BFGS (numeric gradient).
    const std::vector<double> start = kernel_->log_params();
    opt::Bounds bounds;
    bounds.lower.resize(start.size());
    bounds.upper.resize(start.size());
    for (std::size_t i = 0; i < start.size(); ++i) {
      bounds.lower[i] = start[i] - options_.log_search_radius;
      bounds.upper[i] = start[i] + options_.log_search_radius;
    }
    auto objective = opt::numeric_gradient(
        [this](std::span<const double> log_params) -> double {
          kernel_->set_log_params(log_params);
          try {
            factorize();
          } catch (const NumericalError&) {
            return 1e12;
          }
          return -log_marginal_;
        },
        1e-5);
    Rng rng(seed_);
    opt::MultiStartOptions ms;
    ms.starts = options_.hyperparameter_restarts;
    ms.probe_candidates = 16;
    ms.lbfgsb.max_iterations = 50;
    const auto result =
        opt::multistart_minimize(objective, bounds, rng, ms, {start});
    kernel_->set_log_params(result.x);
  }
  factorize();
}

void GaussianProcess::add_point(const std::vector<double>& x, double y) {
  require(trained(), "GaussianProcess::add_point: fit() first");
  require(x.size() == train_x_.front().size(),
          "GaussianProcess::add_point: dimension mismatch");
  const std::size_t n = train_x_.size();

  // Cross-covariances against the existing points (raw kernel scale).
  std::vector<double> k_star(n);
  for (std::size_t i = 0; i < n; ++i) k_star[i] = (*kernel_)(train_x_[i], x);
  const double k_self =
      (*kernel_)(x, x) + kernel_->diagonal_noise() + 1e-10;

  // Extend L: new row l = L^{-1} k*, new diagonal sqrt(k** - l.l).
  const std::vector<double> l = linalg::solve_lower(chol_, k_star);
  const double d2 = k_self - linalg::dot(l, l);

  train_x_.push_back(x);
  train_y_raw_.push_back(y);

  if (!(d2 > 1e-12)) {
    // Numerically degenerate (e.g. duplicate point): fall back to a full
    // refactorization with jitter escalation.
    y_mean_ = stats::mean(train_y_raw_);
    y_scale_ = stats::stddev(train_y_raw_);
    if (!(y_scale_ > 1e-12)) y_scale_ = 1.0;
    train_y_.resize(train_y_raw_.size());
    for (std::size_t i = 0; i < train_y_.size(); ++i) {
      train_y_[i] = (train_y_raw_[i] - y_mean_) / y_scale_;
    }
    factorize();
    return;
  }

  linalg::Matrix grown(n + 1, n + 1);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j <= i; ++j) grown(i, j) = chol_(i, j);
  }
  for (std::size_t j = 0; j < n; ++j) grown(n, j) = l[j];
  grown(n, n) = std::sqrt(d2);
  chol_ = std::move(grown);

  // Re-standardize targets (O(n)) and re-solve for alpha (O(n²)).
  y_mean_ = stats::mean(train_y_raw_);
  y_scale_ = stats::stddev(train_y_raw_);
  if (!(y_scale_ > 1e-12)) y_scale_ = 1.0;
  train_y_.resize(train_y_raw_.size());
  for (std::size_t i = 0; i < train_y_.size(); ++i) {
    train_y_[i] = (train_y_raw_[i] - y_mean_) / y_scale_;
  }
  alpha_ = linalg::cholesky_solve(chol_, train_y_);

  const double n_d = static_cast<double>(train_x_.size());
  log_marginal_ = -0.5 * linalg::dot(train_y_, alpha_) -
                  0.5 * linalg::log_det_from_cholesky(chol_) -
                  0.5 * n_d * std::log(2.0 * std::numbers::pi);
}

void GaussianProcess::factorize() {
  const std::size_t n = train_x_.size();
  linalg::Matrix k(n, n);
  const double noise = kernel_->diagonal_noise();
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j <= i; ++j) {
      const double v = (*kernel_)(train_x_[i], train_x_[j]);
      k(i, j) = v;
      k(j, i) = v;
    }
    k(i, i) += noise + 1e-10;  // numeric jitter
  }
  chol_ = linalg::cholesky(k);
  alpha_ = linalg::cholesky_solve(chol_, train_y_);

  const double n_d = static_cast<double>(n);
  log_marginal_ = -0.5 * linalg::dot(train_y_, alpha_) -
                  0.5 * linalg::log_det_from_cholesky(chol_) -
                  0.5 * n_d * std::log(2.0 * std::numbers::pi);
}

Prediction GaussianProcess::predict(std::span<const double> x) const {
  require(trained(), "GaussianProcess::predict: not fitted");
  const std::size_t n = train_x_.size();
  std::vector<double> k_star(n);
  for (std::size_t i = 0; i < n; ++i) {
    k_star[i] = (*kernel_)(train_x_[i], x);
  }
  const double mean_std = linalg::dot(k_star, alpha_);
  const std::vector<double> v = linalg::solve_lower(chol_, k_star);
  const double k_xx = (*kernel_)(x, x);
  const double var_std = std::max(0.0, k_xx - linalg::dot(v, v));

  Prediction p;
  p.mean = mean_std * y_scale_ + y_mean_;
  p.variance = var_std * y_scale_ * y_scale_;
  return p;
}

std::vector<double> GaussianProcess::predict_mean(
    const std::vector<std::vector<double>>& points) const {
  std::vector<double> out;
  out.reserve(points.size());
  for (const auto& p : points) out.push_back(predict(p).mean);
  return out;
}

double GaussianProcess::log_marginal_likelihood() const {
  require(trained(), "GaussianProcess::log_marginal_likelihood: not fitted");
  return log_marginal_;
}

double GaussianProcess::best_observed() const {
  require(trained(), "GaussianProcess::best_observed: not fitted");
  return *std::min_element(train_y_raw_.begin(), train_y_raw_.end());
}

}  // namespace robotune::gp
