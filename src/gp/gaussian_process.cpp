#include "gp/gaussian_process.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numbers>

#include "common/statistics.h"
#include "obs/metrics.h"
#include "opt/lbfgsb.h"

namespace robotune::gp {

double Prediction::stddev() const { return std::sqrt(std::max(0.0, variance)); }

double PredictGradient::stddev() const {
  return std::sqrt(std::max(0.0, variance));
}

GaussianProcess::GaussianProcess(std::unique_ptr<Kernel> kernel,
                                 GpOptions options, std::uint64_t seed)
    : kernel_(std::move(kernel)), options_(options), seed_(seed) {
  require(kernel_ != nullptr, "GaussianProcess: null kernel");
}

GaussianProcess::GaussianProcess(const GaussianProcess& other)
    : kernel_(other.kernel_->clone()),
      options_(other.options_),
      seed_(other.seed_),
      train_x_(other.train_x_),
      train_y_raw_(other.train_y_raw_),
      train_y_(other.train_y_),
      y_mean_(other.y_mean_),
      y_scale_(other.y_scale_),
      chol_(other.chol_),
      alpha_(other.alpha_),
      log_marginal_(other.log_marginal_) {}

GaussianProcess& GaussianProcess::operator=(const GaussianProcess& other) {
  if (this == &other) return *this;
  GaussianProcess copy(other);
  *this = std::move(copy);
  return *this;
}

void GaussianProcess::fit(const std::vector<std::vector<double>>& x,
                          std::span<const double> y) {
  require(!x.empty(), "GaussianProcess::fit: no training points");
  require(x.size() == y.size(), "GaussianProcess::fit: X/y size mismatch");
  train_x_ = x;
  train_y_raw_.assign(y.begin(), y.end());

  y_mean_ = stats::mean(train_y_raw_);
  y_scale_ = stats::stddev(train_y_raw_);
  if (!(y_scale_ > 1e-12)) y_scale_ = 1.0;
  train_y_.resize(train_y_raw_.size());
  for (std::size_t i = 0; i < train_y_.size(); ++i) {
    train_y_[i] = (train_y_raw_[i] - y_mean_) / y_scale_;
  }

  if (options_.optimize_hyperparameters && train_x_.size() >= 4) {
    // Maximize the log marginal likelihood over log-hyperparameters by
    // minimizing its negation with multi-start L-BFGS (numeric gradient).
    const std::vector<double> start = kernel_->log_params();
    opt::Bounds bounds;
    bounds.lower.resize(start.size());
    bounds.upper.resize(start.size());
    for (std::size_t i = 0; i < start.size(); ++i) {
      bounds.lower[i] = start[i] - options_.log_search_radius;
      bounds.upper[i] = start[i] + options_.log_search_radius;
    }
    auto objective = opt::numeric_gradient(
        [this](std::span<const double> log_params) -> double {
          kernel_->set_log_params(log_params);
          try {
            factorize();
          } catch (const NumericalError&) {
            return 1e12;
          }
          return -log_marginal_;
        },
        1e-5);
    Rng rng(seed_);
    opt::MultiStartOptions ms;
    ms.starts = options_.hyperparameter_restarts;
    ms.probe_candidates = 16;
    ms.lbfgsb.max_iterations = 50;
    const auto result =
        opt::multistart_minimize(objective, bounds, rng, ms, {start});
    kernel_->set_log_params(result.x);
  }
  factorize();
}

void GaussianProcess::add_point(const std::vector<double>& x, double y) {
  require(trained(), "GaussianProcess::add_point: fit() first");
  require(x.size() == train_x_.front().size(),
          "GaussianProcess::add_point: dimension mismatch");
  const std::size_t n = train_x_.size();

  // Cross-covariances against the existing points (raw kernel scale).
  std::vector<double> k_star(n);
  for (std::size_t i = 0; i < n; ++i) k_star[i] = (*kernel_)(train_x_[i], x);
  const double k_self =
      (*kernel_)(x, x) + kernel_->diagonal_noise() + 1e-10;

  // Extend L: new row l = L^{-1} k*, new diagonal sqrt(k** - l.l).
  const std::vector<double> l = linalg::solve_lower(chol_, k_star);
  const double d2 = k_self - linalg::dot(l, l);

  train_x_.push_back(x);
  train_y_raw_.push_back(y);

  if (!(d2 > 1e-12)) {
    // Numerically degenerate (e.g. duplicate point): fall back to a full
    // refactorization with jitter escalation.  factorize() can throw
    // NumericalError even with jitter, so roll back the training-set
    // mutation first — callers (the BO engine's constant-liar fantasies,
    // the degradation ladder) rely on the strong exception guarantee to
    // keep using the model after a failed incremental update.
    const double old_mean = y_mean_;
    const double old_scale = y_scale_;
    y_mean_ = stats::mean(train_y_raw_);
    y_scale_ = stats::stddev(train_y_raw_);
    if (!(y_scale_ > 1e-12)) y_scale_ = 1.0;
    train_y_.resize(train_y_raw_.size());
    for (std::size_t i = 0; i < train_y_.size(); ++i) {
      train_y_[i] = (train_y_raw_[i] - y_mean_) / y_scale_;
    }
    try {
      factorize();
    } catch (const NumericalError&) {
      train_x_.pop_back();
      train_y_raw_.pop_back();
      train_y_.pop_back();
      y_mean_ = old_mean;
      y_scale_ = old_scale;
      for (std::size_t i = 0; i < train_y_.size(); ++i) {
        train_y_[i] = (train_y_raw_[i] - y_mean_) / y_scale_;
      }
      throw;
    }
    return;
  }

  linalg::Matrix grown(n + 1, n + 1);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j <= i; ++j) grown(i, j) = chol_(i, j);
  }
  for (std::size_t j = 0; j < n; ++j) grown(n, j) = l[j];
  grown(n, n) = std::sqrt(d2);
  chol_ = std::move(grown);

  // Re-standardize targets (O(n)) and re-solve for alpha (O(n²)).
  y_mean_ = stats::mean(train_y_raw_);
  y_scale_ = stats::stddev(train_y_raw_);
  if (!(y_scale_ > 1e-12)) y_scale_ = 1.0;
  train_y_.resize(train_y_raw_.size());
  for (std::size_t i = 0; i < train_y_.size(); ++i) {
    train_y_[i] = (train_y_raw_[i] - y_mean_) / y_scale_;
  }
  alpha_ = linalg::cholesky_solve(chol_, train_y_);
  scratch_.clear();

  const double n_d = static_cast<double>(train_x_.size());
  log_marginal_ = -0.5 * linalg::dot(train_y_, alpha_) -
                  0.5 * linalg::log_det_from_cholesky(chol_) -
                  0.5 * n_d * std::log(2.0 * std::numbers::pi);
}

void GaussianProcess::factorize() {
  const std::size_t n = train_x_.size();
  linalg::Matrix k(n, n);
  const double noise = kernel_->diagonal_noise();
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j <= i; ++j) {
      const double v = (*kernel_)(train_x_[i], train_x_[j]);
      k(i, j) = v;
      k(j, i) = v;
    }
    k(i, i) += noise + 1e-10;  // numeric jitter
  }
  chol_ = linalg::cholesky(k);
  alpha_ = linalg::cholesky_solve(chol_, train_y_);
  scratch_.clear();  // training set changed; scratch sizes are stale

  const double n_d = static_cast<double>(n);
  log_marginal_ = -0.5 * linalg::dot(train_y_, alpha_) -
                  0.5 * linalg::log_det_from_cholesky(chol_) -
                  0.5 * n_d * std::log(2.0 * std::numbers::pi);
}

Prediction GaussianProcess::predict(std::span<const double> x) const {
  return predict(x, scratch_);
}

Prediction GaussianProcess::predict(std::span<const double> x,
                                    GpWorkspace& ws) const {
  require(trained(), "GaussianProcess::predict: not fitted");
  const std::size_t n = train_x_.size();
  ws.k_star.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    ws.k_star[i] = (*kernel_)(train_x_[i], x);
  }
  const double mean_std = linalg::dot(ws.k_star, alpha_);
  ws.v.resize(n);
  linalg::solve_lower(chol_, ws.k_star, ws.v);
  const double k_xx = (*kernel_)(x, x);
  const double var_std = std::max(0.0, k_xx - linalg::dot(ws.v, ws.v));

  Prediction p;
  p.mean = mean_std * y_scale_ + y_mean_;
  p.variance = var_std * y_scale_ * y_scale_;
  return p;
}

void GaussianProcess::predict_with_gradient(std::span<const double> x,
                                            GpWorkspace& ws,
                                            PredictGradient& out) const {
  require(trained(), "GaussianProcess::predict_with_gradient: not fitted");
  const std::size_t n = train_x_.size();
  const std::size_t dims = x.size();

  ws.k_star.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    ws.k_star[i] = (*kernel_)(train_x_[i], x);
  }
  const double mean_std = linalg::dot(ws.k_star, alpha_);
  ws.v.resize(n);
  linalg::solve_lower(chol_, ws.k_star, ws.v);
  const double k_xx = (*kernel_)(x, x);
  const double var_raw = k_xx - linalg::dot(ws.v, ws.v);

  // ∂μ/∂x = Jᵀ α and ∂σ²/∂x = −2 Jᵀ (K⁻¹ k*) with J_i = ∂k(x, X_i)/∂x.
  // K⁻¹ k* = L⁻ᵀ (L⁻¹ k*) = L⁻ᵀ v reuses the forward solve; each row of J
  // is produced once and folded into both gradients.
  ws.w.resize(n);
  linalg::solve_lower_transposed(chol_, ws.v, ws.w);
  out.dmean.assign(dims, 0.0);
  out.dvariance.assign(dims, 0.0);
  ws.kgrad.resize(dims);
  for (std::size_t i = 0; i < n; ++i) {
    std::fill(ws.kgrad.begin(), ws.kgrad.end(), 0.0);
    kernel_->accumulate_gradient(x, train_x_[i], ws.kgrad);
    linalg::axpy(alpha_[i], ws.kgrad, out.dmean);
    linalg::axpy(-2.0 * ws.w[i], ws.kgrad, out.dvariance);
  }

  out.mean = mean_std * y_scale_ + y_mean_;
  out.variance = std::max(0.0, var_raw) * y_scale_ * y_scale_;
  const double var_scale = y_scale_ * y_scale_;
  for (std::size_t d = 0; d < dims; ++d) {
    out.dmean[d] *= y_scale_;
    // The variance clip at 0 is a kink: report the zero subgradient there.
    out.dvariance[d] = var_raw > 0.0 ? out.dvariance[d] * var_scale : 0.0;
  }
}

std::vector<Prediction> GaussianProcess::predict_batch(
    std::span<const std::vector<double>> points) const {
  require(trained(), "GaussianProcess::predict_batch: not fitted");
  const std::size_t n = train_x_.size();
  const std::size_t m = points.size();
  obs::count("gp.predict_batch.calls");
  obs::count("gp.predict_batch.points", m);

  // One cross-kernel matrix (row per query point, contiguous) and one
  // multi-RHS forward solve instead of m separate k*/solve round trips.
  // Per-row arithmetic matches predict() exactly, so each Prediction is
  // bit-identical to the per-point path.  The scratch matrices reuse
  // their allocations across calls (every element is overwritten).
  linalg::Matrix& k_star = scratch_.k_rows;
  k_star.resize(m, n);
  for (std::size_t j = 0; j < m; ++j) {
    require(points[j].size() == train_x_.front().size(),
            "GaussianProcess::predict_batch: dimension mismatch");
    const auto row = k_star.row(j);
    for (std::size_t i = 0; i < n; ++i) {
      row[i] = (*kernel_)(train_x_[i], points[j]);
    }
  }
  linalg::Matrix& v = scratch_.v_rows;
  linalg::solve_lower_rows(chol_, k_star, v);

  std::vector<Prediction> out(m);
  for (std::size_t j = 0; j < m; ++j) {
    const double mean_std = linalg::dot(k_star.row(j), alpha_);
    const double k_xx = (*kernel_)(points[j], points[j]);
    const double var_std =
        std::max(0.0, k_xx - linalg::dot(v.row(j), v.row(j)));
    out[j].mean = mean_std * y_scale_ + y_mean_;
    out[j].variance = var_std * y_scale_ * y_scale_;
  }
  return out;
}

std::vector<double> GaussianProcess::predict_mean(
    const std::vector<std::vector<double>>& points) const {
  std::vector<double> out;
  out.reserve(points.size());
  for (const auto& p : predict_batch(points)) out.push_back(p.mean);
  return out;
}

double GaussianProcess::log_marginal_likelihood() const {
  require(trained(), "GaussianProcess::log_marginal_likelihood: not fitted");
  return log_marginal_;
}

double GaussianProcess::best_observed() const {
  require(trained(), "GaussianProcess::best_observed: not fitted");
  return *std::min_element(train_y_raw_.begin(), train_y_raw_.end());
}

}  // namespace robotune::gp
