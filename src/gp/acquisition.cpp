#include "gp/acquisition.h"

#include <algorithm>
#include <cmath>
#include <memory>

#include "common/chaos.h"
#include "common/error.h"
#include "common/statistics.h"
#include "common/thread_pool.h"
#include "obs/metrics.h"

namespace robotune::gp {

std::string to_string(AcquisitionKind kind) {
  switch (kind) {
    case AcquisitionKind::kPI:
      return "PI";
    case AcquisitionKind::kEI:
      return "EI";
    case AcquisitionKind::kLCB:
      return "LCB";
  }
  return "?";
}

double acquisition_value(AcquisitionKind kind, double mu, double sigma,
                         double best_observed,
                         const AcquisitionParams& params) {
  switch (kind) {
    case AcquisitionKind::kPI: {
      if (sigma <= 0.0) return 0.0;
      const double d = best_observed - mu - params.xi;
      return stats::normal_cdf(d / sigma);
    }
    case AcquisitionKind::kEI: {
      if (sigma <= 0.0) return 0.0;
      const double d = best_observed - mu - params.xi;
      const double z = d / sigma;
      return d * stats::normal_cdf(z) + sigma * stats::normal_pdf(z);
    }
    case AcquisitionKind::kLCB:
      // Maximizing −(μ − κσ) selects the point with the best (lowest)
      // confidence bound.
      return -(mu - params.kappa * sigma);
  }
  return 0.0;
}

double acquisition_value_gradient(AcquisitionKind kind,
                                  const PredictGradient& posterior,
                                  double best_observed,
                                  const AcquisitionParams& params,
                                  std::span<double> grad) {
  const double sigma = posterior.stddev();
  const std::size_t dims = posterior.dmean.size();
  require(grad.size() == dims,
          "acquisition_value_gradient: gradient size mismatch");

  // Chain rule through σ = √σ²:  ∂σ/∂x_i = ∂σ²/∂x_i / (2σ).  At σ = 0 the
  // posterior is pinned (training point / clipped variance); PI and EI are
  // identically 0 on that set and LCB reduces to −μ.
  if (sigma <= 0.0) {
    switch (kind) {
      case AcquisitionKind::kPI:
      case AcquisitionKind::kEI:
        std::fill(grad.begin(), grad.end(), 0.0);
        return 0.0;
      case AcquisitionKind::kLCB:
        for (std::size_t i = 0; i < dims; ++i) grad[i] = -posterior.dmean[i];
        return -posterior.mean;
    }
  }

  const double d = best_observed - posterior.mean - params.xi;
  const double t = d / sigma;
  switch (kind) {
    case AcquisitionKind::kPI: {
      // U = Φ(t):  ∂U = φ(t)·∂t with ∂t = (−∂μ·σ − d·∂σ)/σ².
      const double pdf = stats::normal_pdf(t);
      for (std::size_t i = 0; i < dims; ++i) {
        const double dsigma = posterior.dvariance[i] / (2.0 * sigma);
        grad[i] = pdf * (-posterior.dmean[i] * sigma - d * dsigma) /
                  (sigma * sigma);
      }
      return stats::normal_cdf(t);
    }
    case AcquisitionKind::kEI: {
      // U = d·Φ(t) + σ·φ(t):  the ∂t cross terms cancel, leaving the
      // classic ∂U = −Φ(t)·∂μ + φ(t)·∂σ.
      const double cdf = stats::normal_cdf(t);
      const double pdf = stats::normal_pdf(t);
      for (std::size_t i = 0; i < dims; ++i) {
        const double dsigma = posterior.dvariance[i] / (2.0 * sigma);
        grad[i] = -cdf * posterior.dmean[i] + pdf * dsigma;
      }
      return d * cdf + sigma * pdf;
    }
    case AcquisitionKind::kLCB: {
      // U = −μ + κσ.
      for (std::size_t i = 0; i < dims; ++i) {
        const double dsigma = posterior.dvariance[i] / (2.0 * sigma);
        grad[i] = -posterior.dmean[i] + params.kappa * dsigma;
      }
      return -(posterior.mean - params.kappa * sigma);
    }
  }
  std::fill(grad.begin(), grad.end(), 0.0);
  return 0.0;
}

std::vector<double> optimize_acquisition(
    const Surrogate& gp, AcquisitionKind kind, std::size_t dims,
    Rng& rng, const AcquisitionParams& params,
    const AcquisitionOptimizerOptions& options) {
  // Chaos site: thrown before the caller's RNG draw is consumed, so a
  // failed proposal leaves the generator exactly where a crash would.
  if (chaos::fail(chaos::Site::kAcqOpt)) {
    throw NumericalError("optimize_acquisition: optimizer diverged (chaos)");
  }
  const double best = gp.best_observed();
  const opt::Bounds bounds = opt::Bounds::unit_cube(dims);

  // Exactly ONE draw from the caller's generator, no matter how many
  // probes, starts or workers follow: every probe stream is derived from
  // (seed, probe index), so the caller's RNG — and therefore the whole
  // session trajectory — is invariant to the execution configuration.
  const std::uint64_t seed = rng();

  const auto num_probes =
      static_cast<std::size_t>(std::max(options.probe_candidates, 1));
  std::vector<std::vector<double>> probes(num_probes);
  for (std::size_t c = 0; c < num_probes; ++c) {
    Rng probe_rng(SplitMix64(seed ^ (0x9e3779b97f4a7c15ULL * (c + 1))).next());
    probes[c].resize(dims);
    for (std::size_t i = 0; i < dims; ++i) {
      probes[c][i] = probe_rng.uniform(bounds.lower[i], bounds.upper[i]);
    }
  }

  // Screen every probe with one batched prediction (single multi-RHS
  // triangular solve) instead of num_probes independent k*/solve passes.
  obs::count("acq.probes", num_probes);
  const std::vector<Prediction> screened = gp.predict_batch(probes);
  std::vector<double> probe_values(num_probes);
  for (std::size_t c = 0; c < num_probes; ++c) {
    probe_values[c] = -acquisition_value(kind, screened[c].mean,
                                         screened[c].stddev(), best, params);
  }

  // Best `starts` probes seed the descents; stable ordering by
  // (value, probe index) keeps the start list canonical.
  std::vector<std::size_t> order(num_probes);
  for (std::size_t c = 0; c < num_probes; ++c) order[c] = c;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (probe_values[a] != probe_values[b]) {
      return probe_values[a] < probe_values[b];
    }
    return a < b;
  });
  const std::size_t num_starts = std::min(
      num_probes, static_cast<std::size_t>(std::max(options.starts, 1)));
  std::vector<std::vector<double>> starts(num_starts);
  for (std::size_t s = 0; s < num_starts; ++s) starts[s] = probes[order[s]];

  // Each start gets a freshly minted objective owning private scratch, so
  // concurrent descents never share writable state (the GP is only read).
  opt::ObjectiveFactory factory;
  if (options.analytic_gradients) {
    factory = [&gp, kind, best, params]() -> opt::Objective {
      auto ws = std::make_shared<GpWorkspace>();
      auto pg = std::make_shared<PredictGradient>();
      return [&gp, kind, best, params, ws, pg](
                 std::span<const double> x, std::span<double> grad) -> double {
        if (grad.empty()) {
          const Prediction p = gp.predict(x, *ws);
          return -acquisition_value(kind, p.mean, p.stddev(), best, params);
        }
        gp.predict_with_gradient(x, *ws, *pg);
        obs::count("gp.acq_grad");
        const double u =
            acquisition_value_gradient(kind, *pg, best, params, grad);
        for (double& g : grad) g = -g;
        return -u;
      };
    };
  } else {
    factory = [&gp, kind, best, params]() -> opt::Objective {
      auto ws = std::make_shared<GpWorkspace>();
      return opt::numeric_gradient(
          [&gp, kind, best, params, ws](std::span<const double> x) {
            const Prediction p = gp.predict(x, *ws);
            return -acquisition_value(kind, p.mean, p.stddev(), best, params);
          },
          1e-6);
    };
  }

  ThreadPool* pool = options.pool;
  if (pool == nullptr && options.workers != 1) pool = &ThreadPool::global();

  const opt::LbfgsbResult descended =
      opt::minimize_starts(factory, starts, bounds, options.lbfgsb, pool);

  // Even a failed descent should not be worse than the best raw probe.
  if (probe_values[order[0]] < descended.value) return probes[order[0]];
  return descended.x;
}

GpHedge::GpHedge(std::size_t dims, std::uint64_t seed)
    : GpHedge(dims, seed, Options{}) {}

GpHedge::GpHedge(std::size_t dims, std::uint64_t seed, Options options)
    : dims_(dims), options_(options), rng_(seed), gains_(3, 0.0) {}

std::vector<double> GpHedge::probabilities() const {
  const double eta = options_.eta;
  const double max_gain = *std::max_element(gains_.begin(), gains_.end());
  std::vector<double> p(gains_.size());
  double sum = 0.0;
  for (std::size_t i = 0; i < gains_.size(); ++i) {
    p[i] = std::exp(eta * (gains_[i] - max_gain));
    sum += p[i];
  }
  for (double& v : p) v /= sum;
  return p;
}

GpHedge::Choice GpHedge::propose(const Surrogate& gp) {
  static constexpr AcquisitionKind kKinds[] = {
      AcquisitionKind::kPI, AcquisitionKind::kEI, AcquisitionKind::kLCB};
  Choice choice;
  choice.nominees.reserve(3);
  for (AcquisitionKind kind : kKinds) {
    choice.nominees.push_back(optimize_acquisition(
        gp, kind, dims_, rng_, options_.params, options_.optimizer));
  }
  const std::vector<double> p = probabilities();
  const double u = rng_.uniform();
  std::size_t pick = p.size() - 1;
  double cumulative = 0.0;
  for (std::size_t i = 0; i < p.size(); ++i) {
    cumulative += p[i];
    if (u < cumulative) {
      pick = i;
      break;
    }
  }
  choice.chosen = kKinds[pick];
  choice.point = choice.nominees[pick];
  return choice;
}

void GpHedge::update_gains(const Surrogate& gp, const Choice& choice) {
  require(choice.nominees.size() == gains_.size(),
          "GpHedge::update_gains: nominee count mismatch");
  // Hoffman et al.: reward each function with the posterior mean of its
  // nominee under the refit model.  We minimize, so the reward is −μ.
  // Means are standardized by the GP's own y-scale implicitly; to keep the
  // gains well-scaled across problems we normalize by the incumbent best.
  const double best = gp.best_observed();
  const double scale = std::max(1e-9, std::abs(best));
  // All three nominees go through one batched prediction (means are
  // bit-identical to per-point predict()).
  const std::vector<Prediction> posts = gp.predict_batch(choice.nominees);
  for (std::size_t i = 0; i < gains_.size(); ++i) {
    gains_[i] += -posts[i].mean / scale;
  }
}

}  // namespace robotune::gp
