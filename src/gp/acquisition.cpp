#include "gp/acquisition.h"

#include <algorithm>
#include <cmath>

#include "common/statistics.h"

namespace robotune::gp {

std::string to_string(AcquisitionKind kind) {
  switch (kind) {
    case AcquisitionKind::kPI:
      return "PI";
    case AcquisitionKind::kEI:
      return "EI";
    case AcquisitionKind::kLCB:
      return "LCB";
  }
  return "?";
}

double acquisition_value(AcquisitionKind kind, double mu, double sigma,
                         double best_observed,
                         const AcquisitionParams& params) {
  switch (kind) {
    case AcquisitionKind::kPI: {
      if (sigma <= 0.0) return 0.0;
      const double d = best_observed - mu - params.xi;
      return stats::normal_cdf(d / sigma);
    }
    case AcquisitionKind::kEI: {
      if (sigma <= 0.0) return 0.0;
      const double d = best_observed - mu - params.xi;
      const double z = d / sigma;
      return d * stats::normal_cdf(z) + sigma * stats::normal_pdf(z);
    }
    case AcquisitionKind::kLCB:
      // Maximizing −(μ − κσ) selects the point with the best (lowest)
      // confidence bound.
      return -(mu - params.kappa * sigma);
  }
  return 0.0;
}

std::vector<double> optimize_acquisition(
    const GaussianProcess& gp, AcquisitionKind kind, std::size_t dims,
    Rng& rng, const AcquisitionParams& params,
    const AcquisitionOptimizerOptions& options) {
  const double best = gp.best_observed();
  auto value_only = [&gp, kind, best, &params](std::span<const double> x) {
    const Prediction p = gp.predict(x);
    return -acquisition_value(kind, p.mean, p.stddev(), best, params);
  };
  const auto objective = opt::numeric_gradient(value_only, 1e-6);
  opt::MultiStartOptions ms;
  ms.starts = options.starts;
  ms.probe_candidates = options.probe_candidates;
  ms.lbfgsb = options.lbfgsb;
  const auto result = opt::multistart_minimize(
      objective, opt::Bounds::unit_cube(dims), rng, ms);
  return result.x;
}

GpHedge::GpHedge(std::size_t dims, std::uint64_t seed)
    : GpHedge(dims, seed, Options{}) {}

GpHedge::GpHedge(std::size_t dims, std::uint64_t seed, Options options)
    : dims_(dims), options_(options), rng_(seed), gains_(3, 0.0) {}

std::vector<double> GpHedge::probabilities() const {
  const double eta = options_.eta;
  const double max_gain = *std::max_element(gains_.begin(), gains_.end());
  std::vector<double> p(gains_.size());
  double sum = 0.0;
  for (std::size_t i = 0; i < gains_.size(); ++i) {
    p[i] = std::exp(eta * (gains_[i] - max_gain));
    sum += p[i];
  }
  for (double& v : p) v /= sum;
  return p;
}

GpHedge::Choice GpHedge::propose(const GaussianProcess& gp) {
  static constexpr AcquisitionKind kKinds[] = {
      AcquisitionKind::kPI, AcquisitionKind::kEI, AcquisitionKind::kLCB};
  Choice choice;
  choice.nominees.reserve(3);
  for (AcquisitionKind kind : kKinds) {
    choice.nominees.push_back(optimize_acquisition(
        gp, kind, dims_, rng_, options_.params, options_.optimizer));
  }
  const std::vector<double> p = probabilities();
  const double u = rng_.uniform();
  std::size_t pick = p.size() - 1;
  double cumulative = 0.0;
  for (std::size_t i = 0; i < p.size(); ++i) {
    cumulative += p[i];
    if (u < cumulative) {
      pick = i;
      break;
    }
  }
  choice.chosen = kKinds[pick];
  choice.point = choice.nominees[pick];
  return choice;
}

void GpHedge::update_gains(const GaussianProcess& gp, const Choice& choice) {
  require(choice.nominees.size() == gains_.size(),
          "GpHedge::update_gains: nominee count mismatch");
  // Hoffman et al.: reward each function with the posterior mean of its
  // nominee under the refit model.  We minimize, so the reward is −μ.
  // Means are standardized by the GP's own y-scale implicitly; to keep the
  // gains well-scaled across problems we normalize by the incumbent best.
  const double best = gp.best_observed();
  const double scale = std::max(1e-9, std::abs(best));
  for (std::size_t i = 0; i < gains_.size(); ++i) {
    const Prediction p = gp.predict(choice.nominees[i]);
    gains_[i] += -p.mean / scale;
  }
}

}  // namespace robotune::gp
