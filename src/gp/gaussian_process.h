// Gaussian-process regression surrogate (Rasmussen & Williams 2005, Alg 2.1).
//
// Targets are standardized internally (zero mean, unit variance) so the
// kernel's default hyperparameters are sensible for execution times of any
// magnitude.  Hyperparameters can be refit by maximizing the log marginal
// likelihood with multi-start L-BFGS over log-parameters.
#pragma once

#include <cstddef>
#include <memory>
#include <span>
#include <vector>

#include "common/rng.h"
#include "gp/kernel.h"
#include "gp/surrogate.h"
#include "linalg/matrix.h"

namespace robotune::gp {

struct GpOptions {
  /// Refit kernel hyperparameters by LML maximization on every fit().
  bool optimize_hyperparameters = true;
  /// L-BFGS restarts for the LML optimization.
  int hyperparameter_restarts = 3;
  /// Box half-width (in log space, around the current values) searched
  /// during hyperparameter optimization.
  double log_search_radius = 4.0;
  /// When > 0 and the training set reaches this many points, the LML
  /// optimization drops to a single L-BFGS descent warm-started from the
  /// current kernel parameters (the previous round's optimum) instead of
  /// `hyperparameter_restarts` multi-starts — past the sparse switchover
  /// the incumbent is a good prior and the extra starts are pure O(n³)
  /// factorization cost.  0 keeps the full multi-start everywhere.
  int shrink_restarts_at = 0;
};

class GaussianProcess : public Surrogate {
 public:
  explicit GaussianProcess(std::unique_ptr<Kernel> kernel = default_kernel(),
                           GpOptions options = {}, std::uint64_t seed = 11);

  GaussianProcess(const GaussianProcess& other);
  GaussianProcess& operator=(const GaussianProcess& other);
  GaussianProcess(GaussianProcess&&) noexcept = default;
  GaussianProcess& operator=(GaussianProcess&&) noexcept = default;

  /// Fits the posterior on (X, y).  X rows are points in the (typically
  /// unit-cube) search space.
  void fit(const std::vector<std::vector<double>>& x,
           std::span<const double> y);

  /// Incrementally adds one observation without refitting kernel
  /// hyperparameters: the Cholesky factor is extended by one row in
  /// O(n²) instead of refactorized in O(n³), growing inside geometrically
  /// reserved storage so long online sessions do not reallocate-and-copy
  /// the factor per observation.  Target standardization is recomputed,
  /// so predictions are identical (to rounding) to a batch fit with the
  /// same kernel.  Requires a prior fit().
  ///
  /// Strong exception guarantee: the degenerate path (near-duplicate
  /// point) falls back to a full refactorization, which can throw
  /// NumericalError — on throw the model is rolled back to its state
  /// before the call and remains usable for prediction.
  void add_point(const std::vector<double>& x, double y) override;

  /// Incrementally removes training point `index`.  Removing the *last*
  /// point (the constant-liar purge's LIFO case) truncates the factor in
  /// O(1) and bit-identically restores the pre-add_point factor; an
  /// interior index shifts the trailing rows and repairs the trailing
  /// block with one rank-1 Cholesky update — O((n − index)²), never
  /// O(n³).  Strong exception guarantee: the only throw (a chaos-injected
  /// downdate failure) happens before any mutation.
  void remove_point(std::size_t index) override;

  using Surrogate::predict;

  /// Posterior at one point with caller-supplied scratch; thread-safe for
  /// concurrent calls with distinct workspaces (the GP is only read).
  Prediction predict(std::span<const double> x,
                     GpWorkspace& ws) const override;

  /// Posterior mean/variance *and* their gradients in one O(n²) pass:
  /// one forward and one backward triangular solve against the cached
  /// Cholesky factor plus an O(n·d) analytic kernel-gradient sweep —
  /// versus the (2·dims + 1) full predictions a central-difference
  /// gradient costs.  Exact (Rasmussen & Williams Eq. 2.25/2.26
  /// differentiated), not an approximation.
  void predict_with_gradient(std::span<const double> x, GpWorkspace& ws,
                             PredictGradient& out) const override;

  /// Posterior over a batch of points: the cross-kernel matrix is built
  /// once and run through a single multi-RHS triangular solve, reusing the
  /// GP-owned scratch matrices (same single-thread caveat as the
  /// convenience predict(x)).  Each returned Prediction is bit-identical
  /// to predict() on the same point.
  std::vector<Prediction> predict_batch(
      std::span<const std::vector<double>> points) const override;

  /// Log marginal likelihood of the current fit (standardized targets).
  double log_marginal_likelihood() const;

  bool trained() const noexcept override { return !train_x_.empty(); }
  std::size_t num_points() const noexcept override { return train_x_.size(); }
  const Kernel& kernel() const { return *kernel_; }

  /// Best (lowest, in original units) observed target so far.
  double best_observed() const override;

  const char* tier() const noexcept override { return "exact"; }

 private:
  void factorize();
  void restandardize();

  std::unique_ptr<Kernel> kernel_;
  GpOptions options_;
  std::uint64_t seed_;

  std::vector<std::vector<double>> train_x_;
  std::vector<double> train_y_raw_;
  std::vector<double> train_y_;  // standardized
  double y_mean_ = 0.0;
  double y_scale_ = 1.0;

  linalg::Matrix chol_;          // L with K = L L^T (may carry capacity)
  std::vector<double> alpha_;    // K^{-1} y (standardized)
  double log_marginal_ = 0.0;
};

}  // namespace robotune::gp
