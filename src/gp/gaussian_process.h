// Gaussian-process regression surrogate (Rasmussen & Williams 2005, Alg 2.1).
//
// Targets are standardized internally (zero mean, unit variance) so the
// kernel's default hyperparameters are sensible for execution times of any
// magnitude.  Hyperparameters can be refit by maximizing the log marginal
// likelihood with multi-start L-BFGS over log-parameters.
#pragma once

#include <cstddef>
#include <memory>
#include <span>
#include <vector>

#include "common/rng.h"
#include "gp/kernel.h"
#include "linalg/matrix.h"

namespace robotune::gp {

struct Prediction {
  double mean = 0.0;
  double variance = 0.0;
  double stddev() const;
};

/// Posterior mean/variance plus their gradients with respect to the query
/// point, everything in original (unstandardized) units.
struct PredictGradient {
  double mean = 0.0;
  double variance = 0.0;
  std::vector<double> dmean;      ///< ∂mean/∂x
  std::vector<double> dvariance;  ///< ∂variance/∂x
  double stddev() const;
};

/// Reusable scratch for the prediction hot path.  The GP owns one for the
/// convenience predict(x) overload; concurrent callers (the parallel
/// multi-start acquisition optimizer) pass a private instance per task —
/// the GP itself is only read.  Buffers grow on first use and are then
/// reused allocation-free while the training-set size is stable.
class GpWorkspace {
 public:
  void clear() {
    k_star.clear();
    v.clear();
    w.clear();
    kgrad.clear();
    k_rows = {};
    v_rows = {};
  }

 private:
  friend class GaussianProcess;
  std::vector<double> k_star;  ///< cross-covariances k(X, x)
  std::vector<double> v;       ///< L⁻¹ k*
  std::vector<double> w;       ///< L⁻ᵀ v = K⁻¹ k*
  std::vector<double> kgrad;   ///< per-training-point kernel gradient
  linalg::Matrix k_rows;       ///< batched cross-kernel matrix (row/query)
  linalg::Matrix v_rows;       ///< batched forward solves
};

struct GpOptions {
  /// Refit kernel hyperparameters by LML maximization on every fit().
  bool optimize_hyperparameters = true;
  /// L-BFGS restarts for the LML optimization.
  int hyperparameter_restarts = 3;
  /// Box half-width (in log space, around the current values) searched
  /// during hyperparameter optimization.
  double log_search_radius = 4.0;
};

class GaussianProcess {
 public:
  explicit GaussianProcess(std::unique_ptr<Kernel> kernel = default_kernel(),
                           GpOptions options = {}, std::uint64_t seed = 11);

  GaussianProcess(const GaussianProcess& other);
  GaussianProcess& operator=(const GaussianProcess& other);
  GaussianProcess(GaussianProcess&&) noexcept = default;
  GaussianProcess& operator=(GaussianProcess&&) noexcept = default;

  /// Fits the posterior on (X, y).  X rows are points in the (typically
  /// unit-cube) search space.
  void fit(const std::vector<std::vector<double>>& x,
           std::span<const double> y);

  /// Incrementally adds one observation without refitting kernel
  /// hyperparameters: the Cholesky factor is extended by one row in
  /// O(n²) instead of refactorized in O(n³).  Target standardization is
  /// recomputed, so predictions are identical (to rounding) to a batch
  /// fit with the same kernel.  Requires a prior fit().
  ///
  /// Strong exception guarantee: the degenerate path (near-duplicate
  /// point) falls back to a full refactorization, which can throw
  /// NumericalError — on throw the model is rolled back to its state
  /// before the call and remains usable for prediction.
  void add_point(const std::vector<double>& x, double y);

  /// Posterior at one point, using the GP-owned scratch workspace (no
  /// per-call heap allocations once warmed up).  Not safe to call
  /// concurrently on one GP instance — concurrent readers use the
  /// workspace overload with private scratch.
  Prediction predict(std::span<const double> x) const;

  /// Posterior at one point with caller-supplied scratch; thread-safe for
  /// concurrent calls with distinct workspaces (the GP is only read).
  Prediction predict(std::span<const double> x, GpWorkspace& ws) const;

  /// Posterior mean/variance *and* their gradients in one O(n²) pass:
  /// one forward and one backward triangular solve against the cached
  /// Cholesky factor plus an O(n·d) analytic kernel-gradient sweep —
  /// versus the (2·dims + 1) full predictions a central-difference
  /// gradient costs.  Exact (Rasmussen & Williams Eq. 2.25/2.26
  /// differentiated), not an approximation.
  void predict_with_gradient(std::span<const double> x, GpWorkspace& ws,
                             PredictGradient& out) const;

  /// Posterior over a batch of points: the cross-kernel matrix is built
  /// once and run through a single multi-RHS triangular solve, reusing the
  /// GP-owned scratch matrices (same single-thread caveat as the
  /// convenience predict(x)).  Each returned Prediction is bit-identical
  /// to predict() on the same point.
  std::vector<Prediction> predict_batch(
      std::span<const std::vector<double>> points) const;

  /// Posterior means over a list of points (used for response surfaces).
  std::vector<double> predict_mean(
      const std::vector<std::vector<double>>& points) const;

  /// Log marginal likelihood of the current fit (standardized targets).
  double log_marginal_likelihood() const;

  bool trained() const noexcept { return !train_x_.empty(); }
  std::size_t num_points() const noexcept { return train_x_.size(); }
  const Kernel& kernel() const { return *kernel_; }

  /// Best (lowest, in original units) observed target so far.
  double best_observed() const;

 private:
  void factorize();

  std::unique_ptr<Kernel> kernel_;
  GpOptions options_;
  std::uint64_t seed_;

  std::vector<std::vector<double>> train_x_;
  std::vector<double> train_y_raw_;
  std::vector<double> train_y_;  // standardized
  double y_mean_ = 0.0;
  double y_scale_ = 1.0;

  linalg::Matrix chol_;          // L with K = L L^T
  std::vector<double> alpha_;    // K^{-1} y (standardized)
  double log_marginal_ = 0.0;

  // Scratch for the convenience predict(x) overload; invalidated on
  // fit()/add_point().  Deliberately not copied with the model.
  mutable GpWorkspace scratch_;
};

}  // namespace robotune::gp
