#include "gp/rff_gp.h"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "common/chaos.h"
#include "common/error.h"
#include "common/rng.h"
#include "common/statistics.h"
#include "obs/metrics.h"

namespace robotune::gp {

RffGp::RffGp(RffOptions options) : options_(options) {
  require(options_.num_features > 0, "RffGp: need at least one feature");
}

void RffGp::draw_features(std::size_t dims) {
  const std::size_t m = options_.num_features;
  if (omega_raw_.rows() == m && omega_raw_.cols() == dims) return;

  // Matérn 5/2 spectral density = multivariate t with 5 degrees of
  // freedom: ω = z·√(5/u), z ~ N(0, I_d), u ~ χ²₅.  Fixed draw order
  // (5 normals, d normals, 1 uniform per feature) keeps the map a pure
  // function of (seed, m, dims).
  Rng rng(options_.seed);
  omega_raw_.resize(m, dims);
  bias_.resize(m);
  for (std::size_t j = 0; j < m; ++j) {
    double u = 0.0;
    for (int k = 0; k < 5; ++k) {
      const double g = rng.normal();
      u += g * g;
    }
    const double scale = std::sqrt(5.0 / std::max(u, 1e-12));
    for (std::size_t d = 0; d < dims; ++d) {
      omega_raw_(j, d) = rng.normal() * scale;
    }
    bias_[j] = rng.uniform(0.0, 2.0 * std::numbers::pi);
  }
}

void RffGp::apply_hypers(const MaternHyperparams& hypers) {
  const std::size_t m = options_.num_features;
  const std::size_t dims = omega_raw_.cols();
  require(hypers.length_scales.size() == dims,
          "RffGp: length-scale dimension mismatch");
  omega_.resize(m, dims);
  for (std::size_t j = 0; j < m; ++j) {
    for (std::size_t d = 0; d < dims; ++d) {
      omega_(j, d) = omega_raw_(j, d) / hypers.length_scales[d];
    }
  }
  feature_scale_ =
      std::sqrt(2.0 * hypers.signal_variance / static_cast<double>(m));
  noise_ = std::max(hypers.noise_variance, 1e-8);
}

std::vector<double> RffGp::features(std::span<const double> x) const {
  const std::size_t m = options_.num_features;
  std::vector<double> phi(m);
  for (std::size_t j = 0; j < m; ++j) {
    const double t = linalg::dot(omega_.row(j), x) + bias_[j];
    phi[j] = feature_scale_ * std::cos(t);
  }
  return phi;
}

void RffGp::fit(const std::vector<std::vector<double>>& x,
                std::span<const double> y,
                const MaternHyperparams& hypers) {
  require(!x.empty(), "RffGp::fit: no training points");
  require(x.size() == y.size(), "RffGp::fit: X/y size mismatch");
  const std::size_t n = x.size();
  const std::size_t m = options_.num_features;

  fitted_ = false;  // left untrained if the factorization below throws
  draw_features(x.front().size());
  apply_hypers(hypers);

  // Feature matrix Z (n×m), Gram A = ZᵀZ + σₙ²I, and its factor — the
  // only O(n·m²)/O(m³) work; everything incremental afterwards is O(m²).
  linalg::Matrix z(n, m);
  for (std::size_t i = 0; i < n; ++i) {
    const auto row = z.row(i);
    for (std::size_t j = 0; j < m; ++j) {
      const double t = linalg::dot(omega_.row(j), x[i]) + bias_[j];
      row[j] = feature_scale_ * std::cos(t);
    }
  }
  const linalg::Matrix zt = z.transposed();
  linalg::Matrix a = zt.multiply_transposed(zt);  // ZᵀZ, m×m
  a.add_diagonal(noise_);
  achol_ = linalg::cholesky(a);  // may throw (incl. chaos injection)

  zty_raw_ = z.matvec_transposed(y);
  const std::vector<double> ones(n, 1.0);
  zt1_ = z.matvec_transposed(ones);
  train_x_ = x;
  train_y_raw_.assign(y.begin(), y.end());
  fitted_ = true;
  refresh_targets();
  obs::count("rff.fit.calls");
}

void RffGp::refresh_targets() {
  y_mean_ = stats::mean(train_y_raw_);
  y_scale_ = stats::stddev(train_y_raw_);
  if (!(y_scale_ > 1e-12)) y_scale_ = 1.0;
  // b = Zᵀỹ with ỹ standardized, reconstructed from the raw accumulators
  // in O(m) — no pass over the n training targets.
  const std::size_t m = options_.num_features;
  std::vector<double> b(m);
  for (std::size_t j = 0; j < m; ++j) {
    b[j] = (zty_raw_[j] - y_mean_ * zt1_[j]) / y_scale_;
  }
  w_ = linalg::cholesky_solve(achol_, b);
  scratch_.clear();
}

void RffGp::add_point(const std::vector<double>& x, double y) {
  require(fitted_, "RffGp::add_point: fit() first");
  require(x.size() == omega_.cols(), "RffGp::add_point: dimension mismatch");
  const std::vector<double> phi = features(x);

  // A += φφᵀ is a rank-1 *update* — positive definite by construction,
  // cannot fail (the factor consumes a copy of φ as workspace).
  std::vector<double> work = phi;
  linalg::cholesky_update_rank1(achol_, 0, work);
  for (std::size_t j = 0; j < phi.size(); ++j) {
    zty_raw_[j] += y * phi[j];
    zt1_[j] += phi[j];
  }
  train_x_.push_back(x);
  train_y_raw_.push_back(y);
  refresh_targets();
  obs::count("rff.add_point.calls");
}

void RffGp::remove_point(std::size_t index) {
  require(fitted_, "RffGp::remove_point: fit() first");
  const std::size_t n = train_y_raw_.size();
  require(index < n, "RffGp::remove_point: index out of range");
  require(n >= 2, "RffGp::remove_point: cannot drop the last point");
  if (chaos::fail(chaos::Site::kCholesky)) {
    throw NumericalError("RffGp::remove_point: downdate failed (chaos)");
  }

  // Downdate a copy and commit on success: a failed downdate (the
  // removed point was load-bearing for positive definiteness) leaves the
  // model untouched for the caller's fallback refit.
  const std::vector<double> phi = features(train_x_[index]);
  linalg::Matrix updated = achol_;
  std::vector<double> work = phi;
  linalg::cholesky_downdate_rank1(updated, work);  // may throw

  achol_ = std::move(updated);
  const double y = train_y_raw_[index];
  for (std::size_t j = 0; j < phi.size(); ++j) {
    zty_raw_[j] -= y * phi[j];
    zt1_[j] -= phi[j];
  }
  train_x_.erase(train_x_.begin() + static_cast<std::ptrdiff_t>(index));
  train_y_raw_.erase(train_y_raw_.begin() +
                     static_cast<std::ptrdiff_t>(index));
  refresh_targets();
  obs::count("rff.remove_point.calls");
}

Prediction RffGp::predict(std::span<const double> x, GpWorkspace& ws) const {
  require(fitted_, "RffGp::predict: not fitted");
  const std::size_t m = options_.num_features;
  ws.k_star.resize(m);
  for (std::size_t j = 0; j < m; ++j) {
    const double t = linalg::dot(omega_.row(j), x) + bias_[j];
    ws.k_star[j] = feature_scale_ * std::cos(t);
  }
  const double mean_std = linalg::dot(ws.k_star, w_);
  ws.v.resize(m);
  linalg::solve_lower(achol_, ws.k_star, ws.v);
  const double var_std =
      std::max(0.0, noise_ * linalg::dot(ws.v, ws.v));

  Prediction p;
  p.mean = mean_std * y_scale_ + y_mean_;
  p.variance = var_std * y_scale_ * y_scale_;
  return p;
}

void RffGp::predict_with_gradient(std::span<const double> x, GpWorkspace& ws,
                                  PredictGradient& out) const {
  require(fitted_, "RffGp::predict_with_gradient: not fitted");
  const std::size_t m = options_.num_features;
  const std::size_t dims = x.size();

  // φ and its sine companion in one pass: ∂φ_j/∂x = −s_j·ωⱼ with
  // s_j = √(2s²/m)·sin(ωⱼᵀx + bⱼ).
  ws.k_star.resize(m);
  ws.kgrad.resize(m);
  for (std::size_t j = 0; j < m; ++j) {
    const double t = linalg::dot(omega_.row(j), x) + bias_[j];
    ws.k_star[j] = feature_scale_ * std::cos(t);
    ws.kgrad[j] = feature_scale_ * std::sin(t);
  }
  const double mean_std = linalg::dot(ws.k_star, w_);
  ws.v.resize(m);
  linalg::solve_lower(achol_, ws.k_star, ws.v);
  const double var_raw = noise_ * linalg::dot(ws.v, ws.v);
  ws.w.resize(m);
  linalg::solve_lower_transposed(achol_, ws.v, ws.w);  // A⁻¹φ

  // ∂μ/∂x = Σ_j w_j ∂φ_j and ∂σ²/∂x = 2σₙ² Σ_j (A⁻¹φ)_j ∂φ_j.
  out.dmean.assign(dims, 0.0);
  out.dvariance.assign(dims, 0.0);
  for (std::size_t j = 0; j < m; ++j) {
    const double s = ws.kgrad[j];
    linalg::axpy(-w_[j] * s, omega_.row(j), out.dmean);
    linalg::axpy(-2.0 * noise_ * ws.w[j] * s, omega_.row(j), out.dvariance);
  }

  out.mean = mean_std * y_scale_ + y_mean_;
  out.variance = std::max(0.0, var_raw) * y_scale_ * y_scale_;
  const double var_scale = y_scale_ * y_scale_;
  for (std::size_t d = 0; d < dims; ++d) {
    out.dmean[d] *= y_scale_;
    out.dvariance[d] = var_raw > 0.0 ? out.dvariance[d] * var_scale : 0.0;
  }
}

std::vector<Prediction> RffGp::predict_batch(
    std::span<const std::vector<double>> points) const {
  require(fitted_, "RffGp::predict_batch: not fitted");
  const std::size_t m = options_.num_features;
  const std::size_t npts = points.size();

  linalg::Matrix& phi_rows = scratch_.k_rows;
  phi_rows.resize(npts, m);
  for (std::size_t i = 0; i < npts; ++i) {
    require(points[i].size() == omega_.cols(),
            "RffGp::predict_batch: dimension mismatch");
    const auto row = phi_rows.row(i);
    for (std::size_t j = 0; j < m; ++j) {
      const double t = linalg::dot(omega_.row(j), points[i]) + bias_[j];
      row[j] = feature_scale_ * std::cos(t);
    }
  }
  linalg::Matrix& v_rows = scratch_.v_rows;
  linalg::solve_lower_rows(achol_, phi_rows, v_rows);

  std::vector<Prediction> out(npts);
  for (std::size_t i = 0; i < npts; ++i) {
    const double mean_std = linalg::dot(phi_rows.row(i), w_);
    const double var_std = std::max(
        0.0, noise_ * linalg::dot(v_rows.row(i), v_rows.row(i)));
    out[i].mean = mean_std * y_scale_ + y_mean_;
    out[i].variance = var_std * y_scale_ * y_scale_;
  }
  return out;
}

double RffGp::best_observed() const {
  require(fitted_, "RffGp::best_observed: not fitted");
  return *std::min_element(train_y_raw_.begin(), train_y_raw_.end());
}

}  // namespace robotune::gp
