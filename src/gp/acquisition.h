// Acquisition functions for minimization (paper §3.4, Eqs. 2-4) and the
// GP-Hedge adaptive portfolio (Hoffman, Brochu & de Freitas 2011).
//
// All three functions are expressed as *utilities to maximize*; the
// optimizer minimizes their negation over the unit cube.
//   PI(x)  = Φ(d/σ)                        d = f(x⁺) − μ(x) − ξ
//   EI(x)  = dΦ(d/σ) + σφ(d/σ)             (0 when σ = 0)
//   LCB(x): select argmin μ(x) − κσ(x), i.e. maximize −(μ − κσ)
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "common/rng.h"
#include "gp/surrogate.h"
#include "opt/lbfgsb.h"

namespace robotune::gp {

enum class AcquisitionKind { kPI, kEI, kLCB };

std::string to_string(AcquisitionKind kind);

struct AcquisitionParams {
  double xi = 0.01;     ///< exploration knob for PI/EI (paper §4)
  double kappa = 1.96;  ///< exploration knob for LCB (paper §4)
};

/// Utility value of `kind` at a point with posterior (mu, sigma), given the
/// incumbent best (lowest) observation.  Higher is better.
double acquisition_value(AcquisitionKind kind, double mu, double sigma,
                         double best_observed,
                         const AcquisitionParams& params = {});

/// Utility value of `kind` plus its exact gradient with respect to the
/// query point, computed from a posterior prediction-with-gradient.
/// Writes ∂U/∂x into `grad` (same length as the point) and returns U; the
/// value is identical to acquisition_value() on the same posterior.  At
/// σ = 0 the PI/EI utilities are flat (zero gradient) and the LCB
/// gradient degenerates to −∂μ/∂x.
double acquisition_value_gradient(AcquisitionKind kind,
                                  const PredictGradient& posterior,
                                  double best_observed,
                                  const AcquisitionParams& params,
                                  std::span<double> grad);

struct AcquisitionOptimizerOptions {
  AcquisitionOptimizerOptions() {
    lbfgsb.max_iterations = 60;
    lbfgsb.gradient_tolerance = 1e-7;
    lbfgsb.value_tolerance = 1e-12;
  }
  int starts = 8;
  int probe_candidates = 256;
  opt::LbfgsbOptions lbfgsb;
  /// Exact posterior gradients in one O(n²) pass per L-BFGS evaluation
  /// instead of the (2·dims + 1) full predictions central differences
  /// cost.  The numeric fallback is kept for A/B benchmarking.
  bool analytic_gradients = true;
  /// Multi-start execution: 0 runs the starts on the process-wide
  /// ThreadPool::global(); 1 forces the inline sequential path.  An
  /// explicit `pool` overrides both.  The returned point is byte-identical
  /// for every setting — probe streams are derived per index from a
  /// single RNG draw and the per-start argmin is canonical.
  int workers = 0;
  ThreadPool* pool = nullptr;
};

/// Maximizes the acquisition utility of `kind` over the unit cube via
/// multi-start L-BFGS-B (paper §4 uses L-BFGS-B).  Probe candidates are
/// screened with one batched GP prediction; descents then run from the
/// best probes, in parallel when configured (see
/// AcquisitionOptimizerOptions).  Consumes exactly one draw from `rng`
/// regardless of probe/start/worker counts.
std::vector<double> optimize_acquisition(
    const Surrogate& gp, AcquisitionKind kind, std::size_t dims,
    Rng& rng, const AcquisitionParams& params = {},
    const AcquisitionOptimizerOptions& options = {});

/// GP-Hedge portfolio over {PI, EI, LCB}.  Each round every function
/// nominates a candidate; one nominee is chosen with probability
/// p_j ∝ exp(η g_j); after the GP is refit the gains are updated with the
/// (negated, since we minimize) posterior mean at each nominee:
/// g_j ← g_j − μ(x_j).
class GpHedge {
 public:
  struct Options {
    double eta = 1.0;  ///< Hedge learning rate
    AcquisitionParams params;
    AcquisitionOptimizerOptions optimizer;
  };

  GpHedge(std::size_t dims, std::uint64_t seed);
  GpHedge(std::size_t dims, std::uint64_t seed, Options options);

  struct Choice {
    std::vector<double> point;                   ///< chosen candidate
    AcquisitionKind chosen;                      ///< which function proposed it
    std::vector<std::vector<double>> nominees;   ///< all three candidates
  };

  /// Nominates candidates from each acquisition and picks one by the
  /// current Hedge distribution.
  Choice propose(const Surrogate& gp);

  /// Updates cumulative gains using the refit GP's posterior mean at the
  /// nominees from the last propose() call.
  void update_gains(const Surrogate& gp, const Choice& choice);

  std::span<const double> gains() const noexcept { return gains_; }

  /// Current selection probabilities (softmax of η·gains, numerically
  /// stabilized).
  std::vector<double> probabilities() const;

 private:
  std::size_t dims_;
  Options options_;
  Rng rng_;
  std::vector<double> gains_;  // PI, EI, LCB
};

}  // namespace robotune::gp
