// Covariance kernels for the Gaussian-process surrogate.
//
// The paper uses the sum of a Matérn 5/2 kernel and a white-noise kernel
// (§4, following CherryPick and Snoek et al.).  Hyperparameters are held
// in log space so the marginal-likelihood optimization is unconstrained
// and scale-free.
#pragma once

#include <cstddef>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

namespace robotune::gp {

class Kernel {
 public:
  virtual ~Kernel() = default;

  /// Covariance of two (same-length) points.
  virtual double operator()(std::span<const double> a,
                            std::span<const double> b) const = 0;

  /// Adds ∂k(a,b)/∂a into `grad` (same length as the points).  The
  /// accumulate form lets SumKernel forward to its components without a
  /// scratch vector; callers zero `grad` first when they want the bare
  /// gradient.  The default adds nothing (correct for white noise, whose
  /// cross-covariance is identically zero off the observed diagonal).
  virtual void accumulate_gradient(std::span<const double> a,
                                   std::span<const double> b,
                                   std::span<double> grad) const {
    (void)a;
    (void)b;
    (void)grad;
  }

  /// Adds k(points[i], x) into out[i] for every training point — the
  /// kernel-matrix-assembly hot loop behind factorize(), predict() and
  /// predict_batch().  The accumulate form lets SumKernel forward to its
  /// components; callers zero `out` first.  The default loops over
  /// operator(); the Matérn kernels override it with a 4-point SIMD block
  /// whose per-point arithmetic (ascending-dimension distance sum, scalar
  /// libm sqrt/exp per lane) is bit-identical to the scalar path.
  virtual void accumulate_covariance_row(
      std::span<const std::vector<double>> points, std::span<const double> x,
      std::span<double> out) const {
    for (std::size_t i = 0; i < points.size(); ++i) {
      out[i] += (*this)(points[i], x);
    }
  }

  /// Extra variance added on the diagonal for *observed* points only
  /// (white noise contributes here, not in cross-covariances with test
  /// points).
  virtual double diagonal_noise() const { return 0.0; }

  virtual std::size_t num_params() const = 0;
  virtual std::vector<double> log_params() const = 0;
  virtual void set_log_params(std::span<const double> values) = 0;
  virtual std::string describe() const = 0;
  virtual std::unique_ptr<Kernel> clone() const = 0;
};

/// Matérn 5/2 with signal variance s² and isotropic length-scale l:
///   k(r) = s² (1 + √5 r/l + 5r²/(3l²)) exp(−√5 r/l)
class Matern52 : public Kernel {
 public:
  explicit Matern52(double length_scale = 1.0, double signal_variance = 1.0);

  double operator()(std::span<const double> a,
                    std::span<const double> b) const override;
  void accumulate_gradient(std::span<const double> a,
                           std::span<const double> b,
                           std::span<double> grad) const override;
  void accumulate_covariance_row(std::span<const std::vector<double>> points,
                                 std::span<const double> x,
                                 std::span<double> out) const override;
  std::size_t num_params() const override { return 2; }
  std::vector<double> log_params() const override;
  void set_log_params(std::span<const double> values) override;
  std::string describe() const override;
  std::unique_ptr<Kernel> clone() const override;

  double length_scale() const noexcept { return length_scale_; }
  double signal_variance() const noexcept { return signal_variance_; }

 private:
  double length_scale_;
  double signal_variance_;
};

/// Matérn 5/2 with per-dimension (ARD) length scales — the form
/// scikit-optimize uses by default.  Irrelevant dimensions learn long
/// scales and drop out of the distance, which is essential for BO over a
/// mixed-importance configuration subspace.
class Matern52Ard : public Kernel {
 public:
  explicit Matern52Ard(std::size_t dims, double length_scale = 0.5,
                       double signal_variance = 1.0);

  double operator()(std::span<const double> a,
                    std::span<const double> b) const override;
  void accumulate_gradient(std::span<const double> a,
                           std::span<const double> b,
                           std::span<double> grad) const override;
  void accumulate_covariance_row(std::span<const std::vector<double>> points,
                                 std::span<const double> x,
                                 std::span<double> out) const override;
  std::size_t num_params() const override { return scales_.size() + 1; }
  std::vector<double> log_params() const override;
  void set_log_params(std::span<const double> values) override;
  std::string describe() const override;
  std::unique_ptr<Kernel> clone() const override;

  std::span<const double> length_scales() const noexcept { return scales_; }
  double signal_variance() const noexcept { return signal_variance_; }

 private:
  std::vector<double> scales_;
  double signal_variance_;
};

/// White noise: k(x,x') = σ²·δ(x,x'), contributing only to observed
/// diagonals.  Models the i.i.d. Gaussian execution-time noise.
class WhiteNoise : public Kernel {
 public:
  explicit WhiteNoise(double noise_variance = 1e-4);

  double operator()(std::span<const double> a,
                    std::span<const double> b) const override;
  /// Cross-covariances are identically zero: adding them is a no-op (the
  /// Matérn entries are positive, so skipping the +0.0 cannot flip a
  /// signed zero — bit-identical to the default loop).
  void accumulate_covariance_row(std::span<const std::vector<double>>,
                                 std::span<const double>,
                                 std::span<double>) const override {}
  double diagonal_noise() const override { return noise_variance_; }
  std::size_t num_params() const override { return 1; }
  std::vector<double> log_params() const override;
  void set_log_params(std::span<const double> values) override;
  std::string describe() const override;
  std::unique_ptr<Kernel> clone() const override;

  double noise_variance() const noexcept { return noise_variance_; }

 private:
  double noise_variance_;
};

/// Sum of two kernels; parameters are the concatenation of both.
class SumKernel : public Kernel {
 public:
  SumKernel(std::unique_ptr<Kernel> a, std::unique_ptr<Kernel> b);

  double operator()(std::span<const double> a,
                    std::span<const double> b) const override;
  void accumulate_gradient(std::span<const double> a,
                           std::span<const double> b,
                           std::span<double> grad) const override;
  void accumulate_covariance_row(std::span<const std::vector<double>> points,
                                 std::span<const double> x,
                                 std::span<double> out) const override;
  double diagonal_noise() const override;
  std::size_t num_params() const override;
  std::vector<double> log_params() const override;
  void set_log_params(std::span<const double> values) override;
  std::string describe() const override;
  std::unique_ptr<Kernel> clone() const override;

  const Kernel& left() const noexcept { return *a_; }
  const Kernel& right() const noexcept { return *b_; }

 private:
  std::unique_ptr<Kernel> a_;
  std::unique_ptr<Kernel> b_;
};

/// The paper's default: Matérn 5/2 + white noise.
std::unique_ptr<Kernel> default_kernel(double length_scale = 0.3,
                                       double signal_variance = 1.0,
                                       double noise_variance = 1e-3);

/// ARD variant used by the BO engine: Matérn 5/2 with per-dimension
/// length scales + white noise.
std::unique_ptr<Kernel> ard_kernel(std::size_t dims,
                                   double length_scale = 0.5,
                                   double signal_variance = 1.0,
                                   double noise_variance = 1e-3);

/// The Matérn 5/2 hyperparameters the random-features tier needs to
/// mirror an exact-GP kernel's spectral density.
struct MaternHyperparams {
  std::vector<double> length_scales;  ///< per-dimension (iso broadcast)
  double signal_variance = 1.0;
  double noise_variance = 1e-3;
};

/// Extracts Matérn 5/2 hyperparameters from a kernel of the shapes this
/// codebase builds: SumKernel(Matern52|Matern52Ard, WhiteNoise) in either
/// order, or a bare Matérn (noise defaults to 0).  Returns nullopt for
/// any other structure — the caller (the BO engine's sparse tier) then
/// degrades to the exact GP instead of fitting a mismatched surrogate.
std::optional<MaternHyperparams> extract_matern_hyperparams(
    const Kernel& kernel, std::size_t dims);

}  // namespace robotune::gp
