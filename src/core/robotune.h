// ROBOTune: the top-level tuning framework (paper Figure 1).
//
// On a tuning request for (workload, dataset):
//  * the parameter-selection cache is consulted; a miss triggers the
//    Random-Forests selection pipeline on 100 generic LHS samples and the
//    result is cached for the workload;
//  * the configuration memoization buffer supplies up to 4 best recent
//    configurations when the workload was tuned before (on any dataset);
//  * the BO engine searches the selected subspace under the remaining
//    budget and the best configurations found are stored back into the
//    memoization buffer.
//
// ROBOTune implements the common Tuner interface so the benchmark
// harnesses can drive it side by side with BestConfig, Gunther and RS.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/bo_engine.h"
#include "core/memoization.h"
#include "core/parameter_selection.h"
#include "tuners/tuner.h"

namespace robotune::core {

struct RoboTuneOptions {
  BoOptions bo;
  SelectionOptions selection;
  /// Joint-parameter definitions used during selection; defaults to the
  /// Spark 2.4 groups when empty.
  std::vector<std::vector<std::string>> joint_groups;
  /// Number of best configs pushed into the memoization buffer after a
  /// session.
  std::size_t memoize_top_k = 4;
};

struct RoboTuneReport {
  tuners::TuningResult tuning;          ///< the BO session (init + search)
  std::vector<std::size_t> selected;    ///< tuned parameter indices
  bool selection_cache_hit = false;
  bool used_memoized_configs = false;
  /// One-time parameter-selection cost (excluded from search cost, §5.3).
  double selection_cost_s = 0.0;
  SelectionReport selection_report;     ///< empty on a cache hit
  BoResult bo;
};

class RoboTune : public tuners::Tuner {
 public:
  explicit RoboTune(RoboTuneOptions options = {});

  std::string name() const override { return "ROBOTune"; }

  /// Tuner-interface entry point: keys the caches by the objective's
  /// workload name (dataset-independent, per §3.2).
  tuners::TuningResult tune(sparksim::SparkObjective& objective, int budget,
                            std::uint64_t seed) override;

  /// Full-featured entry point returning selection + memoization details.
  ///
  /// `session`, when given, makes the run restartable: a fresh session
  /// records its selection result and journals every evaluation through
  /// the log's flush hook; a session whose log already carries state (a
  /// loaded checkpoint) skips parameter selection and replays the journal
  /// so the continuation is identical to an uninterrupted run (the
  /// checkpoint's seed/budget/workload must match).
  ///
  /// `scheduler`, when given, runs the BO evaluation batches concurrently
  /// with index-derived seed streams (see BoEngine::run); parameter
  /// selection itself stays sequential.  A checkpoint resumes only under
  /// the seeding mode (scheduler vs detached) that produced it.
  ///
  /// `external`, when given, runs the BO search in ask/tell mode: the
  /// engine publishes each batch through the bridge and blocks for
  /// externally reported observations (see BoEngine::run).  Parameter
  /// selection still runs against the simulator objective — selection
  /// needs its 100 generic LHS probes, which an external executor does
  /// not serve.  Mutually exclusive with `scheduler`.
  RoboTuneReport tune_report(sparksim::SparkObjective& objective, int budget,
                             std::uint64_t seed,
                             const BoObserver& observer = nullptr,
                             SessionLog* session = nullptr,
                             exec::EvalScheduler* scheduler = nullptr,
                             ExternalBridge* external = nullptr);

  ParameterSelectionCache& selection_cache() { return selection_cache_; }
  ConfigMemoizationBuffer& memo_buffer() { return memo_buffer_; }
  const RoboTuneOptions& options() const { return options_; }

 private:
  RoboTuneOptions options_;
  ParameterSelectionCache selection_cache_;
  ConfigMemoizationBuffer memo_buffer_;
};

}  // namespace robotune::core
