// Bayesian Optimization Engine (paper §3.4, Algorithm 1).
//
// The engine searches the *selected* low-dimensional subspace: unselected
// parameters stay at a base configuration (the framework defaults).  Each
// iteration fits a Gaussian process (Matérn 5/2 + white noise) on all
// prior observations, asks the GP-Hedge portfolio (PI/EI/LCB) for the
// next configuration, evaluates it under the guard thresholds, and
// updates the portfolio's gains.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <optional>
#include <string_view>
#include <vector>

#include "core/memoization.h"
#include "core/persistence.h"
#include "exec/eval_scheduler.h"
#include "gp/acquisition.h"
#include "gp/gaussian_process.h"
#include "sparksim/objective.h"
#include "tuners/tuner.h"

namespace robotune::core {

class ExternalBridge;

/// Which surrogate tier models the observations (DESIGN.md §15).
enum class SurrogateTier {
  kExact,  ///< always the exact GP (O(n³) fits)
  kRff,    ///< always the random-features tier (O(n·m²) fits)
  kAuto,   ///< exact below BoOptions::sparse_threshold points, RFF above
};

/// When kernel hyperparameters are re-learned by marginal likelihood.
enum class RefitSchedule {
  kFixed,     ///< every BoOptions::hyperfit_every iterations
  kDoubling,  ///< when the training set doubles since the last refit —
              ///< total refit cost stays O(n³) *amortized over the run*
  kAuto,      ///< fixed below sparse_threshold, doubling above
};

const char* to_string(SurrogateTier tier) noexcept;
const char* to_string(RefitSchedule schedule) noexcept;
std::optional<SurrogateTier> parse_surrogate_tier(std::string_view name);
std::optional<RefitSchedule> parse_refit_schedule(std::string_view name);

struct BoOptions {
  /// Total evaluation budget, initial samples included (paper: 100).
  int budget = 100;
  /// Initial training set size (paper: 20).
  int initial_samples = 20;
  /// How many memoized configurations to blend into the initial set
  /// (paper: 4 best recent + 16 LHS).
  int memoized_in_initial = 4;
  /// Guard thresholds (§4): static for initial samples, a multiple of the
  /// running median during the search.
  double static_threshold_s = 480.0;
  double median_multiple = 2.5;
  /// Kernel hyperparameters are refit by marginal likelihood every this
  /// many iterations (1 = every iteration) under the fixed schedule.
  int hyperfit_every = 5;
  /// Hyperparameter-refit cadence (see RefitSchedule).  The default
  /// (kAuto) keeps the fixed cadence — and byte-identical trajectories —
  /// below `sparse_threshold` and switches to doubling above it.
  RefitSchedule refit_schedule = RefitSchedule::kAuto;
  /// Surrogate tier selection (see SurrogateTier).  kAuto is exact below
  /// `sparse_threshold` training points, random features at or above.
  SurrogateTier surrogate = SurrogateTier::kAuto;
  /// Training-set size where kAuto switches tiers, doubling-refit
  /// scheduling kicks in, and the exact GP's hyperparameter search drops
  /// to a single warm-started descent.
  int sparse_threshold = 256;
  /// Random-feature count m for the RFF tier (fit O(n·m²)).
  int rff_features = 256;
  /// Optional automated early stopping (§4): stop when the best value has
  /// not improved by `early_stop_epsilon` (relative) for
  /// `early_stop_patience` iterations.  0 disables.
  int early_stop_patience = 0;
  double early_stop_epsilon = 0.01;
  /// Model log(time) in the GP: execution times are positive with a
  /// heavy right tail (guard-killed and failed configurations), which a
  /// stationary Matérn kernel fits poorly in linear space.
  bool log_observations = true;
  /// Ablation knob: bypass the Hedge portfolio and always use one
  /// acquisition function (paper §3.4 argues the portfolio beats any
  /// single function; bench/abl_hedge_vs_single measures it).
  std::optional<gp::AcquisitionKind> force_acquisition;
  /// Ablation knob: draw the initial samples uniformly at random instead
  /// of via LHS (bench/abl_lhs_vs_random).
  bool lhs_initialization = true;
  /// Batch width q of the BO loop: each round proposes q configurations
  /// via constant-liar fantasies (CL-min: every pending point pretends to
  /// have returned the best observation so far, pushing later proposals
  /// away from it) and evaluates them as one group — concurrently when a
  /// scheduler is attached.  q = 1 reproduces the sequential Algorithm 1
  /// exactly.  The trajectory depends on q, never on how many workers
  /// evaluate the batch.
  int batch_size = 1;
  /// GP-Hedge portfolio configuration.
  gp::GpHedge::Options hedge;
  /// Cooperative cancellation (graceful SIGINT/SIGTERM): when non-null
  /// and set, the engine stops at the next round boundary and returns
  /// with `interrupted = true` — every completed evaluation journaled, so
  /// the checkpoint resumes bit-identically.  The engine only reads the
  /// flag; signal handlers may set it from any thread.
  const std::atomic<bool>* cancel = nullptr;
  /// Cooperative fair-scheduling hook (the service layer's round-robin
  /// turnstile): invoked at every round boundary, immediately before
  /// `cancel` is polled.  The hook may block — that is how a session
  /// manager slices CPU between concurrent sessions — but must not
  /// mutate engine-visible state, so a null or no-op yield leaves the
  /// trajectory byte-identical.
  std::function<void()> yield;
  std::uint64_t seed = 2024;
};

struct BoObserverInfo {
  int iteration = 0;  ///< 0-based index of the BO iteration (post-init)
  /// The active surrogate (exact GP or RFF tier — check gp->tier()).
  const gp::Surrogate* gp = nullptr;
  const gp::GpHedge::Choice* choice = nullptr;
};

/// Called after every BO iteration; used by the Fig. 9 response-surface
/// bench to snapshot the posterior.
using BoObserver = std::function<void(const BoObserverInfo&)>;

/// Checkpoint/resume journal for a BO session.
///
/// On a fresh session the engine appends one EvalRecord per completed
/// evaluation to `state.evaluations` and calls `flush` after each — the
/// flush typically rewrites the checkpoint file, so a kill -9 at any
/// point loses at most the evaluation in flight.
///
/// On resume, pass the loaded checkpoint back in: the engine re-runs all
/// of its (deterministic) modeling math but substitutes journaled
/// outcomes for the first `state.evaluations.size()` cluster runs —
/// fast-forwarding the objective's sequential seed stream by each
/// record's attempt count (detached mode) or simply skipping the eval
/// index (scheduler mode, where streams are index-derived).  Once the
/// journal is exhausted the session continues live, bit-identical to a
/// never-interrupted run.
///
/// Parallel sessions journal evaluations in *completion* order; the
/// engine canonicalizes the journal (sort by eval index, truncate at the
/// first gap) before replaying, so a crash mid-batch loses only the
/// evaluations that had not finished plus any stranded past a hole.  A
/// checkpoint resumes only under the seeding mode that produced it.
struct SessionLog {
  SessionCheckpoint state;
  std::function<void(const SessionCheckpoint&)> flush;
};

struct BoResult {
  tuners::TuningResult tuning;       ///< all evaluations (init + search)
  std::vector<gp::AcquisitionKind> chosen_acquisitions;
  std::vector<double> hedge_gains;   ///< final gains (PI, EI, LCB)
  bool early_stopped = false;
  /// True when BoOptions::cancel stopped the session before its budget;
  /// the journal (if any) holds a resumable checkpoint.
  bool interrupted = false;
  int iterations_run = 0;
};

class BoEngine {
 public:
  /// `selected` lists the subspace parameter indices; `base_unit` supplies
  /// the coordinates of all non-selected parameters.
  BoEngine(std::vector<std::size_t> selected, std::vector<double> base_unit,
           BoOptions options = {});

  /// Runs Algorithm 1 (batched when options.batch_size > 1).  `memoized`
  /// seeds the initial set (pass {} for an unseen workload).  `session`,
  /// when given, journals every completed evaluation and replays a
  /// previously journaled prefix (see SessionLog).  `scheduler`, when
  /// given, dispatches every evaluation batch through it with per-eval
  /// index-derived seed streams: results are then bit-identical for any
  /// scheduler parallelism (but differ from detached-mode runs, whose
  /// evaluations consume the objective's sequential stream).
  ///
  /// `external`, when given, turns the engine into ask/tell mode
  /// (DESIGN.md §16): each round's batch is published through the
  /// bridge instead of evaluated, and the engine blocks until an
  /// external executor reports every observation back.  Mutually
  /// exclusive with `scheduler`.  External evaluations consume no
  /// objective seed draws, so external sessions always journal indexed
  /// seeding; an external-mode checkpoint replays standalone (no
  /// bridge) but refuses to run live evaluations without one.
  BoResult run(sparksim::SparkObjective& objective,
               const std::vector<MemoizedConfig>& memoized = {},
               const BoObserver& observer = nullptr,
               SessionLog* session = nullptr,
               exec::EvalScheduler* scheduler = nullptr,
               ExternalBridge* external = nullptr);

  /// Projects a full-space unit vector onto the selected subspace.
  std::vector<double> project(const std::vector<double>& full) const;
  /// Expands a subspace point to a full-space unit vector over the base.
  std::vector<double> expand(const std::vector<double>& sub) const;

  const std::vector<std::size_t>& selected() const noexcept {
    return selected_;
  }

 private:
  std::vector<std::size_t> selected_;
  std::vector<double> base_unit_;
  BoOptions options_;
};

}  // namespace robotune::core
