#include "core/bo_engine.h"

#include <algorithm>
#include <cmath>
#include <memory>
#include <utility>

#include "common/error.h"
#include "core/external.h"
#include "gp/kernel.h"
#include "gp/rff_gp.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "sampling/latin_hypercube.h"

namespace robotune::core {

const char* to_string(SurrogateTier tier) noexcept {
  switch (tier) {
    case SurrogateTier::kExact:
      return "exact";
    case SurrogateTier::kRff:
      return "rff";
    case SurrogateTier::kAuto:
      return "auto";
  }
  return "auto";
}

const char* to_string(RefitSchedule schedule) noexcept {
  switch (schedule) {
    case RefitSchedule::kFixed:
      return "fixed";
    case RefitSchedule::kDoubling:
      return "doubling";
    case RefitSchedule::kAuto:
      return "auto";
  }
  return "auto";
}

std::optional<SurrogateTier> parse_surrogate_tier(std::string_view name) {
  if (name == "exact") return SurrogateTier::kExact;
  if (name == "rff") return SurrogateTier::kRff;
  if (name == "auto") return SurrogateTier::kAuto;
  return std::nullopt;
}

std::optional<RefitSchedule> parse_refit_schedule(std::string_view name) {
  if (name == "fixed") return RefitSchedule::kFixed;
  if (name == "doubling") return RefitSchedule::kDoubling;
  if (name == "auto") return RefitSchedule::kAuto;
  return std::nullopt;
}

BoEngine::BoEngine(std::vector<std::size_t> selected,
                   std::vector<double> base_unit, BoOptions options)
    : selected_(std::move(selected)),
      base_unit_(std::move(base_unit)),
      options_(options) {
  require(!selected_.empty(), "BoEngine: no selected parameters");
  require(!base_unit_.empty(), "BoEngine: empty base configuration");
  for (std::size_t idx : selected_) {
    require(idx < base_unit_.size(), "BoEngine: selected index out of range");
  }
  require(options_.initial_samples >= 2, "BoEngine: need >= 2 initial samples");
  require(options_.budget >= options_.initial_samples,
          "BoEngine: budget smaller than initial sample count");
  require(options_.batch_size >= 1, "BoEngine: batch_size must be >= 1");
  require(options_.sparse_threshold >= 2,
          "BoEngine: sparse_threshold must be >= 2");
  require(options_.rff_features >= 1,
          "BoEngine: rff_features must be >= 1");
}

std::vector<double> BoEngine::project(const std::vector<double>& full) const {
  std::vector<double> sub(selected_.size());
  for (std::size_t i = 0; i < selected_.size(); ++i) {
    sub[i] = full[selected_[i]];
  }
  return sub;
}

std::vector<double> BoEngine::expand(const std::vector<double>& sub) const {
  std::vector<double> full = base_unit_;
  for (std::size_t i = 0; i < selected_.size(); ++i) {
    full[selected_[i]] = std::clamp(sub[i], 0.0, 1.0 - 1e-12);
  }
  return full;
}

BoResult BoEngine::run(sparksim::SparkObjective& objective,
                       const std::vector<MemoizedConfig>& memoized,
                       const BoObserver& observer, SessionLog* session,
                       exec::EvalScheduler* scheduler,
                       ExternalBridge* external) {
  BoResult result;
  result.tuning.tuner = "ROBOTune";
  require(!(scheduler != nullptr && external != nullptr),
          "BoEngine: scheduler and external bridge are mutually exclusive");
  Rng rng(options_.seed);
  const std::size_t dims = selected_.size();
  // Ask/tell mode is entered by attaching a bridge — or by replaying a
  // checkpoint an external session journaled (standalone replay needs
  // no bridge; continuing live does, enforced at the first live round).
  const bool external_mode =
      external != nullptr ||
      (session != nullptr && session->state.external);
  // External evaluations consume no objective seed draws, so ask/tell
  // sessions always journal (and replay) under indexed seeding.
  const bool indexed = scheduler != nullptr || external_mode;
  obs::set_gauge("bo.selected_dims", static_cast<double>(dims));

  tuners::GuardPolicy guard(options_.static_threshold_s,
                            options_.median_multiple);

  // Checkpoint/resume: journaled evaluations are replayed instead of
  // re-run — same bookkeeping (guard, incumbent, cost) via
  // append_evaluation.  In detached mode the objective's sequential seed
  // stream is fast-forwarded by the attempts each record consumed; in
  // scheduler mode there is nothing to fast-forward (streams are derived
  // from the eval index), so replay just skips the index.  Either way the
  // live continuation after the journal is bit-identical to an
  // uninterrupted session.
  std::size_t replay_pos = 0;
  std::size_t journaled = 0;
  if (session != nullptr) {
    // Parallel sessions journal in completion order; restore canonical
    // order and drop anything stranded past a crash hole.
    canonicalize_journal(session->state);
    // Degrade events are *derived* state: the resumed engine re-runs the
    // same deterministic ladder decisions while replaying, so clear and
    // regenerate rather than double-append.  Kill events are NOT cleared:
    // they belong to journaled evaluations, which replay from the journal
    // instead of re-running, so the journaled events are the only record
    // (canonicalize_journal already pruned any past the valid prefix).
    session->state.degrade_events.clear();
    journaled = session->state.evaluations.size();
    const std::string racing_sig =
        scheduler != nullptr ? exec::racing_signature(scheduler->racing())
                             : std::string("off");
    if (journaled > 0 || !session->state.suggests.empty()) {
      // Mode is pinned the moment anything was journaled: an internal
      // checkpoint must not resume in ask/tell mode (its evaluations
      // consumed the sequential seed stream) and vice versa.
      require(!(external != nullptr && !session->state.external),
              "BoEngine: checkpoint was journaled by an internal-mode "
              "session; it cannot resume in ask/tell (external) mode");
    }
    if (journaled > 0) {
      require(session->state.indexed_seeding == indexed,
              "BoEngine: checkpoint was journaled under a different "
              "evaluation-seeding mode; resume with the scheduler "
              "configuration (--parallel) that produced it");
      // Same precedent as the seeding mode: a journal produced under one
      // racing policy replays evaluations another policy would have
      // killed differently — refuse the cross-mode resume.
      const std::string journaled_sig = session->state.racing_mode.empty()
                                            ? "off"
                                            : session->state.racing_mode;
      require(journaled_sig == racing_sig,
              "BoEngine: checkpoint was journaled under a different "
              "racing configuration; resume with the racing setup "
              "(--racing/--eval-deadline) that produced it");
    } else {
      session->state.indexed_seeding = indexed;
      session->state.racing_mode = racing_sig == "off" ? "" : racing_sig;
    }
    // Never cleared once set: a restored external flag survives even
    // when the crash predated the first completed evaluation.
    if (external != nullptr) session->state.external = true;
  }
  // Restore the bridge's ledger (idempotency acks, lease-id high-water
  // mark) from whatever a previous process journaled.
  if (external != nullptr) external->bind(session);

  // Cooperative cancellation (graceful SIGINT/SIGTERM): checked at round
  // boundaries only, so every completed evaluation is journaled and the
  // checkpoint left behind resumes bit-identically.  The yield hook runs
  // first — round boundaries are where the service layer's turnstile
  // slices CPU between concurrent sessions.
  const auto cancelled = [this] {
    if (options_.yield) options_.yield();
    return options_.cancel != nullptr &&
           options_.cancel->load(std::memory_order_relaxed);
  };

  // One rung of the degradation ladder taken: counted (obs) and
  // journaled, so a degraded session is auditable and byte-reproducible.
  const auto note_degrade = [&](int iter, const char* rung) {
    obs::count(std::string("degrade.") + rung);
    if (session != nullptr) {
      session->state.degrade_events.push_back(
          DegradeEvent{static_cast<std::uint64_t>(iter), rung});
    }
  };

  const auto record_of = [](const tuners::Evaluation& e,
                            std::uint64_t index) {
    EvalRecord rec;
    rec.index = index;
    rec.unit = e.unit;
    rec.value_s = e.value_s;
    rec.cost_s = e.cost_s;
    rec.status = e.status;
    rec.stopped_early = e.stopped_early;
    rec.transient = e.transient;
    rec.attempts = e.attempts;
    return rec;
  };

  // Maps an externally reported (value, cost, status) tuple onto the
  // evaluation the simulator path would have produced under the round's
  // guard threshold: successes at or above the threshold are censored
  // like a guard stop, failures carry the same penalty/censoring split
  // as sparksim's objective, and non-finite values fall through to
  // append_evaluation's quarantine.  External executors report one
  // measurement per suggestion, so attempts is always 1 (no seed draws
  // to fast-forward on resume).
  const auto funnel_external = [](const std::vector<double>& unit,
                                  const ExternalObservation& o,
                                  double threshold) {
    tuners::Evaluation e;
    e.unit = unit;
    e.value_s = o.value_s;
    e.cost_s = o.cost_s;
    e.status = o.status;
    e.attempts = 1;
    switch (o.status) {
      case sparksim::RunStatus::kOk:
        if (std::isfinite(e.value_s) && threshold > 0.0 &&
            e.value_s >= threshold) {
          e.value_s = threshold;
          e.stopped_early = true;
        }
        break;
      case sparksim::RunStatus::kTimeLimit:
        if (threshold > 0.0) e.value_s = threshold;
        e.stopped_early = true;
        break;
      case sparksim::RunStatus::kOom:
      case sparksim::RunStatus::kInfeasible:
        e.value_s = (threshold > 0.0 ? threshold : 600.0) * 1.05;
        break;
      case sparksim::RunStatus::kExecutorLost:
      case sparksim::RunStatus::kFetchFailure:
      case sparksim::RunStatus::kPreempted:
      case sparksim::RunStatus::kKilled:
        if (threshold > 0.0) e.value_s = threshold;
        e.transient = true;
        break;
    }
    return e;
  };

  // Evaluates one round of full-space points under the current guard:
  // the journaled prefix is replayed, the live remainder runs as one
  // scheduler batch (or inline, detached).  Bookkeeping happens in
  // canonical order; the returned evaluations are in point order.
  // Ask/tell mode publishes the remainder through the bridge instead
  // and blocks for the external observations; a cancel mid-round
  // returns the partial replay prefix with result.interrupted set —
  // callers must break before touching the round's evaluations.
  const auto evaluate_points =
      [&](const std::vector<std::vector<double>>& points)
      -> std::vector<tuners::Evaluation> {
    // Freeze the round's guard threshold before replaying its prefix, so
    // a resume mid-round evaluates the live remainder under the same
    // threshold the uninterrupted session used.
    const double threshold = guard.current();
    std::vector<tuners::Evaluation> evals;
    evals.reserve(points.size());
    while (evals.size() < points.size() && replay_pos < journaled) {
      const auto& rec = session->state.evaluations[replay_pos];
      require(rec.index == replay_pos,
              "BoEngine: journal is not in canonical order");
      ++replay_pos;
      obs::count("bo.journal_replayed");
      if (!indexed) {
        objective.skip_seed_draws(
            static_cast<std::uint64_t>(std::max(1, rec.attempts)));
      }
      tuners::Evaluation e;
      e.unit = rec.unit;
      e.value_s = rec.value_s;
      e.cost_s = rec.cost_s;
      e.status = rec.status;
      e.stopped_early = rec.stopped_early;
      e.transient = rec.transient;
      e.attempts = rec.attempts;
      if (e.status == sparksim::RunStatus::kKilled) {
        // The kill reason lives in the journal's kill records, not the
        // eval record; restore it so a resumed history is identical.
        for (const auto& kill : session->state.kill_events) {
          if (kill.index == rec.index) {
            e.kill_reason = kill.reason;
            break;
          }
        }
      }
      tuners::append_evaluation(e, guard, result.tuning);
      evals.push_back(std::move(e));
    }
    const std::size_t live_begin = evals.size();
    if (live_begin == points.size()) return evals;

    if (external_mode) {
      require(external != nullptr,
              "BoEngine: external-mode checkpoint has unreplayed budget; "
              "attach an ask/tell bridge (host it in the daemon) to "
              "continue — standalone runs can only replay it");
      const std::uint64_t first_index = result.tuning.history.size();
      const std::vector<std::vector<double>> live(
          points.begin() + static_cast<std::ptrdiff_t>(live_begin),
          points.end());
      std::vector<ExternalObservation> reported;
      if (!external->exchange(live, first_index, reported)) {
        // Cancelled mid-round.  The journal keeps the round's pending
        // suggestions (and any acks already accepted), so a resume
        // re-enters this exact exchange.
        result.interrupted = true;
        return evals;
      }
      for (std::size_t i = live_begin; i < points.size(); ++i) {
        tuners::Evaluation e =
            funnel_external(points[i], reported[i - live_begin], threshold);
        tuners::append_evaluation(e, guard, result.tuning);
        if (session != nullptr) {
          // Journal post-funnel (quarantine included), like the
          // detached path: replay feeds the record straight back
          // through append_evaluation and lands identical state.
          session->state.evaluations.push_back(
              record_of(result.tuning.history.back(),
                        result.tuning.history.size() - 1));
        }
        evals.push_back(std::move(e));
      }
      if (session != nullptr) {
        // One flush resolves the round atomically: the eval records
        // land and their suggest entries leave the pending set.  The
        // observations themselves are already durable (acks journaled
        // at tell time), so a crash right here replays into the same
        // evaluations.
        const std::uint64_t resolved_end = first_index + live.size();
        auto& suggests = session->state.suggests;
        suggests.erase(
            std::remove_if(suggests.begin(), suggests.end(),
                           [resolved_end](const SuggestRecord& s) {
                             return s.index < resolved_end;
                           }),
            suggests.end());
        if (session->flush) {
          obs::Span span("journal", "bo");
          span.arg("eval_index", resolved_end - 1);
          session->flush(session->state);
        }
      }
      return evals;
    }

    if (scheduler != nullptr) {
      const std::uint64_t first_index = result.tuning.history.size();
      std::vector<exec::EvalRequest> requests;
      requests.reserve(points.size() - live_begin);
      for (std::size_t i = live_begin; i < points.size(); ++i) {
        requests.push_back({points[i], threshold});
      }
      // Journal completions as they happen — possibly out of index
      // order; canonicalize_journal restores replay order on resume.
      const auto outcomes = scheduler->run_batch(
          objective, requests, first_index,
          [&](const exec::CompletedEval& done) {
            if (session == nullptr) return;
            session->state.evaluations.push_back(record_of(
                tuners::to_evaluation(done.request->unit, *done.outcome),
                done.eval_index));
            if (done.outcome->status == sparksim::RunStatus::kKilled) {
              session->state.kill_events.push_back(
                  KillEvent{done.eval_index, done.outcome->kill_reason});
            }
            if (session->flush) {
              // Journal flushes run in completion order on whichever
              // thread finished the evaluation — span attribution shows
              // checkpoint-write stalls per worker.
              obs::Span span("journal", "bo");
              span.arg("eval_index", done.eval_index);
              session->flush(session->state);
            }
          });
      for (std::size_t i = live_begin; i < points.size(); ++i) {
        evals.push_back(
            tuners::to_evaluation(points[i], outcomes[i - live_begin]));
        tuners::append_evaluation(evals.back(), guard, result.tuning);
      }
    } else {
      for (std::size_t i = live_begin; i < points.size(); ++i) {
        tuners::Evaluation e;
        {
          obs::Span span("eval", "bo");
          span.arg("eval_index",
                   static_cast<std::uint64_t>(result.tuning.history.size()));
          e = tuners::evaluate_into(objective, points[i], guard,
                                    result.tuning);
          span.arg("status", sparksim::to_string(e.status));
          span.arg("value_s", e.value_s);
        }
        if (session != nullptr) {
          session->state.evaluations.push_back(
              record_of(e, result.tuning.history.size() - 1));
          if (session->flush) {
            obs::Span span("journal", "bo");
            span.arg("eval_index",
                     static_cast<std::uint64_t>(
                         result.tuning.history.size() - 1));
            session->flush(session->state);
          }
        }
        evals.push_back(e);
      }
    }
    return evals;
  };

  // ---- Initial training set (§3.2): memoized best configs + LHS --------
  std::vector<std::vector<double>> init_subs;
  const int memo_count = std::min<int>(
      {options_.memoized_in_initial, static_cast<int>(memoized.size()),
       options_.initial_samples});
  for (int i = 0; i < memo_count; ++i) {
    init_subs.push_back(project(memoized[static_cast<std::size_t>(i)].unit));
  }
  const auto lhs_count =
      static_cast<std::size_t>(options_.initial_samples - memo_count);
  if (lhs_count > 0) {
    const auto design =
        options_.lhs_initialization
            ? sampling::latin_hypercube(lhs_count, dims, rng)
            : sampling::uniform_random(lhs_count, dims, rng);
    init_subs.insert(init_subs.end(), design.begin(), design.end());
  }

  std::vector<std::vector<double>> xs;  // subspace points
  std::vector<double> ys;
  xs.reserve(static_cast<std::size_t>(options_.budget));
  ys.reserve(static_cast<std::size_t>(options_.budget));

  const auto observe = [this](double seconds) {
    return options_.log_observations ? std::log(std::max(1e-6, seconds))
                                     : seconds;
  };
  // Transient failures never train the surrogate: their censored value
  // reflects cluster flakiness, not the configuration, and would poison
  // the GP's picture of the region.
  std::vector<std::pair<std::vector<double>, double>> censored_init;
  const auto q_opt = static_cast<std::size_t>(std::max(1, options_.batch_size));
  {
    obs::Span init_span("init", "bo");
    init_span.arg("samples",
                  static_cast<std::uint64_t>(init_subs.size()));
    init_span.arg("memoized", memo_count);
    for (std::size_t begin = 0; begin < init_subs.size(); begin += q_opt) {
      if (cancelled()) {
        result.interrupted = true;
        break;
      }
      const std::size_t end = std::min(init_subs.size(), begin + q_opt);
      std::vector<std::vector<double>> points;
      points.reserve(end - begin);
      for (std::size_t i = begin; i < end; ++i) {
        points.push_back(expand(init_subs[i]));
      }
      const auto evals = evaluate_points(points);
      if (result.interrupted) break;  // cancelled mid-round (ask/tell)
      for (std::size_t i = begin; i < end; ++i) {
        const auto& e = evals[i - begin];
        // A racer kill certifies value >= threshold — the same censored
        // lower bound a guard stop would have produced — so it feeds the
        // model at its capped value.  Truly transient faults say nothing
        // about the configuration and are withheld.
        if (e.transient && e.status != sparksim::RunStatus::kKilled) {
          censored_init.emplace_back(init_subs[i], observe(e.value_s));
          continue;
        }
        xs.push_back(init_subs[i]);
        ys.push_back(observe(e.value_s));
      }
    }
  }
  // Safety valve: the GP needs observations to fit.  If flakes wiped out
  // (nearly) the whole initial design, fall back to the censored values —
  // a biased model beats no model.
  if (xs.size() < 2) {
    for (auto& [sub, y] : censored_init) {
      xs.push_back(std::move(sub));
      ys.push_back(y);
    }
  }

  // ---- BO loop (Algorithm 1, lines 8-14) --------------------------------
  // `kernel_state` carries the learned (hyperfit) kernel across rounds.
  // It is deliberately kept separate from `model.kernel()`: the noise-
  // inflation rung fits a temporary Sum(kernel, WhiteNoise) model, and
  // cloning *that* forward would stack an extra noise term per degraded
  // round.
  std::unique_ptr<gp::Kernel> kernel_state = gp::ard_kernel(dims);
  std::unique_ptr<gp::Surrogate> model = std::make_unique<gp::GaussianProcess>(
      kernel_state->clone(), gp::GpOptions{}, rng());
  gp::GpHedge hedge(dims, rng(), options_.hedge);

  // Deduplicates the training set (L-inf distance < 1e-10, first
  // occurrence kept) — near-identical points are the classic cause of a
  // singular kernel matrix.  Falls back to the full set when fewer than
  // two distinct points remain (the GP needs two).
  const auto dedup_training = [&xs, &ys](std::vector<std::vector<double>>& dx,
                                         std::vector<double>& dy) {
    dx.clear();
    dy.clear();
    for (std::size_t i = 0; i < xs.size(); ++i) {
      bool duplicate = false;
      for (const auto& kept : dx) {
        double dist = 0.0;
        for (std::size_t d = 0; d < kept.size(); ++d) {
          dist = std::max(dist, std::abs(kept[d] - xs[i][d]));
        }
        if (dist < 1e-10) {
          duplicate = true;
          break;
        }
      }
      if (!duplicate) {
        dx.push_back(xs[i]);
        dy.push_back(ys[i]);
      }
    }
    if (dx.size() < 2) {
      dx = xs;
      dy = ys;
    }
  };

  // Degradation ladder for exact-GP fits (DESIGN.md §11): a failed fit
  // walks deterministic fallback rungs instead of killing the session —
  // retry on deduplicated data, retry with inflated observation noise,
  // and finally skip the model update for this round (the proposal step
  // then degrades to seeded space-filling sampling).  Returns true when
  // some rung produced a usable model; `model` is only assigned on a
  // successful rung, never left half-fitted.
  const auto fit_exact_ladder = [&](bool hyperfit, std::uint64_t fit_seed,
                                    int iter) -> bool {
    try {
      gp::GpOptions gp_options;
      gp_options.optimize_hyperparameters = hyperfit;
      gp_options.shrink_restarts_at = options_.sparse_threshold;
      gp::GaussianProcess candidate(kernel_state->clone(), gp_options,
                                    fit_seed);
      candidate.fit(xs, ys);
      kernel_state = candidate.kernel().clone();
      model = std::make_unique<gp::GaussianProcess>(std::move(candidate));
      return true;
    } catch (const NumericalError&) {
      note_degrade(iter, "gp_refit");
    }
    std::vector<std::vector<double>> dx;
    std::vector<double> dy;
    dedup_training(dx, dy);
    try {
      gp::GpOptions gp_options;
      gp_options.optimize_hyperparameters = false;
      gp::GaussianProcess candidate(kernel_state->clone(), gp_options,
                                    fit_seed);
      candidate.fit(dx, dy);
      model = std::make_unique<gp::GaussianProcess>(std::move(candidate));
      return true;
    } catch (const NumericalError&) {
      note_degrade(iter, "gp_noise_inflate");
    }
    try {
      gp::GpOptions gp_options;
      gp_options.optimize_hyperparameters = false;
      auto inflated = std::make_unique<gp::SumKernel>(
          kernel_state->clone(), std::make_unique<gp::WhiteNoise>(0.1));
      gp::GaussianProcess candidate(std::move(inflated), gp_options,
                                    fit_seed);
      candidate.fit(dx, dy);
      model = std::make_unique<gp::GaussianProcess>(std::move(candidate));
      return true;
    } catch (const NumericalError&) {
      note_degrade(iter, "gp_skip");
      return false;
    }
  };

  // Random-features rung (DESIGN.md §15): fit the sparse tier under the
  // kernel-state hyperparameters.  Any failure — a kernel shape the
  // spectral map cannot mirror, or a lost factorization (incl. chaos) —
  // lands the journaled `rff_fallback` rung and the caller keeps or
  // rebuilds the exact model instead.
  const auto fit_rff = [&](int iter) -> bool {
    const auto hypers = gp::extract_matern_hyperparams(*kernel_state, dims);
    if (!hypers) {
      note_degrade(iter, "rff_fallback");
      return false;
    }
    gp::RffOptions rff_options;
    rff_options.num_features =
        static_cast<std::size_t>(options_.rff_features);
    rff_options.seed = options_.seed ^ 0x5eedULL;
    try {
      gp::RffGp candidate(rff_options);
      candidate.fit(xs, ys, *hypers);
      model = std::make_unique<gp::RffGp>(std::move(candidate));
      obs::count("bo.surrogate.rff_fits");
      return true;
    } catch (const NumericalError&) {
      note_degrade(iter, "rff_fallback");
      return false;
    }
  };

  // Tier dispatch: below the switchover everything (arithmetic and
  // trajectory) is byte-identical to the exact-only engine.  Above it,
  // hyperfit rounds still *learn* on the exact GP (that is where the
  // marginal likelihood lives), then refit the sparse tier on top; plain
  // rounds fit the sparse tier directly and only fall back to the exact
  // ladder when the RFF fit is lost.
  const auto fit_with_ladder = [&](bool hyperfit, std::uint64_t fit_seed,
                                   int iter) -> bool {
    const bool want_sparse =
        options_.surrogate == SurrogateTier::kRff ||
        (options_.surrogate == SurrogateTier::kAuto &&
         xs.size() >= static_cast<std::size_t>(options_.sparse_threshold));
    if (!want_sparse) return fit_exact_ladder(hyperfit, fit_seed, iter);
    if (hyperfit) {
      if (!fit_exact_ladder(true, fit_seed, iter)) return false;
      // A failed RFF fit keeps the freshly fitted exact model — degraded
      // in speed, never in correctness.
      fit_rff(iter);
      return true;
    }
    if (fit_rff(iter)) return true;
    return fit_exact_ladder(false, fit_seed, iter);
  };

  const int search_budget = options_.budget - options_.initial_samples;
  double best_seen = result.tuning.found_any()
                         ? result.tuning.best_value_s()
                         : std::numeric_limits<double>::infinity();
  int since_improvement = 0;
  bool model_fitted = false;
  // Doubling-schedule state: the next training-set size that triggers a
  // hyperparameter refit.  0 fires on the first doubling-scheduled round.
  std::size_t next_doubling_n = 0;

  for (int iter = 0; iter < search_budget && !result.interrupted;) {
    if (cancelled()) {
      result.interrupted = true;
      break;
    }
    const int q = std::min(static_cast<int>(q_opt), search_budget - iter);
    obs::count("bo.rounds");
    obs::Span iter_span("iteration", "bo");
    iter_span.arg("iter", iter);
    iter_span.arg("q", q);

    // (1) Train the surrogate on all priors.  Kernel hyperparameters are
    // refit by marginal likelihood on the schedule — every
    // `hyperfit_every` rounds (fixed), or whenever the training set has
    // doubled since the last refit (doubling: the total refit cost over a
    // run is a geometric series, O(n³) *amortized*).  In between, new
    // observations were already folded in below, incrementally in O(n²) /
    // O(m²) via add_point and remove_point.
    const bool doubling_active =
        options_.refit_schedule == RefitSchedule::kDoubling ||
        (options_.refit_schedule == RefitSchedule::kAuto &&
         xs.size() >= static_cast<std::size_t>(options_.sparse_threshold));
    const bool refit =
        doubling_active
            ? xs.size() >= std::max<std::size_t>(next_doubling_n, 1)
            : options_.hyperfit_every > 0 &&
                  (iter % options_.hyperfit_every) == 0;
    if (refit) next_doubling_n = 2 * std::max<std::size_t>(1, xs.size());
    if (refit || !model_fitted) {
      obs::Span span("gp_fit", "bo");
      span.arg("points", static_cast<std::uint64_t>(xs.size()));
      span.arg("hyperfit", refit ? 1 : 0);
      if (refit) obs::count("bo.gp_refits");
      model_fitted = fit_with_ladder(
          refit, options_.seed ^ static_cast<std::uint64_t>(iter), iter);
    }

    // (2) Hedge proposes q configurations (or, in the single-acquisition
    // ablation, the forced function does).  Between proposals the pending
    // point is folded in as a constant-liar fantasy (CL-min): it pretends
    // to have returned the best observation so far, collapsing the
    // posterior variance around it so the next proposal explores
    // elsewhere.  The fantasies depend only on the q proposals, never on
    // evaluation scheduling, so the trajectory is worker-count-invariant.
    // When the ladder left no usable model this round, the whole round's
    // proposals degrade to a seeded space-filling design; when a single
    // proposal's acquisition optimizer fails, that proposal alone
    // degrades to a seeded uniform point.  Either way the fallback is a
    // pure function of (seed, iteration, slot) — byte-reproducible at
    // any worker count — and fallback proposals are excluded from the
    // Hedge portfolio's bookkeeping (no acquisition chose them).
    std::vector<gp::GpHedge::Choice> choices;
    std::vector<char> fallback(static_cast<std::size_t>(q), 0);
    choices.reserve(static_cast<std::size_t>(q));
    int fantasies_planted = 0;
    if (!model_fitted) {
      Rng fb_rng(options_.seed ^
                 (0xfa11ULL + static_cast<std::uint64_t>(iter) *
                                  0x9e3779b97f4a7c15ULL));
      const auto design = sampling::latin_hypercube(
          static_cast<std::size_t>(q), dims, fb_rng);
      for (int j = 0; j < q; ++j) {
        note_degrade(iter, "fallback_proposal");
        gp::GpHedge::Choice choice;
        choice.point = design[static_cast<std::size_t>(j)];
        choice.chosen = gp::AcquisitionKind::kEI;  // placeholder; unused
        choice.nominees = {choice.point, choice.point, choice.point};
        fallback[static_cast<std::size_t>(j)] = 1;
        choices.push_back(std::move(choice));
      }
    } else {
      obs::Span span("acq_opt", "bo");
      span.arg("q", q);
      for (int j = 0; j < q; ++j) {
        gp::GpHedge::Choice choice;
        try {
          if (options_.force_acquisition) {
            Rng acq_rng(options_.seed ^
                        (0x9e37ULL + static_cast<std::uint64_t>(iter + j)));
            choice.chosen = *options_.force_acquisition;
            choice.point = gp::optimize_acquisition(
                *model, choice.chosen, dims, acq_rng, options_.hedge.params,
                options_.hedge.optimizer);
            choice.nominees = {choice.point, choice.point, choice.point};
          } else {
            choice = hedge.propose(*model);
          }
        } catch (const NumericalError&) {
          note_degrade(iter, "acq_fallback");
          note_degrade(iter, "fallback_proposal");
          Rng fb_rng(options_.seed ^
                     (0xacdfULL +
                      static_cast<std::uint64_t>(iter) * 131ULL +
                      static_cast<std::uint64_t>(j)));
          choice.point.assign(dims, 0.0);
          for (auto& c : choice.point) c = fb_rng.uniform();
          choice.chosen = gp::AcquisitionKind::kEI;  // placeholder; unused
          choice.nominees = {choice.point, choice.point, choice.point};
          fallback[static_cast<std::size_t>(j)] = 1;
        }
        if (fallback[static_cast<std::size_t>(j)] == 0) {
          obs::count(std::string("bo.hedge.selected.") +
                     gp::to_string(choice.chosen));
          result.chosen_acquisitions.push_back(choice.chosen);
        }
        if (j + 1 < q) {
          const double lie =
              ys.empty() ? 0.0 : *std::min_element(ys.begin(), ys.end());
          try {
            model->add_point(choice.point, lie);
            ++fantasies_planted;
          } catch (const NumericalError&) {
            // Skip the fantasy: add_point's strong exception guarantee
            // keeps the model usable for the remaining proposals.
            note_degrade(iter, "gp_add_point");
          }
        }
        choices.push_back(std::move(choice));
      }
    }

    // (3) Evaluate the batch (or replay journaled outcomes on resume).
    std::vector<std::vector<double>> points;
    points.reserve(static_cast<std::size_t>(q));
    for (const auto& choice : choices) points.push_back(expand(choice.point));
    const auto evals = evaluate_points(points);
    if (result.interrupted) break;  // cancelled mid-round (ask/tell)

    // (4) Fold the real observations into the model and update Hedge's
    // cumulative gains under the refreshed posterior.  Transient failures
    // are withheld from the model (see the init phase).  With q = 1 the
    // incremental add_point path is taken (no fantasy was planted); with
    // q > 1 the round's constant-liar fantasies are purged by rank-1
    // downdates (they are the model's last points, so each removal is a
    // LIFO truncation) and the reals folded in incrementally — O(q·n²)
    // instead of the O(n³) refit-from-scratch this block used to cost.
    const std::size_t round_begin = xs.size();
    for (int j = 0; j < q; ++j) {
      // Racer kills enter at their censored value (see the init phase);
      // other transients stay out of the model.
      if (evals[static_cast<std::size_t>(j)].transient &&
          evals[static_cast<std::size_t>(j)].status !=
              sparksim::RunStatus::kKilled) {
        continue;
      }
      xs.push_back(choices[static_cast<std::size_t>(j)].point);
      ys.push_back(observe(evals[static_cast<std::size_t>(j)].value_s));
      if (q == 1 && model_fitted) {
        try {
          model->add_point(xs.back(), ys.back());
        } catch (const NumericalError&) {
          // The observation is kept in (xs, ys); force the next round
          // through the full refit ladder instead of trusting a model
          // that could not absorb it.
          note_degrade(iter, "gp_add_point");
          model_fitted = false;
        }
      }
    }
    if (q > 1 && model_fitted) {
      bool incremental = true;
      {
        obs::Span span("cl_purge", "bo");
        span.arg("fantasies", fantasies_planted);
        span.arg("reals", static_cast<std::uint64_t>(xs.size() - round_begin));
        try {
          for (int k = 0; k < fantasies_planted; ++k) {
            model->remove_point(model->num_points() - 1);
          }
          if (fantasies_planted > 0) {
            obs::count("bo.cl_purge.downdates",
                       static_cast<std::uint64_t>(fantasies_planted));
          }
          for (std::size_t i = round_begin; i < xs.size(); ++i) {
            model->add_point(xs[i], ys[i]);
          }
        } catch (const NumericalError&) {
          // A lost downdate (or an add the model could not absorb): the
          // strong guarantees kept the model predictable, but its
          // training set no longer matches (xs, ys) — rebuild it via the
          // refit rung.  Deterministic in (seed, iter): worker count
          // never reaches here.
          note_degrade(iter, "cl_purge");
          incremental = false;
        }
      }
      if (!incremental) {
        obs::count("bo.cl_purge.refits");
        obs::Span span("gp_fit", "bo");
        span.arg("points", static_cast<std::uint64_t>(xs.size()));
        span.arg("hyperfit", 0);
        model_fitted = fit_with_ladder(
            false,
            options_.seed ^ (0x51edULL + static_cast<std::uint64_t>(iter)),
            iter);
      }
    }
    // Hedge gains need a refreshed posterior; fallback proposals carry no
    // acquisition to reward or punish.
    if (model_fitted) {
      for (int j = 0; j < q; ++j) {
        if (fallback[static_cast<std::size_t>(j)] != 0) continue;
        hedge.update_gains(*model, choices[static_cast<std::size_t>(j)]);
      }
    }

    if (observer && model_fitted) {
      for (int j = 0; j < q; ++j) {
        BoObserverInfo info;
        info.iteration = iter + j;
        info.gp = model.get();
        info.choice = &choices[static_cast<std::size_t>(j)];
        observer(info);
      }
    }

    // Automated early stopping (§4), optional — checked per evaluation in
    // canonical order, so a patience trip mid-batch truncates the session
    // at the same iteration count regardless of q's remainder.
    bool stop = false;
    for (int j = 0; j < q; ++j) {
      result.iterations_run = iter + j + 1;
      const auto& e = evals[static_cast<std::size_t>(j)];
      if (e.ok() &&
          e.value_s < best_seen * (1.0 - options_.early_stop_epsilon)) {
        best_seen = e.value_s;
        since_improvement = 0;
      } else {
        ++since_improvement;
        if (options_.early_stop_patience > 0 &&
            since_improvement >= options_.early_stop_patience) {
          result.early_stopped = true;
          obs::count("bo.early_stops");
          stop = true;
          break;
        }
      }
    }
    if (stop) break;
    iter += q;
  }

  const auto gains = hedge.gains();
  result.hedge_gains.assign(gains.begin(), gains.end());
  return result;
}

}  // namespace robotune::core
