#include "core/bo_engine.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/error.h"
#include "sampling/latin_hypercube.h"

namespace robotune::core {

BoEngine::BoEngine(std::vector<std::size_t> selected,
                   std::vector<double> base_unit, BoOptions options)
    : selected_(std::move(selected)),
      base_unit_(std::move(base_unit)),
      options_(options) {
  require(!selected_.empty(), "BoEngine: no selected parameters");
  require(!base_unit_.empty(), "BoEngine: empty base configuration");
  for (std::size_t idx : selected_) {
    require(idx < base_unit_.size(), "BoEngine: selected index out of range");
  }
  require(options_.initial_samples >= 2, "BoEngine: need >= 2 initial samples");
  require(options_.budget >= options_.initial_samples,
          "BoEngine: budget smaller than initial sample count");
}

std::vector<double> BoEngine::project(const std::vector<double>& full) const {
  std::vector<double> sub(selected_.size());
  for (std::size_t i = 0; i < selected_.size(); ++i) {
    sub[i] = full[selected_[i]];
  }
  return sub;
}

std::vector<double> BoEngine::expand(const std::vector<double>& sub) const {
  std::vector<double> full = base_unit_;
  for (std::size_t i = 0; i < selected_.size(); ++i) {
    full[selected_[i]] = std::clamp(sub[i], 0.0, 1.0 - 1e-12);
  }
  return full;
}

BoResult BoEngine::run(sparksim::SparkObjective& objective,
                       const std::vector<MemoizedConfig>& memoized,
                       const BoObserver& observer, SessionLog* session) {
  BoResult result;
  result.tuning.tuner = "ROBOTune";
  Rng rng(options_.seed);
  const std::size_t dims = selected_.size();

  tuners::GuardPolicy guard(options_.static_threshold_s,
                            options_.median_multiple);

  // Checkpoint/resume: journaled evaluations are replayed instead of
  // re-run — same bookkeeping (guard, incumbent, cost) via
  // append_evaluation, and the objective's seed stream is fast-forwarded
  // by the attempts each record consumed, so the live continuation after
  // the journal is bit-identical to an uninterrupted session.
  std::size_t replay_pos = 0;
  // Length of the journal as loaded; records appended below (live
  // evaluations) are new work, never replay candidates.
  const std::size_t journaled =
      session != nullptr ? session->state.evaluations.size() : 0;
  const auto evaluate_point =
      [&](const std::vector<double>& full) -> tuners::Evaluation {
    if (replay_pos < journaled) {
      const auto& rec = session->state.evaluations[replay_pos++];
      objective.skip_seed_draws(
          static_cast<std::uint64_t>(std::max(1, rec.attempts)));
      tuners::Evaluation e;
      e.unit = rec.unit;
      e.value_s = rec.value_s;
      e.cost_s = rec.cost_s;
      e.status = rec.status;
      e.stopped_early = rec.stopped_early;
      e.transient = rec.transient;
      e.attempts = rec.attempts;
      tuners::append_evaluation(e, guard, result.tuning);
      return e;
    }
    const auto e =
        tuners::evaluate_into(objective, full, guard, result.tuning);
    if (session != nullptr) {
      EvalRecord rec;
      rec.unit = e.unit;
      rec.value_s = e.value_s;
      rec.cost_s = e.cost_s;
      rec.status = e.status;
      rec.stopped_early = e.stopped_early;
      rec.transient = e.transient;
      rec.attempts = e.attempts;
      session->state.evaluations.push_back(std::move(rec));
      if (session->flush) session->flush(session->state);
    }
    return e;
  };

  // ---- Initial training set (§3.2): memoized best configs + LHS --------
  std::vector<std::vector<double>> init_subs;
  const int memo_count = std::min<int>(
      {options_.memoized_in_initial, static_cast<int>(memoized.size()),
       options_.initial_samples});
  for (int i = 0; i < memo_count; ++i) {
    init_subs.push_back(project(memoized[static_cast<std::size_t>(i)].unit));
  }
  const auto lhs_count =
      static_cast<std::size_t>(options_.initial_samples - memo_count);
  if (lhs_count > 0) {
    const auto design =
        options_.lhs_initialization
            ? sampling::latin_hypercube(lhs_count, dims, rng)
            : sampling::uniform_random(lhs_count, dims, rng);
    init_subs.insert(init_subs.end(), design.begin(), design.end());
  }

  std::vector<std::vector<double>> xs;  // subspace points
  std::vector<double> ys;
  xs.reserve(static_cast<std::size_t>(options_.budget));
  ys.reserve(static_cast<std::size_t>(options_.budget));

  const auto observe = [this](double seconds) {
    return options_.log_observations ? std::log(std::max(1e-6, seconds))
                                     : seconds;
  };
  // Transient failures never train the surrogate: their censored value
  // reflects cluster flakiness, not the configuration, and would poison
  // the GP's picture of the region.
  std::vector<std::pair<std::vector<double>, double>> censored_init;
  for (const auto& sub : init_subs) {
    const auto e = evaluate_point(expand(sub));
    if (e.transient) {
      censored_init.emplace_back(sub, observe(e.value_s));
      continue;
    }
    xs.push_back(sub);
    ys.push_back(observe(e.value_s));
  }
  // Safety valve: the GP needs observations to fit.  If flakes wiped out
  // (nearly) the whole initial design, fall back to the censored values —
  // a biased model beats no model.
  if (xs.size() < 2) {
    for (auto& [sub, y] : censored_init) {
      xs.push_back(std::move(sub));
      ys.push_back(y);
    }
  }

  // ---- BO loop (Algorithm 1, lines 8-14) --------------------------------
  gp::GaussianProcess model(gp::ard_kernel(dims), gp::GpOptions{}, rng());
  gp::GpHedge hedge(dims, rng(), options_.hedge);

  const int search_budget = options_.budget - options_.initial_samples;
  double best_seen = result.tuning.found_any()
                         ? result.tuning.best_value_s()
                         : std::numeric_limits<double>::infinity();
  int since_improvement = 0;
  bool model_fitted = false;

  for (int iter = 0; iter < search_budget; ++iter) {
    result.iterations_run = iter + 1;

    // (1) Train the GP on all priors.  Kernel hyperparameters are refit
    // by marginal likelihood every `hyperfit_every` iterations (a full
    // O(n^3) factorization); in between, new observations were already
    // folded in incrementally in O(n^2) via add_point below.
    const bool refit =
        options_.hyperfit_every > 0 && (iter % options_.hyperfit_every) == 0;
    if (refit || !model_fitted) {
      gp::GpOptions gp_options;
      gp_options.optimize_hyperparameters = refit;
      model = gp::GaussianProcess(model.kernel().clone(), gp_options,
                                  options_.seed ^
                                      static_cast<std::uint64_t>(iter));
      model.fit(xs, ys);
      model_fitted = true;
    }

    // (2) Hedge proposes the next configuration (or, in the single-
    // acquisition ablation, the forced function does).
    gp::GpHedge::Choice choice;
    if (options_.force_acquisition) {
      Rng acq_rng(options_.seed ^ (0x9e37ULL + static_cast<std::uint64_t>(iter)));
      choice.chosen = *options_.force_acquisition;
      choice.point = gp::optimize_acquisition(model, choice.chosen, dims,
                                              acq_rng, options_.hedge.params,
                                              options_.hedge.optimizer);
      choice.nominees = {choice.point, choice.point, choice.point};
    } else {
      choice = hedge.propose(model);
    }
    result.chosen_acquisitions.push_back(choice.chosen);

    // (3) Evaluate it (or replay the journaled outcome on resume).
    const auto e = evaluate_point(expand(choice.point));

    // (4) Fold the observation into the model incrementally and update
    // Hedge's cumulative gains under the refreshed posterior.  Transient
    // failures are withheld from the model (see the init phase).
    if (!e.transient) {
      xs.push_back(choice.point);
      ys.push_back(observe(e.value_s));
      model.add_point(choice.point, ys.back());
    }
    hedge.update_gains(model, choice);

    if (observer) {
      BoObserverInfo info;
      info.iteration = iter;
      info.gp = &model;
      info.choice = &choice;
      observer(info);
    }

    // Automated early stopping (§4), optional.
    if (e.ok() && e.value_s < best_seen * (1.0 - options_.early_stop_epsilon)) {
      best_seen = e.value_s;
      since_improvement = 0;
    } else {
      ++since_improvement;
      if (options_.early_stop_patience > 0 &&
          since_improvement >= options_.early_stop_patience) {
        result.early_stopped = true;
        break;
      }
    }
  }

  const auto gains = hedge.gains();
  result.hedge_gains.assign(gains.begin(), gains.end());
  return result;
}

}  // namespace robotune::core
