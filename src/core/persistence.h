// Disk persistence for ROBOTune's memoized state.
//
// The paper's memoized sampling (§3.2) reuses knowledge "from prior
// sessions"; for a deployed tuner those sessions span process lifetimes,
// so the parameter-selection cache and the configuration memoization
// buffer can be saved to and restored from a plain-text file.
//
// Format (line oriented, whitespace separated, '#' comments):
//   robotune-state v1
//   selection <workload> <n> <idx...>
//   memo <workload> <value_s> <dim> <unit...>
#pragma once

#include <iosfwd>
#include <string>

#include "core/memoization.h"

namespace robotune::core {

/// Serializes both caches to a stream.  Returns the number of records.
std::size_t save_state(const ParameterSelectionCache& selection,
                       const ConfigMemoizationBuffer& memo,
                       std::ostream& out);

/// Restores both caches from a stream previously written by save_state.
/// Existing entries are kept; loaded entries overwrite/merge per workload.
/// Throws InvalidArgument on malformed input.  Returns records loaded.
std::size_t load_state(std::istream& in, ParameterSelectionCache& selection,
                       ConfigMemoizationBuffer& memo);

/// Convenience file wrappers.  Return false when the file cannot be
/// opened (a missing state file is not an error for a fresh install).
bool save_state_file(const ParameterSelectionCache& selection,
                     const ConfigMemoizationBuffer& memo,
                     const std::string& path);
bool load_state_file(const std::string& path,
                     ParameterSelectionCache& selection,
                     ConfigMemoizationBuffer& memo);

}  // namespace robotune::core
