// Disk persistence for ROBOTune's memoized state and for in-flight
// tuning-session checkpoints.
//
// The paper's memoized sampling (§3.2) reuses knowledge "from prior
// sessions"; for a deployed tuner those sessions span process lifetimes,
// so the parameter-selection cache and the configuration memoization
// buffer can be saved to and restored from a plain-text file.
//
// Format (line oriented, whitespace separated, '#' comments):
//   robotune-state v1
//   selection <workload> <n> <idx...>
//   memo <workload> <value_s> <dim> <unit...>
//
// Session checkpoints make the tuning loop itself restartable: the BO
// engine journals every completed evaluation, and a session killed
// mid-budget resumes from the journal with an identical continuation —
// replayed evaluations rebuild the guard, surrogate, and RNG state
// deterministically instead of re-running the cluster.
//
// Checkpoint format (v3, crash-safe).  The first line is the bare
// header; every following line is a *framed record*:
//
//   robotune-session v3
//   <crc32:8 lowercase hex> <len:decimal payload bytes> <payload>
//
// where the CRC covers exactly the payload bytes.  Payloads are the
// familiar line records:
//   meta <seed> <budget> <workload>
//   seeding sequential|indexed
//   selected <n> <idx...>
//   selection-draws <n>
//   selection-cost <seconds>
//   memo <value_s> <dim> <unit...>
//   eval <index> <status> <value_s> <cost_s> <stopped> <transient>
//        <attempts> <dim> <unit...>
//   degrade <iter> <rung>
//   racing <signature>
//   kill <index> <reason>
//   mode external
//   suggest <index> <lease> <dim> <unit...>
//   observe_ack <index> <status> <value_s> <cost_s>
//   lease_expired <index> <lease>
//
// `racing` (emitted only when a racing policy was active — racing-off
// journals stay byte-identical to pre-racing releases) pins the racing
// signature so resume can refuse a cross-mode restart; `kill` records a
// mid-flight racing/deadline kill of evaluation <index> with its reason
// ("deadline", "median-rule", "halving-rung").
//
// The last four kinds exist only for ask/tell sessions (DESIGN.md §16)
// and are emitted only when `mode=external` — internal-mode journals
// stay byte-identical to pre-external releases.  `mode external` pins
// the session mode so resume refuses a cross-mode restart; `suggest`
// journals a proposed-but-unresolved configuration (with the
// last-issued lease id, 0 if never leased — lease deadlines are
// daemon-tick-relative and deliberately NOT persisted: a restart voids
// every outstanding lease); `observe_ack` records an accepted external
// observation so a re-delivered observe after a crash acks
// idempotently; `lease_expired` is the reaper's audit trail.
//
// The framing makes a torn write (power loss mid-checkpoint) or a bit
// flip detectable at load time: in LoadMode::kRecover the loader
// truncates at the first bad frame and returns the longest valid record
// prefix instead of throwing; LoadMode::kStrict keeps the historical
// throw-on-corruption behavior.  v2 and v1 journals (unframed) are still
// read — read-only compatibility; the next flush rewrites the file as v3.
//
// A parallel session journals evaluations in *completion* order, which
// under concurrency is not index order and can have holes after a crash
// (eval 7 finished, eval 6 was in flight).  canonicalize_journal sorts
// the records into index order and truncates at the first gap, restoring
// the contiguous prefix that replay needs.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "core/memoization.h"
#include "sparksim/engine.h"

namespace robotune::core {

/// One journaled evaluation of a checkpointed session.
struct EvalRecord {
  /// Canonical (session-wide, 0-based) evaluation index.  Sequential
  /// sessions journal in index order; parallel sessions journal in
  /// completion order and rely on this field to replay canonically.
  std::uint64_t index = 0;
  std::vector<double> unit;  ///< full-space unit vector evaluated
  double value_s = 0.0;
  double cost_s = 0.0;
  sparksim::RunStatus status = sparksim::RunStatus::kOk;
  bool stopped_early = false;
  bool transient = false;
  /// Simulator attempts (= objective seed draws) the evaluation consumed;
  /// sequential-seeding resume fast-forwards the seed stream by this much
  /// per record (indexed-seeding sessions skip indices instead).
  int attempts = 1;
};

/// One rung of the degradation ladder (DESIGN.md §11) taken during the
/// session: which BO iteration degraded and how.  Journaled so a degraded
/// session is auditable and byte-reproducible; never replayed into model
/// state (the resumed engine re-derives the same rungs deterministically).
struct DegradeEvent {
  std::uint64_t iter = 0;
  std::string rung;  ///< e.g. "gp_refit", "gp_noise_inflate", "gp_skip"
};

/// One racing/deadline kill taken during the session: which evaluation
/// the racer stopped mid-flight and why.  Unlike degrade events, kill
/// events are KEPT on resume: they belong to journaled evaluations,
/// which replay from the journal instead of re-running, so the events
/// would otherwise be lost.  canonicalize_journal prunes events whose
/// evaluation fell past the replayable prefix.
struct KillEvent {
  std::uint64_t index = 0;  ///< canonical eval index the racer killed
  sparksim::KillReason reason = sparksim::KillReason::kNone;
};

/// One proposed-but-unresolved configuration of an ask/tell session
/// (DESIGN.md §16).  Journaled when the engine publishes a batch so a
/// kill -9 mid-lease restarts into exactly the same pending set; pruned
/// (by the engine at flush, and by canonicalize_journal after a torn
/// write) once the matching eval record lands.
struct SuggestRecord {
  std::uint64_t index = 0;  ///< canonical eval index of the suggestion
  /// Last lease id ever issued for this suggestion (0 = never leased).
  /// Persisted only so lease ids stay monotonic across restarts; the
  /// runtime lease/deadline state itself is voided by a restart.
  std::uint64_t lease = 0;
  std::vector<double> unit;  ///< full-space unit vector proposed
};

/// One accepted external observation, journaled at tell time (before
/// the round's eval record exists) so `observe` stays idempotent across
/// daemon restarts: a re-delivered observe finds the ack and returns
/// it instead of being treated as new.  The tuple is stored exactly as
/// the client sent it (pre-funnel); a restart replays it through the
/// engine's deterministic quarantine/censoring funnel and lands on the
/// same eval record bytes.  Never pruned.
struct ObserveAck {
  std::uint64_t index = 0;
  sparksim::RunStatus status = sparksim::RunStatus::kOk;
  double value_s = 0.0;
  double cost_s = 0.0;
};

/// Reaper audit record: lease <lease> of suggestion <index> expired and
/// the suggestion returned to the pending pool.  Kept for the life of
/// the session (and consulted for lease-id monotonicity on restart).
struct LeaseExpiry {
  std::uint64_t index = 0;
  std::uint64_t lease = 0;
};

/// Everything needed to resume a killed tuning session with an identical
/// continuation.  The journal grows by one record per completed
/// evaluation; all other fields are fixed at session start.
struct SessionCheckpoint {
  std::uint64_t seed = 0;         ///< tuner seed of the session
  int budget = 0;                 ///< total evaluation budget
  std::string workload;           ///< cache key (workload kind)
  std::vector<std::size_t> selected;  ///< tuned parameter indices
  /// Objective seed draws consumed by parameter selection before the BO
  /// session started (0 on a selection-cache hit).
  std::uint64_t selection_seed_draws = 0;
  double selection_cost_s = 0.0;
  /// Memoized configurations blended into the initial design; recorded so
  /// the resumed engine regenerates the same initial sample plan.
  std::vector<MemoizedConfig> memoized;
  /// Evaluation seed-stream mode of the session.  false: evaluations
  /// consumed the objective's sequential stream (detached mode); true:
  /// each evaluation's stream was derived from (seed, eval_index)
  /// (scheduler mode, any --parallel value).  A checkpoint only resumes
  /// under the same mode — the continuation would silently diverge
  /// otherwise.
  bool indexed_seeding = false;
  /// Racing signature the session ran under (exec::racing_signature).
  /// Empty means racing off; the `racing` record is only emitted when
  /// non-empty and not "off", so racing-off journals are byte-identical
  /// to releases without the racing layer.
  std::string racing_mode;
  /// True for ask/tell (`mode=external`) sessions: evaluations arrive
  /// from an external executor via suggest/observe instead of the
  /// simulator.  External sessions always use indexed seeding (external
  /// evaluations consume no objective seed draws).  A checkpoint only
  /// resumes under the same mode.
  bool external = false;
  std::vector<EvalRecord> evaluations;  ///< completed-evaluation journal
  /// Pending (proposed, not yet resolved) suggestions of an external
  /// session, in index order.  Empty for internal sessions and for any
  /// external session idle between batches.
  std::vector<SuggestRecord> suggests;
  /// Accepted external observations, in acceptance order.  Never pruned:
  /// the idempotency ledger must survive both flush cycles and restarts.
  std::vector<ObserveAck> observe_acks;
  /// Reaper audit trail, in expiry order.
  std::vector<LeaseExpiry> lease_expiries;
  /// Degradation-ladder rungs taken so far, in canonical (iteration)
  /// order.  Cleared and regenerated by the engine on resume.
  std::vector<DegradeEvent> degrade_events;
  /// Racing/deadline kills taken so far.  Kept (not regenerated) on
  /// resume — see KillEvent.
  std::vector<KillEvent> kill_events;
};

/// Restores canonical order after an out-of-order (parallel) journal:
/// sorts records by eval index and truncates at the first gap or
/// duplicate, leaving the longest replayable prefix 0,1,2,...  Returns
/// the number of records dropped (0 for any sequential journal).
std::size_t canonicalize_journal(SessionCheckpoint& session);

/// Serializes both caches to a stream.  Returns the number of records.
std::size_t save_state(const ParameterSelectionCache& selection,
                       const ConfigMemoizationBuffer& memo,
                       std::ostream& out);

/// Restores both caches from a stream previously written by save_state.
/// Existing entries are kept; loaded entries overwrite/merge per workload.
/// Throws InvalidArgument on malformed input.  Returns records loaded.
std::size_t load_state(std::istream& in, ParameterSelectionCache& selection,
                       ConfigMemoizationBuffer& memo);

/// Convenience file wrappers.  Return false when the file cannot be
/// opened (a missing state file is not an error for a fresh install).
bool save_state_file(const ParameterSelectionCache& selection,
                     const ConfigMemoizationBuffer& memo,
                     const std::string& path);
bool load_state_file(const std::string& path,
                     ParameterSelectionCache& selection,
                     ConfigMemoizationBuffer& memo);

/// How load_session treats a torn or corrupt journal.
enum class LoadMode {
  kStrict,   ///< any bad frame / malformed record throws InvalidArgument
  kRecover,  ///< truncate at the first bad record, keep the valid prefix
};

/// Durability of save_session_file.
enum class SyncPolicy {
  kNone,   ///< rely on the OS page cache (default; write-then-rename only)
  kFsync,  ///< fsync the checkpoint and its directory before returning
};

/// What a load actually did — populated by the LoadMode overloads.
struct SessionLoadReport {
  std::size_t evaluations = 0;      ///< eval records loaded
  std::size_t dropped_records = 0;  ///< journal lines discarded (recover)
  bool recovered = false;           ///< true when anything was dropped
  int version = 0;                  ///< journal format version (1, 2, 3)
};

/// Serializes a session checkpoint (v3 framed format).  Returns the
/// journal length.
std::size_t save_session(const SessionCheckpoint& session, std::ostream& out);

/// Restores a checkpoint written by save_session (v3) or by older
/// releases (v2/v1, read-only).  Strict mode: throws InvalidArgument on
/// malformed input.  Returns the journal length.
std::size_t load_session(std::istream& in, SessionCheckpoint& session);

/// LoadMode-aware variant.  In kRecover, a v3 journal with a torn or
/// bit-flipped tail loads its longest valid record prefix and never
/// throws (a corrupt header yields an empty checkpoint); legacy v2/v1
/// journals are always parsed strictly.  `source` labels error messages
/// (file path); `report`, when non-null, receives what happened.
std::size_t load_session(std::istream& in, SessionCheckpoint& session,
                         LoadMode mode, SessionLoadReport* report = nullptr,
                         const std::string& source = "<stream>");

/// File wrappers; save replaces the file atomically enough for a
/// kill-anytime workflow (write then rename; SyncPolicy::kFsync adds
/// fsync-per-checkpoint durability).  Load returns false when the file
/// cannot be opened (no checkpoint yet).
bool save_session_file(const SessionCheckpoint& session,
                       const std::string& path,
                       SyncPolicy sync = SyncPolicy::kNone);
bool load_session_file(const std::string& path, SessionCheckpoint& session,
                       LoadMode mode = LoadMode::kStrict,
                       SessionLoadReport* report = nullptr);

}  // namespace robotune::core
