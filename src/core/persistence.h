// Disk persistence for ROBOTune's memoized state and for in-flight
// tuning-session checkpoints.
//
// The paper's memoized sampling (§3.2) reuses knowledge "from prior
// sessions"; for a deployed tuner those sessions span process lifetimes,
// so the parameter-selection cache and the configuration memoization
// buffer can be saved to and restored from a plain-text file.
//
// Format (line oriented, whitespace separated, '#' comments):
//   robotune-state v1
//   selection <workload> <n> <idx...>
//   memo <workload> <value_s> <dim> <unit...>
//
// Session checkpoints make the tuning loop itself restartable: the BO
// engine journals every completed evaluation, and a session killed
// mid-budget resumes from the journal with an identical continuation —
// replayed evaluations rebuild the guard, surrogate, and RNG state
// deterministically instead of re-running the cluster.
//
// Checkpoint format (v2; v1 files — no eval index, no seeding line —
// are still read, with indices assigned by file position):
//   robotune-session v2
//   meta <seed> <budget> <workload>
//   seeding sequential|indexed
//   selected <n> <idx...>
//   selection-draws <n>
//   selection-cost <seconds>
//   memo <value_s> <dim> <unit...>
//   eval <index> <status> <value_s> <cost_s> <stopped> <transient>
//        <attempts> <dim> <unit...>
//
// A parallel session journals evaluations in *completion* order, which
// under concurrency is not index order and can have holes after a crash
// (eval 7 finished, eval 6 was in flight).  canonicalize_journal sorts
// the records into index order and truncates at the first gap, restoring
// the contiguous prefix that replay needs.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "core/memoization.h"
#include "sparksim/engine.h"

namespace robotune::core {

/// One journaled evaluation of a checkpointed session.
struct EvalRecord {
  /// Canonical (session-wide, 0-based) evaluation index.  Sequential
  /// sessions journal in index order; parallel sessions journal in
  /// completion order and rely on this field to replay canonically.
  std::uint64_t index = 0;
  std::vector<double> unit;  ///< full-space unit vector evaluated
  double value_s = 0.0;
  double cost_s = 0.0;
  sparksim::RunStatus status = sparksim::RunStatus::kOk;
  bool stopped_early = false;
  bool transient = false;
  /// Simulator attempts (= objective seed draws) the evaluation consumed;
  /// sequential-seeding resume fast-forwards the seed stream by this much
  /// per record (indexed-seeding sessions skip indices instead).
  int attempts = 1;
};

/// Everything needed to resume a killed tuning session with an identical
/// continuation.  The journal grows by one record per completed
/// evaluation; all other fields are fixed at session start.
struct SessionCheckpoint {
  std::uint64_t seed = 0;         ///< tuner seed of the session
  int budget = 0;                 ///< total evaluation budget
  std::string workload;           ///< cache key (workload kind)
  std::vector<std::size_t> selected;  ///< tuned parameter indices
  /// Objective seed draws consumed by parameter selection before the BO
  /// session started (0 on a selection-cache hit).
  std::uint64_t selection_seed_draws = 0;
  double selection_cost_s = 0.0;
  /// Memoized configurations blended into the initial design; recorded so
  /// the resumed engine regenerates the same initial sample plan.
  std::vector<MemoizedConfig> memoized;
  /// Evaluation seed-stream mode of the session.  false: evaluations
  /// consumed the objective's sequential stream (detached mode); true:
  /// each evaluation's stream was derived from (seed, eval_index)
  /// (scheduler mode, any --parallel value).  A checkpoint only resumes
  /// under the same mode — the continuation would silently diverge
  /// otherwise.
  bool indexed_seeding = false;
  std::vector<EvalRecord> evaluations;  ///< completed-evaluation journal
};

/// Restores canonical order after an out-of-order (parallel) journal:
/// sorts records by eval index and truncates at the first gap or
/// duplicate, leaving the longest replayable prefix 0,1,2,...  Returns
/// the number of records dropped (0 for any sequential journal).
std::size_t canonicalize_journal(SessionCheckpoint& session);

/// Serializes both caches to a stream.  Returns the number of records.
std::size_t save_state(const ParameterSelectionCache& selection,
                       const ConfigMemoizationBuffer& memo,
                       std::ostream& out);

/// Restores both caches from a stream previously written by save_state.
/// Existing entries are kept; loaded entries overwrite/merge per workload.
/// Throws InvalidArgument on malformed input.  Returns records loaded.
std::size_t load_state(std::istream& in, ParameterSelectionCache& selection,
                       ConfigMemoizationBuffer& memo);

/// Convenience file wrappers.  Return false when the file cannot be
/// opened (a missing state file is not an error for a fresh install).
bool save_state_file(const ParameterSelectionCache& selection,
                     const ConfigMemoizationBuffer& memo,
                     const std::string& path);
bool load_state_file(const std::string& path,
                     ParameterSelectionCache& selection,
                     ConfigMemoizationBuffer& memo);

/// Serializes a session checkpoint.  Returns the journal length.
std::size_t save_session(const SessionCheckpoint& session, std::ostream& out);

/// Restores a checkpoint written by save_session.  Throws InvalidArgument
/// on malformed input.  Returns the journal length.
std::size_t load_session(std::istream& in, SessionCheckpoint& session);

/// File wrappers; save replaces the file atomically enough for a
/// kill-anytime workflow (write then rename).  Load returns false when
/// the file cannot be opened (no checkpoint yet).
bool save_session_file(const SessionCheckpoint& session,
                       const std::string& path);
bool load_session_file(const std::string& path, SessionCheckpoint& session);

}  // namespace robotune::core
