// Memoized Sampling state (paper §3.2): the parameter-selection cache and
// the configuration memoization buffer.
//
// Both are keyed by the *workload* (not the dataset): the paper observes
// that high-impact parameters are stable across dataset sizes of the same
// workload, and that good configurations for one dataset seed the search
// for another.
#pragma once

#include <cstddef>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace robotune::core {

/// Workload → indices of the selected high-impact parameters.
class ParameterSelectionCache {
 public:
  bool contains(const std::string& workload) const {
    return entries_.count(workload) != 0;
  }

  std::optional<std::vector<std::size_t>> lookup(
      const std::string& workload) const {
    const auto it = entries_.find(workload);
    if (it == entries_.end()) return std::nullopt;
    return it->second;
  }

  void store(const std::string& workload,
             std::vector<std::size_t> selected) {
    entries_[workload] = std::move(selected);
  }

  std::size_t size() const noexcept { return entries_.size(); }
  void clear() { entries_.clear(); }

  /// Read-only view of all entries (persistence, diagnostics).
  const std::map<std::string, std::vector<std::size_t>>& entries() const {
    return entries_;
  }

 private:
  std::map<std::string, std::vector<std::size_t>> entries_;
};

/// A remembered configuration and the execution time it achieved.
struct MemoizedConfig {
  std::vector<double> unit;  ///< full-space unit vector
  double value_s = 0.0;
};

/// Workload → the best few configurations from prior tuning sessions.
/// `best(workload, k)` returns up to k configurations ordered best-first
/// (the paper pulls 4).
class ConfigMemoizationBuffer {
 public:
  explicit ConfigMemoizationBuffer(std::size_t capacity_per_workload = 8)
      : capacity_(capacity_per_workload) {}

  bool contains(const std::string& workload) const {
    const auto it = entries_.find(workload);
    return it != entries_.end() && !it->second.empty();
  }

  /// Records a configuration; keeps only the `capacity` best per workload.
  void store(const std::string& workload, MemoizedConfig config);

  /// Up to `k` best remembered configurations, best first.
  std::vector<MemoizedConfig> best(const std::string& workload,
                                   std::size_t k) const;

  std::size_t size(const std::string& workload) const {
    const auto it = entries_.find(workload);
    return it == entries_.end() ? 0 : it->second.size();
  }
  void clear() { entries_.clear(); }

  /// Read-only view of all entries (persistence, diagnostics).
  const std::map<std::string, std::vector<MemoizedConfig>>& entries() const {
    return entries_;
  }

 private:
  std::size_t capacity_;
  std::map<std::string, std::vector<MemoizedConfig>> entries_;
};

}  // namespace robotune::core
