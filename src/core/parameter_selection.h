// Parameter Selection (paper §3.3): dimension reduction of the 44-dim
// configuration space via a Random-Forests model and Mean-Decrease-in-
// Accuracy permutation importance on grouped (collinear/joint) parameters.
//
// For an unseen workload, `generic_samples` LHS configurations (paper:
// 100) are evaluated, an RF regressor is fit on (unit configuration →
// observed time), and every joint parameter group whose permutation drops
// the OOB R² by at least `importance_threshold` (paper: 0.05) is selected.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "ml/permutation_importance.h"
#include "ml/random_forest.h"
#include "sparksim/objective.h"
#include "tuners/tuner.h"

namespace robotune::core {

struct SelectionOptions {
  std::size_t generic_samples = 100;
  double importance_threshold = 0.05;
  int permutation_repeats = 10;
  std::size_t forest_trees = 400;
  /// Features examined per split; 0 = all 44 (plain bagging).  With ~100
  /// samples in 44 dimensions the classic p/3 subsampling hides the weak
  /// signal; full-width splits are markedly more accurate here.
  std::size_t forest_mtry = 0;
  /// Model log(time) rather than time: execution times are positive and
  /// right-skewed (timeout/failure tail), and the multiplicative effects
  /// of most Spark parameters are additive in log space.
  bool log_target = true;
  /// Static guard for the sample-collection executions (§4: a static
  /// threshold protects the initial samples).
  double static_threshold_s = 480.0;
  /// Robustness floor: always keep at least this many top-ranked groups
  /// even when fewer clear the importance threshold.  At 100 samples the
  /// MDA estimates of mid-tier groups are noisy enough that an unlucky
  /// draw can leave the BO stage with a uselessly small subspace; the
  /// threshold then only *prunes beyond* the floor.  Set 0 to disable.
  std::size_t min_groups = 4;
  /// Joint groups (by group name) included in the selection regardless of
  /// their measured importance.  The paper reports that the domain-
  /// knowledge "executor size" group (spark.executor.cores +
  /// spark.executor.memory) is "common in the selected set of high-impact
  /// parameters of all the tested workloads" (§5.6); pinning it makes the
  /// selection robust to an unlucky 100-sample draw.  Clear to disable.
  std::vector<std::string> always_selected_groups = {
      "spark.executor.cores+spark.executor.memory.mb"};
  std::uint64_t seed = 101;
};

struct SelectionReport {
  /// Indices (into the config space) of the selected parameters, expanded
  /// from the selected joint groups, ascending.
  std::vector<std::size_t> selected;
  /// Ranked group importances (descending mean OOB-R² drop).
  std::vector<ml::ImportanceResult> importances;
  /// Wall-clock cost of evaluating the generic samples (one-time cost
  /// discussed in §5.5; excluded from the §5.3 search cost).
  double sampling_cost_s = 0.0;
  double oob_r2 = 0.0;
  /// The evaluations performed (reusable as extra training data).
  std::vector<tuners::Evaluation> evaluations;
};

/// Builds the joint-parameter groups for a config space from name-based
/// group definitions; parameters not mentioned become singleton groups.
std::vector<ml::FeatureGroup> build_feature_groups(
    const sparksim::ConfigSpace& space,
    const std::vector<std::vector<std::string>>& joint_names);

/// Runs the full selection pipeline against the objective.
SelectionReport select_parameters(
    sparksim::SparkObjective& objective,
    const std::vector<std::vector<std::string>>& joint_names,
    const SelectionOptions& options = {});

/// Selection from an already-collected sample set (used by the Fig. 7
/// recall study, which re-trains on shrinking subsets).
SelectionReport select_parameters_from_samples(
    const sparksim::ConfigSpace& space,
    const std::vector<std::vector<double>>& units,
    const std::vector<double>& values,
    const std::vector<std::vector<std::string>>& joint_names,
    const SelectionOptions& options = {});

}  // namespace robotune::core
