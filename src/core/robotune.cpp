#include "core/robotune.h"

#include <algorithm>

#include "common/error.h"

namespace robotune::core {

RoboTune::RoboTune(RoboTuneOptions options) : options_(std::move(options)) {
  if (options_.joint_groups.empty()) {
    options_.joint_groups = sparksim::spark24_joint_parameter_groups();
  }
}

tuners::TuningResult RoboTune::tune(sparksim::SparkObjective& objective,
                                    int budget, std::uint64_t seed) {
  return tune_report(objective, budget, seed).tuning;
}

RoboTuneReport RoboTune::tune_report(sparksim::SparkObjective& objective,
                                     int budget, std::uint64_t seed,
                                     const BoObserver& observer) {
  RoboTuneReport report;
  const std::string workload_key =
      sparksim::to_string(objective.workload().kind);

  // ---- Parameter selection (cache hit or RF pipeline) ------------------
  if (auto cached = selection_cache_.lookup(workload_key)) {
    report.selected = *cached;
    report.selection_cache_hit = true;
  } else {
    SelectionOptions sel = options_.selection;
    sel.seed ^= seed;
    report.selection_report =
        select_parameters(objective, options_.joint_groups, sel);
    report.selected = report.selection_report.selected;
    report.selection_cost_s = report.selection_report.sampling_cost_s;
    // Defensive fallback: if noise buried every parameter below the
    // threshold, tune the top-5 ranked groups instead of nothing.
    if (report.selected.empty()) {
      for (std::size_t gi = 0;
           gi < std::min<std::size_t>(5, report.selection_report.importances.size());
           ++gi) {
        for (std::size_t f :
             report.selection_report.importances[gi].group.features) {
          report.selected.push_back(f);
        }
      }
      std::sort(report.selected.begin(), report.selected.end());
    }
    selection_cache_.store(workload_key, report.selected);
  }

  // ---- Memoized configurations ------------------------------------------
  const auto memoized =
      memo_buffer_.best(workload_key, options_.memoize_top_k);
  report.used_memoized_configs = !memoized.empty();

  // ---- BO search -----------------------------------------------------------
  BoOptions bo = options_.bo;
  bo.budget = budget;
  bo.seed = seed;
  BoEngine engine(report.selected, objective.space().default_unit(), bo);
  report.bo = engine.run(objective, memoized, observer);
  report.tuning = report.bo.tuning;
  report.tuning.tuner = name();

  // ---- Store the best configurations back into the buffer -----------------
  std::vector<const tuners::Evaluation*> ok_evals;
  for (const auto& e : report.tuning.history) {
    if (e.ok()) ok_evals.push_back(&e);
  }
  std::sort(ok_evals.begin(), ok_evals.end(),
            [](const tuners::Evaluation* a, const tuners::Evaluation* b) {
              return a->value_s < b->value_s;
            });
  const std::size_t keep = std::min(options_.memoize_top_k, ok_evals.size());
  for (std::size_t i = 0; i < keep; ++i) {
    memo_buffer_.store(workload_key, {ok_evals[i]->unit, ok_evals[i]->value_s});
  }
  return report;
}

}  // namespace robotune::core
