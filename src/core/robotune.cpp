#include "core/robotune.h"

#include <algorithm>

#include "common/error.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace robotune::core {

RoboTune::RoboTune(RoboTuneOptions options) : options_(std::move(options)) {
  if (options_.joint_groups.empty()) {
    options_.joint_groups = sparksim::spark24_joint_parameter_groups();
  }
}

tuners::TuningResult RoboTune::tune(sparksim::SparkObjective& objective,
                                    int budget, std::uint64_t seed) {
  return tune_report(objective, budget, seed, nullptr, nullptr, scheduler())
      .tuning;
}

RoboTuneReport RoboTune::tune_report(sparksim::SparkObjective& objective,
                                     int budget, std::uint64_t seed,
                                     const BoObserver& observer,
                                     SessionLog* session,
                                     exec::EvalScheduler* scheduler,
                                     ExternalBridge* external) {
  RoboTuneReport report;
  const std::string workload_key =
      sparksim::to_string(objective.workload().kind);
  obs::Span session_span("session", "core");
  session_span.arg("tuner", name());
  session_span.arg("workload", workload_key);
  session_span.arg("budget", budget);
  session_span.arg("seed", seed);

  // A loaded checkpoint (non-empty selection) resumes: selection and the
  // memoized-config snapshot come from the checkpoint, and the objective's
  // seed stream is fast-forwarded past what selection consumed originally.
  const bool resuming = session != nullptr && !session->state.selected.empty();
  if (resuming) {
    require(session->state.seed == seed,
            "tune_report: checkpoint seed does not match the session seed");
    require(session->state.budget == budget,
            "tune_report: checkpoint budget does not match");
    require(session->state.workload == workload_key,
            "tune_report: checkpoint was taken for workload " +
                session->state.workload);
  }

  // ---- Parameter selection (checkpoint, cache hit, or RF pipeline) ------
  // Selection is the session's longest non-yielding stretch, so give the
  // service turnstile one boundary before it starts.
  if (const auto& pace = pacing_yield()) pace();
  if (resuming) {
    report.selected = session->state.selected;
    report.selection_cost_s = session->state.selection_cost_s;
    objective.skip_seed_draws(session->state.selection_seed_draws);
    selection_cache_.store(workload_key, report.selected);
  } else if (auto cached = selection_cache_.lookup(workload_key)) {
    obs::count("memo.selection_cache.hits");
    report.selected = *cached;
    report.selection_cache_hit = true;
  } else {
    obs::count("memo.selection_cache.misses");
    obs::Span span("selection", "core");
    span.arg("workload", workload_key);
    const std::uint64_t draws_before = objective.seed_draws();
    SelectionOptions sel = options_.selection;
    sel.seed ^= seed;
    report.selection_report =
        select_parameters(objective, options_.joint_groups, sel);
    report.selected = report.selection_report.selected;
    report.selection_cost_s = report.selection_report.sampling_cost_s;
    // Defensive fallback: if noise buried every parameter below the
    // threshold, tune the top-5 ranked groups instead of nothing.
    if (report.selected.empty()) {
      for (std::size_t gi = 0;
           gi < std::min<std::size_t>(5, report.selection_report.importances.size());
           ++gi) {
        for (std::size_t f :
             report.selection_report.importances[gi].group.features) {
          report.selected.push_back(f);
        }
      }
      std::sort(report.selected.begin(), report.selected.end());
    }
    selection_cache_.store(workload_key, report.selected);
    if (session != nullptr) {
      session->state.selection_seed_draws =
          objective.seed_draws() - draws_before;
    }
  }

  // ---- Memoized configurations ------------------------------------------
  const auto memoized =
      resuming ? session->state.memoized
               : memo_buffer_.best(workload_key, options_.memoize_top_k);
  report.used_memoized_configs = !memoized.empty();

  // Snapshot the fixed session metadata before the first evaluation, so
  // even the earliest checkpoint can be resumed.
  if (session != nullptr && !resuming) {
    session->state.seed = seed;
    session->state.budget = budget;
    session->state.workload = workload_key;
    session->state.selected = report.selected;
    session->state.selection_cost_s = report.selection_cost_s;
    session->state.memoized = memoized;
    // Record the seeding mode with the very first flush, so resuming an
    // early checkpoint under the wrong --parallel mode is refused rather
    // than silently diverging.  Ask/tell sessions are always indexed
    // (external evaluations consume no objective seed draws) and pin
    // their mode the same way.
    session->state.indexed_seeding = scheduler != nullptr || external != nullptr;
    session->state.external = external != nullptr;
    if (session->flush) session->flush(session->state);
  }

  // ---- BO search -----------------------------------------------------------
  BoOptions bo = options_.bo;
  bo.budget = budget;
  bo.seed = seed;
  // Tuner-level pacing (service layer) flows into the engine unless the
  // caller already wired explicit hooks through RoboTuneOptions::bo.
  if (bo.cancel == nullptr) bo.cancel = pacing_cancel();
  if (!bo.yield) bo.yield = pacing_yield();
  BoEngine engine(report.selected, objective.space().default_unit(), bo);
  report.bo =
      engine.run(objective, memoized, observer, session, scheduler, external);
  report.tuning = report.bo.tuning;
  report.tuning.tuner = name();

  // ---- Store the best configurations back into the buffer -----------------
  std::vector<const tuners::Evaluation*> ok_evals;
  for (const auto& e : report.tuning.history) {
    if (e.ok()) ok_evals.push_back(&e);
  }
  std::sort(ok_evals.begin(), ok_evals.end(),
            [](const tuners::Evaluation* a, const tuners::Evaluation* b) {
              return a->value_s < b->value_s;
            });
  const std::size_t keep = std::min(options_.memoize_top_k, ok_evals.size());
  for (std::size_t i = 0; i < keep; ++i) {
    memo_buffer_.store(workload_key, {ok_evals[i]->unit, ok_evals[i]->value_s});
  }
  return report;
}

}  // namespace robotune::core
