#include "core/parameter_selection.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"
#include "sampling/latin_hypercube.h"

namespace robotune::core {

std::vector<ml::FeatureGroup> build_feature_groups(
    const sparksim::ConfigSpace& space,
    const std::vector<std::vector<std::string>>& joint_names) {
  std::vector<ml::FeatureGroup> groups;
  std::vector<char> covered(space.size(), 0);
  for (const auto& names : joint_names) {
    ml::FeatureGroup g;
    for (const auto& name : names) {
      const auto idx = space.index_of(name);
      require(idx.has_value(),
              "build_feature_groups: unknown parameter " + name);
      require(!covered[*idx],
              "build_feature_groups: parameter in two groups: " + name);
      covered[*idx] = 1;
      g.features.push_back(*idx);
      g.name += (g.name.empty() ? "" : "+") + name;
    }
    groups.push_back(std::move(g));
  }
  for (std::size_t i = 0; i < space.size(); ++i) {
    if (!covered[i]) {
      groups.push_back({space.spec(i).name, {i}});
    }
  }
  return groups;
}

SelectionReport select_parameters_from_samples(
    const sparksim::ConfigSpace& space,
    const std::vector<std::vector<double>>& units,
    const std::vector<double>& values,
    const std::vector<std::vector<std::string>>& joint_names,
    const SelectionOptions& options) {
  require(units.size() == values.size(),
          "select_parameters_from_samples: X/y size mismatch");
  require(units.size() >= 10,
          "select_parameters_from_samples: too few samples");

  ml::Dataset data(space.size());
  for (std::size_t i = 0; i < units.size(); ++i) {
    const double y =
        options.log_target ? std::log(std::max(1e-6, values[i])) : values[i];
    data.add_row(units[i], y);
  }

  ml::ForestOptions forest_options;
  forest_options.num_trees = options.forest_trees;
  forest_options.tree.max_features =
      options.forest_mtry == 0 ? space.size() : options.forest_mtry;
  ml::RandomForest forest(forest_options, options.seed);
  forest.fit(data);

  const auto groups = build_feature_groups(space, joint_names);
  ml::ImportanceOptions imp;
  imp.repeats = options.permutation_repeats;
  imp.seed = options.seed ^ 0xabcdef12345ULL;
  auto importances = ml::permutation_importance(forest, groups, imp);

  SelectionReport report;
  report.oob_r2 = forest.oob_r2();
  auto picked =
      ml::select_important(importances, options.importance_threshold);
  // Robustness floor: importances are sorted descending, so extending with
  // the next ranked groups keeps the best-supported candidates.
  for (std::size_t gi = 0;
       picked.size() < options.min_groups && gi < importances.size(); ++gi) {
    if (std::find(picked.begin(), picked.end(), gi) == picked.end()) {
      picked.push_back(gi);
    }
  }
  for (const auto& pinned : options.always_selected_groups) {
    for (std::size_t gi = 0; gi < importances.size(); ++gi) {
      if (importances[gi].group.name == pinned &&
          std::find(picked.begin(), picked.end(), gi) == picked.end()) {
        picked.push_back(gi);
      }
    }
  }
  for (std::size_t gi : picked) {
    for (std::size_t f : importances[gi].group.features) {
      report.selected.push_back(f);
    }
  }
  std::sort(report.selected.begin(), report.selected.end());
  report.selected.erase(
      std::unique(report.selected.begin(), report.selected.end()),
      report.selected.end());
  report.importances = std::move(importances);
  return report;
}

SelectionReport select_parameters(
    sparksim::SparkObjective& objective,
    const std::vector<std::vector<std::string>>& joint_names,
    const SelectionOptions& options) {
  const auto& space = objective.space();
  Rng rng(options.seed);
  const auto design = sampling::latin_hypercube(
      options.generic_samples, space.size(), rng);

  std::vector<tuners::Evaluation> evals;
  evals.reserve(design.size());
  std::vector<double> values;
  values.reserve(design.size());
  double cost = 0.0;
  for (const auto& unit : design) {
    const auto outcome =
        objective.evaluate(unit, options.static_threshold_s);
    tuners::Evaluation e;
    e.unit = unit;
    e.value_s = outcome.value_s;
    e.cost_s = outcome.cost_s;
    e.status = outcome.status;
    e.stopped_early = outcome.stopped_early;
    cost += e.cost_s;
    values.push_back(e.value_s);
    evals.push_back(std::move(e));
  }

  SelectionReport report = select_parameters_from_samples(
      space, design, values, joint_names, options);
  report.sampling_cost_s = cost;
  report.evaluations = std::move(evals);
  return report;
}

}  // namespace robotune::core
