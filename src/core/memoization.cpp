#include "core/memoization.h"

#include <algorithm>

#include "obs/metrics.h"

namespace robotune::core {

void ConfigMemoizationBuffer::store(const std::string& workload,
                                    MemoizedConfig config) {
  obs::count("memo.configs.stored");
  auto& list = entries_[workload];
  list.push_back(std::move(config));
  std::sort(list.begin(), list.end(),
            [](const MemoizedConfig& a, const MemoizedConfig& b) {
              return a.value_s < b.value_s;
            });
  if (list.size() > capacity_) list.resize(capacity_);
}

std::vector<MemoizedConfig> ConfigMemoizationBuffer::best(
    const std::string& workload, std::size_t k) const {
  const auto it = entries_.find(workload);
  if (it == entries_.end() || it->second.empty()) {
    obs::count("memo.configs.misses");
    return {};
  }
  obs::count("memo.configs.hits");
  const auto& list = it->second;
  std::vector<MemoizedConfig> out(
      list.begin(), list.begin() + std::min(k, list.size()));
  return out;
}

}  // namespace robotune::core
