// Reusable tuning-session assembly (shared by robotune_cli and the
// service daemon).
//
// A SessionSpec is the complete, serializable description of one tuning
// run: workload, tuner, budget, seed, fault/racing/parallelism knobs,
// and the durability wiring (journal path, resume/recover, fsync).  The
// SessionFactory validates a spec and builds a Session: the objective,
// evaluation scheduler, tuner, and checkpoint log are assembled exactly
// the way the CLI always did, so a daemon-hosted session and a
// standalone `robotune_cli` invocation with the same spec produce
// byte-identical journals.
//
// Specs persist as a small framed file (same CRC32 framing as the v3
// journal) so the daemon can re-create its fleet after a restart and
// detect a corrupt spec instead of replaying garbage:
//
//   robotune-spec v1
//   <crc32:8 hex> <len> workload=PR dataset=1 tuner=robotune ...
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>

#include "core/persistence.h"
#include "core/robotune.h"
#include "exec/eval_scheduler.h"
#include "sparksim/objective.h"
#include "tuners/tuner.h"

namespace robotune::core {

/// Everything needed to run (or re-run) one tuning session.  The
/// tuning-relevant fields round-trip through encode_spec/decode_spec;
/// the durability fields (checkpoint_path, resume, recover, sync) are
/// host wiring — the daemon derives them from its service root — and are
/// not serialized.
class ExternalBridge;

struct SessionSpec {
  std::string workload = "PR";  ///< PR|KM|CC|LR|TS (sparksim short name)
  int dataset = 1;              ///< Table-1 dataset, 1..3
  std::string tuner = "robotune";  ///< robotune|bestconfig|gunther|rs
  int budget = 100;
  std::uint64_t seed = 7;
  std::string metric = "time";  ///< time|coreseconds
  /// Transient-fault injection: preset name or per-site rate list (see
  /// robotune_cli --fault-profile).  Must not contain spaces.
  std::string fault_profile = "none";
  int retries = 2;
  double preempt_rate = 0.0;
  /// Evaluation workers: 0 = detached sequential seed streams; N >= 1 =
  /// scheduler mode (bit-identical results for any N).
  int parallel = 0;
  int batch = 1;              ///< BO batch width q (robotune only)
  std::string racing = "off";  ///< off|median|halving (needs parallel >= 1)
  double eval_deadline = 0.0;  ///< per-eval deadline seconds (0 = off)
  /// BO initial-design size override (0 = engine default of 20).  Small
  /// budgets — service smoke tests, the fig_service bench — need this to
  /// keep budget >= initial_samples.
  int init = 0;
  /// Parameter-selection sample-count override (0 = default 100).  The
  /// RF selection pipeline dominates a short session's wall clock; the
  /// service bench dials it down to pack hundreds of sessions into CI.
  int selection_samples = 0;
  /// Surrogate tier: exact|rff|auto (robotune only; DESIGN.md §15).
  std::string surrogate = "auto";
  /// RFF feature count override (0 = engine default of 256).
  int rff_features = 0;
  /// Hyperparameter-refit schedule: fixed|doubling|auto.
  std::string refit = "auto";
  /// Session mode: "internal" runs evaluations against the sparksim
  /// objective (everything before DESIGN.md §16); "external" is
  /// ask/tell — the session proposes configurations and blocks until an
  /// external executor observes them back (robotune only, detached
  /// scheduler, no racing).  Serialized only when external, so internal
  /// spec files stay byte-identical and pre-external daemons reject
  /// external specs cleanly via the unknown-key rule.
  std::string mode = "internal";

  // ---- host durability wiring (not serialized) --------------------------
  std::string checkpoint_path;  ///< empty = no journal
  bool resume = false;
  bool recover = false;
  SyncPolicy sync = SyncPolicy::kNone;

  /// Empty when the spec is well-formed, else a human-readable reason.
  std::string validate() const;
};

/// Serializes the tuning-relevant fields as one line of space-separated
/// key=value tokens (no framing) — the service protocol embeds this in
/// `start` requests.
std::string encode_spec_body(const SessionSpec& spec);
/// Parses encode_spec_body output and validates the result.  Durability
/// fields of `spec` are preserved.
bool decode_spec_body(const std::string& body, SessionSpec& spec,
                      std::string* error = nullptr);

/// Serializes the tuning-relevant fields as a framed spec file body.
std::string encode_spec(const SessionSpec& spec);
/// Parses encode_spec output.  Durability fields are left untouched.
/// Returns false (with `error` set, when non-null) on a malformed,
/// torn, or corrupt spec.
bool decode_spec(const std::string& text, SessionSpec& spec,
                 std::string* error = nullptr);
/// File wrappers (write-then-rename, like the journal).
bool save_spec_file(const SessionSpec& spec, const std::string& path);
bool load_spec_file(const std::string& path, SessionSpec& spec,
                    std::string* error = nullptr);

/// Point-in-time view of a running session, delivered on every journal
/// flush (robotune sessions) and once at completion (all tuners).
struct SessionProgress {
  std::size_t evaluations = 0;   ///< completed so far
  double best_value_s = 0.0;     ///< incumbent objective (inf until found)
  std::vector<double> best_unit;  ///< incumbent configuration (may be empty)
};

struct SessionOutcome {
  tuners::TuningResult result;
  /// robotune only: selection + memoization details, BoResult.
  std::optional<RoboTuneReport> report;
  bool interrupted = false;  ///< cancelled at a round boundary
  bool resumed = false;      ///< journal prefix was replayed
  std::size_t replayed = 0;  ///< evaluations replayed from the journal
  bool journal_recovered = false;  ///< recover mode dropped a torn tail
  std::size_t dropped_records = 0;
  std::string error;  ///< non-empty = the session failed (nothing ran)

  bool ok() const noexcept { return error.empty(); }
};

/// One assembled tuning session.  `run` may be called exactly once.
class Session {
 public:
  const SessionSpec& spec() const noexcept { return spec_; }

  /// Loads / saves the cross-session memoized state (selection cache +
  /// config buffer); no-ops (returning false) for non-robotune tuners.
  bool load_state(const std::string& path);
  bool save_state(const std::string& path);

  /// Attaches the ask/tell bridge an external-mode session publishes
  /// its batches through.  Must be called before run(); required when
  /// spec().mode == "external" unless the journal already holds the
  /// whole budget (standalone replay).  The caller keeps ownership and
  /// must outlive run().
  void attach_external(ExternalBridge* bridge) noexcept {
    external_ = bridge;
  }

  /// Runs the session to completion (or to cancellation).  `cancel`
  /// (nullable) is polled at round boundaries; `yield` (nullable) is the
  /// fair-scheduling hook invoked at the same boundaries; `progress`
  /// (nullable) fires on every journal flush with the incumbent best.
  ///
  /// When the session journals (spec.checkpoint_path non-empty) and ran
  /// with batch parallelism, the journal is re-flushed in canonical
  /// (eval-index) order on completion, so the final bytes are identical
  /// for any worker count; sequential sessions are already canonical and
  /// their journal bytes are never rewritten.
  SessionOutcome run(
      const std::atomic<bool>* cancel = nullptr,
      std::function<void()> yield = nullptr,
      std::function<void(const SessionProgress&)> progress = nullptr);

 private:
  friend class SessionFactory;
  explicit Session(SessionSpec spec);

  SessionSpec spec_;
  sparksim::WorkloadKind kind_;
  sparksim::ObjectiveMetric metric_;
  sparksim::FaultProfile faults_;
  exec::RacingMode racing_mode_ = exec::RacingMode::kOff;
  std::unique_ptr<tuners::Tuner> tuner_;
  RoboTune* robotune_ = nullptr;  ///< non-null when tuner is robotune
  ExternalBridge* external_ = nullptr;  ///< non-null for hosted ask/tell
  bool ran_ = false;
};

/// Parses a fault-profile string (preset name or "loss=F,fetch=F,..."
/// list); shared by the CLI and the spec decoder.
bool parse_fault_profile(const std::string& text, sparksim::FaultProfile& out);

class SessionFactory {
 public:
  /// Validates `spec` and assembles a Session.  Returns null (with
  /// `error` set, when non-null) when the spec is rejected.
  static std::unique_ptr<Session> create(const SessionSpec& spec,
                                         std::string* error = nullptr);
};

}  // namespace robotune::core
