#include "core/session.h"

#include <algorithm>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <limits>
#include <sstream>

#include "common/crc32.h"
#include "tuners/bestconfig.h"
#include "tuners/gunther.h"
#include "tuners/random_search.h"

namespace robotune::core {

namespace {

constexpr const char* kSpecHeader = "robotune-spec v1";

bool workload_from_short_name(const std::string& name,
                              sparksim::WorkloadKind& out) {
  for (auto k : sparksim::all_workloads()) {
    if (sparksim::short_name(k) == name) {
      out = k;
      return true;
    }
  }
  return false;
}

bool known_tuner(const std::string& name) {
  return name == "robotune" || name == "bestconfig" || name == "gunther" ||
         name == "rs";
}

std::string format_double(double v) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.17g", v);
  return buffer;
}

// Strict numeric field parsers: the spec is the determinism contract,
// so a malformed value (`seed=abc` silently becoming 0) must fail the
// decode the same way an unknown key does — otherwise a restart could
// replay a different session than the one that was started.

bool parse_spec_int(const std::string& text, int& out) {
  if (text.empty()) return false;
  errno = 0;
  char* end = nullptr;
  const long value = std::strtol(text.c_str(), &end, 10);
  if (errno != 0 || end != text.c_str() + text.size()) return false;
  if (value < std::numeric_limits<int>::min() ||
      value > std::numeric_limits<int>::max()) {
    return false;
  }
  out = static_cast<int>(value);
  return true;
}

bool parse_spec_u64(const std::string& text, std::uint64_t& out) {
  // strtoull silently wraps negatives ("-1" → 2^64-1): reject them.
  if (text.empty() || text[0] == '-' || text[0] == '+') return false;
  errno = 0;
  char* end = nullptr;
  const unsigned long long value = std::strtoull(text.c_str(), &end, 10);
  if (errno != 0 || end != text.c_str() + text.size()) return false;
  out = static_cast<std::uint64_t>(value);
  return true;
}

bool parse_spec_double(const std::string& text, double& out) {
  if (text.empty()) return false;
  errno = 0;
  char* end = nullptr;
  const double value = std::strtod(text.c_str(), &end);
  if (errno != 0 || end != text.c_str() + text.size()) return false;
  if (!std::isfinite(value)) return false;
  out = value;
  return true;
}

}  // namespace

bool parse_fault_profile(const std::string& text,
                         sparksim::FaultProfile& out) {
  if (sparksim::FaultProfile::from_preset(text, out)) return true;
  out = sparksim::FaultProfile{};
  std::size_t pos = 0;
  bool any = false;
  while (pos < text.size()) {
    const std::size_t comma = text.find(',', pos);
    const std::string item =
        text.substr(pos, comma == std::string::npos ? comma : comma - pos);
    const std::size_t eq = item.find('=');
    if (eq == std::string::npos) return false;
    const std::string key = item.substr(0, eq);
    char* end = nullptr;
    const double value = std::strtod(item.c_str() + eq + 1, &end);
    if (end == item.c_str() + eq + 1) return false;
    if (key == "loss") {
      out.executor_loss_per_stage = value;
    } else if (key == "fetch") {
      out.fetch_failure_per_stage = value;
    } else if (key == "straggler") {
      out.straggler_per_stage = value;
    } else if (key == "slowdown") {
      out.straggler_max_slowdown = value;
    } else {
      return false;
    }
    any = true;
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return any;
}

std::string SessionSpec::validate() const {
  sparksim::WorkloadKind kind;
  if (!workload_from_short_name(workload, kind)) {
    return "unknown workload '" + workload + "'";
  }
  if (dataset < 1 || dataset > 3) return "dataset must be 1..3";
  if (!known_tuner(tuner)) return "unknown tuner '" + tuner + "'";
  if (budget < 1) return "budget must be >= 1";
  if (metric != "time" && metric != "coreseconds") {
    return "metric must be time|coreseconds";
  }
  sparksim::FaultProfile faults;
  if (fault_profile.find(' ') != std::string::npos ||
      !parse_fault_profile(fault_profile, faults)) {
    return "bad fault profile '" + fault_profile + "'";
  }
  if (retries < 0) return "retries must be >= 0";
  if (preempt_rate < 0.0 || preempt_rate > 1.0) {
    return "preempt rate must be in [0, 1]";
  }
  if (parallel < 0) return "parallel must be >= 0";
  if (batch < 1) return "batch must be >= 1";
  exec::RacingMode racing_mode;
  if (!exec::racing_mode_from_string(racing, racing_mode)) {
    return "bad racing mode '" + racing + "' (off|median|halving)";
  }
  if ((racing_mode != exec::RacingMode::kOff || eval_deadline > 0.0) &&
      parallel < 1) {
    return "racing/eval-deadline need the batch scheduler (parallel >= 1)";
  }
  if (eval_deadline < 0.0) return "eval deadline must be >= 0";
  if (init < 0 || selection_samples < 0) {
    return "init/selection-samples must be >= 0";
  }
  if (tuner == "robotune") {
    const int effective_init = init > 0 ? init : 20;
    if (init > 0 && init < 2) return "init must be >= 2";
    if (budget < effective_init) {
      return "budget smaller than the BO initial sample count";
    }
  }
  if (!parse_surrogate_tier(surrogate)) {
    return "bad surrogate tier '" + surrogate + "' (exact|rff|auto)";
  }
  if (rff_features < 0) return "rff-features must be >= 0";
  if (!parse_refit_schedule(refit)) {
    return "bad refit schedule '" + refit + "' (fixed|doubling|auto)";
  }
  if (mode != "internal" && mode != "external") {
    return "bad session mode '" + mode + "' (internal|external)";
  }
  if (mode == "external") {
    // Ask/tell constraints: only the BO engine speaks the protocol, and
    // the batch scheduler / racing layer drive simulator runs an
    // external executor replaces outright.
    if (tuner != "robotune") return "external mode requires tuner=robotune";
    if (parallel != 0) {
      return "external mode is incompatible with parallel workers "
             "(evaluations run outside the daemon)";
    }
    if (racing != "off" || eval_deadline > 0.0) {
      return "external mode is incompatible with racing/eval-deadline "
             "(lease timeouts bound external evaluations instead)";
    }
  }
  return {};
}

std::string encode_spec_body(const SessionSpec& spec) {
  std::ostringstream payload;
  payload << "workload=" << spec.workload << " dataset=" << spec.dataset
          << " tuner=" << spec.tuner << " budget=" << spec.budget
          << " seed=" << spec.seed << " metric=" << spec.metric
          << " fault=" << spec.fault_profile << " retries=" << spec.retries
          << " preempt=" << format_double(spec.preempt_rate)
          << " parallel=" << spec.parallel << " batch=" << spec.batch
          << " racing=" << spec.racing
          << " deadline=" << format_double(spec.eval_deadline)
          << " init=" << spec.init
          << " selsamples=" << spec.selection_samples
          << " surrogate=" << spec.surrogate
          << " rff=" << spec.rff_features << " refit=" << spec.refit;
  // Emitted only when external, so internal spec files stay
  // byte-identical to pre-external releases (and pre-external daemons
  // reject external specs via the unknown-key hard error).
  if (spec.mode == "external") payload << " mode=" << spec.mode;
  return payload.str();
}

bool decode_spec_body(const std::string& body, SessionSpec& spec,
                      std::string* error) {
  const auto fail = [&](const std::string& why) {
    if (error != nullptr) *error = why;
    return false;
  };
  SessionSpec parsed;
  std::istringstream tokens(body);
  std::string token;
  bool numeric_ok = true;
  while (tokens >> token) {
    const std::size_t eq = token.find('=');
    if (eq == std::string::npos) return fail("bad spec token '" + token + "'");
    const std::string key = token.substr(0, eq);
    const std::string value = token.substr(eq + 1);
    if (key == "workload") {
      parsed.workload = value;
    } else if (key == "dataset") {
      numeric_ok = parse_spec_int(value, parsed.dataset);
    } else if (key == "tuner") {
      parsed.tuner = value;
    } else if (key == "budget") {
      numeric_ok = parse_spec_int(value, parsed.budget);
    } else if (key == "seed") {
      numeric_ok = parse_spec_u64(value, parsed.seed);
    } else if (key == "metric") {
      parsed.metric = value;
    } else if (key == "fault") {
      parsed.fault_profile = value;
    } else if (key == "retries") {
      numeric_ok = parse_spec_int(value, parsed.retries);
    } else if (key == "preempt") {
      numeric_ok = parse_spec_double(value, parsed.preempt_rate);
    } else if (key == "parallel") {
      numeric_ok = parse_spec_int(value, parsed.parallel);
    } else if (key == "batch") {
      numeric_ok = parse_spec_int(value, parsed.batch);
    } else if (key == "racing") {
      parsed.racing = value;
    } else if (key == "deadline") {
      numeric_ok = parse_spec_double(value, parsed.eval_deadline);
    } else if (key == "init") {
      numeric_ok = parse_spec_int(value, parsed.init);
    } else if (key == "selsamples") {
      numeric_ok = parse_spec_int(value, parsed.selection_samples);
    } else if (key == "surrogate") {
      parsed.surrogate = value;
    } else if (key == "rff") {
      numeric_ok = parse_spec_int(value, parsed.rff_features);
    } else if (key == "refit") {
      parsed.refit = value;
    } else if (key == "mode") {
      parsed.mode = value;
    } else {
      // Unknown keys from a newer writer are a hard error: the spec is
      // the determinism contract, so silently dropping a knob could
      // replay a different session than the one that was started.
      return fail("unknown spec key '" + key + "'");
    }
    if (!numeric_ok) {
      return fail("bad spec value '" + value + "' for key '" + key + "'");
    }
  }
  if (const auto why = parsed.validate(); !why.empty()) return fail(why);
  // Keep the caller's durability wiring.
  parsed.checkpoint_path = spec.checkpoint_path;
  parsed.resume = spec.resume;
  parsed.recover = spec.recover;
  parsed.sync = spec.sync;
  spec = parsed;
  return true;
}

std::string encode_spec(const SessionSpec& spec) {
  const std::string body = encode_spec_body(spec);
  char head[32];
  std::snprintf(head, sizeof(head), "%08x %zu ", crc32(body), body.size());
  return std::string(kSpecHeader) + "\n" + head + body + "\n";
}

bool decode_spec(const std::string& text, SessionSpec& spec,
                 std::string* error) {
  const auto fail = [&](const std::string& why) {
    if (error != nullptr) *error = why;
    return false;
  };
  std::istringstream in(text);
  std::string line;
  if (!std::getline(in, line) || line != kSpecHeader) {
    return fail("bad spec header");
  }
  if (!std::getline(in, line)) return fail("missing spec record");
  // Frame: "<crc32:8 hex> <len> <payload>".
  if (line.size() < 10 || line[8] != ' ') return fail("bad spec frame");
  std::uint32_t crc = 0;
  for (int i = 0; i < 8; ++i) {
    const char c = line[static_cast<std::size_t>(i)];
    std::uint32_t nibble = 0;
    if (c >= '0' && c <= '9') {
      nibble = static_cast<std::uint32_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      nibble = static_cast<std::uint32_t>(c - 'a' + 10);
    } else {
      return fail("bad spec frame checksum field");
    }
    crc = (crc << 4) | nibble;
  }
  const std::size_t len_end = line.find(' ', 9);
  if (len_end == std::string::npos) return fail("bad spec frame length");
  std::size_t len = 0;
  for (std::size_t i = 9; i < len_end; ++i) {
    if (line[i] < '0' || line[i] > '9') return fail("bad spec frame length");
    len = len * 10 + static_cast<std::size_t>(line[i] - '0');
  }
  const std::string body = line.substr(len_end + 1);
  if (body.size() != len) return fail("spec frame length mismatch (torn)");
  if (crc32(body) != crc) return fail("spec checksum mismatch (corrupt)");
  return decode_spec_body(body, spec, error);
}

bool save_spec_file(const SessionSpec& spec, const std::string& path) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::trunc);
    if (!out) return false;
    out << encode_spec(spec);
    if (!out) return false;
  }
  return std::rename(tmp.c_str(), path.c_str()) == 0;
}

bool load_spec_file(const std::string& path, SessionSpec& spec,
                    std::string* error) {
  std::ifstream in(path);
  if (!in) {
    if (error != nullptr) *error = "cannot open " + path;
    return false;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return decode_spec(buffer.str(), spec, error);
}

Session::Session(SessionSpec spec) : spec_(std::move(spec)) {
  workload_from_short_name(spec_.workload, kind_);
  metric_ = spec_.metric == "coreseconds"
                ? sparksim::ObjectiveMetric::kCoreSeconds
                : sparksim::ObjectiveMetric::kExecutionTime;
  parse_fault_profile(spec_.fault_profile, faults_);
  faults_.preemption_per_stage = spec_.preempt_rate;
  exec::racing_mode_from_string(spec_.racing, racing_mode_);

  if (spec_.tuner == "robotune") {
    RoboTuneOptions options;
    options.bo.batch_size = spec_.batch;
    if (spec_.init > 0) options.bo.initial_samples = spec_.init;
    if (const auto tier = parse_surrogate_tier(spec_.surrogate)) {
      options.bo.surrogate = *tier;
    }
    if (spec_.rff_features > 0) options.bo.rff_features = spec_.rff_features;
    if (const auto schedule = parse_refit_schedule(spec_.refit)) {
      options.bo.refit_schedule = *schedule;
    }
    if (spec_.selection_samples > 0) {
      options.selection.generic_samples =
          static_cast<std::size_t>(spec_.selection_samples);
    }
    auto tuner = std::make_unique<RoboTune>(options);
    robotune_ = tuner.get();
    tuner_ = std::move(tuner);
  } else if (spec_.tuner == "bestconfig") {
    tuner_ = std::make_unique<tuners::BestConfig>();
  } else if (spec_.tuner == "gunther") {
    tuner_ = std::make_unique<tuners::Gunther>();
  } else {
    tuner_ = std::make_unique<tuners::RandomSearch>();
  }
}

bool Session::load_state(const std::string& path) {
  if (robotune_ == nullptr) return false;
  return load_state_file(path, robotune_->selection_cache(),
                         robotune_->memo_buffer());
}

bool Session::save_state(const std::string& path) {
  if (robotune_ == nullptr) return false;
  return save_state_file(robotune_->selection_cache(),
                         robotune_->memo_buffer(), path);
}

SessionOutcome Session::run(
    const std::atomic<bool>* cancel, std::function<void()> yield,
    std::function<void(const SessionProgress&)> progress) {
  SessionOutcome outcome;
  if (ran_) {
    outcome.error = "session already ran";
    return outcome;
  }
  ran_ = true;

  sparksim::SparkObjective objective(
      sparksim::ClusterSpec::paper_testbed(),
      sparksim::make_workload(kind_, spec_.dataset),
      sparksim::spark24_config_space(), spec_.seed * 7919, 480.0, 0.04,
      metric_);
  objective.set_fault_profile(faults_);
  if (faults_.active()) {
    sparksim::RetryPolicy retry;
    retry.max_retries = std::max(0, spec_.retries);
    objective.set_retry_policy(retry);
  }

  std::unique_ptr<exec::EvalScheduler> scheduler;
  if (spec_.parallel >= 1) {
    exec::SchedulerOptions sched;
    sched.parallelism = spec_.parallel;
    sched.racing.mode = racing_mode_;
    sched.racing.deadline_s = spec_.eval_deadline;
    scheduler = std::make_unique<exec::EvalScheduler>(sched);
  }

  tuner_->set_pacing(cancel, std::move(yield));

  // Incumbent-best extraction for the progress hook: successful
  // observations only (failed/penalized values are not a configuration
  // anyone should be handed as "current best").
  const auto best_of = [](const SessionCheckpoint& state) {
    SessionProgress p;
    p.evaluations = state.evaluations.size();
    p.best_value_s = std::numeric_limits<double>::infinity();
    for (const auto& e : state.evaluations) {
      if (e.status != sparksim::RunStatus::kOk) continue;
      if (e.value_s < p.best_value_s) {
        p.best_value_s = e.value_s;
        p.best_unit = e.unit;
      }
    }
    return p;
  };

  if (robotune_ != nullptr) {
    SessionLog session;
    SessionLog* session_ptr = nullptr;
    if (!spec_.checkpoint_path.empty()) {
      try {
        const auto mode =
            spec_.recover ? LoadMode::kRecover : LoadMode::kStrict;
        SessionLoadReport load_report;
        if (spec_.resume &&
            load_session_file(spec_.checkpoint_path, session.state, mode,
                              &load_report)) {
          outcome.resumed = true;
          outcome.replayed = session.state.evaluations.size();
          outcome.journal_recovered = load_report.recovered;
          outcome.dropped_records = load_report.dropped_records;
        }
      } catch (const std::exception& e) {
        outcome.error = std::string("cannot resume from ") +
                        spec_.checkpoint_path + ": " + e.what();
        return outcome;
      }
      const std::string path = spec_.checkpoint_path;
      const auto sync = spec_.sync;
      session.flush = [path, sync, progress,
                       &best_of](const SessionCheckpoint& state) {
        save_session_file(state, path, sync);
        if (progress) progress(best_of(state));
      };
      session_ptr = &session;
    }
    RoboTuneReport report;
    try {
      report = robotune_->tune_report(objective, spec_.budget, spec_.seed,
                                      nullptr, session_ptr, scheduler.get(),
                                      spec_.mode == "external" ? external_
                                                               : nullptr);
    } catch (const std::exception& e) {
      outcome.error = e.what();
      return outcome;
    }
    outcome.result = report.tuning;
    outcome.interrupted = report.bo.interrupted;
    outcome.report = std::move(report);
    // Parallel sessions journal in completion order; re-flush the journal
    // in canonical index order so the final bytes are identical for any
    // worker count.  Already-canonical journals (every sequential or q=1
    // session) are left byte-for-byte untouched.
    if (session_ptr != nullptr && !session.state.evaluations.empty()) {
      bool canonical = true;
      for (std::size_t i = 0; i < session.state.evaluations.size(); ++i) {
        if (session.state.evaluations[i].index != i) {
          canonical = false;
          break;
        }
      }
      if (!canonical) {
        canonicalize_journal(session.state);
        save_session_file(session.state, spec_.checkpoint_path, spec_.sync);
      }
    }
  } else {
    try {
      tuner_->set_scheduler(scheduler.get());
      outcome.result = tuner_->tune(objective, spec_.budget, spec_.seed);
      tuner_->set_scheduler(nullptr);
    } catch (const std::exception& e) {
      outcome.error = e.what();
      return outcome;
    }
    outcome.interrupted =
        cancel != nullptr && cancel->load(std::memory_order_relaxed) &&
        static_cast<int>(outcome.result.history.size()) < spec_.budget;
  }

  if (progress) {
    SessionProgress final_progress;
    final_progress.evaluations = outcome.result.history.size();
    if (outcome.result.found_any()) {
      final_progress.best_value_s = outcome.result.best_value_s();
      final_progress.best_unit = outcome.result.best_unit();
    } else {
      final_progress.best_value_s = std::numeric_limits<double>::infinity();
    }
    progress(final_progress);
  }
  return outcome;
}

std::unique_ptr<Session> SessionFactory::create(const SessionSpec& spec,
                                                std::string* error) {
  if (auto why = spec.validate(); !why.empty()) {
    if (error != nullptr) *error = std::move(why);
    return nullptr;
  }
  return std::unique_ptr<Session>(new Session(spec));
}

}  // namespace robotune::core
