#include "core/persistence.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/error.h"

namespace robotune::core {

namespace {
constexpr const char* kHeader = "robotune-state v1";
constexpr const char* kSessionHeader = "robotune-session v2";
constexpr const char* kSessionHeaderV1 = "robotune-session v1";
}

std::size_t canonicalize_journal(SessionCheckpoint& session) {
  auto& evals = session.evaluations;
  const std::size_t loaded = evals.size();
  std::stable_sort(evals.begin(), evals.end(),
                   [](const EvalRecord& a, const EvalRecord& b) {
                     return a.index < b.index;
                   });
  std::size_t keep = 0;
  while (keep < evals.size() && evals[keep].index == keep) ++keep;
  evals.resize(keep);
  return loaded - keep;
}

std::size_t save_state(const ParameterSelectionCache& selection,
                       const ConfigMemoizationBuffer& memo,
                       std::ostream& out) {
  out << kHeader << "\n";
  std::size_t records = 0;
  for (const auto& [workload, indices] : selection.entries()) {
    out << "selection " << workload << " " << indices.size();
    for (std::size_t idx : indices) out << " " << idx;
    out << "\n";
    ++records;
  }
  out.precision(17);
  for (const auto& [workload, configs] : memo.entries()) {
    for (const auto& config : configs) {
      out << "memo " << workload << " " << config.value_s << " "
          << config.unit.size();
      for (double u : config.unit) out << " " << u;
      out << "\n";
      ++records;
    }
  }
  return records;
}

std::size_t load_state(std::istream& in, ParameterSelectionCache& selection,
                       ConfigMemoizationBuffer& memo) {
  std::string line;
  require(static_cast<bool>(std::getline(in, line)),
          "load_state: empty stream");
  require(line == kHeader, "load_state: unrecognized header: " + line);
  std::size_t records = 0;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream row(line);
    std::string kind, workload;
    row >> kind >> workload;
    if (kind == "selection") {
      std::size_t count = 0;
      row >> count;
      std::vector<std::size_t> indices(count);
      for (auto& idx : indices) row >> idx;
      require(!row.fail(), "load_state: malformed selection row");
      selection.store(workload, std::move(indices));
      ++records;
    } else if (kind == "memo") {
      MemoizedConfig config;
      std::size_t dims = 0;
      row >> config.value_s >> dims;
      config.unit.resize(dims);
      for (auto& u : config.unit) row >> u;
      require(!row.fail(), "load_state: malformed memo row");
      memo.store(workload, std::move(config));
      ++records;
    } else {
      throw InvalidArgument("load_state: unknown record kind: " + kind);
    }
  }
  return records;
}

bool save_state_file(const ParameterSelectionCache& selection,
                     const ConfigMemoizationBuffer& memo,
                     const std::string& path) {
  std::ofstream out(path);
  if (!out) return false;
  save_state(selection, memo, out);
  return static_cast<bool>(out);
}

bool load_state_file(const std::string& path,
                     ParameterSelectionCache& selection,
                     ConfigMemoizationBuffer& memo) {
  std::ifstream in(path);
  if (!in) return false;
  load_state(in, selection, memo);
  return true;
}

std::size_t save_session(const SessionCheckpoint& session,
                         std::ostream& out) {
  out.precision(17);
  out << kSessionHeader << "\n";
  out << "meta " << session.seed << " " << session.budget << " "
      << session.workload << "\n";
  out << "seeding " << (session.indexed_seeding ? "indexed" : "sequential")
      << "\n";
  out << "selected " << session.selected.size();
  for (std::size_t idx : session.selected) out << " " << idx;
  out << "\n";
  out << "selection-draws " << session.selection_seed_draws << "\n";
  out << "selection-cost " << session.selection_cost_s << "\n";
  for (const auto& config : session.memoized) {
    out << "memo " << config.value_s << " " << config.unit.size();
    for (double u : config.unit) out << " " << u;
    out << "\n";
  }
  for (const auto& e : session.evaluations) {
    out << "eval " << e.index << " " << sparksim::to_string(e.status) << " "
        << e.value_s << " " << e.cost_s << " " << (e.stopped_early ? 1 : 0)
        << " " << (e.transient ? 1 : 0) << " " << e.attempts << " "
        << e.unit.size();
    for (double u : e.unit) out << " " << u;
    out << "\n";
  }
  return session.evaluations.size();
}

std::size_t load_session(std::istream& in, SessionCheckpoint& session) {
  std::string line;
  require(static_cast<bool>(std::getline(in, line)),
          "load_session: empty stream");
  const bool v1 = line == kSessionHeaderV1;
  require(v1 || line == kSessionHeader,
          "load_session: unrecognized header: " + line);
  session = SessionCheckpoint{};
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream row(line);
    std::string kind;
    row >> kind;
    if (kind == "meta") {
      row >> session.seed >> session.budget >> session.workload;
      require(!row.fail(), "load_session: malformed meta row");
    } else if (kind == "seeding") {
      std::string mode;
      row >> mode;
      require(!row.fail() && (mode == "sequential" || mode == "indexed"),
              "load_session: malformed seeding row");
      session.indexed_seeding = mode == "indexed";
    } else if (kind == "selected") {
      std::size_t count = 0;
      row >> count;
      session.selected.resize(count);
      for (auto& idx : session.selected) row >> idx;
      require(!row.fail(), "load_session: malformed selected row");
    } else if (kind == "selection-draws") {
      row >> session.selection_seed_draws;
      require(!row.fail(), "load_session: malformed selection-draws row");
    } else if (kind == "selection-cost") {
      row >> session.selection_cost_s;
      require(!row.fail(), "load_session: malformed selection-cost row");
    } else if (kind == "memo") {
      MemoizedConfig config;
      std::size_t dims = 0;
      row >> config.value_s >> dims;
      config.unit.resize(dims);
      for (auto& u : config.unit) row >> u;
      require(!row.fail(), "load_session: malformed memo row");
      session.memoized.push_back(std::move(config));
    } else if (kind == "eval") {
      EvalRecord e;
      std::string status_label;
      int stopped = 0, transient = 0;
      std::size_t dims = 0;
      if (v1) {
        // v1 journals are sequential by construction: index = position.
        e.index = session.evaluations.size();
      } else {
        row >> e.index;
      }
      row >> status_label >> e.value_s >> e.cost_s >> stopped >> transient >>
          e.attempts >> dims;
      e.unit.resize(dims);
      for (auto& u : e.unit) row >> u;
      require(!row.fail(), "load_session: malformed eval row");
      const auto status = sparksim::run_status_from_string(status_label);
      require(status.has_value(),
              "load_session: unknown run status: " + status_label);
      e.status = *status;
      e.stopped_early = stopped != 0;
      e.transient = transient != 0;
      session.evaluations.push_back(std::move(e));
    } else {
      throw InvalidArgument("load_session: unknown record kind: " + kind);
    }
  }
  return session.evaluations.size();
}

bool save_session_file(const SessionCheckpoint& session,
                       const std::string& path) {
  // Write-then-rename so a crash mid-write never corrupts an existing
  // checkpoint: resume either sees the old journal or the new one.
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp);
    if (!out) return false;
    save_session(session, out);
    if (!out) return false;
  }
  return std::rename(tmp.c_str(), path.c_str()) == 0;
}

bool load_session_file(const std::string& path, SessionCheckpoint& session) {
  std::ifstream in(path);
  if (!in) return false;
  load_session(in, session);
  return true;
}

}  // namespace robotune::core
