#include "core/persistence.h"

#include <fstream>
#include <sstream>

#include "common/error.h"

namespace robotune::core {

namespace {
constexpr const char* kHeader = "robotune-state v1";
}

std::size_t save_state(const ParameterSelectionCache& selection,
                       const ConfigMemoizationBuffer& memo,
                       std::ostream& out) {
  out << kHeader << "\n";
  std::size_t records = 0;
  for (const auto& [workload, indices] : selection.entries()) {
    out << "selection " << workload << " " << indices.size();
    for (std::size_t idx : indices) out << " " << idx;
    out << "\n";
    ++records;
  }
  out.precision(17);
  for (const auto& [workload, configs] : memo.entries()) {
    for (const auto& config : configs) {
      out << "memo " << workload << " " << config.value_s << " "
          << config.unit.size();
      for (double u : config.unit) out << " " << u;
      out << "\n";
      ++records;
    }
  }
  return records;
}

std::size_t load_state(std::istream& in, ParameterSelectionCache& selection,
                       ConfigMemoizationBuffer& memo) {
  std::string line;
  require(static_cast<bool>(std::getline(in, line)),
          "load_state: empty stream");
  require(line == kHeader, "load_state: unrecognized header: " + line);
  std::size_t records = 0;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream row(line);
    std::string kind, workload;
    row >> kind >> workload;
    if (kind == "selection") {
      std::size_t count = 0;
      row >> count;
      std::vector<std::size_t> indices(count);
      for (auto& idx : indices) row >> idx;
      require(!row.fail(), "load_state: malformed selection row");
      selection.store(workload, std::move(indices));
      ++records;
    } else if (kind == "memo") {
      MemoizedConfig config;
      std::size_t dims = 0;
      row >> config.value_s >> dims;
      config.unit.resize(dims);
      for (auto& u : config.unit) row >> u;
      require(!row.fail(), "load_state: malformed memo row");
      memo.store(workload, std::move(config));
      ++records;
    } else {
      throw InvalidArgument("load_state: unknown record kind: " + kind);
    }
  }
  return records;
}

bool save_state_file(const ParameterSelectionCache& selection,
                     const ConfigMemoizationBuffer& memo,
                     const std::string& path) {
  std::ofstream out(path);
  if (!out) return false;
  save_state(selection, memo, out);
  return static_cast<bool>(out);
}

bool load_state_file(const std::string& path,
                     ParameterSelectionCache& selection,
                     ConfigMemoizationBuffer& memo) {
  std::ifstream in(path);
  if (!in) return false;
  load_state(in, selection, memo);
  return true;
}

}  // namespace robotune::core
