#include "core/persistence.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <charconv>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string_view>

#include "common/chaos.h"
#include "common/crc32.h"
#include "common/error.h"

namespace robotune::core {

namespace {
constexpr const char* kHeader = "robotune-state v1";
constexpr const char* kSessionHeaderV3 = "robotune-session v3";
constexpr const char* kSessionHeaderV2 = "robotune-session v2";
constexpr const char* kSessionHeaderV1 = "robotune-session v1";

// Whitespace tokenizer with file:line error context.  Every numeric
// conversion goes through std::from_chars with a full-token-consumption
// check, so a malformed field surfaces as InvalidArgument("<source>:<N>:
// ...") instead of an uncaught std::invalid_argument or a silently
// truncated value.
class RecordParser {
 public:
  RecordParser(std::string_view payload, const std::string& source,
               std::size_t line)
      : payload_(payload), source_(source), line_(line) {}

  [[noreturn]] void fail(const std::string& what) const {
    throw InvalidArgument("load_session: " + source_ + ":" +
                          std::to_string(line_) + ": " + what);
  }

  bool at_end() {
    skip_spaces();
    return pos_ >= payload_.size();
  }

  std::string_view token(const char* field) {
    skip_spaces();
    if (pos_ >= payload_.size()) {
      fail(std::string("missing ") + field + " field");
    }
    const std::size_t start = pos_;
    while (pos_ < payload_.size() && payload_[pos_] != ' ' &&
           payload_[pos_] != '\t') {
      ++pos_;
    }
    return payload_.substr(start, pos_ - start);
  }

  std::uint64_t u64(const char* field) {
    const std::string_view t = token(field);
    std::uint64_t value = 0;
    const auto [ptr, ec] =
        std::from_chars(t.data(), t.data() + t.size(), value);
    if (ec != std::errc() || ptr != t.data() + t.size()) {
      fail(std::string("malformed ") + field + " field: '" + std::string(t) +
           "'");
    }
    return value;
  }

  int i(const char* field) {
    const std::string_view t = token(field);
    int value = 0;
    const auto [ptr, ec] =
        std::from_chars(t.data(), t.data() + t.size(), value);
    if (ec != std::errc() || ptr != t.data() + t.size()) {
      fail(std::string("malformed ") + field + " field: '" + std::string(t) +
           "'");
    }
    return value;
  }

  double d(const char* field) {
    const std::string_view t = token(field);
    double value = 0.0;
    const auto [ptr, ec] =
        std::from_chars(t.data(), t.data() + t.size(), value);
    if (ec != std::errc() || ptr != t.data() + t.size()) {
      fail(std::string("malformed ") + field + " field: '" + std::string(t) +
           "'");
    }
    return value;
  }

  void done(const char* record) {
    if (!at_end()) {
      fail(std::string("trailing data in ") + record + " record");
    }
  }

 private:
  void skip_spaces() {
    while (pos_ < payload_.size() &&
           (payload_[pos_] == ' ' || payload_[pos_] == '\t')) {
      ++pos_;
    }
  }

  std::string_view payload_;
  const std::string& source_;
  std::size_t line_;
  std::size_t pos_ = 0;
};

// Parses one session record payload (shared by all journal versions;
// `v1` assigns eval indices by file position).
void parse_session_record(RecordParser& p, bool v1,
                          SessionCheckpoint& session) {
  const std::string_view kind = p.token("record kind");
  if (kind == "meta") {
    session.seed = p.u64("seed");
    session.budget = p.i("budget");
    session.workload = std::string(p.token("workload"));
    p.done("meta");
  } else if (kind == "seeding") {
    const std::string_view mode = p.token("seeding mode");
    if (mode != "sequential" && mode != "indexed") {
      p.fail("malformed seeding mode: '" + std::string(mode) + "'");
    }
    session.indexed_seeding = mode == "indexed";
    p.done("seeding");
  } else if (kind == "selected") {
    const std::uint64_t count = p.u64("selected count");
    session.selected.resize(count);
    for (auto& idx : session.selected) {
      idx = static_cast<std::size_t>(p.u64("selected index"));
    }
    p.done("selected");
  } else if (kind == "selection-draws") {
    session.selection_seed_draws = p.u64("selection-draws");
    p.done("selection-draws");
  } else if (kind == "selection-cost") {
    session.selection_cost_s = p.d("selection-cost");
    p.done("selection-cost");
  } else if (kind == "memo") {
    MemoizedConfig config;
    config.value_s = p.d("memo value");
    const std::uint64_t dims = p.u64("memo dims");
    config.unit.resize(dims);
    for (auto& u : config.unit) u = p.d("memo unit coordinate");
    p.done("memo");
    session.memoized.push_back(std::move(config));
  } else if (kind == "eval") {
    EvalRecord e;
    if (v1) {
      // v1 journals are sequential by construction: index = position.
      e.index = session.evaluations.size();
    } else {
      e.index = p.u64("eval index");
    }
    const std::string_view status_label = p.token("eval status");
    const auto status =
        sparksim::run_status_from_string(std::string(status_label));
    if (!status.has_value()) {
      p.fail("unknown run status: '" + std::string(status_label) + "'");
    }
    e.status = *status;
    e.value_s = p.d("eval value");
    e.cost_s = p.d("eval cost");
    e.stopped_early = p.i("eval stopped flag") != 0;
    e.transient = p.i("eval transient flag") != 0;
    e.attempts = p.i("eval attempts");
    const std::uint64_t dims = p.u64("eval dims");
    e.unit.resize(dims);
    for (auto& u : e.unit) u = p.d("eval unit coordinate");
    p.done("eval");
    session.evaluations.push_back(std::move(e));
  } else if (kind == "degrade") {
    DegradeEvent event;
    event.iter = p.u64("degrade iteration");
    event.rung = std::string(p.token("degrade rung"));
    p.done("degrade");
    session.degrade_events.push_back(std::move(event));
  } else if (kind == "racing") {
    session.racing_mode = std::string(p.token("racing signature"));
    p.done("racing");
  } else if (kind == "kill") {
    KillEvent event;
    event.index = p.u64("kill index");
    const std::string_view reason_label = p.token("kill reason");
    const auto reason =
        sparksim::kill_reason_from_string(std::string(reason_label));
    if (!reason.has_value()) {
      p.fail("unknown kill reason: '" + std::string(reason_label) + "'");
    }
    event.reason = *reason;
    p.done("kill");
    session.kill_events.push_back(event);
  } else if (kind == "mode") {
    const std::string_view mode = p.token("session mode");
    if (mode != "external") {
      p.fail("malformed session mode: '" + std::string(mode) + "'");
    }
    session.external = true;
    p.done("mode");
  } else if (kind == "suggest") {
    SuggestRecord s;
    s.index = p.u64("suggest index");
    s.lease = p.u64("suggest lease");
    const std::uint64_t dims = p.u64("suggest dims");
    s.unit.resize(dims);
    for (auto& u : s.unit) u = p.d("suggest unit coordinate");
    p.done("suggest");
    session.suggests.push_back(std::move(s));
  } else if (kind == "observe_ack") {
    ObserveAck ack;
    ack.index = p.u64("observe_ack index");
    const std::string_view status_label = p.token("observe_ack status");
    const auto status =
        sparksim::run_status_from_string(std::string(status_label));
    if (!status.has_value()) {
      p.fail("unknown run status: '" + std::string(status_label) + "'");
    }
    ack.status = *status;
    ack.value_s = p.d("observe_ack value");
    ack.cost_s = p.d("observe_ack cost");
    p.done("observe_ack");
    session.observe_acks.push_back(ack);
  } else if (kind == "lease_expired") {
    LeaseExpiry expiry;
    expiry.index = p.u64("lease_expired index");
    expiry.lease = p.u64("lease_expired lease");
    p.done("lease_expired");
    session.lease_expiries.push_back(expiry);
  } else {
    p.fail("unknown record kind: '" + std::string(kind) + "'");
  }
}

// Splits a v3 frame line into its payload.  Returns false (with `why`
// set) on any framing violation: short line, bad hex, bad length, length
// mismatch (torn write), or CRC mismatch (bit flip).
bool unframe(const std::string& line, std::string_view& payload,
             std::string& why) {
  // "<crc:8 hex> <len> <payload>": at minimum 8 + 1 + 1 + 1 + 1 bytes.
  if (line.size() < 12 || line[8] != ' ') {
    why = "bad record frame";
    return false;
  }
  std::uint32_t crc = 0;
  {
    const auto [ptr, ec] = std::from_chars(line.data(), line.data() + 8, crc,
                                           /*base=*/16);
    if (ec != std::errc() || ptr != line.data() + 8) {
      why = "bad frame checksum field";
      return false;
    }
  }
  std::size_t len = 0;
  const char* const len_begin = line.data() + 9;
  const char* const line_end = line.data() + line.size();
  const auto [len_end, ec] = std::from_chars(len_begin, line_end, len);
  if (ec != std::errc() || len_end == len_begin || len_end >= line_end ||
      *len_end != ' ') {
    why = "bad frame length field";
    return false;
  }
  payload = std::string_view(len_end + 1, line_end);
  if (payload.size() != len) {
    why = "frame length mismatch (torn record)";
    return false;
  }
  if (crc32(payload) != crc) {
    why = "frame checksum mismatch (corrupt record)";
    return false;
  }
  return true;
}

bool fsync_file(const char* path) {
  const int fd = ::open(path, O_RDONLY);
  if (fd < 0) return false;
  const bool ok = ::fsync(fd) == 0;
  ::close(fd);
  return ok;
}

// fsyncs the directory containing `path` so the rename itself is durable.
bool fsync_parent(const std::string& path) {
  const auto slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos
                              ? std::string(".")
                              : path.substr(0, slash == 0 ? 1 : slash);
  return fsync_file(dir.c_str());
}

}  // namespace

std::size_t canonicalize_journal(SessionCheckpoint& session) {
  auto& evals = session.evaluations;
  const std::size_t loaded = evals.size();
  std::stable_sort(evals.begin(), evals.end(),
                   [](const EvalRecord& a, const EvalRecord& b) {
                     return a.index < b.index;
                   });
  std::size_t keep = 0;
  while (keep < evals.size() && evals[keep].index == keep) ++keep;
  evals.resize(keep);
  // Kill events reference evaluations by index; events whose evaluation
  // fell past the replayable prefix describe work the resumed session
  // will redo (and re-journal), so they are pruned with it.
  auto& kills = session.kill_events;
  std::stable_sort(kills.begin(), kills.end(),
                   [](const KillEvent& a, const KillEvent& b) {
                     return a.index < b.index;
                   });
  kills.erase(std::remove_if(kills.begin(), kills.end(),
                             [keep](const KillEvent& k) {
                               return k.index >= keep;
                             }),
              kills.end());
  // A suggestion is resolved the moment its eval record lands; a crash
  // between the two flushes can leave both in the journal.  Prune the
  // resolved ones so the restored pending set is exactly the
  // suggestions the replayable prefix has NOT consumed.  (observe_acks
  // are deliberately untouched: the idempotency ledger outlives the
  // evaluations it acked.)
  auto& suggests = session.suggests;
  std::stable_sort(suggests.begin(), suggests.end(),
                   [](const SuggestRecord& a, const SuggestRecord& b) {
                     return a.index < b.index;
                   });
  suggests.erase(std::remove_if(suggests.begin(), suggests.end(),
                                [keep](const SuggestRecord& s) {
                                  return s.index < keep;
                                }),
                 suggests.end());
  return loaded - keep;
}

std::size_t save_state(const ParameterSelectionCache& selection,
                       const ConfigMemoizationBuffer& memo,
                       std::ostream& out) {
  out << kHeader << "\n";
  std::size_t records = 0;
  for (const auto& [workload, indices] : selection.entries()) {
    out << "selection " << workload << " " << indices.size();
    for (std::size_t idx : indices) out << " " << idx;
    out << "\n";
    ++records;
  }
  out.precision(17);
  for (const auto& [workload, configs] : memo.entries()) {
    for (const auto& config : configs) {
      out << "memo " << workload << " " << config.value_s << " "
          << config.unit.size();
      for (double u : config.unit) out << " " << u;
      out << "\n";
      ++records;
    }
  }
  return records;
}

std::size_t load_state(std::istream& in, ParameterSelectionCache& selection,
                       ConfigMemoizationBuffer& memo) {
  std::string line;
  require(static_cast<bool>(std::getline(in, line)),
          "load_state: empty stream");
  require(line == kHeader, "load_state: unrecognized header: " + line);
  std::size_t records = 0;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream row(line);
    std::string kind, workload;
    row >> kind >> workload;
    if (kind == "selection") {
      std::size_t count = 0;
      row >> count;
      std::vector<std::size_t> indices(count);
      for (auto& idx : indices) row >> idx;
      require(!row.fail(), "load_state: malformed selection row");
      selection.store(workload, std::move(indices));
      ++records;
    } else if (kind == "memo") {
      MemoizedConfig config;
      std::size_t dims = 0;
      row >> config.value_s >> dims;
      config.unit.resize(dims);
      for (auto& u : config.unit) row >> u;
      require(!row.fail(), "load_state: malformed memo row");
      memo.store(workload, std::move(config));
      ++records;
    } else {
      throw InvalidArgument("load_state: unknown record kind: " + kind);
    }
  }
  return records;
}

bool save_state_file(const ParameterSelectionCache& selection,
                     const ConfigMemoizationBuffer& memo,
                     const std::string& path) {
  std::ofstream out(path);
  if (!out) return false;
  save_state(selection, memo, out);
  return static_cast<bool>(out);
}

bool load_state_file(const std::string& path,
                     ParameterSelectionCache& selection,
                     ConfigMemoizationBuffer& memo) {
  std::ifstream in(path);
  if (!in) return false;
  load_state(in, selection, memo);
  return true;
}

std::size_t save_session(const SessionCheckpoint& session,
                         std::ostream& out) {
  out << kSessionHeaderV3 << "\n";
  // Each record is built as a payload string first so its CRC and byte
  // length can frame it: "<crc:8 hex> <len> <payload>\n".
  const auto emit = [&out](const std::string& payload) {
    char head[32];
    std::snprintf(head, sizeof(head), "%08x %zu ", crc32(payload),
                  payload.size());
    out << head << payload << "\n";
  };
  const auto payload = [](auto&& fill) {
    std::ostringstream p;
    p.precision(17);
    fill(p);
    return std::move(p).str();
  };
  emit(payload([&](std::ostream& p) {
    p << "meta " << session.seed << " " << session.budget << " "
      << session.workload;
  }));
  emit(payload([&](std::ostream& p) {
    p << "seeding " << (session.indexed_seeding ? "indexed" : "sequential");
  }));
  // Only racing-active sessions carry the record: racing-off journals
  // stay byte-identical to those of releases without the racing layer.
  if (!session.racing_mode.empty() && session.racing_mode != "off") {
    emit(payload([&](std::ostream& p) {
      p << "racing " << session.racing_mode;
    }));
  }
  emit(payload([&](std::ostream& p) {
    p << "selected " << session.selected.size();
    for (std::size_t idx : session.selected) p << " " << idx;
  }));
  emit(payload([&](std::ostream& p) {
    p << "selection-draws " << session.selection_seed_draws;
  }));
  emit(payload([&](std::ostream& p) {
    p << "selection-cost " << session.selection_cost_s;
  }));
  for (const auto& config : session.memoized) {
    emit(payload([&](std::ostream& p) {
      p << "memo " << config.value_s << " " << config.unit.size();
      for (double u : config.unit) p << " " << u;
    }));
  }
  for (const auto& e : session.evaluations) {
    emit(payload([&](std::ostream& p) {
      p << "eval " << e.index << " " << sparksim::to_string(e.status) << " "
        << e.value_s << " " << e.cost_s << " " << (e.stopped_early ? 1 : 0)
        << " " << (e.transient ? 1 : 0) << " " << e.attempts << " "
        << e.unit.size();
      for (double u : e.unit) p << " " << u;
    }));
  }
  for (const auto& event : session.kill_events) {
    emit(payload([&](std::ostream& p) {
      p << "kill " << event.index << " "
        << sparksim::to_string(event.reason);
    }));
  }
  for (const auto& event : session.degrade_events) {
    emit(payload([&](std::ostream& p) {
      p << "degrade " << event.iter << " " << event.rung;
    }));
  }
  // External-only records come last and only for external sessions, so
  // internal-mode journals stay byte-identical to pre-external releases
  // (same contract as the `racing` record above).
  if (session.external) {
    emit(payload([&](std::ostream& p) { p << "mode external"; }));
    for (const auto& s : session.suggests) {
      emit(payload([&](std::ostream& p) {
        p << "suggest " << s.index << " " << s.lease << " " << s.unit.size();
        for (double u : s.unit) p << " " << u;
      }));
    }
    for (const auto& ack : session.observe_acks) {
      emit(payload([&](std::ostream& p) {
        p << "observe_ack " << ack.index << " "
          << sparksim::to_string(ack.status) << " " << ack.value_s << " "
          << ack.cost_s;
      }));
    }
    for (const auto& expiry : session.lease_expiries) {
      emit(payload([&](std::ostream& p) {
        p << "lease_expired " << expiry.index << " " << expiry.lease;
      }));
    }
  }
  return session.evaluations.size();
}

std::size_t load_session(std::istream& in, SessionCheckpoint& session) {
  return load_session(in, session, LoadMode::kStrict);
}

std::size_t load_session(std::istream& in, SessionCheckpoint& session,
                         LoadMode mode, SessionLoadReport* report,
                         const std::string& source) {
  SessionLoadReport local;
  SessionLoadReport& rep = report ? *report : local;
  rep = SessionLoadReport{};
  session = SessionCheckpoint{};

  std::string line;
  std::size_t line_no = 1;
  if (!std::getline(in, line)) {
    if (mode == LoadMode::kRecover) {
      rep.recovered = true;
      return 0;
    }
    throw InvalidArgument("load_session: " + source + ": empty stream");
  }
  int version = 0;
  if (line == kSessionHeaderV3) {
    version = 3;
  } else if (line == kSessionHeaderV2) {
    version = 2;
  } else if (line == kSessionHeaderV1) {
    version = 1;
  } else if (mode == LoadMode::kRecover) {
    // A header torn mid-write: nothing trustworthy follows.
    rep.recovered = true;
    ++rep.dropped_records;
    while (std::getline(in, line)) ++rep.dropped_records;
    return 0;
  } else {
    throw InvalidArgument("load_session: " + source +
                          ": unrecognized header: " + line);
  }
  rep.version = version;

  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty() || line[0] == '#') continue;
    if (version == 3) {
      std::string_view record;
      std::string why;
      bool ok = unframe(line, record, why);
      if (ok) {
        RecordParser parser(record, source, line_no);
        if (mode == LoadMode::kRecover) {
          // A frame that passes CRC but fails to parse is still treated
          // as the corruption point: nothing after it can be trusted.
          // Parse against a scratch copy so a half-parsed record cannot
          // leave partially-mutated fields in the kept prefix.
          SessionCheckpoint scratch = session;
          try {
            parse_session_record(parser, /*v1=*/false, scratch);
            session = std::move(scratch);
          } catch (const InvalidArgument&) {
            ok = false;
          }
        } else {
          parse_session_record(parser, /*v1=*/false, session);
        }
      }
      if (!ok) {
        if (mode == LoadMode::kRecover) {
          rep.recovered = true;
          ++rep.dropped_records;
          while (std::getline(in, line)) ++rep.dropped_records;
          break;
        }
        throw InvalidArgument("load_session: " + source + ":" +
                              std::to_string(line_no) + ": " + why);
      }
    } else {
      // Legacy unframed journals carry no checksum, so corruption is not
      // reliably detectable: parse strictly regardless of mode.
      RecordParser parser(line, source, line_no);
      parse_session_record(parser, version == 1, session);
    }
  }
  rep.evaluations = session.evaluations.size();
  return session.evaluations.size();
}

bool save_session_file(const SessionCheckpoint& session,
                       const std::string& path, SyncPolicy sync) {
  // Chaos site: a simulated I/O error leaves the previous checkpoint (if
  // any) untouched, exactly like a failed open would.
  if (chaos::fail(chaos::Site::kJournalWrite)) return false;
  // Write-then-rename so a crash mid-write never corrupts an existing
  // checkpoint: resume either sees the old journal or the new one.
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp);
    if (!out) return false;
    save_session(session, out);
    out.flush();
    if (!out) return false;
  }
  if (sync == SyncPolicy::kFsync && !fsync_file(tmp.c_str())) return false;
  if (std::rename(tmp.c_str(), path.c_str()) != 0) return false;
  if (sync == SyncPolicy::kFsync && !fsync_parent(path)) return false;
  return true;
}

bool load_session_file(const std::string& path, SessionCheckpoint& session,
                       LoadMode mode, SessionLoadReport* report) {
  std::ifstream in(path);
  if (!in) return false;
  load_session(in, session, mode, report, path);
  return true;
}

}  // namespace robotune::core
