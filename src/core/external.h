// Ask/tell bridge for external-mode sessions (DESIGN.md §16).
//
// An external session proposes configurations but never runs them: an
// outside executor (a real Spark cluster, a benchmark harness, a human)
// leases suggestions, measures them on its own schedule, and reports
// `(value, cost, status)` tuples back.  That executor crashes, retries,
// and duplicates messages, so the bridge owns the robustness contract
// between the deterministic BO engine and the unreliable outside world:
//
//   - the ENGINE side publishes a batch with `exchange()` and blocks
//     until every point in the round is resolved (or the session is
//     cancelled);
//   - the SERVICE side hands suggestions out under monotonic lease ids
//     with tick deadlines (`lease`), accepts observations idempotently
//     (`tell` — a re-sent observe returns the recorded ack, a
//     conflicting one is rejected), and expires abandoned leases back
//     to the pending pool (`reap`).
//
// Every ledger transition is journaled through the session's
// checkpoint (suggest / observe_ack / lease_expired records) *before*
// it becomes observable to clients, so a kill -9 at any instant
// restarts into exactly the same pending set: nothing lost, nothing
// double-issued.
//
// Concurrency invariant: service calls mutate the shared SessionLog
// only while at least one suggestion in the round is undelivered —
// which is precisely while the engine is parked inside `exchange()`.
// Once the round resolves, the engine owns the log again (journals the
// eval records, prunes the resolved suggests) and service calls are
// read-only until the next round.  All bridge state is guarded by one
// internal mutex; callers must NOT hold their own locks across bridge
// calls (the bridge flushes the journal, which can be slow).
#pragma once

#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "core/persistence.h"

namespace robotune::core {

struct SessionLog;

/// One externally observed measurement for a suggested configuration,
/// exactly as the client reported it (pre-funnel).
struct ExternalObservation {
  double value_s = 0.0;
  double cost_s = 0.0;
  sparksim::RunStatus status = sparksim::RunStatus::kOk;
};

/// One leased suggestion handed to an external executor.
struct LeaseGrant {
  std::uint64_t index = 0;     ///< canonical eval index
  std::uint64_t lease = 0;     ///< monotonic lease id (never reused)
  std::uint64_t deadline = 0;  ///< tick at which the reaper reclaims it
  std::vector<double> unit;    ///< full-space unit vector to evaluate
};

/// What `tell` did with an observation.
enum class TellVerdict {
  kAccepted,   ///< first delivery: recorded, journaled, engine woken
  kDuplicate,  ///< exact re-delivery: recorded ack returned, no effect
  kConflict,   ///< same index, different tuple: rejected
  kUnknown,    ///< index never suggested (or not yet published)
};

/// Wire name: accepted|duplicate|conflict|unknown.
const char* to_string(TellVerdict verdict) noexcept;

class ExternalBridge {
 public:
  /// Outcome of `tell`; `recorded` is the ledger's tuple (the accepted
  /// or previously-recorded observation) for kAccepted/kDuplicate.
  struct TellResult {
    TellVerdict verdict = TellVerdict::kUnknown;
    ExternalObservation recorded;
  };

  // ---- engine side ------------------------------------------------

  /// Attaches the session journal (nullable for in-memory ask/tell)
  /// and restores the ledger a previous process left behind: the
  /// idempotency map from observe_ack records and the next lease id
  /// from the largest id ever journaled.  Called once, by the engine,
  /// before the first exchange.
  void bind(SessionLog* log);

  /// Publishes one round of proposals (canonical indices first_index,
  /// first_index+1, ...) and blocks until every one is resolved by
  /// `tell` (or restored acks).  Suggestions are journaled before they
  /// become leasable.  Returns false — with `out` unspecified — when
  /// the session was cancelled or closed mid-round; the round's
  /// pending entries stay journaled so a resume re-enters the same
  /// round.  On true, `out[i]` is the observation for points[i].
  bool exchange(const std::vector<std::vector<double>>& points,
                std::uint64_t first_index,
                std::vector<ExternalObservation>& out);

  /// Wakes a parked exchange and makes it (and all future exchanges)
  /// return false.  Safe from any thread.
  void request_cancel();

  /// Marks the session terminal: lease() stops granting and tell()
  /// answers only from the recorded-ack ledger.  Called by the session
  /// host after the engine returns.
  void close();

  // ---- service side -----------------------------------------------

  /// Leases up to `max_count` unleased pending suggestions of the
  /// active round, stamping each with a fresh lease id and the
  /// deadline `now + timeout_ticks`.  A suggestion already out on an
  /// unexpired-or-unreaped lease is not re-issued — the reaper is the
  /// only path back to the pool, so every reclaim is journaled.
  std::vector<LeaseGrant> lease(std::size_t max_count, std::uint64_t now,
                                std::uint64_t timeout_ticks);

  /// Delivers an observation for eval `index`.  Resolves by index
  /// regardless of lease state (a slow executor whose lease expired
  /// can still land its measurement — unless someone else already
  /// did, which is a conflict).  Accepted observations are journaled
  /// before the ack returns.
  TellResult tell(std::uint64_t index, const ExternalObservation& obs);

  /// Reaper sweep: every leased, undelivered suggestion whose deadline
  /// has arrived (now >= deadline) returns to the pending pool with a
  /// journaled lease_expired record.  Returns the reclaimed leases.
  std::vector<LeaseExpiry> reap(std::uint64_t now);

  /// Undelivered suggestions in the active round (0 between rounds).
  std::size_t pending() const;

  /// Undelivered suggestions currently out on a live lease.
  std::size_t leased(std::uint64_t now) const;

  bool closed() const;

 private:
  struct Slot {
    std::uint64_t index = 0;
    std::vector<double> unit;
    std::uint64_t lease = 0;  ///< last issued id (0 = never)
    std::uint64_t deadline = 0;
    bool leased = false;
    bool delivered = false;
    ExternalObservation obs;
  };

  // All private helpers assume mu_ is held.
  void flush_journal();
  Slot* find_slot(std::uint64_t index);

  mutable std::mutex mu_;
  std::condition_variable cv_;
  SessionLog* log_ = nullptr;
  std::vector<Slot> round_;
  bool round_active_ = false;
  bool cancel_ = false;
  bool closed_ = false;
  std::uint64_t next_lease_ = 1;
  /// Every observation ever accepted, by eval index — the idempotency
  /// ledger `tell` consults before treating a delivery as new.
  std::unordered_map<std::uint64_t, ExternalObservation> acks_;
};

}  // namespace robotune::core
