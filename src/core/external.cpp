#include "core/external.h"

#include <algorithm>

#include "core/bo_engine.h"

namespace robotune::core {

namespace {

bool same_observation(const ExternalObservation& a,
                      const ExternalObservation& b) {
  // Exact equality on purpose: the journal round-trips doubles through
  // %.17g losslessly, so a faithful client retry compares equal even
  // across a daemon restart, while any re-measured (different) value is
  // a conflict the client must see.
  return a.value_s == b.value_s && a.cost_s == b.cost_s &&
         a.status == b.status;
}

}  // namespace

const char* to_string(TellVerdict verdict) noexcept {
  switch (verdict) {
    case TellVerdict::kAccepted:
      return "accepted";
    case TellVerdict::kDuplicate:
      return "duplicate";
    case TellVerdict::kConflict:
      return "conflict";
    case TellVerdict::kUnknown:
      return "unknown";
  }
  return "unknown";
}

void ExternalBridge::bind(SessionLog* log) {
  std::lock_guard<std::mutex> lock(mu_);
  log_ = log;
  acks_.clear();
  next_lease_ = 1;
  if (log_ == nullptr) return;
  for (const auto& ack : log_->state.observe_acks) {
    acks_[ack.index] =
        ExternalObservation{ack.value_s, ack.cost_s, ack.status};
  }
  // Lease ids stay monotonic across restarts: resume past the largest
  // id any journal record ever carried.  The leases themselves are
  // void (deadlines were relative to the dead daemon's clock).
  for (const auto& s : log_->state.suggests) {
    next_lease_ = std::max(next_lease_, s.lease + 1);
  }
  for (const auto& e : log_->state.lease_expiries) {
    next_lease_ = std::max(next_lease_, e.lease + 1);
  }
}

void ExternalBridge::flush_journal() {
  if (log_ != nullptr && log_->flush) log_->flush(log_->state);
}

ExternalBridge::Slot* ExternalBridge::find_slot(std::uint64_t index) {
  for (auto& slot : round_) {
    if (slot.index == index) return &slot;
  }
  return nullptr;
}

bool ExternalBridge::exchange(
    const std::vector<std::vector<double>>& points, std::uint64_t first_index,
    std::vector<ExternalObservation>& out) {
  std::unique_lock<std::mutex> lock(mu_);
  if (cancel_ || closed_) return false;
  round_.clear();
  bool journal_dirty = false;
  for (std::size_t i = 0; i < points.size(); ++i) {
    Slot slot;
    slot.index = first_index + i;
    slot.unit = points[i];
    const auto it = acks_.find(slot.index);
    if (it != acks_.end()) {
      // Already observed (ack journaled before the crash, eval record
      // not yet): resolve immediately, no new lease cycle.
      slot.delivered = true;
      slot.obs = it->second;
    } else if (log_ != nullptr) {
      // Reuse the suggest record a previous process journaled for this
      // index (keeps its last lease id); journal a fresh one otherwise.
      SuggestRecord* existing = nullptr;
      for (auto& s : log_->state.suggests) {
        if (s.index == slot.index) {
          existing = &s;
          break;
        }
      }
      if (existing != nullptr) {
        slot.lease = existing->lease;
      } else {
        SuggestRecord record;
        record.index = slot.index;
        record.unit = slot.unit;
        log_->state.suggests.push_back(std::move(record));
        journal_dirty = true;
      }
    }
    round_.push_back(std::move(slot));
  }
  // The pending set must hit disk before any lease can be granted —
  // otherwise a kill -9 between grant and journal double-issues the
  // suggestion after restart.  Publication (round_active_) happens
  // under the same lock hold, so lease() can never observe the round
  // before its journal record exists.
  if (journal_dirty) flush_journal();
  round_active_ = true;
  cv_.wait(lock, [&] {
    if (cancel_ || closed_) return true;
    return std::all_of(round_.begin(), round_.end(),
                       [](const Slot& s) { return s.delivered; });
  });
  const bool complete = std::all_of(round_.begin(), round_.end(),
                                    [](const Slot& s) { return s.delivered; });
  if (!complete) {
    // Cancelled mid-round: leave the journal's pending entries alone so
    // a resume re-enters this exact round.
    round_active_ = false;
    round_.clear();
    return false;
  }
  out.clear();
  out.reserve(round_.size());
  for (const auto& slot : round_) out.push_back(slot.obs);
  round_active_ = false;
  round_.clear();
  return true;
}

void ExternalBridge::request_cancel() {
  std::lock_guard<std::mutex> lock(mu_);
  cancel_ = true;
  cv_.notify_all();
}

void ExternalBridge::close() {
  std::lock_guard<std::mutex> lock(mu_);
  closed_ = true;
  cv_.notify_all();
}

std::vector<LeaseGrant> ExternalBridge::lease(std::size_t max_count,
                                              std::uint64_t now,
                                              std::uint64_t timeout_ticks) {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<LeaseGrant> grants;
  if (!round_active_ || closed_) return grants;
  bool journal_dirty = false;
  for (auto& slot : round_) {
    if (grants.size() >= max_count) break;
    if (slot.delivered || slot.leased) continue;
    slot.lease = next_lease_++;
    slot.leased = true;
    slot.deadline = now + timeout_ticks;
    if (log_ != nullptr) {
      for (auto& s : log_->state.suggests) {
        if (s.index == slot.index) {
          s.lease = slot.lease;
          journal_dirty = true;
          break;
        }
      }
    }
    LeaseGrant grant;
    grant.index = slot.index;
    grant.lease = slot.lease;
    grant.deadline = slot.deadline;
    grant.unit = slot.unit;
    grants.push_back(std::move(grant));
  }
  // Journal the issued ids before the grants leave the process so a
  // restart never re-issues a lease id.
  if (journal_dirty) flush_journal();
  return grants;
}

ExternalBridge::TellResult ExternalBridge::tell(
    std::uint64_t index, const ExternalObservation& obs) {
  std::lock_guard<std::mutex> lock(mu_);
  TellResult result;
  const auto acked = acks_.find(index);
  if (acked != acks_.end()) {
    result.recorded = acked->second;
    result.verdict = same_observation(obs, acked->second)
                         ? TellVerdict::kDuplicate
                         : TellVerdict::kConflict;
    return result;
  }
  Slot* slot = round_active_ ? find_slot(index) : nullptr;
  if (slot == nullptr) {
    result.verdict = TellVerdict::kUnknown;
    return result;
  }
  slot->obs = obs;
  slot->delivered = true;
  acks_[index] = obs;
  if (log_ != nullptr) {
    ObserveAck ack;
    ack.index = index;
    ack.status = obs.status;
    ack.value_s = obs.value_s;
    ack.cost_s = obs.cost_s;
    log_->state.observe_acks.push_back(ack);
    // The ack must be durable before the client hears it: a re-sent
    // observe after our crash has to find the record.
    flush_journal();
  }
  result.verdict = TellVerdict::kAccepted;
  result.recorded = obs;
  cv_.notify_all();
  return result;
}

std::vector<LeaseExpiry> ExternalBridge::reap(std::uint64_t now) {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<LeaseExpiry> expired;
  if (!round_active_) return expired;
  for (auto& slot : round_) {
    if (slot.delivered || !slot.leased || now < slot.deadline) continue;
    slot.leased = false;
    LeaseExpiry expiry;
    expiry.index = slot.index;
    expiry.lease = slot.lease;
    if (log_ != nullptr) log_->state.lease_expiries.push_back(expiry);
    expired.push_back(expiry);
  }
  if (!expired.empty()) flush_journal();
  return expired;
}

std::size_t ExternalBridge::pending() const {
  std::lock_guard<std::mutex> lock(mu_);
  if (!round_active_) return 0;
  return static_cast<std::size_t>(
      std::count_if(round_.begin(), round_.end(),
                    [](const Slot& s) { return !s.delivered; }));
}

std::size_t ExternalBridge::leased(std::uint64_t now) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (!round_active_) return 0;
  return static_cast<std::size_t>(std::count_if(
      round_.begin(), round_.end(), [now](const Slot& s) {
        return !s.delivered && s.leased && now < s.deadline;
      }));
}

bool ExternalBridge::closed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return closed_;
}

}  // namespace robotune::core
