// Bound-constrained limited-memory BFGS (L-BFGS-B style).
//
// ROBOTune optimizes its acquisition functions with L-BFGS-B (paper §4).
// We implement the projected variant: a limited-memory BFGS direction with
// an Armijo backtracking line search along the *projected* path
// P(x + t d), where P clips onto the box.  Variables pinned at an active
// bound with an outward gradient are dropped from the quasi-Newton
// direction for that step.  This is the standard projected quasi-Newton
// scheme and converges to box-constrained stationary points.
//
// The caller supplies the objective value and gradient; for acquisition
// functions without analytic gradients, `numeric_gradient` provides a
// central-difference fallback.
#pragma once

#include <cstddef>
#include <deque>
#include <functional>
#include <span>
#include <vector>

#include "common/rng.h"

namespace robotune {
class ThreadPool;
}

namespace robotune::opt {

struct Bounds {
  std::vector<double> lower;
  std::vector<double> upper;

  static Bounds unit_cube(std::size_t dims) {
    return {std::vector<double>(dims, 0.0), std::vector<double>(dims, 1.0)};
  }

  std::size_t dims() const noexcept { return lower.size(); }
  void clip(std::span<double> x) const;
};

/// Objective: returns f(x) and writes the gradient into `grad` (same size
/// as x) when `grad` is non-empty.
using Objective =
    std::function<double(std::span<const double> x, std::span<double> grad)>;

/// Wraps a value-only function with central differences.
Objective numeric_gradient(std::function<double(std::span<const double>)> f,
                           double step = 1e-6);

struct LbfgsbOptions {
  int max_iterations = 100;
  int history = 8;           ///< limited-memory pairs kept
  double gradient_tolerance = 1e-6;
  double value_tolerance = 1e-10;
  int max_line_search_steps = 25;
};

struct LbfgsbResult {
  std::vector<double> x;
  double value = 0.0;
  int iterations = 0;
  int evaluations = 0;
  bool converged = false;
};

/// Minimizes `objective` within `bounds`, starting at x0 (clipped to the
/// box first).
LbfgsbResult minimize(const Objective& objective, std::span<const double> x0,
                      const Bounds& bounds, const LbfgsbOptions& options = {});

struct MultiStartOptions {
  int starts = 10;
  LbfgsbOptions lbfgsb;
  /// Extra pure-random probes evaluated (no descent) to seed the starts —
  /// the best `starts` probes become initial points.
  int probe_candidates = 100;
};

/// Multi-start minimization: probes the box at random, runs L-BFGS-B from
/// the best probes (plus any caller-provided warm starts), and returns the
/// best local minimum found.  This is how the BO engine maximizes its
/// acquisition functions over the unit cube.
LbfgsbResult multistart_minimize(
    const Objective& objective, const Bounds& bounds, Rng& rng,
    const MultiStartOptions& options = {},
    const std::vector<std::vector<double>>& warm_starts = {});

/// Produces a fresh, independently usable Objective.  Each parallel start
/// calls the factory once so objectives can own private scratch state
/// (e.g. a GP prediction workspace) without synchronization.
using ObjectiveFactory = std::function<Objective()>;

/// Runs one L-BFGS-B descent from every start and returns the canonical
/// best: the lowest value, ties broken by lowest start index.  When `pool`
/// is non-null and has more than one worker, starts run concurrently; each
/// start writes only its own result slot and the reduction is a fixed
/// sequential scan, so the returned result is byte-identical at any worker
/// count (including the inline pool == nullptr path).  `evaluations` sums
/// objective evaluations across all starts.
LbfgsbResult minimize_starts(const ObjectiveFactory& factory,
                             const std::vector<std::vector<double>>& starts,
                             const Bounds& bounds,
                             const LbfgsbOptions& options = {},
                             ThreadPool* pool = nullptr);

}  // namespace robotune::opt
