#include "opt/lbfgsb.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/error.h"
#include "common/thread_pool.h"
#include "linalg/matrix.h"
#include "obs/trace.h"

namespace robotune::opt {

void Bounds::clip(std::span<double> x) const {
  for (std::size_t i = 0; i < x.size(); ++i) {
    x[i] = std::clamp(x[i], lower[i], upper[i]);
  }
}

Objective numeric_gradient(std::function<double(std::span<const double>)> f,
                           double step) {
  return [f = std::move(f), step](std::span<const double> x,
                                  std::span<double> grad) -> double {
    const double value = f(x);
    if (!grad.empty()) {
      std::vector<double> xp(x.begin(), x.end());
      for (std::size_t i = 0; i < x.size(); ++i) {
        const double saved = xp[i];
        xp[i] = saved + step;
        const double fp = f(xp);
        xp[i] = saved - step;
        const double fm = f(xp);
        xp[i] = saved;
        grad[i] = (fp - fm) / (2.0 * step);
      }
    }
    return value;
  };
}

namespace {

struct Pair {
  std::vector<double> s;  // x_{k+1} - x_k
  std::vector<double> y;  // g_{k+1} - g_k
  double rho = 0.0;       // 1 / (y.s)
};

// Two-loop recursion producing the L-BFGS descent direction -H g, with the
// free-variable mask applied (bound-active coordinates with outward
// gradients are frozen to zero).
std::vector<double> lbfgs_direction(const std::deque<Pair>& history,
                                    std::span<const double> grad,
                                    std::span<const char> free_mask) {
  const std::size_t n = grad.size();
  std::vector<double> q(n);
  for (std::size_t i = 0; i < n; ++i) q[i] = free_mask[i] ? grad[i] : 0.0;

  std::vector<double> alpha(history.size());
  for (std::size_t k = history.size(); k-- > 0;) {
    const Pair& p = history[k];
    alpha[k] = p.rho * linalg::dot(p.s, q);
    linalg::axpy(-alpha[k], p.y, q);
  }
  // Initial Hessian scaling gamma = s.y / y.y of the newest pair.
  double gamma = 1.0;
  if (!history.empty()) {
    const Pair& newest = history.back();
    const double yy = linalg::dot(newest.y, newest.y);
    if (yy > 0.0) gamma = linalg::dot(newest.s, newest.y) / yy;
  }
  for (double& v : q) v *= gamma;
  for (std::size_t k = 0; k < history.size(); ++k) {
    const Pair& p = history[k];
    const double beta = p.rho * linalg::dot(p.y, q);
    linalg::axpy(alpha[k] - beta, p.s, q);
  }
  for (std::size_t i = 0; i < n; ++i) {
    q[i] = free_mask[i] ? -q[i] : 0.0;
  }
  return q;
}

// Projected-gradient norm: the standard box-constrained stationarity
// measure ||P(x - g) - x||_inf.
double projected_gradient_norm(std::span<const double> x,
                               std::span<const double> grad,
                               const Bounds& bounds) {
  double norm = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double step =
        std::clamp(x[i] - grad[i], bounds.lower[i], bounds.upper[i]) - x[i];
    norm = std::max(norm, std::abs(step));
  }
  return norm;
}

}  // namespace

LbfgsbResult minimize(const Objective& objective, std::span<const double> x0,
                      const Bounds& bounds, const LbfgsbOptions& options) {
  const std::size_t n = x0.size();
  require(bounds.lower.size() == n && bounds.upper.size() == n,
          "lbfgsb: bounds dimension mismatch");
  for (std::size_t i = 0; i < n; ++i) {
    require(bounds.lower[i] <= bounds.upper[i],
            "lbfgsb: lower bound exceeds upper bound");
  }

  LbfgsbResult result;
  result.x.assign(x0.begin(), x0.end());
  bounds.clip(result.x);

  std::vector<double> grad(n, 0.0);
  result.value = objective(result.x, grad);
  ++result.evaluations;

  std::deque<Pair> history;
  std::vector<char> free_mask(n, 1);
  std::vector<double> x_new(n), grad_new(n);

  for (int iter = 0; iter < options.max_iterations; ++iter) {
    result.iterations = iter + 1;

    if (projected_gradient_norm(result.x, grad, bounds) <
        options.gradient_tolerance) {
      result.converged = true;
      break;
    }

    // Freeze variables sitting on a bound with the gradient pushing
    // outward; the quasi-Newton step acts on the free set only.
    for (std::size_t i = 0; i < n; ++i) {
      const bool at_lower =
          result.x[i] <= bounds.lower[i] && grad[i] > 0.0;
      const bool at_upper =
          result.x[i] >= bounds.upper[i] && grad[i] < 0.0;
      free_mask[i] = (at_lower || at_upper) ? 0 : 1;
    }

    std::vector<double> direction =
        lbfgs_direction(history, grad, free_mask);
    double dir_dot_grad = linalg::dot(direction, grad);
    if (!(dir_dot_grad < 0.0)) {
      // Not a descent direction (stale curvature pairs) — fall back to the
      // projected steepest descent and reset memory.
      history.clear();
      for (std::size_t i = 0; i < n; ++i) {
        direction[i] = free_mask[i] ? -grad[i] : 0.0;
      }
      dir_dot_grad = linalg::dot(direction, grad);
      if (!(dir_dot_grad < 0.0)) {
        result.converged = true;  // gradient vanishes on the free set
        break;
      }
    }

    // Backtracking Armijo line search along the projected path.
    constexpr double kArmijo = 1e-4;
    double t = 1.0;
    double f_new = result.value;
    bool accepted = false;
    auto try_step = [&](double step, std::span<double> x_out,
                        std::span<double> grad_out) {
      for (std::size_t i = 0; i < n; ++i) {
        x_out[i] = std::clamp(result.x[i] + step * direction[i],
                              bounds.lower[i], bounds.upper[i]);
      }
      const double f = objective(x_out, grad_out);
      ++result.evaluations;
      return f;
    };
    for (int ls = 0; ls < options.max_line_search_steps; ++ls) {
      f_new = try_step(t, x_new, grad_new);
      // Armijo on the actual (projected) displacement.
      double actual_decrease_bound = 0.0;
      for (std::size_t i = 0; i < n; ++i) {
        actual_decrease_bound += grad[i] * (x_new[i] - result.x[i]);
      }
      if (f_new <= result.value + kArmijo * actual_decrease_bound &&
          std::isfinite(f_new)) {
        accepted = true;
        break;
      }
      t *= 0.5;
    }
    if (!accepted) break;  // line search failed; x is (numerically) optimal

    // Expansion: when the unit step is accepted immediately, the direction
    // may be badly under-scaled (stale curvature model); greedily double
    // the step while the objective keeps improving.
    if (t == 1.0) {
      std::vector<double> x_try(n), grad_try(n);
      for (int grow = 0; grow < 12; ++grow) {
        const double f_try = try_step(t * 2.0, x_try, grad_try);
        if (!(f_try < f_new) || !std::isfinite(f_try)) break;
        t *= 2.0;
        f_new = f_try;
        x_new.swap(x_try);
        grad_new.swap(grad_try);
      }
    }

    // Curvature pair update.
    Pair p;
    p.s.resize(n);
    p.y.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
      p.s[i] = x_new[i] - result.x[i];
      p.y[i] = grad_new[i] - grad[i];
    }
    // Relative curvature test: an absolute threshold would reject the
    // (legitimately tiny) pairs produced by small steps and freeze the
    // quasi-Newton model.
    const double sy = linalg::dot(p.s, p.y);
    if (sy > 1e-10 * linalg::norm2(p.s) * linalg::norm2(p.y)) {
      p.rho = 1.0 / sy;
      history.push_back(std::move(p));
      if (history.size() > static_cast<std::size_t>(options.history)) {
        history.pop_front();
      }
    }

    const double improvement = result.value - f_new;
    result.x = x_new;
    result.value = f_new;
    grad = grad_new;

    if (improvement < options.value_tolerance &&
        improvement >= 0.0) {
      result.converged = true;
      break;
    }
  }
  return result;
}

LbfgsbResult multistart_minimize(
    const Objective& objective, const Bounds& bounds, Rng& rng,
    const MultiStartOptions& options,
    const std::vector<std::vector<double>>& warm_starts) {
  const std::size_t n = bounds.dims();
  require(n > 0, "multistart_minimize: empty bounds");

  // Random probes, keep the best `starts` as initial points.
  struct Probe {
    double value;
    std::vector<double> x;
  };
  std::vector<Probe> probes;
  probes.reserve(static_cast<std::size_t>(options.probe_candidates));
  std::vector<double> no_grad;
  for (int c = 0; c < options.probe_candidates; ++c) {
    Probe p;
    p.x.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
      p.x[i] = rng.uniform(bounds.lower[i], bounds.upper[i]);
    }
    p.value = objective(p.x, no_grad);
    probes.push_back(std::move(p));
  }
  std::sort(probes.begin(), probes.end(),
            [](const Probe& a, const Probe& b) { return a.value < b.value; });

  std::vector<std::vector<double>> starts = warm_starts;
  const auto num_probe_starts = static_cast<std::size_t>(
      std::max(0, options.starts - static_cast<int>(warm_starts.size())));
  for (std::size_t i = 0; i < num_probe_starts && i < probes.size(); ++i) {
    starts.push_back(probes[i].x);
  }
  if (starts.empty() && !probes.empty()) starts.push_back(probes.front().x);

  LbfgsbResult best;
  best.value = std::numeric_limits<double>::infinity();
  for (const auto& x0 : starts) {
    LbfgsbResult r = minimize(objective, x0, bounds, options.lbfgsb);
    best.evaluations += r.evaluations;
    if (r.value < best.value) {
      const int evals = best.evaluations;
      best = std::move(r);
      best.evaluations = evals;
    }
  }
  // Even a failed descent should not be worse than the best raw probe.
  if (!probes.empty() && probes.front().value < best.value) {
    best.x = probes.front().x;
    best.value = probes.front().value;
  }
  return best;
}

LbfgsbResult minimize_starts(const ObjectiveFactory& factory,
                             const std::vector<std::vector<double>>& starts,
                             const Bounds& bounds,
                             const LbfgsbOptions& options, ThreadPool* pool) {
  require(!starts.empty(), "minimize_starts: no starts");

  // One pre-sized slot per start; a parallel start touches only its own
  // slot, so the slot vector's final contents do not depend on scheduling.
  std::vector<LbfgsbResult> slots(starts.size());
  auto run_start = [&](std::size_t i) {
    obs::Span span("lbfgsb_start", "opt");
    span.arg("start_index", static_cast<std::uint64_t>(i));
    const Objective objective = factory();
    slots[i] = minimize(objective, starts[i], bounds, options);
    span.arg("value", slots[i].value);
    span.arg("evaluations", slots[i].evaluations);
  };
  if (pool != nullptr && pool->size() > 1 && starts.size() > 1) {
    pool->parallel_for(starts.size(), run_start);
  } else {
    for (std::size_t i = 0; i < starts.size(); ++i) run_start(i);
  }

  // Canonical reduction: strictly-lower value wins, so the lowest start
  // index breaks ties — the argmin is a pure function of the slots.
  std::size_t best_index = 0;
  int evaluations = 0;
  for (std::size_t i = 0; i < slots.size(); ++i) {
    evaluations += slots[i].evaluations;
    if (slots[i].value < slots[best_index].value) best_index = i;
  }
  LbfgsbResult best = std::move(slots[best_index]);
  best.evaluations = evaluations;
  return best;
}

}  // namespace robotune::opt
