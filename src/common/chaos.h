// Deterministic chaos harness: seeded, off-by-default injection points
// for *internal* failures of the tuner itself.
//
// PR 1's fault layer makes the simulated cluster flaky; this harness
// makes the tuner's own machinery flaky — a Cholesky factorization that
// refuses to converge, an acquisition optimizer that dies, a journal
// write that hits an I/O error, a thread-pool task that throws — so the
// degradation ladder (DESIGN.md §11) can be proven end-to-end instead of
// waiting for a real ill-conditioned matrix to show up in production.
//
// Invariants, mirroring sparksim::FaultProfile:
//  * off means OFF: an unconfigured injector costs one relaxed atomic
//    load per hook and injects nothing, and -DROBOTUNE_CHAOS=OFF compiles
//    every hook down to `false` — byte-identical behavior either way;
//  * decisions are a pure function of (chaos seed, site, invocation
//    counter) for canonical-thread sites, or (chaos seed, site, caller
//    index) for `fail_indexed` — never of wall clock or scheduling — so
//    two identically-seeded chaotic sessions are byte-identical, at any
//    `--parallel` worker count.
//
// Sites and what they throw / simulate:
//  * kCholesky      linalg::cholesky throws NumericalError up front
//                   (forces the GP fit ladder);
//  * kAcqOpt        gp::optimize_acquisition throws NumericalError
//                   (forces the fallback-proposal rung);
//  * kJournalWrite  core::save_session_file reports failure without
//                   touching the file (a simulated I/O error — the
//                   session keeps running on a stale checkpoint);
//  * kPoolTask      ThreadPool::parallel_for bodies throw ChaosError
//                   (proves deterministic exception propagation);
//  * kCancelDelivery sparksim's stage boundary ignores a pending kill
//                   request (a delayed/dropped cancellation signal — the
//                   run keeps executing until a later boundary's delivery
//                   succeeds or the run finishes on its own);
//  * kObserveDelivery the service's ask/tell observe path drops or
//                   duplicates a client observation (a per-delivery
//                   counter decision, so a blind client retry draws a
//                   fresh verdict and eventually lands; the drop
//                   pattern is scheduling-dependent but invisible to
//                   results — accepted tuples are exactly what the
//                   client sent, whichever attempt delivers them —
//                   proving the lease ledger's idempotency end-to-end).
//
// Counter-based sites (kCholesky, kAcqOpt, kJournalWrite) are only ever
// armed for call sites on the canonical session thread, or whose effect
// cannot reach tuning results (journal writes); concurrent call sites
// must use fail_indexed so the decision keys on a logical index.
//
// configure()/disarm() require quiescence (no instrumented work in
// flight), exactly like obs::MetricsRegistry::reset().
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <stdexcept>
#include <string>

#ifndef ROBOTUNE_CHAOS_ENABLED
#define ROBOTUNE_CHAOS_ENABLED 1
#endif

namespace robotune::chaos {

/// True when the library was built with the chaos hooks compiled in.
inline constexpr bool kCompiledIn = ROBOTUNE_CHAOS_ENABLED != 0;

enum class Site : int {
  kCholesky = 0,
  kAcqOpt,
  kJournalWrite,
  kPoolTask,
  kCancelDelivery,
  kObserveDelivery,
};
inline constexpr int kSiteCount = 6;

const char* to_string(Site site) noexcept;

/// Thrown by injection points that have no domain-specific exception to
/// imitate (the thread-pool task site).  Numerical sites throw
/// NumericalError so they exercise exactly the handler a real failure
/// would.
class ChaosError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Per-site injection probabilities.  Default (all zero) injects nothing.
struct ChaosProfile {
  double cholesky_failure = 0.0;
  double acq_opt_failure = 0.0;
  double journal_write_failure = 0.0;
  double pool_task_failure = 0.0;
  double cancel_delivery_failure = 0.0;
  double observe_delivery_failure = 0.0;

  bool active() const noexcept {
    return cholesky_failure > 0.0 || acq_opt_failure > 0.0 ||
           journal_write_failure > 0.0 || pool_task_failure > 0.0 ||
           cancel_delivery_failure > 0.0 || observe_delivery_failure > 0.0;
  }

  double rate(Site site) const noexcept;

  /// Named presets for the CLI and CI:
  ///   none      nothing
  ///   surrogate every Cholesky factorization fails (all ladder rungs)
  ///   flaky     25% Cholesky / 25% acquisition / 50% journal failures
  ///   full      every surrogate, acquisition and journal hook fires
  /// Returns false for an unknown name.  No preset arms kPoolTask — a
  /// pool-task exception is not survivable by design (it exists to prove
  /// deterministic propagation) and is only armed explicitly.
  static bool from_preset(const std::string& name, ChaosProfile& out);

  /// Parses a preset name or a
  /// "cholesky=F,acq=F,journal=F,pool=F,cancel=F,observe=F" list.
  static bool parse(const std::string& text, ChaosProfile& out);
};

#if ROBOTUNE_CHAOS_ENABLED

class ChaosInjector {
 public:
  /// Arms the injector: decisions derive from (seed, site, counter).
  /// Resets all per-site counters, so two configure() calls with the
  /// same (profile, seed) replay the identical decision sequence.
  void configure(const ChaosProfile& profile, std::uint64_t seed);

  /// Back to inert (and counters cleared).
  void disarm();

  bool enabled() const noexcept {
    return enabled_.load(std::memory_order_relaxed);
  }
  const ChaosProfile& profile() const noexcept { return profile_; }

  /// Decision for the next invocation of a canonical-thread site.
  bool should_fail(Site site) noexcept;
  /// Decision keyed on a caller-supplied logical index (safe to call
  /// concurrently: the result is a pure function of (seed, site, index)).
  bool should_fail(Site site, std::uint64_t index) noexcept;

  /// Total decisions that fired for `site` since configure().
  std::uint64_t injections(Site site) const noexcept;

 private:
  bool decide(Site site, std::uint64_t index) noexcept;

  std::atomic<bool> enabled_{false};
  ChaosProfile profile_;
  std::uint64_t seed_ = 0;
  std::array<std::atomic<std::uint64_t>, kSiteCount> counters_{};
  std::array<std::atomic<std::uint64_t>, kSiteCount> injected_{};
};

#else  // ROBOTUNE_CHAOS_ENABLED

/// Compiled-out stub: hooks are constant-false, arming is a no-op.
class ChaosInjector {
 public:
  void configure(const ChaosProfile&, std::uint64_t) {}
  void disarm() {}
  bool enabled() const noexcept { return false; }
  const ChaosProfile& profile() const noexcept { return profile_; }
  bool should_fail(Site) noexcept { return false; }
  bool should_fail(Site, std::uint64_t) noexcept { return false; }
  std::uint64_t injections(Site) const noexcept { return 0; }

 private:
  ChaosProfile profile_;
};

#endif  // ROBOTUNE_CHAOS_ENABLED

/// Process-wide injector all hooks consult.
ChaosInjector& injector();

// Hook-site idiom: one call, false unless armed and the dice say fail.
inline bool fail(Site site) noexcept { return injector().should_fail(site); }
inline bool fail_indexed(Site site, std::uint64_t index) noexcept {
  return injector().should_fail(site, index);
}

}  // namespace robotune::chaos
