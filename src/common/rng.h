// Deterministic, splittable random number generation for ROBOTune.
//
// Every stochastic component in the library takes an explicit 64-bit seed
// so that experiments are reproducible regardless of thread scheduling.
// We use xoshiro256** (public domain, Blackman & Vigna) seeded through
// SplitMix64, which is the recommended way to expand a single 64-bit seed
// into the 256-bit xoshiro state.
#pragma once

#include <array>
#include <cmath>
#include <cstdint>
#include <limits>

namespace robotune {

/// SplitMix64: used to derive independent seeds and to initialize
/// xoshiro256** state.  Passes BigCrush when used as a generator itself.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  constexpr std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256**: fast, high-quality 64-bit PRNG.
/// Satisfies the C++ UniformRandomBitGenerator requirements.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x853c49e6748fea9bULL) noexcept {
    reseed(seed);
  }

  void reseed(std::uint64_t seed) noexcept {
    SplitMix64 sm(seed);
    for (auto& s : state_) s = sm.next();
    // Guard against the (astronomically unlikely) all-zero state.
    if (state_[0] == 0 && state_[1] == 0 && state_[2] == 0 && state_[3] == 0) {
      state_[0] = 0x9e3779b97f4a7c15ULL;
    }
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).  53 high bits of entropy.
  double uniform() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept {
    return lo + (hi - lo) * uniform();
  }

  /// Uniform integer in [0, n).  Unbiased via Lemire-style rejection.
  std::uint64_t uniform_index(std::uint64_t n) noexcept {
    if (n == 0) return 0;
    const std::uint64_t threshold = (0 - n) % n;  // 2^64 mod n
    for (;;) {
      const std::uint64_t r = (*this)();
      if (r >= threshold) return r % n;
    }
  }

  /// Uniform integer in the inclusive range [lo, hi].
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) noexcept {
    const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<std::int64_t>(uniform_index(span));
  }

  bool bernoulli(double p) noexcept { return uniform() < p; }

  /// Standard normal via Marsaglia polar method (cached second deviate).
  double normal() noexcept {
    if (has_cached_) {
      has_cached_ = false;
      return cached_;
    }
    double u, v, s;
    do {
      u = uniform(-1.0, 1.0);
      v = uniform(-1.0, 1.0);
      s = u * u + v * v;
    } while (s >= 1.0 || s == 0.0);
    const double mul = std::sqrt(-2.0 * std::log(s) / s);
    cached_ = v * mul;
    has_cached_ = true;
    return u * mul;
  }

  double normal(double mean, double stddev) noexcept {
    return mean + stddev * normal();
  }

  /// Lognormal with the given parameters of the underlying normal.
  double lognormal(double mu, double sigma) noexcept {
    return std::exp(normal(mu, sigma));
  }

  /// Derive a new, statistically independent generator.  Used to hand a
  /// private RNG to each parallel task (Core Guidelines CP.3: don't share
  /// writable state).
  Rng split() noexcept { return Rng((*this)() ^ 0xd1b54a32d192ed03ULL); }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
  double cached_ = 0.0;
  bool has_cached_ = false;
};

}  // namespace robotune
