// CRC-32 (IEEE 802.3, the zlib/PNG polynomial) over a byte string.
//
// Used by the v3 session journal to frame records: each record line
// carries the CRC of its payload, so a torn write (truncated tail) or a
// bit flip is detected at load time and `recover` mode can truncate to
// the longest valid prefix instead of replaying corrupt state.
#pragma once

#include <array>
#include <cstdint>
#include <string_view>

namespace robotune {

namespace detail {

constexpr std::array<std::uint32_t, 256> make_crc32_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int bit = 0; bit < 8; ++bit) {
      c = (c & 1u) ? (0xedb88320u ^ (c >> 1)) : (c >> 1);
    }
    table[i] = c;
  }
  return table;
}

inline constexpr std::array<std::uint32_t, 256> kCrc32Table =
    make_crc32_table();

}  // namespace detail

/// CRC-32 of `bytes` (reflected polynomial 0xedb88320, init/final 0xff..).
constexpr std::uint32_t crc32(std::string_view bytes) noexcept {
  std::uint32_t c = 0xffffffffu;
  for (const char ch : bytes) {
    c = detail::kCrc32Table[(c ^ static_cast<unsigned char>(ch)) & 0xffu] ^
        (c >> 8);
  }
  return c ^ 0xffffffffu;
}

}  // namespace robotune
