#include "common/thread_pool.h"

#include <algorithm>

namespace robotune {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this]() { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::scoped_lock lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) {
    if (w.joinable()) w.join();
  }
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> job;
    {
      std::unique_lock lock(mutex_);
      cv_.wait(lock, [this]() { return stopping_ || !jobs_.empty(); });
      if (stopping_ && jobs_.empty()) return;
      job = std::move(jobs_.front());
      jobs_.pop();
    }
    job();
  }
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool;
  return pool;
}

}  // namespace robotune
