#include "common/thread_pool.h"

#include <algorithm>

#include "obs/metrics.h"

namespace robotune {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  // Pool activity depends on worker count and task placement, so it
  // lives in the scheduling-dependent `runtime.` metric section.
  obs::count("runtime.pool.workers_started", threads);
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this]() { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::scoped_lock lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) {
    if (w.joinable()) w.join();
  }
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> job;
    {
      std::unique_lock lock(mutex_);
      cv_.wait(lock, [this]() { return stopping_ || !jobs_.empty(); });
      if (stopping_ && jobs_.empty()) return;
      job = std::move(jobs_.front());
      jobs_.pop();
    }
    // Counted before the job runs: the job fulfils its future, which is
    // what orders this thread-local shard write before any snapshot()
    // taken after a wait_all.
    obs::count("runtime.pool.tasks_executed");
    job();
  }
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool;
  return pool;
}

}  // namespace robotune
