#include "common/thread_pool.h"

#include <algorithm>

#include "obs/metrics.h"

namespace robotune {

namespace {

/// Worker count global() is created with, settable once before first use
/// (ThreadPool::configure_global).  0 = hardware concurrency.
std::atomic<std::size_t> g_global_threads{0};
std::atomic<bool> g_global_created{false};

}  // namespace

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  // Pool activity depends on worker count and task placement, so it
  // lives in the scheduling-dependent `runtime.` metric section.
  obs::count("runtime.pool.workers_started", threads);
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this]() { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::scoped_lock lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) {
    if (w.joinable()) w.join();
  }
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> job;
    {
      std::unique_lock lock(mutex_);
      cv_.wait(lock, [this]() { return stopping_ || !jobs_.empty(); });
      if (stopping_ && jobs_.empty()) return;
      job = std::move(jobs_.front());
      jobs_.pop();
    }
    // Counted before the job runs: the job fulfils its future, which is
    // what orders this thread-local shard write before any snapshot()
    // taken after a wait_all.
    obs::count("runtime.pool.tasks_executed");
    busy_.fetch_add(1, std::memory_order_relaxed);
    try {
      job();
    } catch (...) {
      // A packaged_task never throws out of operator(); this guard only
      // keeps the busy counter honest for raw closures.
      busy_.fetch_sub(1, std::memory_order_relaxed);
      throw;
    }
    busy_.fetch_sub(1, std::memory_order_relaxed);
  }
}

ThreadPool& ThreadPool::global() {
  g_global_created.store(true, std::memory_order_release);
  static ThreadPool pool(g_global_threads.load(std::memory_order_acquire));
  return pool;
}

bool ThreadPool::configure_global(std::size_t threads) {
  if (g_global_created.load(std::memory_order_acquire)) return false;
  g_global_threads.store(threads, std::memory_order_release);
  // A racing first global() call could have constructed the pool between
  // the check and the store; report whether the request actually took.
  return !g_global_created.load(std::memory_order_acquire);
}

}  // namespace robotune
