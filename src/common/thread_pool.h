// Minimal task-based thread pool (Core Guidelines CP.4: think in terms of
// tasks, not threads).  Used to parallelize embarrassingly parallel loops:
// random-forest tree training, multi-start acquisition optimization, and
// repeated tuner runs inside the benchmark harnesses.
//
// Tasks must not share writable state; each parallel_for body receives the
// index and should only write to its own slot of a pre-sized output.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace robotune {

class ThreadPool {
 public:
  /// Creates `threads` workers; 0 means std::thread::hardware_concurrency()
  /// (at least 1).
  explicit ThreadPool(std::size_t threads = 0);

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  ~ThreadPool();

  std::size_t size() const noexcept { return workers_.size(); }

  /// Enqueue a task; the returned future yields its result.
  template <typename F>
  auto submit(F&& f) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<F>(f));
    std::future<R> fut = task->get_future();
    {
      std::scoped_lock lock(mutex_);
      jobs_.emplace([task]() { (*task)(); });
    }
    cv_.notify_one();
    return fut;
  }

  /// Run body(i) for i in [0, n), blocking until all complete.  Falls back
  /// to a plain loop when the pool has a single worker (avoids queueing
  /// overhead on 1-core machines).  Exceptions from bodies propagate.
  template <typename Body>
  void parallel_for(std::size_t n, Body&& body) {
    if (n == 0) return;
    if (size() <= 1 || n == 1) {
      for (std::size_t i = 0; i < n; ++i) body(i);
      return;
    }
    std::vector<std::future<void>> futures;
    futures.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      futures.push_back(submit([i, &body]() { body(i); }));
    }
    for (auto& f : futures) f.get();
  }

  /// Process-wide shared pool, created on first use.
  static ThreadPool& global();

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> jobs_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stopping_ = false;
};

}  // namespace robotune
