// Minimal task-based thread pool (Core Guidelines CP.4: think in terms of
// tasks, not threads).  Used to parallelize embarrassingly parallel loops:
// random-forest tree training, multi-start acquisition optimization, and
// repeated tuner runs inside the benchmark harnesses.  The service layer
// (src/service) additionally multiplexes whole tuning sessions over a
// pool and sizes its admission control from the introspection calls.
//
// Tasks must not share writable state; each parallel_for body receives the
// index and should only write to its own slot of a pre-sized output.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

#include "common/chaos.h"
#include "obs/metrics.h"

namespace robotune {

class ThreadPool {
 public:
  /// Creates `threads` workers; 0 means std::thread::hardware_concurrency()
  /// (at least 1).
  explicit ThreadPool(std::size_t threads = 0);

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Drains the queue before joining: tasks already submitted run to
  /// completion (their futures become ready), none are dropped.
  ~ThreadPool();

  std::size_t size() const noexcept { return workers_.size(); }

  /// Tasks submitted but not yet picked up by a worker.  A point-in-time
  /// reading (another thread may enqueue or dequeue immediately after) —
  /// meant for admission control and load reporting, not for
  /// synchronization.
  std::size_t queued() const {
    std::scoped_lock lock(mutex_);
    return jobs_.size();
  }

  /// Workers currently blocked waiting for work (same point-in-time
  /// caveat as queued()).
  std::size_t idle_workers() const {
    const std::size_t busy = busy_.load(std::memory_order_relaxed);
    return busy >= size() ? 0 : size() - busy;
  }

  /// Enqueue a task; the returned future yields its result.  The
  /// caller's obs session scope (if any) is forwarded to the worker that
  /// runs the task, so per-session metric attribution survives the
  /// thread hop.
  template <typename F>
  auto submit(F&& f) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<F>(f));
    std::future<R> fut = task->get_future();
    const std::uint64_t session = obs::ScopedSession::current();
    {
      std::scoped_lock lock(mutex_);
      jobs_.emplace([task, session]() {
        obs::ScopedSession scope(session);
        (*task)();
      });
    }
    cv_.notify_one();
    return fut;
  }

  /// Enqueues a group of tasks under a single lock acquisition and
  /// returns their futures in task order.  A task that throws stores its
  /// exception in the matching future (see wait_all).  Like submit, the
  /// caller's obs session scope travels with every task.
  template <typename F>
  auto submit_batch(std::vector<F> tasks)
      -> std::vector<std::future<std::invoke_result_t<F&>>> {
    using R = std::invoke_result_t<F&>;
    std::vector<std::future<R>> futures;
    futures.reserve(tasks.size());
    const std::uint64_t session = obs::ScopedSession::current();
    {
      std::scoped_lock lock(mutex_);
      for (auto& t : tasks) {
        auto task =
            std::make_shared<std::packaged_task<R()>>(std::move(t));
        futures.push_back(task->get_future());
        jobs_.emplace([task, session]() {
          obs::ScopedSession scope(session);
          (*task)();
        });
      }
    }
    cv_.notify_all();
    return futures;
  }

  /// Blocks until every future is ready, then rethrows the first stored
  /// exception in *future order* (deterministic regardless of which task
  /// actually failed first on the clock).  All futures are drained even
  /// when one throws, so no task is left running against caller state
  /// that an early exception would have destroyed.  Results of value-
  /// returning tasks are discarded — wait_all is for tasks that write
  /// into their own pre-sized output slots.
  template <typename R>
  static void wait_all(std::vector<std::future<R>>& futures) {
    std::exception_ptr first;
    for (auto& f : futures) {
      try {
        f.get();
      } catch (...) {
        if (!first) first = std::current_exception();
      }
    }
    if (first) std::rethrow_exception(first);
  }

  /// Run body(i) for i in [0, n), blocking until all complete.  Falls back
  /// to a plain loop when the pool has a single worker (avoids queueing
  /// overhead on 1-core machines).  Exceptions from bodies propagate; when
  /// several bodies throw, the lowest index wins (wait_all semantics).
  template <typename Body>
  void parallel_for(std::size_t n, Body&& body) {
    if (n == 0) return;
    if (size() <= 1 || n == 1) {
      for (std::size_t i = 0; i < n; ++i) run_indexed(body, i);
      return;
    }
    std::vector<std::function<void()>> tasks;
    tasks.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      tasks.emplace_back([i, &body]() { run_indexed(body, i); });
    }
    auto futures = submit_batch(std::move(tasks));
    wait_all(futures);
  }

  /// Process-wide shared pool, created on first use.
  static ThreadPool& global();

  /// Sets the worker count global() will be created with.  Must be
  /// called before the first global() use: returns true when the request
  /// took effect, false when the global pool already exists (its size is
  /// then fixed for the process lifetime — the old behavior, but now
  /// detectable instead of silent).  0 restores the hardware-concurrency
  /// default.
  static bool configure_global(std::size_t threads);

 private:
  // Chaos site wrapping every parallel_for body.  Keyed on the logical
  // index — not an invocation counter — so the set of injected failures
  // is identical on the inline single-worker path and the pooled path,
  // and the lowest failing index wins either way (wait_all semantics).
  template <typename Body>
  static void run_indexed(Body& body, std::size_t i) {
    if (chaos::fail_indexed(chaos::Site::kPoolTask, i)) {
      throw chaos::ChaosError("parallel_for: injected task failure");
    }
    body(i);
  }

  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> jobs_;
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::atomic<std::size_t> busy_{0};
  bool stopping_ = false;
};

}  // namespace robotune
