// Small statistics toolkit shared across modules: moments, quantiles,
// ranking metrics, and the normal distribution functions needed by the
// Bayesian-optimization acquisition functions.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace robotune::stats {

/// Arithmetic mean.  Returns 0 for an empty input.
double mean(std::span<const double> xs);

/// Unbiased (n-1) sample variance.  Returns 0 for fewer than two values.
double variance(std::span<const double> xs);

/// Sample standard deviation (sqrt of the unbiased variance).
double stddev(std::span<const double> xs);

double min(std::span<const double> xs);
double max(std::span<const double> xs);

/// Linear-interpolation quantile, q in [0, 1].  Copies and partially sorts.
double quantile(std::span<const double> xs, double q);

/// Median (quantile 0.5).
double median(std::span<const double> xs);

/// Coefficient of determination of predictions vs. ground truth.
/// R^2 = 1 - SS_res / SS_tot; 1.0 when y has no variance and the
/// prediction is exact, 0.0 when prediction is no better than the mean,
/// negative for arbitrarily worse models.
double r2_score(std::span<const double> y_true, std::span<const double> y_pred);

/// Recall (true-positive rate) of a predicted set vs. a ground-truth set of
/// indices: |truth ∩ predicted| / |truth|.  Returns 1.0 for an empty truth.
double recall(std::span<const std::size_t> truth,
              std::span<const std::size_t> predicted);

/// Pearson correlation coefficient.  Returns 0 when either side is constant.
double pearson(std::span<const double> xs, std::span<const double> ys);

/// Standard normal probability density function.
double normal_pdf(double z);

/// Standard normal cumulative distribution function (via erfc, ~1e-15 acc).
double normal_cdf(double z);

/// Summary of a sample used by the figure-5 style distribution reports.
struct Summary {
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double p25 = 0.0;
  double median = 0.0;
  double p75 = 0.0;
  double p90 = 0.0;
  double max = 0.0;
  std::size_t count = 0;
};

Summary summarize(std::span<const double> xs);

}  // namespace robotune::stats
