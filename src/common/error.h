// Error handling helpers.  The library throws exceptions for programmer
// errors (violated preconditions) and uses status-bearing return types for
// expected runtime outcomes (e.g. a simulated configuration failing with
// OOM is data, not an exception).
#pragma once

#include <stdexcept>
#include <string>

namespace robotune {

/// Thrown when a caller violates a documented precondition.
class InvalidArgument : public std::invalid_argument {
 public:
  using std::invalid_argument::invalid_argument;
};

/// Thrown when an internal numerical routine cannot proceed (e.g. a
/// Cholesky factorization of a non-PD matrix after jitter escalation).
class NumericalError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Precondition check used at public API boundaries.
inline void require(bool condition, const std::string& message) {
  if (!condition) throw InvalidArgument(message);
}

}  // namespace robotune
