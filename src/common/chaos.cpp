#include "common/chaos.h"

#include <cstdlib>
#include <sstream>

#include "common/rng.h"
#include "obs/metrics.h"

namespace robotune::chaos {

namespace {

// Per-site salts so the decision streams for different sites are
// independent even under the same chaos seed.
constexpr std::array<std::uint64_t, kSiteCount> kSiteSalt = {
    0x43484f4c45534bULL,  // "CHOLESK"
    0x4143514f5054ULL,    // "ACQOPT"
    0x4a4f55524e414cULL,  // "JOURNAL"
    0x504f4f4cULL,        // "POOL"
    0x43414e43454cULL,    // "CANCEL"
    0x4f42534552564555ULL,  // "OBSERVEU"
};

const char* kSiteNames[kSiteCount] = {"cholesky", "acq_opt", "journal_write",
                                      "pool_task", "cancel_delivery",
                                      "observe_delivery"};

}  // namespace

const char* to_string(Site site) noexcept {
  return kSiteNames[static_cast<int>(site)];
}

double ChaosProfile::rate(Site site) const noexcept {
  switch (site) {
    case Site::kCholesky:
      return cholesky_failure;
    case Site::kAcqOpt:
      return acq_opt_failure;
    case Site::kJournalWrite:
      return journal_write_failure;
    case Site::kPoolTask:
      return pool_task_failure;
    case Site::kCancelDelivery:
      return cancel_delivery_failure;
    case Site::kObserveDelivery:
      return observe_delivery_failure;
  }
  return 0.0;
}

bool ChaosProfile::from_preset(const std::string& name, ChaosProfile& out) {
  if (name == "none") {
    out = ChaosProfile{};
    return true;
  }
  if (name == "surrogate") {
    out = ChaosProfile{};
    out.cholesky_failure = 1.0;
    return true;
  }
  if (name == "flaky") {
    out = ChaosProfile{};
    out.cholesky_failure = 0.25;
    out.acq_opt_failure = 0.25;
    out.journal_write_failure = 0.5;
    return true;
  }
  if (name == "full") {
    out = ChaosProfile{};
    out.cholesky_failure = 1.0;
    out.acq_opt_failure = 1.0;
    out.journal_write_failure = 1.0;
    return true;
  }
  return false;
}

bool ChaosProfile::parse(const std::string& text, ChaosProfile& out) {
  if (from_preset(text, out)) {
    return true;
  }
  ChaosProfile parsed;
  std::stringstream ss(text);
  std::string item;
  bool any = false;
  while (std::getline(ss, item, ',')) {
    if (item.empty()) {
      continue;
    }
    const auto eq = item.find('=');
    if (eq == std::string::npos) {
      return false;
    }
    const std::string key = item.substr(0, eq);
    const std::string value = item.substr(eq + 1);
    char* end = nullptr;
    const double rate = std::strtod(value.c_str(), &end);
    if (end == value.c_str() || *end != '\0' || rate < 0.0 || rate > 1.0) {
      return false;
    }
    if (key == "cholesky") {
      parsed.cholesky_failure = rate;
    } else if (key == "acq") {
      parsed.acq_opt_failure = rate;
    } else if (key == "journal") {
      parsed.journal_write_failure = rate;
    } else if (key == "pool") {
      parsed.pool_task_failure = rate;
    } else if (key == "cancel") {
      parsed.cancel_delivery_failure = rate;
    } else if (key == "observe") {
      parsed.observe_delivery_failure = rate;
    } else {
      return false;
    }
    any = true;
  }
  if (!any) {
    return false;
  }
  out = parsed;
  return true;
}

#if ROBOTUNE_CHAOS_ENABLED

void ChaosInjector::configure(const ChaosProfile& profile, std::uint64_t seed) {
  profile_ = profile;
  seed_ = seed;
  for (auto& c : counters_) {
    c.store(0, std::memory_order_relaxed);
  }
  for (auto& c : injected_) {
    c.store(0, std::memory_order_relaxed);
  }
  enabled_.store(profile.active(), std::memory_order_relaxed);
}

void ChaosInjector::disarm() { configure(ChaosProfile{}, 0); }

bool ChaosInjector::should_fail(Site site) noexcept {
  if (!enabled()) {
    return false;
  }
  const auto slot = static_cast<std::size_t>(site);
  const std::uint64_t n =
      counters_[slot].fetch_add(1, std::memory_order_relaxed);
  return decide(site, n);
}

bool ChaosInjector::should_fail(Site site, std::uint64_t index) noexcept {
  if (!enabled()) {
    return false;
  }
  return decide(site, index);
}

bool ChaosInjector::decide(Site site, std::uint64_t index) noexcept {
  const auto slot = static_cast<std::size_t>(site);
  const double rate = profile_.rate(site);
  if (rate <= 0.0) {
    return false;
  }
  bool hit;
  if (rate >= 1.0) {
    hit = true;
  } else {
    // Pure function of (seed, site, index): mix through SplitMix64 and map
    // the draw to [0, 1) exactly like Rng::uniform does.
    SplitMix64 mixer(seed_ ^ kSiteSalt[slot] ^
                     (index * 0x9e3779b97f4a7c15ULL + 0x2545f4914f6cdd1dULL));
    mixer.next();
    const double u =
        static_cast<double>(mixer.next() >> 11) * 0x1.0p-53;
    hit = u < rate;
  }
  if (hit) {
    injected_[slot].fetch_add(1, std::memory_order_relaxed);
    obs::count(std::string("chaos.") + kSiteNames[slot]);
  }
  return hit;
}

std::uint64_t ChaosInjector::injections(Site site) const noexcept {
  return injected_[static_cast<std::size_t>(site)].load(
      std::memory_order_relaxed);
}

#endif  // ROBOTUNE_CHAOS_ENABLED

ChaosInjector& injector() {
  static ChaosInjector instance;
  return instance;
}

}  // namespace robotune::chaos
