#include "common/statistics.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <unordered_set>

namespace robotune::stats {

double mean(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  double sum = 0.0;
  for (double x : xs) sum += x;
  return sum / static_cast<double>(xs.size());
}

double variance(std::span<const double> xs) {
  if (xs.size() < 2) return 0.0;
  const double m = mean(xs);
  double ss = 0.0;
  for (double x : xs) {
    const double d = x - m;
    ss += d * d;
  }
  return ss / static_cast<double>(xs.size() - 1);
}

double stddev(std::span<const double> xs) { return std::sqrt(variance(xs)); }

double min(std::span<const double> xs) {
  if (xs.empty()) return std::numeric_limits<double>::quiet_NaN();
  return *std::min_element(xs.begin(), xs.end());
}

double max(std::span<const double> xs) {
  if (xs.empty()) return std::numeric_limits<double>::quiet_NaN();
  return *std::max_element(xs.begin(), xs.end());
}

double quantile(std::span<const double> xs, double q) {
  if (xs.empty()) return std::numeric_limits<double>::quiet_NaN();
  q = std::clamp(q, 0.0, 1.0);
  std::vector<double> copy(xs.begin(), xs.end());
  std::sort(copy.begin(), copy.end());
  const double pos = q * static_cast<double>(copy.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, copy.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return copy[lo] * (1.0 - frac) + copy[hi] * frac;
}

double median(std::span<const double> xs) { return quantile(xs, 0.5); }

double r2_score(std::span<const double> y_true,
                std::span<const double> y_pred) {
  if (y_true.empty() || y_true.size() != y_pred.size()) {
    return std::numeric_limits<double>::quiet_NaN();
  }
  const double m = mean(y_true);
  double ss_res = 0.0;
  double ss_tot = 0.0;
  for (std::size_t i = 0; i < y_true.size(); ++i) {
    const double r = y_true[i] - y_pred[i];
    const double t = y_true[i] - m;
    ss_res += r * r;
    ss_tot += t * t;
  }
  if (ss_tot == 0.0) return ss_res == 0.0 ? 1.0 : 0.0;
  return 1.0 - ss_res / ss_tot;
}

double recall(std::span<const std::size_t> truth,
              std::span<const std::size_t> predicted) {
  if (truth.empty()) return 1.0;
  const std::unordered_set<std::size_t> pred(predicted.begin(),
                                             predicted.end());
  std::size_t hit = 0;
  for (std::size_t t : truth) {
    if (pred.count(t) != 0) ++hit;
  }
  return static_cast<double>(hit) / static_cast<double>(truth.size());
}

double pearson(std::span<const double> xs, std::span<const double> ys) {
  if (xs.size() != ys.size() || xs.size() < 2) return 0.0;
  const double mx = mean(xs);
  const double my = mean(ys);
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double dx = xs[i] - mx;
    const double dy = ys[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx == 0.0 || syy == 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

double normal_pdf(double z) {
  static constexpr double kInvSqrt2Pi = 0.3989422804014326779399461;
  return kInvSqrt2Pi * std::exp(-0.5 * z * z);
}

double normal_cdf(double z) {
  static constexpr double kInvSqrt2 = 0.7071067811865475244008444;
  return 0.5 * std::erfc(-z * kInvSqrt2);
}

Summary summarize(std::span<const double> xs) {
  Summary s;
  s.count = xs.size();
  if (xs.empty()) return s;
  s.mean = mean(xs);
  s.stddev = stddev(xs);
  std::vector<double> copy(xs.begin(), xs.end());
  std::sort(copy.begin(), copy.end());
  auto q = [&](double p) {
    const double pos = p * static_cast<double>(copy.size() - 1);
    const auto lo = static_cast<std::size_t>(pos);
    const std::size_t hi = std::min(lo + 1, copy.size() - 1);
    const double frac = pos - static_cast<double>(lo);
    return copy[lo] * (1.0 - frac) + copy[hi] * frac;
  };
  s.min = copy.front();
  s.p25 = q(0.25);
  s.median = q(0.5);
  s.p75 = q(0.75);
  s.p90 = q(0.90);
  s.max = copy.back();
  return s;
}

}  // namespace robotune::stats
