#include "sampling/latin_hypercube.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "common/error.h"

namespace robotune::sampling {

namespace {

Design one_lhs(std::size_t count, std::size_t dims, Rng& rng,
               bool jitter) {
  Design design(count, std::vector<double>(dims));
  std::vector<std::size_t> perm(count);
  for (std::size_t d = 0; d < dims; ++d) {
    std::iota(perm.begin(), perm.end(), std::size_t{0});
    // Fisher-Yates shuffle driven by our deterministic RNG.
    for (std::size_t i = count; i-- > 1;) {
      const std::size_t j = rng.uniform_index(i + 1);
      std::swap(perm[i], perm[j]);
    }
    const double inv = 1.0 / static_cast<double>(count);
    for (std::size_t i = 0; i < count; ++i) {
      const double offset = jitter ? rng.uniform() : 0.5;
      design[i][d] = (static_cast<double>(perm[i]) + offset) * inv;
    }
  }
  return design;
}

}  // namespace

Design latin_hypercube(std::size_t count, std::size_t dims, Rng& rng,
                       const LhsOptions& options) {
  require(count > 0, "latin_hypercube: count must be positive");
  require(dims > 0, "latin_hypercube: dims must be positive");
  const int candidates = std::max(1, options.maximin_candidates);
  Design best;
  double best_score = -std::numeric_limits<double>::infinity();
  for (int c = 0; c < candidates; ++c) {
    Design d = one_lhs(count, dims, rng, options.jitter_within_stratum);
    const double score =
        candidates == 1 ? 0.0 : min_pairwise_distance(d);
    if (score > best_score || best.empty()) {
      best_score = score;
      best = std::move(d);
    }
  }
  return best;
}

Design uniform_random(std::size_t count, std::size_t dims, Rng& rng) {
  require(dims > 0, "uniform_random: dims must be positive");
  Design design(count, std::vector<double>(dims));
  for (auto& row : design) {
    for (auto& x : row) x = rng.uniform();
  }
  return design;
}

double min_pairwise_distance(const Design& design) {
  if (design.size() < 2) return std::numeric_limits<double>::infinity();
  double best = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < design.size(); ++i) {
    for (std::size_t j = i + 1; j < design.size(); ++j) {
      double ss = 0.0;
      for (std::size_t d = 0; d < design[i].size(); ++d) {
        const double diff = design[i][d] - design[j][d];
        ss += diff * diff;
      }
      best = std::min(best, std::sqrt(ss));
    }
  }
  return best;
}

bool is_latin(const Design& design) {
  if (design.empty()) return true;
  const std::size_t count = design.size();
  const std::size_t dims = design.front().size();
  std::vector<char> seen(count);
  for (std::size_t d = 0; d < dims; ++d) {
    std::fill(seen.begin(), seen.end(), 0);
    for (const auto& row : design) {
      if (row.size() != dims) return false;
      if (row[d] < 0.0 || row[d] >= 1.0) return false;
      const auto stratum = static_cast<std::size_t>(
          row[d] * static_cast<double>(count));
      if (stratum >= count || seen[stratum]) return false;
      seen[stratum] = 1;
    }
  }
  return true;
}

}  // namespace robotune::sampling
