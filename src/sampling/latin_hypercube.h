// Latin Hypercube Sampling (LHS) in the unit hypercube [0,1]^d.
//
// LHS is the sample generator ROBOTune uses both for the 100 "generic"
// samples feeding parameter selection and the 20 "tuning" samples that
// initialize the Gaussian-process model (paper §3.2).  For M samples, each
// dimension's range is split into M equally probable strata and exactly one
// point is drawn per stratum; the strata are randomly permuted per
// dimension so the projection onto every axis is uniform.
//
// The paper uses DOEPY's *space-filling* LHS, so we additionally offer a
// maximin variant: several candidate designs are drawn and the one with
// the largest minimal pairwise distance is kept (a standard, cheap
// approximation of maximin-LHS).
#pragma once

#include <cstddef>
#include <vector>

#include "common/rng.h"

namespace robotune::sampling {

struct LhsOptions {
  /// Candidate designs drawn for the maximin criterion; 1 = plain LHS.
  int maximin_candidates = 10;
  /// If true, points are jittered uniformly within their stratum;
  /// otherwise they sit at stratum centers.
  bool jitter_within_stratum = true;
};

/// One sample = one row (vector of `dims` coordinates in [0,1)).
using Design = std::vector<std::vector<double>>;

/// Generate `count` LHS samples in [0,1)^dims.
Design latin_hypercube(std::size_t count, std::size_t dims, Rng& rng,
                       const LhsOptions& options = {});

/// Plain uniform random sampling in [0,1)^dims (the RS baseline and the
/// LHS-vs-random ablation both use it).
Design uniform_random(std::size_t count, std::size_t dims, Rng& rng);

/// Minimal pairwise Euclidean distance of a design (quality metric used by
/// the maximin selection and by tests).
double min_pairwise_distance(const Design& design);

/// True iff the design satisfies the Latin property: per dimension, exactly
/// one point falls into each of the `count` equal strata.
bool is_latin(const Design& design);

}  // namespace robotune::sampling
