#include "service/events.h"

#include <unistd.h>

#include <charconv>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <map>
#include <utility>

#include "common/error.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "service/protocol.h"

namespace robotune::service {

namespace fs = std::filesystem;

namespace {

constexpr std::string_view kHeader = "robotune-events v1";

std::int64_t wall_clock_ms() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

std::string encode_event(const FleetEvent& event) {
  std::string out = "{\"seq\":";
  out += std::to_string(event.seq);
  out += ",\"sid\":";
  out += std::to_string(event.session);
  out += ",\"ts_ms\":";
  out += std::to_string(event.ts_ms);
  out += ",\"kind\":\"";
  out += obs::json_escape(event.kind);
  out += "\",\"detail\":\"";
  out += obs::json_escape(event.detail);
  out += "\"}";
  return out;
}

bool parse_literal(std::string_view s, std::size_t& pos,
                   std::string_view literal) {
  if (s.substr(pos, literal.size()) != literal) return false;
  pos += literal.size();
  return true;
}

bool parse_u64(std::string_view s, std::size_t& pos, std::uint64_t& out) {
  const char* begin = s.data() + pos;
  const char* end = s.data() + s.size();
  const auto [ptr, ec] = std::from_chars(begin, end, out);
  if (ec != std::errc() || ptr == begin) return false;
  pos += static_cast<std::size_t>(ptr - begin);
  return true;
}

bool parse_i64(std::string_view s, std::size_t& pos, std::int64_t& out) {
  const char* begin = s.data() + pos;
  const char* end = s.data() + s.size();
  const auto [ptr, ec] = std::from_chars(begin, end, out);
  if (ec != std::errc() || ptr == begin) return false;
  pos += static_cast<std::size_t>(ptr - begin);
  return true;
}

int hex_nibble(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

/// Parses a JSON string (including the surrounding quotes) produced by
/// obs::json_escape: the short escapes plus \u00XX for control bytes.
bool parse_json_string(std::string_view s, std::size_t& pos,
                       std::string& out) {
  out.clear();
  if (pos >= s.size() || s[pos] != '"') return false;
  ++pos;
  while (pos < s.size()) {
    const char c = s[pos];
    if (c == '"') {
      ++pos;
      return true;
    }
    if (c != '\\') {
      out.push_back(c);
      ++pos;
      continue;
    }
    if (pos + 1 >= s.size()) return false;
    const char esc = s[pos + 1];
    pos += 2;
    switch (esc) {
      case '"':
        out.push_back('"');
        break;
      case '\\':
        out.push_back('\\');
        break;
      case '/':
        out.push_back('/');
        break;
      case 'n':
        out.push_back('\n');
        break;
      case 'r':
        out.push_back('\r');
        break;
      case 't':
        out.push_back('\t');
        break;
      case 'b':
        out.push_back('\b');
        break;
      case 'f':
        out.push_back('\f');
        break;
      case 'u': {
        if (pos + 4 > s.size()) return false;
        int value = 0;
        for (int i = 0; i < 4; ++i) {
          const int nibble = hex_nibble(s[pos + static_cast<std::size_t>(i)]);
          if (nibble < 0) return false;
          value = (value << 4) | nibble;
        }
        if (value > 0xff) return false;  // the writer never emits these
        out.push_back(static_cast<char>(value));
        pos += 4;
        break;
      }
      default:
        return false;
    }
  }
  return false;  // unterminated string
}

bool parse_event(std::string_view payload, FleetEvent& event,
                 std::string& why) {
  std::size_t pos = 0;
  why = "malformed event record";
  if (!parse_literal(payload, pos, "{\"seq\":")) return false;
  if (!parse_u64(payload, pos, event.seq)) return false;
  if (!parse_literal(payload, pos, ",\"sid\":")) return false;
  if (!parse_u64(payload, pos, event.session)) return false;
  if (!parse_literal(payload, pos, ",\"ts_ms\":")) return false;
  if (!parse_i64(payload, pos, event.ts_ms)) return false;
  if (!parse_literal(payload, pos, ",\"kind\":")) return false;
  if (!parse_json_string(payload, pos, event.kind)) return false;
  if (!parse_literal(payload, pos, ",\"detail\":")) return false;
  if (!parse_json_string(payload, pos, event.detail)) return false;
  if (!parse_literal(payload, pos, "}")) return false;
  if (pos != payload.size()) return false;
  why.clear();
  return true;
}

std::string rotated_path(const EventJournal::Options& options,
                         std::size_t index) {
  return options.path + "." + std::to_string(index);
}

std::vector<std::string> chain_paths(const EventJournal::Options& options) {
  std::vector<std::string> out;
  if (options.path.empty()) return out;
  std::error_code ec;
  for (std::size_t i = options.keep; i >= 1; --i) {
    const std::string path = rotated_path(options, i);
    if (fs::exists(path, ec)) out.push_back(path);
  }
  if (fs::exists(options.path, ec)) out.push_back(options.path);
  return out;
}

std::size_t count_lines(std::string_view text) {
  std::size_t n = 0;
  std::size_t pos = 0;
  while (pos < text.size()) {
    const std::size_t eol = text.find('\n', pos);
    ++n;
    if (eol == std::string_view::npos) break;
    pos = eol + 1;
  }
  return n;
}

}  // namespace

bool logical_event_kind(std::string_view kind) {
  static constexpr std::string_view kLogical[] = {
      "admission.accept",  "queue.enter",        "queue.leave",
      "session.running",   "session.done",       "session.cancelled",
      "session.failed",    "cancel.requested",   "recovery.resumed",
      "recovery.completed", "recovery.cancelled", "recovery.quarantined",
  };
  for (const std::string_view candidate : kLogical) {
    if (kind == candidate) return true;
  }
  return false;
}

std::string logical_event_projection(
    const std::vector<FleetEvent>& events) {
  std::map<std::uint64_t, std::string> per_session;
  for (const FleetEvent& event : events) {
    if (event.session == 0 || !logical_event_kind(event.kind)) continue;
    std::string& stream = per_session[event.session];
    stream += "session ";
    stream += std::to_string(event.session);
    stream += ' ';
    stream += event.kind;
    stream += '\n';
  }
  std::string out;
  for (const auto& [id, stream] : per_session) out += stream;
  return out;
}

EventJournal::~EventJournal() { close(); }

bool EventJournal::enabled() const {
  std::scoped_lock lock(mutex_);
  return file_ != nullptr;
}

std::string EventJournal::path() const {
  std::scoped_lock lock(mutex_);
  return options_.path;
}

std::uint64_t EventJournal::last_seq() const {
  std::scoped_lock lock(mutex_);
  return seq_;
}

void EventJournal::close() {
  std::scoped_lock lock(mutex_);
  if (file_ != nullptr) {
    std::fclose(file_);
    file_ = nullptr;
  }
}

bool EventJournal::load_file(const std::string& path,
                             std::vector<FleetEvent>& out,
                             core::LoadMode mode, LoadReport* report_out) {
  out.clear();
  LoadReport report;
  const auto deliver = [&]() {
    report.events = out.size();
    if (report_out != nullptr) *report_out = report;
  };
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    deliver();
    return false;
  }
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  const bool strict = mode == core::LoadMode::kStrict;

  if (content.empty()) {
    if (strict) throw InvalidArgument("load_events: " + path + ": empty stream");
    deliver();
    return true;
  }
  std::size_t eol = content.find('\n');
  if (eol == std::string::npos ||
      std::string_view(content).substr(0, eol) != kHeader) {
    if (strict) {
      throw InvalidArgument("load_events: " + path + ":1: bad header");
    }
    report.header_ok = false;
    report.recovered = true;
    report.dropped = count_lines(content);
    deliver();
    return true;
  }
  std::size_t cursor = eol + 1;
  report.valid_bytes = cursor;
  std::size_t line_no = 1;
  std::uint64_t prev_seq = 0;
  while (cursor < content.size()) {
    ++line_no;
    std::string why;
    eol = content.find('\n', cursor);
    bool ok = eol != std::string::npos;
    if (!ok) why = "torn record (no trailing newline)";
    FleetEvent event;
    if (ok) {
      std::string payload;
      const std::string_view line(content.data() + cursor, eol - cursor);
      ok = unframe_line(line, payload, why) &&
           parse_event(payload, event, why);
      if (ok && event.seq <= prev_seq) {
        ok = false;
        why = "non-monotonic sequence number";
      }
    }
    if (!ok) {
      if (strict) {
        throw InvalidArgument("load_events: " + path + ":" +
                              std::to_string(line_no) + ": " + why);
      }
      report.recovered = true;
      report.dropped =
          count_lines(std::string_view(content).substr(cursor));
      break;
    }
    prev_seq = event.seq;
    out.push_back(std::move(event));
    cursor = eol + 1;
    report.valid_bytes = cursor;
  }
  deliver();
  return true;
}

bool EventJournal::load_chain(const Options& options,
                              std::vector<FleetEvent>& out,
                              LoadReport* report_out) {
  out.clear();
  LoadReport total;
  bool any = false;
  for (const std::string& path : chain_paths(options)) {
    std::vector<FleetEvent> events;
    LoadReport report;
    if (!load_file(path, events, core::LoadMode::kRecover, &report)) continue;
    any = true;
    out.insert(out.end(), std::make_move_iterator(events.begin()),
               std::make_move_iterator(events.end()));
    total.events += report.events;
    total.dropped += report.dropped;
    total.recovered = total.recovered || report.recovered;
    total.header_ok = total.header_ok && report.header_ok;
    total.valid_bytes += report.valid_bytes;
  }
  if (report_out != nullptr) *report_out = total;
  return any;
}

bool EventJournal::open(const Options& options, std::string* error) {
  close();
  std::scoped_lock lock(mutex_);
  options_ = options;
  seq_ = 0;
  bytes_ = 0;
  if (options_.path.empty()) return true;  // journal disabled

  std::error_code ec;
  if (fs::exists(options_.path, ec)) {
    std::vector<FleetEvent> events;
    LoadReport report;
    load_file(options_.path, events, core::LoadMode::kRecover, &report);
    if (!report.header_ok) {
      // Corrupt beyond recovery: set the history aside (never silently
      // overwrite it) and start a fresh journal.
      fs::rename(options_.path, options_.path + ".corrupt", ec);
      if (ec) {
        if (error != nullptr) {
          *error = "cannot set aside corrupt event journal " + options_.path;
        }
        return false;
      }
    } else {
      // kill -9 case: truncate a torn tail on disk so the stream stays
      // one clean frame sequence, then continue where it left off.
      if (report.valid_bytes < fs::file_size(options_.path, ec)) {
        fs::resize_file(options_.path, report.valid_bytes, ec);
      }
      if (!events.empty()) seq_ = events.back().seq;
    }
  }
  if (seq_ == 0) {
    // Nothing durable in the active file — a crash can land right after
    // rotation; the newest rotated file carries the last sequence.
    for (std::size_t i = 1; i <= options_.keep && seq_ == 0; ++i) {
      std::vector<FleetEvent> events;
      if (load_file(rotated_path(options_, i), events,
                    core::LoadMode::kRecover) &&
          !events.empty()) {
        seq_ = events.back().seq;
      }
    }
  }

  file_ = std::fopen(options_.path.c_str(), "ab");
  if (file_ == nullptr) {
    if (error != nullptr) {
      *error = "cannot open event journal " + options_.path;
    }
    return false;
  }
  bytes_ = static_cast<std::size_t>(fs::file_size(options_.path, ec));
  if (ec) bytes_ = 0;
  if (bytes_ == 0) {
    std::string err;
    if (!open_fresh_locked(&err)) {
      if (error != nullptr) *error = err;
      return false;
    }
  }
  return true;
}

bool EventJournal::open_fresh_locked(std::string* error) {
  if (file_ != nullptr) std::fclose(file_);
  file_ = std::fopen(options_.path.c_str(), "wb");
  if (file_ == nullptr) {
    if (error != nullptr) {
      *error = "cannot open event journal " + options_.path;
    }
    return false;
  }
  std::string header(kHeader);
  header.push_back('\n');
  if (std::fwrite(header.data(), 1, header.size(), file_) != header.size()) {
    std::fclose(file_);
    file_ = nullptr;
    if (error != nullptr) {
      *error = "cannot write event journal header to " + options_.path;
    }
    return false;
  }
  std::fflush(file_);
  bytes_ = header.size();
  return true;
}

void EventJournal::emit(std::uint64_t session, std::string_view kind,
                        std::string_view detail) {
  std::scoped_lock lock(mutex_);
  if (file_ == nullptr) return;
  FleetEvent event;
  event.seq = seq_ + 1;
  event.session = session;
  event.ts_ms = wall_clock_ms();
  event.kind.assign(kind);
  event.detail.assign(detail);
  const std::string frame = frame_message(encode_event(event));
  if (std::fwrite(frame.data(), 1, frame.size(), file_) != frame.size()) {
    // Disk failure must never wedge the fleet: drop the journal, keep
    // serving.
    std::fclose(file_);
    file_ = nullptr;
    obs::count("runtime.service.events.write_failed");
    return;
  }
  // Flush every record to the OS: kill -9 then loses at most nothing,
  // power loss at most the unsynced tail (which recover-load truncates).
  std::fflush(file_);
  if (options_.fsync) ::fsync(::fileno(file_));
  seq_ = event.seq;
  bytes_ += frame.size();
  obs::count("runtime.service.events.emitted");
  if (bytes_ > options_.max_bytes) rotate_locked();
}

void EventJournal::flush() {
  std::scoped_lock lock(mutex_);
  if (file_ == nullptr) return;
  std::fflush(file_);
  ::fsync(::fileno(file_));
}

void EventJournal::rotate_locked() {
  if (file_ != nullptr) {
    std::fclose(file_);
    file_ = nullptr;
  }
  std::error_code ec;
  if (options_.keep == 0) {
    fs::remove(options_.path, ec);
  } else {
    fs::remove(rotated_path(options_, options_.keep), ec);
    for (std::size_t i = options_.keep; i-- > 1;) {
      const std::string from = rotated_path(options_, i);
      if (fs::exists(from, ec)) {
        fs::rename(from, rotated_path(options_, i + 1), ec);
      }
    }
    fs::rename(options_.path, rotated_path(options_, 1), ec);
  }
  // The fresh file continues the same monotonic sequence.
  open_fresh_locked(nullptr);
}

std::vector<std::string> EventJournal::chain() const {
  std::scoped_lock lock(mutex_);
  return chain_paths(options_);
}

}  // namespace robotune::service
