#include "service/client.h"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace robotune::service {

Response LocalClient::call(const Request& request) {
  Request wire = request;
  if (wire.rid == 0) wire.rid = next_rid_++;
  // Round-trip through the codec so local callers cover the wire format.
  Request decoded;
  std::string why;
  Response response;
  if (!decode_request(encode_request(wire), decoded, why)) {
    response.rid = wire.rid;
    response.ok = false;
    response.error = "request codec: " + why;
    return response;
  }
  const Response dispatched = dispatch_request(manager_, decoded);
  if (!decode_response(encode_response(dispatched), response, why)) {
    response = Response{};
    response.rid = wire.rid;
    response.ok = false;
    response.error = "response codec: " + why;
  }
  return response;
}

SocketClient::~SocketClient() { close(); }

void SocketClient::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

bool SocketClient::connect(const std::string& socket_path,
                           std::string* error) {
  close();
  sockaddr_un addr = {};
  addr.sun_family = AF_UNIX;
  if (socket_path.size() >= sizeof(addr.sun_path)) {
    if (error != nullptr) *error = "socket path too long";
    return false;
  }
  std::memcpy(addr.sun_path, socket_path.c_str(), socket_path.size() + 1);
  fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd_ < 0) {
    if (error != nullptr) *error = std::strerror(errno);
    return false;
  }
  if (::connect(fd_, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    if (error != nullptr) {
      *error = "connect " + socket_path + ": " + std::strerror(errno);
    }
    close();
    return false;
  }
  return true;
}

bool SocketClient::call(const Request& request, Response& response,
                        std::string* error) {
  const auto fail = [&](const std::string& why) {
    if (error != nullptr) *error = why;
    return false;
  };
  if (fd_ < 0) return fail("not connected");
  Request wire = request;
  if (wire.rid == 0) wire.rid = next_rid_++;
  const std::string frame = frame_message(encode_request(wire));
  std::size_t off = 0;
  while (off < frame.size()) {
    const ssize_t n =
        ::send(fd_, frame.data() + off, frame.size() - off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return fail(std::string("send: ") + std::strerror(errno));
    }
    off += static_cast<std::size_t>(n);
  }
  char buffer[4096];
  for (;;) {
    std::string payload;
    std::string why;
    const auto result = reader_.next(payload, why);
    if (result == FrameReader::Result::kReady) {
      if (!decode_response(payload, response, why)) {
        return fail("bad response: " + why);
      }
      if (response.rid != wire.rid) {
        // rid 0 is the server's stream-level error frame (corrupt
        // request stream — the server drops the connection after it):
        // fail distinctly.  Any other mismatch is a stale reply to an
        // earlier call that errored out mid-receive; skip it and keep
        // reading for our own.
        if (response.rid == 0) {
          close();
          return fail("server stream error: " + response.error);
        }
        continue;
      }
      return true;
    }
    if (result == FrameReader::Result::kCorrupt) {
      close();
      return fail("corrupt response stream: " + why);
    }
    const ssize_t n = ::recv(fd_, buffer, sizeof(buffer), 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      return fail(std::string("recv: ") + std::strerror(errno));
    }
    if (n == 0) {
      close();
      return fail("server closed the connection");
    }
    reader_.feed(std::string_view(buffer, static_cast<std::size_t>(n)));
  }
}

}  // namespace robotune::service
