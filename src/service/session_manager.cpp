#include "service/session_manager.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <limits>
#include <sstream>
#include <utility>

#include "common/chaos.h"
#include "obs/metrics.h"
#include "service/telemetry.h"

namespace robotune::service {

namespace fs = std::filesystem;

namespace {

bool terminal(SessionState state) {
  return state == SessionState::kDone || state == SessionState::kCancelled ||
         state == SessionState::kFailed;
}

/// splitmix64 over (service seed, session id): well-spread, stable
/// across restarts, and documented — the daemon's seeding discipline.
std::uint64_t derive_session_seed(std::uint64_t service_seed,
                                  std::uint64_t id) {
  std::uint64_t z = service_seed + 0x9e3779b97f4a7c15ULL * (id + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Best-effort fsync of a path (file or directory).
void sync_path(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return;
  ::fsync(fd);
  ::close(fd);
}

core::SessionProgress progress_from_journal(
    const core::SessionCheckpoint& state) {
  core::SessionProgress p;
  p.evaluations = state.evaluations.size();
  p.best_value_s = std::numeric_limits<double>::infinity();
  for (const auto& e : state.evaluations) {
    if (e.status != sparksim::RunStatus::kOk) continue;
    if (e.value_s < p.best_value_s) {
      p.best_value_s = e.value_s;
      p.best_unit = e.unit;
    }
  }
  return p;
}

}  // namespace

const char* to_string(SessionState state) noexcept {
  switch (state) {
    case SessionState::kQueued:
      return "queued";
    case SessionState::kRunning:
      return "running";
    case SessionState::kDone:
      return "done";
    case SessionState::kCancelled:
      return "cancelled";
    case SessionState::kFailed:
      return "failed";
  }
  return "unknown";
}

// ---- Turnstile -----------------------------------------------------------

void Turnstile::wait_for_turn(std::unique_lock<std::mutex>& lock,
                              std::uint64_t id) {
  if (active_ < slots_ && waiting_.empty()) {
    ++active_;
    return;
  }
  waiting_.push_back(id);
  cv_.wait(lock, [&] {
    return active_ < slots_ && !waiting_.empty() && waiting_.front() == id;
  });
  waiting_.pop_front();
  ++active_;
  // With several slots the next waiter may be eligible too.
  cv_.notify_all();
}

void Turnstile::enter(std::uint64_t id) {
  std::unique_lock<std::mutex> lock(mutex_);
  wait_for_turn(lock, id);
}

void Turnstile::yield(std::uint64_t id) {
  std::unique_lock<std::mutex> lock(mutex_);
  if (waiting_.empty()) return;  // nobody wants the slice — keep running
  --active_;
  cv_.notify_all();
  wait_for_turn(lock, id);
}

void Turnstile::leave() {
  std::scoped_lock lock(mutex_);
  --active_;
  cv_.notify_all();
}

// ---- SessionManager ------------------------------------------------------

SessionManager::SessionManager(ServiceOptions options)
    : options_(std::move(options)),
      turnstile_(options_.slots == 0 ? options_.max_live : options_.slots),
      pool_(std::max<std::size_t>(1, options_.max_live)) {
  fs::create_directories(options_.root);
  if (!options_.events_path.empty()) {
    EventJournal::Options ev;
    ev.path = options_.events_path;
    ev.max_bytes = options_.events_max_bytes;
    ev.keep = options_.events_keep;
    ev.fsync = options_.sync == core::SyncPolicy::kFsync;
    std::string error;
    // An unopenable event journal degrades observability, never
    // availability: the fleet serves regardless.
    if (!events_.open(ev, &error)) events_error_ = error;
  }
}

SessionManager::~SessionManager() { shutdown(/*cancel_live=*/true); }

std::string SessionManager::journal_path(std::uint64_t id) const {
  return options_.root + "/session-" + std::to_string(id) + ".journal";
}

std::string SessionManager::spec_path(std::uint64_t id) const {
  return options_.root + "/session-" + std::to_string(id) + ".spec";
}

std::string SessionManager::tombstone_path(std::uint64_t id) const {
  return options_.root + "/session-" + std::to_string(id) + ".cancelled";
}

SessionManager::StartResult SessionManager::start(core::SessionSpec spec,
                                                  bool derive_seed) {
  return admit(std::move(spec), derive_seed, /*fixed_id=*/0);
}

SessionManager::StartResult SessionManager::admit(core::SessionSpec spec,
                                                  bool derive_seed,
                                                  std::uint64_t fixed_id) {
  StartResult result;
  // Hosted sessions must journal — that is what makes the fleet
  // recoverable — and only the robotune stack takes a SessionLog.
  if (spec.tuner != "robotune") {
    result.error = "service sessions require tuner=robotune";
    events_.emit(0, "admission.reject", result.error);
    return result;
  }
  if (const auto why = spec.validate(); !why.empty()) {
    result.error = why;
    events_.emit(0, "admission.reject", result.error);
    return result;
  }
  std::uint64_t id = 0;
  bool backpressure = false;
  {
    std::scoped_lock lock(mutex_);
    if (!accepting_) {
      result.error = "service is shutting down";
    } else if (fixed_id == 0 && queued_ >= options_.max_pending) {
      // Backpressure gates *external* start requests only: fleet
      // recovery (fixed_id != 0) re-admits sessions that were already
      // admitted before the crash, so a full pre-crash queue must never
      // turn a healthy session away.
      result.error = "queue full (" + std::to_string(queued_) +
                     " pending); retry later";
      obs::count("service.admission.rejected");
      backpressure = true;
    } else {
      id = fixed_id != 0 ? fixed_id : next_id_++;
      if (fixed_id != 0) next_id_ = std::max(next_id_, fixed_id + 1);
      ++queued_;  // reserve the queue slot; rolled back if the write fails
      sample_gauges_locked();
    }
  }
  if (!result.error.empty()) {
    // Event emission is disk I/O — never under the manager mutex.
    if (backpressure) {
      events_.emit(0, "admission.backpressure", result.error);
    }
    return result;
  }
  // The spec write (file + rename) happens outside the manager lock so
  // status/suggest/dispatch and the sessions' progress callbacks never
  // stall behind disk I/O.  The id and queue slot are already reserved.
  if (derive_seed) spec.seed = derive_session_seed(options_.seed, id);
  spec.checkpoint_path = journal_path(id);
  spec.sync = options_.sync;
  if (!save_spec_file(spec, spec_path(id))) {
    {
      std::scoped_lock lock(mutex_);
      --queued_;
      sample_gauges_locked();
    }
    result.error = "cannot write spec file under " + options_.root;
    events_.emit(0, "admission.reject", result.error);
    return result;
  }
  auto entry = std::make_shared<Entry>();
  entry->id = id;
  entry->spec = spec;
  if (spec.mode == "external") {
    entry->bridge = std::make_shared<core::ExternalBridge>();
  }
  entry->progress.best_value_s = std::numeric_limits<double>::infinity();
  entry->enqueued_at = std::chrono::steady_clock::now();
  bool cancel_now = false;
  {
    std::scoped_lock lock(mutex_);
    sessions_[id] = entry;
    // A cancelling shutdown may have swept sessions_ while the spec was
    // being written; catch this late-inserted entry up with the sweep.
    if (cancel_all_) {
      entry->cancel.store(true, std::memory_order_relaxed);
      cancel_now = true;
    }
  }
  if (cancel_now && entry->bridge) entry->bridge->request_cancel();
  result.admitted = true;
  result.id = id;
  obs::count("service.admission.accepted");
  // Emitted before the pool submit so this session's event stream
  // always opens accept → enter before the worker's queue.leave.
  events_.emit(id, "admission.accept", fixed_id != 0 ? "readmission" : "");
  events_.emit(id, "queue.enter");
  if (entry->bridge) {
    // Ask/tell sessions get a dedicated thread, never a pool worker or a
    // turnstile slice: they spend their life parked in exchange() waiting
    // on remote executors, so a pool slot would cap concurrent external
    // sessions at max_live and let idle leases starve compute-bound
    // internal sessions.
    std::thread runner([this, entry] { run_entry(entry); });
    std::scoped_lock lock(mutex_);
    external_threads_.push_back(std::move(runner));
  } else {
    pool_.submit([this, entry] { run_entry(entry); });
  }
  return result;
}

void SessionManager::run_entry(const std::shared_ptr<Entry>& entry) {
  const double wait_ms = std::chrono::duration<double, std::milli>(
                             std::chrono::steady_clock::now() -
                             entry->enqueued_at)
                             .count();
  if (entry->cancel.load(std::memory_order_relaxed)) {
    // Cancelled while still queued: terminal without ever running. Journal
    // the terminal event before committing the counters — drain() returns
    // the moment the counters read zero and promises a complete journal.
    events_.emit(entry->id, "queue.leave");
    events_.emit(entry->id, "session.cancelled", "cancelled while queued");
    obs::count("service.sessions.cancelled");
    std::scoped_lock lock(mutex_);
    --queued_;
    ++cancelled_;
    entry->state = SessionState::kCancelled;
    entry->terminal_tick = now_tick_.load(std::memory_order_relaxed);
    entry->queue_wait_ms = wait_ms;
    sample_gauges_locked();
    terminal_cv_.notify_all();
    return;
  }
  {
    std::scoped_lock lock(mutex_);
    entry->state = SessionState::kRunning;
    --queued_;
    ++running_;
    entry->queue_wait_ms = wait_ms;
    sample_gauges_locked();
  }
  obs::metrics().observe("runtime.service.queue.wait_ms",
                         entry->queue_wait_ms, queue_wait_buckets_ms());
  events_.emit(entry->id, "queue.leave");
  events_.emit(entry->id, "session.running");
  // Scope every metric and span of this session (and of its private
  // evaluation pool — ThreadPool::submit propagates the scope) under
  // session/<id>/.
  obs::ScopedSession scope(entry->id);
  obs::count("service.sessions.started");
  const std::uint64_t id = entry->id;
  const bool external = entry->bridge != nullptr;
  // External sessions skip the turnstile entirely (see admit): no slice
  // to enter, no yield hook — their round boundaries are client-paced.
  if (!external) turnstile_.enter(id);

  core::SessionOutcome outcome;
  try {
    std::string create_error;
    if (auto session = core::SessionFactory::create(entry->spec,
                                                    &create_error)) {
      if (external) session->attach_external(entry->bridge.get());
      outcome = session->run(
          &entry->cancel,
          external ? std::function<void()>{}
                   : std::function<void()>([this, id] {
                       turnstile_.yield(id);
                     }),
          [this, entry](const core::SessionProgress& p) {
            std::scoped_lock lock(mutex_);
            entry->progress = p;
          });
    } else {
      outcome.error = create_error;
    }
  } catch (const std::exception& e) {
    // One session's failure must never wedge the fleet: record it and
    // keep the worker (and the turnstile slice accounting) healthy.
    outcome.error = e.what();
  }
  if (!external) turnstile_.leave();
  // Terminal: stop granting leases.  tell() keeps answering late
  // duplicate observes from the bridge's recorded-ack ledger.
  if (external) entry->bridge->close();

  const SessionState state = !outcome.ok() ? SessionState::kFailed
                             : outcome.interrupted
                                 ? SessionState::kCancelled
                                 : SessionState::kDone;
  // Emit the terminal event and outcome counter BEFORE committing the state
  // transition: drain() returns as soon as the counters read zero, and its
  // contract is that the journal then contains every terminal event. Per-id
  // event order is safe — this thread is the only writer for this session.
  obs::count(state == SessionState::kDone     ? "service.sessions.done"
             : state == SessionState::kFailed ? "service.sessions.failed"
                                              : "service.sessions.cancelled");
  events_.emit(id,
               state == SessionState::kDone     ? "session.done"
               : state == SessionState::kFailed ? "session.failed"
                                                : "session.cancelled",
               outcome.error);
  {
    std::scoped_lock lock(mutex_);
    --running_;
    switch (state) {
      case SessionState::kDone:
        ++done_;
        break;
      case SessionState::kFailed:
        ++failed_;
        break;
      default:
        ++cancelled_;
        break;
    }
    entry->state = state;
    entry->terminal_tick = now_tick_.load(std::memory_order_relaxed);
    entry->error = outcome.error;
    entry->resumed = outcome.resumed;
    entry->replayed = outcome.replayed;
    entry->journal_recovered = outcome.journal_recovered;
    sample_gauges_locked();
    // Notify under the lock: once drain() observes the counters at zero
    // the manager may be destroyed, so an after-unlock notify could hit
    // a dead condition variable.
    terminal_cv_.notify_all();
  }
}

bool SessionManager::cancel(std::uint64_t id, std::string* error) {
  std::string why;
  const auto entry = find_or_rehydrate(id, &why);
  if (entry == nullptr) {
    if (error != nullptr) *error = why;
    return false;
  }
  std::shared_ptr<core::ExternalBridge> bridge;
  {
    std::scoped_lock lock(mutex_);
    if (terminal(entry->state)) {
      if (error != nullptr) {
        *error = std::string("session already ") + to_string(entry->state);
      }
      return false;
    }
    entry->cancel.store(true, std::memory_order_relaxed);
    bridge = entry->bridge;
  }
  // Wake an engine parked in an ask/tell exchange: the cancel flag is
  // only polled at round boundaries, which an external session may never
  // reach on its own.  Outside mutex_ — bridge calls take the bridge
  // lock, whose journal flush re-enters the manager.
  if (bridge != nullptr) bridge->request_cancel();
  // Tombstone the explicit cancel so a daemon restart keeps the session
  // cancelled instead of resuming it (graceful shutdown, by contrast,
  // leaves no tombstone — its sessions resume).  Written outside the
  // manager lock: tombstone creation is idempotent and nothing else
  // races it, so the fleet need not stall behind this disk write.
  std::FILE* f = std::fopen(tombstone_path(id).c_str(), "w");
  if (f != nullptr) std::fclose(f);
  events_.emit(id, "cancel.requested");
  return true;
}

SessionStatus SessionManager::status_of(const Entry& e) {
  SessionStatus s;
  s.id = e.id;
  s.state = e.state;
  s.spec = e.spec;
  s.evaluations = e.progress.evaluations;
  s.best_value_s = e.progress.best_value_s;
  s.best_unit = e.progress.best_unit;
  s.resumed = e.resumed;
  s.replayed = e.replayed;
  s.journal_recovered = e.journal_recovered;
  s.error = e.error;
  s.queue_wait_ms = e.queue_wait_ms;
  s.external = e.spec.mode == "external";
  s.reclaimed = e.reclaimed;
  return s;
}

void SessionManager::fill_bridge_status(
    SessionStatus& status,
    const std::shared_ptr<core::ExternalBridge>& bridge) const {
  if (bridge == nullptr) return;
  const std::uint64_t now = now_tick_.load(std::memory_order_relaxed);
  status.pending = bridge->pending();
  status.leased = bridge->leased(now);
}

std::optional<SessionStatus> SessionManager::status(std::uint64_t id) {
  std::string ignored;
  const auto entry = find_or_rehydrate(id, &ignored);
  if (entry == nullptr) return std::nullopt;
  SessionStatus s;
  std::shared_ptr<core::ExternalBridge> bridge;
  {
    std::scoped_lock lock(mutex_);
    s = status_of(*entry);
    bridge = entry->bridge;
  }
  fill_bridge_status(s, bridge);
  return s;
}

ServiceStatus SessionManager::service_status() const {
  std::scoped_lock lock(mutex_);
  ServiceStatus s;
  s.queued = queued_;
  s.running = running_;
  s.done = done_;
  s.cancelled = cancelled_;
  s.failed = failed_;
  s.accepting = accepting_;
  s.max_live = options_.max_live;
  s.max_pending = options_.max_pending;
  s.slots = options_.slots == 0 ? options_.max_live : options_.slots;
  s.reclaimed = reclaimed_;
  s.evicted = evicted_done_ + evicted_cancelled_;
  return s;
}

ServiceStatus SessionManager::recount_status() const {
  std::scoped_lock lock(mutex_);
  ServiceStatus s;
  for (const auto& [id, entry] : sessions_) {
    switch (entry->state) {
      case SessionState::kQueued:
        ++s.queued;
        break;
      case SessionState::kRunning:
        ++s.running;
        break;
      case SessionState::kDone:
        ++s.done;
        break;
      case SessionState::kCancelled:
        ++s.cancelled;
        break;
      case SessionState::kFailed:
        ++s.failed;
        break;
    }
  }
  // The incremental counters are lifetime counts; evicted terminal
  // sessions left the map without decrementing them, so the scan twin
  // adds the eviction ledger back before comparing.
  s.done += evicted_done_;
  s.cancelled += evicted_cancelled_;
  s.accepting = accepting_;
  s.max_live = options_.max_live;
  s.max_pending = options_.max_pending;
  s.slots = options_.slots == 0 ? options_.max_live : options_.slots;
  s.reclaimed = reclaimed_;
  s.evicted = evicted_done_ + evicted_cancelled_;
  return s;
}

std::vector<SessionStatus> SessionManager::list_sessions() const {
  std::vector<SessionStatus> out;
  std::vector<std::shared_ptr<core::ExternalBridge>> bridges;
  {
    std::scoped_lock lock(mutex_);
    out.reserve(sessions_.size());
    bridges.reserve(sessions_.size());
    // std::map iteration: ascending id order by construction.
    for (const auto& [id, entry] : sessions_) {
      out.push_back(status_of(*entry));
      bridges.push_back(entry->bridge);
    }
  }
  // Bridge gauges read outside mutex_ (lock order: bridge → manager).
  for (std::size_t i = 0; i < out.size(); ++i) {
    fill_bridge_status(out[i], bridges[i]);
  }
  return out;
}

std::size_t SessionManager::resident_sessions() const {
  std::scoped_lock lock(mutex_);
  return sessions_.size();
}

std::shared_ptr<SessionManager::Entry> SessionManager::find_or_rehydrate(
    std::uint64_t id, std::string* error) {
  SessionState evicted_state = SessionState::kDone;
  {
    std::scoped_lock lock(mutex_);
    const auto it = sessions_.find(id);
    if (it != sessions_.end()) return it->second;
    const auto ev = evicted_.find(id);
    if (ev == evicted_.end()) {
      if (error != nullptr) *error = "no such session";
      return nullptr;
    }
    evicted_state = ev->second;
  }
  // Disk I/O outside the lock: reload the spec and replay the journal to
  // rebuild the progress snapshot the evicted Entry carried.
  core::SessionSpec spec;
  std::string why;
  if (!load_spec_file(spec_path(id), spec, &why)) {
    if (error != nullptr) *error = "spec unreadable: " + why;
    return nullptr;
  }
  core::SessionCheckpoint state;
  try {
    if (load_session_file(journal_path(id), state,
                          core::LoadMode::kRecover)) {
      core::canonicalize_journal(state);
    }
  } catch (const std::exception& e) {
    if (error != nullptr) {
      *error = std::string("journal unreadable: ") + e.what();
    }
    return nullptr;
  }
  auto entry = std::make_shared<Entry>();
  entry->id = id;
  entry->spec = spec;
  entry->spec.checkpoint_path = journal_path(id);
  entry->spec.sync = options_.sync;
  entry->state = evicted_state;
  entry->progress = progress_from_journal(state);
  entry->terminal_tick = now_tick_.load(std::memory_order_relaxed);
  {
    std::scoped_lock lock(mutex_);
    const auto it = sessions_.find(id);
    if (it != sessions_.end()) return it->second;  // raced another verb
    // Back in the map: reverse the eviction bookkeeping.  The lifetime
    // counters were never decremented, so nothing to re-add.
    evicted_.erase(id);
    if (evicted_state == SessionState::kDone) {
      --evicted_done_;
    } else {
      --evicted_cancelled_;
    }
    sessions_[id] = entry;
  }
  obs::count("service.sessions.rehydrated");
  return entry;
}

void SessionManager::sample_gauges_locked() {
  if constexpr (!obs::kCompiledIn) return;
  obs::set_gauge("runtime.service.queue.depth",
                 static_cast<double>(queued_));
  obs::set_gauge("runtime.service.sessions.live",
                 static_cast<double>(running_));
  obs::set_gauge("runtime.service.sessions.done",
                 static_cast<double>(done_));
  obs::set_gauge("runtime.service.sessions.cancelled",
                 static_cast<double>(cancelled_));
  obs::set_gauge("runtime.service.sessions.failed",
                 static_cast<double>(failed_));
  obs::set_gauge("runtime.service.pool.busy",
                 static_cast<double>(pool_.size() - pool_.idle_workers()));
}

SessionManager::SuggestResult SessionManager::suggest(std::uint64_t id) {
  SuggestResult result;
  const auto entry = find_or_rehydrate(id, &result.error);
  if (entry == nullptr) return result;
  std::scoped_lock lock(mutex_);
  const Entry& e = *entry;
  if (e.progress.best_unit.empty()) {
    result.error = "no successful evaluation yet";
    return result;
  }
  result.ok = true;
  result.evaluations = e.progress.evaluations;
  result.best_value_s = e.progress.best_value_s;
  result.best_unit = e.progress.best_unit;
  return result;
}

SessionManager::CheckpointResult SessionManager::checkpoint(
    std::uint64_t id) {
  CheckpointResult result;
  std::size_t evaluations = 0;
  {
    const auto entry = find_or_rehydrate(id, &result.error);
    if (entry == nullptr) return result;
    std::scoped_lock lock(mutex_);
    evaluations = entry->progress.evaluations;
  }
  // The journal is already flushed after every evaluation; the verb adds
  // the durability barrier (fsync file + directory) that the default
  // SyncPolicy::kNone skips.
  const std::string path = journal_path(id);
  sync_path(path);
  sync_path(spec_path(id));
  sync_path(options_.root);
  result.ok = true;
  result.journal_path = path;
  result.evaluations = evaluations;
  return result;
}

SessionManager::ObserveResult SessionManager::observe(
    std::uint64_t id, std::uint64_t from, std::uint64_t limit) {
  ObserveResult result;
  if (find_or_rehydrate(id, &result.error) == nullptr) return result;
  core::SessionCheckpoint state;
  try {
    if (load_session_file(journal_path(id), state,
                          core::LoadMode::kRecover)) {
      core::canonicalize_journal(state);
    }
  } catch (const std::exception& e) {
    // A corrupt journal must not take the daemon down with the request.
    result.error = std::string("journal unreadable: ") + e.what();
    return result;
  }
  result.ok = true;
  result.total = state.evaluations.size();
  for (const auto& record : state.evaluations) {
    if (record.index < from) continue;
    if (limit != 0 && result.records.size() >= limit) break;
    result.records.push_back(record);
  }
  return result;
}

namespace {

/// Same exactness as the bridge's idempotency check: %.17g round-trips
/// doubles losslessly over the wire, so exact equality is well-defined.
bool same_tuple(const core::ExternalObservation& a,
                const core::ExternalObservation& b) {
  return a.value_s == b.value_s && a.cost_s == b.cost_s &&
         a.status == b.status;
}

}  // namespace

SessionManager::AskResult SessionManager::ask(std::uint64_t id,
                                              std::size_t max_count) {
  AskResult result;
  const auto entry = find_or_rehydrate(id, &result.error);
  if (entry == nullptr) return result;
  if (entry->spec.mode != "external") {
    result.error = "session is not in ask/tell (external) mode";
    return result;
  }
  // The bridge pointer is written once before the entry is published and
  // never reassigned, so it is safe to read without mutex_.
  const auto bridge = entry->bridge;
  if (bridge == nullptr) {
    // Rehydrated terminal session: nothing will ever be pending again.
    result.ok = true;
    return result;
  }
  const std::uint64_t now = now_tick_.load(std::memory_order_relaxed);
  result.grants = bridge->lease(std::max<std::size_t>(1, max_count), now,
                                options_.lease_timeout_ticks);
  result.pending = bridge->pending();
  result.leased = bridge->leased(now);
  result.ok = true;
  for (std::size_t i = 0; i < result.grants.size(); ++i) {
    obs::count("service.leases.granted");
  }
  return result;
}

SessionManager::TellResult SessionManager::tell(
    std::uint64_t id, std::uint64_t index,
    const core::ExternalObservation& observation) {
  TellResult result;
  const auto entry = find_or_rehydrate(id, &result.error);
  if (entry == nullptr) return result;
  if (entry->spec.mode != "external") {
    result.error = "session is not in ask/tell (external) mode";
    return result;
  }
  // Chaos site kObserveDelivery: a per-delivery counter decision either
  // drops the delivery before it reaches the ledger (the client
  // retries; idempotency makes the blind retry safe, and a later
  // attempt draws a fresh decision) or re-delivers an accepted
  // observation internally (the ledger must ack the duplicate without
  // effect).  The drop pattern is scheduling-dependent, but the journal
  // bytes are not: accepted tuples are exactly what the client sent,
  // whichever delivery attempt lands them.
  if (chaos::fail(chaos::Site::kObserveDelivery)) {
    result.error = "chaos: observe delivery dropped; retry";
    obs::count("service.observe.chaos_dropped");
    return result;
  }
  const auto bridge = entry->bridge;
  core::ExternalBridge::TellResult verdict;
  if (bridge != nullptr) {
    verdict = bridge->tell(index, observation);
    if (verdict.verdict == core::TellVerdict::kAccepted &&
        chaos::fail(chaos::Site::kObserveDelivery)) {
      obs::count("service.observe.chaos_duplicated");
      bridge->tell(index, observation);
    }
  } else {
    // Evicted-then-rehydrated terminal session: the bridge is gone, but
    // the journaled ack ledger still answers late executor retries
    // truthfully.
    core::SessionCheckpoint state;
    try {
      load_session_file(journal_path(id), state, core::LoadMode::kRecover);
      core::canonicalize_journal(state);
    } catch (const std::exception& e) {
      result.error = std::string("journal unreadable: ") + e.what();
      return result;
    }
    verdict.verdict = core::TellVerdict::kUnknown;
    for (const auto& ack : state.observe_acks) {
      if (ack.index != index) continue;
      verdict.recorded = {ack.value_s, ack.cost_s, ack.status};
      verdict.verdict = same_tuple(verdict.recorded, observation)
                            ? core::TellVerdict::kDuplicate
                            : core::TellVerdict::kConflict;
      break;
    }
  }
  result.verdict = verdict.verdict;
  result.recorded = verdict.recorded;
  switch (verdict.verdict) {
    case core::TellVerdict::kAccepted:
      result.ok = true;
      obs::count("service.observe.accepted");
      break;
    case core::TellVerdict::kDuplicate:
      result.ok = true;
      obs::count("service.observe.duplicate");
      break;
    case core::TellVerdict::kConflict:
      result.error = "observation conflicts with the recorded tuple for "
                     "eval " +
                     std::to_string(index);
      obs::count("service.observe.conflict");
      break;
    case core::TellVerdict::kUnknown:
      result.error =
          "no pending suggestion with index " + std::to_string(index);
      break;
  }
  return result;
}

std::size_t SessionManager::tick() {
  const std::uint64_t now =
      now_tick_.fetch_add(1, std::memory_order_relaxed) + 1;
  // Reaper sweep: collect the live ask/tell bridges under the lock, reap
  // outside it — reap() journals the expiries, and the journal flush
  // re-enters the manager through the progress callback.
  std::vector<std::pair<std::shared_ptr<Entry>,
                        std::shared_ptr<core::ExternalBridge>>>
      live;
  {
    std::scoped_lock lock(mutex_);
    for (const auto& [id, entry] : sessions_) {
      if (entry->bridge != nullptr && !terminal(entry->state)) {
        live.emplace_back(entry, entry->bridge);
      }
    }
  }
  std::size_t reclaimed = 0;
  for (const auto& [entry, bridge] : live) {
    const auto expiries = bridge->reap(now);
    if (expiries.empty()) continue;
    reclaimed += expiries.size();
    for (const auto& expiry : expiries) {
      obs::count("service.evals.reclaimed");
      events_.emit(entry->id, "lease.expired",
                   "eval " + std::to_string(expiry.index) + " lease " +
                       std::to_string(expiry.lease));
    }
    std::scoped_lock lock(mutex_);
    entry->reclaimed += expiries.size();
  }
  if (reclaimed != 0) {
    std::scoped_lock lock(mutex_);
    reclaimed_ += reclaimed;
  }
  // Terminal-TTL eviction: done/cancelled entries past the TTL leave the
  // map; their terminal state moves to the eviction ledger so later
  // verbs can re-hydrate them from disk.  Failed sessions stay — their
  // error string exists only here.
  if (options_.terminal_ttl_ticks != 0) {
    std::scoped_lock lock(mutex_);
    for (auto it = sessions_.begin(); it != sessions_.end();) {
      const Entry& e = *it->second;
      const bool evictable = e.state == SessionState::kDone ||
                             e.state == SessionState::kCancelled;
      if (!evictable ||
          now < e.terminal_tick + options_.terminal_ttl_ticks) {
        ++it;
        continue;
      }
      evicted_[it->first] = e.state;
      if (e.state == SessionState::kDone) {
        ++evicted_done_;
      } else {
        ++evicted_cancelled_;
      }
      obs::count("service.sessions.evicted");
      it = sessions_.erase(it);
    }
  }
  return reclaimed;
}

FleetRecovery SessionManager::recover_fleet() {
  FleetRecovery recovery;
  std::vector<std::uint64_t> ids;
  {
    std::error_code ec;
    for (const auto& dirent : fs::directory_iterator(options_.root, ec)) {
      const std::string name = dirent.path().filename().string();
      // session-<id>.spec
      if (name.rfind("session-", 0) != 0) continue;
      const std::size_t dot = name.rfind(".spec");
      if (dot == std::string::npos || dot + 5 != name.size()) continue;
      const std::string digits = name.substr(8, dot - 8);
      if (digits.empty() ||
          digits.find_first_not_of("0123456789") != std::string::npos) {
        continue;
      }
      ids.push_back(std::strtoull(digits.c_str(), nullptr, 10));
    }
  }
  std::sort(ids.begin(), ids.end());

  for (const std::uint64_t id : ids) {
    core::SessionSpec spec;
    std::string error;
    if (!load_spec_file(spec_path(id), spec, &error)) {
      quarantine(id, recovery);
      continue;
    }
    // Replay the journal (recover mode: a torn tail from kill -9 is the
    // expected case and truncates to the longest valid prefix).  A
    // journal whose header is unusable is corruption beyond recovery:
    // quarantine the session rather than silently restarting it.
    core::SessionCheckpoint state;
    core::SessionLoadReport report;
    bool have_journal = false;
    try {
      have_journal = load_session_file(journal_path(id), state,
                                       core::LoadMode::kRecover, &report);
    } catch (const std::exception&) {
      quarantine(id, recovery);
      continue;
    }
    if (have_journal && report.version == 0) {
      quarantine(id, recovery);
      continue;
    }
    if (have_journal) core::canonicalize_journal(state);

    const bool tombstoned = fs::exists(tombstone_path(id));
    const bool complete =
        have_journal &&
        static_cast<int>(state.evaluations.size()) >= spec.budget;
    if (tombstoned || complete) {
      // Terminal on disk: re-register without re-running.
      auto entry = std::make_shared<Entry>();
      entry->id = id;
      entry->spec = spec;
      entry->spec.checkpoint_path = journal_path(id);
      entry->spec.sync = options_.sync;
      entry->state =
          tombstoned ? SessionState::kCancelled : SessionState::kDone;
      entry->terminal_tick = now_tick_.load(std::memory_order_relaxed);
      entry->progress = progress_from_journal(state);
      {
        std::scoped_lock lock(mutex_);
        sessions_[id] = entry;
        next_id_ = std::max(next_id_, id + 1);
        if (tombstoned) {
          ++cancelled_;
        } else {
          ++done_;
        }
        sample_gauges_locked();
      }
      events_.emit(id, tombstoned ? "recovery.cancelled"
                                  : "recovery.completed");
      if (tombstoned) {
        ++recovery.cancelled;
      } else {
        ++recovery.completed;
      }
      continue;
    }
    // Incomplete: re-admit with resume+recover so the journal prefix
    // replays and the session continues exactly where it died.
    // Re-admission bypasses the max_pending backpressure check (the
    // pre-crash fleet was already admitted), so a rejection here is an
    // operational failure — shutdown racing recovery, an unwritable
    // root — never evidence of corruption.  Quarantine is reserved for
    // corrupt files; a healthy session that cannot be re-admitted keeps
    // its spec and journal in place and is reported instead.
    spec.resume = true;
    spec.recover = true;
    // Emitted before admit() so the logical stream of a resumed session
    // always opens recovery.resumed → admission.accept → queue.enter.
    events_.emit(id, "recovery.resumed");
    const auto result = admit(std::move(spec), /*derive_seed=*/false, id);
    if (result.admitted) {
      ++recovery.readmitted;
    } else {
      ++recovery.failed;
      recovery.errors.push_back("session " + std::to_string(id) + ": " +
                                result.error);
      events_.emit(id, "recovery.failed", result.error);
    }
  }
  obs::set_gauge("service.recovery.readmitted",
                 static_cast<double>(recovery.readmitted));
  obs::set_gauge("service.recovery.quarantined",
                 static_cast<double>(recovery.quarantined));
  return recovery;
}

void SessionManager::quarantine(std::uint64_t id, FleetRecovery& recovery) {
  const std::string dir = options_.root + "/quarantine";
  std::error_code ec;
  fs::create_directories(dir, ec);
  for (const std::string& path :
       {spec_path(id), journal_path(id), tombstone_path(id)}) {
    if (!fs::exists(path, ec)) continue;
    const std::string target =
        dir + "/" + fs::path(path).filename().string();
    fs::rename(path, target, ec);
    if (!ec) recovery.quarantined_files.push_back(target);
  }
  ++recovery.quarantined;
  obs::count("service.sessions.quarantined");
  std::string moved;
  for (const std::string& target : recovery.quarantined_files) {
    if (fs::path(target).string().find("session-" + std::to_string(id) +
                                       ".") == std::string::npos) {
      continue;
    }
    if (!moved.empty()) moved += " ";
    moved += fs::path(target).filename().string();
  }
  events_.emit(id, "recovery.quarantined", moved);
}

void SessionManager::drain() {
  std::unique_lock<std::mutex> lock(mutex_);
  terminal_cv_.wait(lock, [&] { return queued_ == 0 && running_ == 0; });
}

void SessionManager::shutdown(bool cancel_live) {
  std::vector<std::shared_ptr<core::ExternalBridge>> to_wake;
  {
    std::scoped_lock lock(mutex_);
    accepting_ = false;
    if (cancel_live) {
      cancel_all_ = true;
      for (const auto& [id, entry] : sessions_) {
        if (!terminal(entry->state)) {
          entry->cancel.store(true, std::memory_order_relaxed);
          if (entry->bridge != nullptr) to_wake.push_back(entry->bridge);
        }
      }
    }
  }
  // Outside mutex_ (lock order: bridge → manager).  Engines parked in an
  // ask/tell exchange never reach a round boundary on their own, so the
  // cancel sweep must wake them explicitly.
  for (const auto& bridge : to_wake) bridge->request_cancel();
  drain();
  // Runner threads decrement the terminal counters just before they
  // unwind, so drain() can return a beat ahead of thread exit — join
  // picks up the tail.  Safe to run twice (destructor after an explicit
  // shutdown): the vector was swapped out the first time.
  std::vector<std::thread> runners;
  {
    std::scoped_lock lock(mutex_);
    runners.swap(external_threads_);
  }
  for (std::thread& runner : runners) {
    if (runner.joinable()) runner.join();
  }
}

}  // namespace robotune::service
