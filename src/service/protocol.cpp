#include "service/protocol.h"

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <utility>

#include "common/crc32.h"

namespace robotune::service {

namespace {

// Frames larger than this are rejected outright: no legitimate message
// (even a start request embedding a full spec) comes close, and the cap
// stops a garbage stream from ballooning the reader buffer.
constexpr std::size_t kMaxFrameBytes = 1 << 20;

constexpr char kHexDigits[] = "0123456789abcdef";

bool needs_escape(char c) {
  return c == '%' || c == ' ' || c == '=' || c == '\n' || c == '\r' ||
         c == '\t';
}

int hex_value(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

std::uint64_t parse_u64(const std::string& value) {
  return static_cast<std::uint64_t>(
      std::strtoull(value.c_str(), nullptr, 10));
}

/// %.17g round-trips every double losslessly — the same convention the
/// journal and the dispatch layer use, so a tell's tuple survives the
/// wire bit-exact (which is what makes duplicate detection exact).
std::string format_double(double v) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.17g", v);
  return buffer;
}

/// Splits a payload into its leading type token and key=value pairs
/// (values unescaped).  Returns false on a malformed token.
bool tokenize(const std::string& payload, std::string& type,
              std::vector<std::pair<std::string, std::string>>& pairs,
              std::string& error) {
  std::istringstream in(payload);
  if (!(in >> type)) {
    error = "empty payload";
    return false;
  }
  std::string token;
  while (in >> token) {
    const std::size_t eq = token.find('=');
    if (eq == std::string::npos) {
      error = "bad token '" + token + "'";
      return false;
    }
    std::string value;
    if (!unescape(std::string_view(token).substr(eq + 1), value)) {
      error = "bad escape in token '" + token + "'";
      return false;
    }
    pairs.emplace_back(token.substr(0, eq), std::move(value));
  }
  return true;
}

}  // namespace

std::string escape(std::string_view value) {
  std::string out;
  out.reserve(value.size());
  for (const char c : value) {
    if (needs_escape(c)) {
      out.push_back('%');
      out.push_back(kHexDigits[(static_cast<unsigned char>(c) >> 4) & 0xf]);
      out.push_back(kHexDigits[static_cast<unsigned char>(c) & 0xf]);
    } else {
      out.push_back(c);
    }
  }
  return out;
}

bool unescape(std::string_view value, std::string& out) {
  out.clear();
  out.reserve(value.size());
  for (std::size_t i = 0; i < value.size(); ++i) {
    if (value[i] != '%') {
      out.push_back(value[i]);
      continue;
    }
    if (i + 2 >= value.size()) return false;
    const int hi = hex_value(value[i + 1]);
    const int lo = hex_value(value[i + 2]);
    if (hi < 0 || lo < 0) return false;
    out.push_back(static_cast<char>((hi << 4) | lo));
    i += 2;
  }
  return true;
}

std::string frame_message(std::string_view payload) {
  char head[32];
  std::snprintf(head, sizeof(head), "%08x %zu ", crc32(payload),
                payload.size());
  std::string out(head);
  out.append(payload);
  out.push_back('\n');
  return out;
}

bool unframe_line(std::string_view line, std::string& payload,
                  std::string& error) {
  if (line.size() < 10 || line[8] != ' ') {
    error = "bad message frame";
    return false;
  }
  std::uint32_t crc = 0;
  for (int i = 0; i < 8; ++i) {
    const char c = line[static_cast<std::size_t>(i)];
    // The frame header is always lowercase hex.
    const int nibble = (c >= 'A' && c <= 'F') ? -1 : hex_value(c);
    if (nibble < 0) {
      error = "bad frame checksum field";
      return false;
    }
    crc = (crc << 4) | static_cast<std::uint32_t>(nibble);
  }
  std::size_t len = 0;
  std::size_t pos = 9;
  if (pos >= line.size() || line[pos] < '0' || line[pos] > '9') {
    error = "bad frame length field";
    return false;
  }
  while (pos < line.size() && line[pos] >= '0' && line[pos] <= '9') {
    len = len * 10 + static_cast<std::size_t>(line[pos] - '0');
    if (len > kMaxFrameBytes) {
      error = "frame too large";
      return false;
    }
    ++pos;
  }
  if (pos >= line.size() || line[pos] != ' ') {
    error = "bad frame length field";
    return false;
  }
  const std::string_view body = line.substr(pos + 1);
  if (body.size() != len) {
    error = "frame length mismatch (torn message)";
    return false;
  }
  if (crc32(body) != crc) {
    error = "frame checksum mismatch (corrupt message)";
    return false;
  }
  payload.assign(body);
  return true;
}

FrameReader::Result FrameReader::next(std::string& payload,
                                      std::string& error) {
  if (corrupt_) {
    error = "frame stream already corrupt";
    return Result::kCorrupt;
  }
  const std::size_t newline = buffer_.find('\n');
  if (newline == std::string::npos) {
    if (buffer_.size() > kMaxFrameBytes + 32) {
      corrupt_ = true;
      error = "unterminated frame exceeds the size cap";
      return Result::kCorrupt;
    }
    return Result::kNeedMore;
  }
  const std::string line = buffer_.substr(0, newline);
  buffer_.erase(0, newline + 1);
  if (!unframe_line(line, payload, error)) {
    corrupt_ = true;
    return Result::kCorrupt;
  }
  return Result::kReady;
}

std::string encode_request(const Request& request) {
  std::ostringstream out;
  out << "req verb=" << escape(request.verb) << " rid=" << request.rid;
  if (request.session != 0) out << " session=" << request.session;
  if (request.from != 0) out << " from=" << request.from;
  if (request.limit != 0) out << " limit=" << request.limit;
  if (!request.spec_body.empty()) {
    out << " spec=" << escape(request.spec_body);
  }
  if (request.derive_seed) out << " derive_seed=1";
  if (!request.format.empty()) out << " format=" << escape(request.format);
  if (request.has_observation) {
    out << " eval=" << request.eval
        << " value=" << escape(format_double(request.value_s))
        << " cost=" << escape(format_double(request.cost_s))
        << " status=" << escape(request.status);
  }
  return out.str();
}

bool decode_request(const std::string& payload, Request& request,
                    std::string& error) {
  std::string type;
  std::vector<std::pair<std::string, std::string>> pairs;
  if (!tokenize(payload, type, pairs, error)) return false;
  if (type != "req") {
    error = "not a request payload";
    return false;
  }
  request = Request{};
  for (const auto& [key, value] : pairs) {
    if (key == "verb") {
      request.verb = value;
    } else if (key == "rid") {
      request.rid = parse_u64(value);
    } else if (key == "session") {
      request.session = parse_u64(value);
    } else if (key == "from") {
      request.from = parse_u64(value);
    } else if (key == "limit") {
      request.limit = parse_u64(value);
    } else if (key == "spec") {
      request.spec_body = value;
    } else if (key == "derive_seed") {
      request.derive_seed = value == "1";
    } else if (key == "format") {
      request.format = value;
    } else if (key == "eval") {
      request.eval = parse_u64(value);
      request.has_observation = true;
    } else if (key == "value") {
      request.value_s = std::strtod(value.c_str(), nullptr);
      request.has_observation = true;
    } else if (key == "cost") {
      request.cost_s = std::strtod(value.c_str(), nullptr);
      request.has_observation = true;
    } else if (key == "status") {
      request.status = value;
      request.has_observation = true;
    } else {
      error = "unknown request key '" + key + "'";
      return false;
    }
  }
  if (request.verb.empty()) {
    error = "request without a verb";
    return false;
  }
  return true;
}

std::string encode_response(const Response& response) {
  std::ostringstream out;
  out << "res rid=" << response.rid << " ok=" << (response.ok ? 1 : 0);
  if (!response.error.empty()) out << " error=" << escape(response.error);
  for (const auto& [key, value] : response.fields) {
    out << " " << key << "=" << escape(value);
  }
  for (const auto& record : response.records) {
    out << " rec=" << escape(record);
  }
  return out.str();
}

bool decode_response(const std::string& payload, Response& response,
                     std::string& error) {
  std::string type;
  std::vector<std::pair<std::string, std::string>> pairs;
  if (!tokenize(payload, type, pairs, error)) return false;
  if (type != "res") {
    error = "not a response payload";
    return false;
  }
  response = Response{};
  for (auto& [key, value] : pairs) {
    if (key == "rid") {
      response.rid = parse_u64(value);
    } else if (key == "ok") {
      response.ok = value == "1";
    } else if (key == "error") {
      response.error = std::move(value);
    } else if (key == "rec") {
      response.records.push_back(std::move(value));
    } else {
      response.fields[key] = std::move(value);
    }
  }
  return true;
}

}  // namespace robotune::service
