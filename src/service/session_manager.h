// Tuning-as-a-service: a SessionManager owns a fleet of concurrent
// tuning sessions multiplexed over a robotune::ThreadPool (DESIGN.md §13).
//
// Each admitted session is the full existing stack — RoboTune's BO
// engine with the degradation ladder, the batch-evaluation scheduler
// with racing/deadlines, the crash-safe v3 journal — assembled by
// core::SessionFactory exactly as `robotune_cli` assembles a standalone
// run.  Sessions are fully independent (no shared selection cache or
// memo buffer): a daemon-hosted session with spec S produces a journal
// byte-identical to `robotune_cli` running S, regardless of how many
// sessions run beside it or how many workers the manager has.
//
// Admission control: at most `max_live` sessions run concurrently (the
// pool's worker count); up to `max_pending` more wait in FIFO order;
// beyond that, start requests are rejected — backpressure, not an
// unbounded queue.
//
// Fair scheduling: a turnstile grants `slots` compute slices; running
// sessions yield at every round boundary (the BoOptions::yield hook) and
// re-queue FIFO, so CPU rotates round-robin among runnable sessions
// instead of letting the first admitted session run to completion.
// The turnstile only re-orders *wall-clock* interleaving; per-session
// results and journal bytes do not depend on slots or worker count.
//
// Durability: every session journals into `<root>/session-<id>.journal`
// with its spec beside it in `<root>/session-<id>.spec`.  After a crash,
// recover_fleet() rebuilds the whole fleet from disk: completed sessions
// are re-registered as done, incomplete ones are re-admitted with
// resume+recover (replaying their journal prefix), and a session whose
// files are corrupt beyond recovery is quarantined into
// `<root>/quarantine/` — one bad session never takes the daemon down.
// Recovery re-admission bypasses the max_pending bound (backpressure
// gates client start requests; the pre-crash fleet was already
// admitted), and quarantine is strictly a corruption verdict: a healthy
// session whose re-admission fails operationally keeps its files and is
// reported in FleetRecovery::errors instead.
//
// Ask/tell sessions (spec mode=external, DESIGN.md §16): the manager
// wraps the session's ExternalBridge in a lease ledger — `ask` hands
// out suggestions under lease ids with tick deadlines, `tell` accepts
// observations idempotently, and the `tick()` hook (driven by the
// daemon's Server::set_tick, virtual-clock injectable in tests) reaps
// abandoned leases back to the pending pool.  External sessions run on
// dedicated threads, never on pool workers or the turnstile: they spend
// their life parked waiting on remote executors, and parking them in a
// pool slot would let an idle lease starve compute-bound internal
// sessions (and cap concurrent external sessions at max_live).
//
// Terminal-TTL eviction (ROADMAP 5): with terminal_ttl_ticks set,
// done/cancelled sessions leave the in-memory map after the TTL — spec
// and journal stay on disk, and any later verb re-hydrates the entry on
// demand — so a long-lived daemon's resident state tracks its *live*
// fleet, not its lifetime history.  Failed sessions are never evicted:
// their error string exists only in memory.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "common/thread_pool.h"
#include "core/external.h"
#include "core/persistence.h"
#include "core/session.h"
#include "service/events.h"
#include "service/protocol.h"

namespace robotune::service {

struct ServiceOptions {
  /// Directory holding per-session spec/journal files (created if
  /// missing).  Required.
  std::string root;
  /// Sessions running concurrently (= manager pool workers).
  std::size_t max_live = 2;
  /// Admitted-but-not-yet-running sessions tolerated before start
  /// requests are rejected with "queue full".
  std::size_t max_pending = 8;
  /// Concurrent compute slices granted by the turnstile; 0 = max_live
  /// (no extra gating).  1 = strict round-robin time slicing.
  std::size_t slots = 0;
  /// Service seed: session seeds are derived from (this, session id)
  /// when a start request asks for derivation.
  std::uint64_t seed = 2024;
  /// Journal durability for every hosted session.
  core::SyncPolicy sync = core::SyncPolicy::kNone;
  /// Fleet event journal path (DESIGN.md §14); empty = no event
  /// journal.  Not gated by ROBOTUNE_OBS — it is a durability/ops
  /// artifact like the session journals, not instrumentation.
  std::string events_path;
  /// Event journal rotation: size threshold and rotated files kept.
  std::size_t events_max_bytes = 256 * 1024;
  std::size_t events_keep = 3;
  /// Ask/tell lease lifetime in virtual-clock ticks: a leased suggestion
  /// not observed within this many tick() calls is reclaimed back to the
  /// pending pool.  The daemon drives tick() once per second, so the
  /// default is roughly one minute of executor silence.
  std::uint64_t lease_timeout_ticks = 60;
  /// Ticks a done/cancelled session stays resident after reaching its
  /// terminal state before tick() evicts it from the in-memory map
  /// (spec and journal stay on disk; verbs re-hydrate on demand).
  /// 0 = never evict.
  std::uint64_t terminal_ttl_ticks = 0;
};

enum class SessionState { kQueued, kRunning, kDone, kCancelled, kFailed };

const char* to_string(SessionState state) noexcept;

/// Point-in-time snapshot of one session.
struct SessionStatus {
  std::uint64_t id = 0;
  SessionState state = SessionState::kQueued;
  core::SessionSpec spec;
  std::size_t evaluations = 0;
  double best_value_s = 0.0;  ///< +inf until a successful evaluation
  std::vector<double> best_unit;
  bool resumed = false;           ///< journal prefix replayed at start
  std::size_t replayed = 0;
  bool journal_recovered = false;  ///< recover mode dropped a torn tail
  std::string error;               ///< kFailed: why
  /// Wall-clock milliseconds the session spent admitted-but-queued
  /// before its first run (0 while still queued; scheduling-dependent).
  double queue_wait_ms = 0.0;
  // ---- ask/tell sessions only -------------------------------------------
  bool external = false;      ///< spec mode=external
  std::size_t pending = 0;    ///< undelivered suggestions this round
  std::size_t leased = 0;     ///< of those, out on a live lease
  std::uint64_t reclaimed = 0;  ///< leases the reaper expired (lifetime)
};

/// Fleet-wide counters.
struct ServiceStatus {
  std::size_t queued = 0;
  std::size_t running = 0;
  std::size_t done = 0;
  std::size_t cancelled = 0;
  std::size_t failed = 0;
  bool accepting = true;
  std::size_t max_live = 0;
  std::size_t max_pending = 0;
  std::size_t slots = 0;
  /// Leases the reaper expired back to the pending pool, fleet-wide.
  std::uint64_t reclaimed = 0;
  /// Terminal sessions currently evicted from the in-memory map.  The
  /// state counters above are lifetime counts and include them; the
  /// recount twin scans resident entries and adds this back.
  std::size_t evicted = 0;
};

/// What recover_fleet() found on disk.
struct FleetRecovery {
  std::size_t readmitted = 0;   ///< incomplete sessions resumed
  std::size_t completed = 0;    ///< finished sessions re-registered
  std::size_t cancelled = 0;    ///< tombstoned sessions kept terminal
  std::size_t quarantined = 0;  ///< corrupt sessions moved aside
  /// Intact sessions re-admission failed on (shutdown racing recovery,
  /// unwritable root, ...).  Their files stay in place — operational
  /// failure is not corruption, so they are never quarantined.
  std::size_t failed = 0;
  std::vector<std::string> quarantined_files;
  std::vector<std::string> errors;  ///< one line per failed session
};

/// FIFO turnstile: grants up to `slots` concurrent compute slices and
/// rotates them round-robin among requesters at yield points.
class Turnstile {
 public:
  explicit Turnstile(std::size_t slots) : slots_(slots == 0 ? 1 : slots) {}

  void enter(std::uint64_t id);
  /// Round-boundary pacing: keeps the slice when nobody is waiting,
  /// otherwise hands it to the longest-waiting session and re-queues.
  void yield(std::uint64_t id);
  void leave();

 private:
  void wait_for_turn(std::unique_lock<std::mutex>& lock, std::uint64_t id);

  std::mutex mutex_;
  std::condition_variable cv_;
  std::size_t slots_;
  std::size_t active_ = 0;
  std::deque<std::uint64_t> waiting_;
};

class SessionManager {
 public:
  explicit SessionManager(ServiceOptions options);
  /// Cancels everything still live and drains before destruction.
  ~SessionManager();

  SessionManager(const SessionManager&) = delete;
  SessionManager& operator=(const SessionManager&) = delete;

  struct StartResult {
    bool admitted = false;
    std::uint64_t id = 0;
    std::string error;
  };
  /// Admits a session (backpressure-rejects when the pending queue is
  /// full).  `derive_seed` replaces spec.seed with a seed derived from
  /// (service seed, session id) — the daemon's seeding discipline.
  StartResult start(core::SessionSpec spec, bool derive_seed = false);

  /// Requests cooperative cancellation; the session stops at its next
  /// round boundary with a resumable journal.  False: no such session.
  bool cancel(std::uint64_t id, std::string* error = nullptr);

  std::optional<SessionStatus> status(std::uint64_t id);
  /// O(1): served from incrementally maintained state counters — never
  /// a scan over the registered sessions (ROADMAP 5).
  ServiceStatus service_status() const;
  /// O(n) verification twin of service_status(): recomputes the counts
  /// by scanning every registered session.  For tests asserting the
  /// incremental counters never drift; not for the hot path.
  ServiceStatus recount_status() const;
  /// Snapshot of every registered session, ascending id order (the
  /// `metrics` verb's per-session records).
  std::vector<SessionStatus> list_sessions() const;

  struct SuggestResult {
    bool ok = false;
    std::string error;
    std::size_t evaluations = 0;
    double best_value_s = 0.0;
    std::vector<double> best_unit;
  };
  /// Current incumbent: the best successfully evaluated configuration.
  SuggestResult suggest(std::uint64_t id);

  struct CheckpointResult {
    bool ok = false;
    std::string error;
    std::string journal_path;
    std::size_t evaluations = 0;
  };
  /// Durability barrier: fsyncs the session's journal (and the service
  /// root) so everything journaled so far survives power loss.
  CheckpointResult checkpoint(std::uint64_t id);

  struct ObserveResult {
    bool ok = false;
    std::string error;
    std::size_t total = 0;  ///< canonical journal length
    std::vector<core::EvalRecord> records;
  };
  /// Reads the session's journaled evaluations [from, from+limit).
  ObserveResult observe(std::uint64_t id, std::uint64_t from,
                        std::uint64_t limit = 0);

  struct AskResult {
    bool ok = false;
    std::string error;
    std::vector<core::LeaseGrant> grants;
    std::size_t pending = 0;  ///< undelivered suggestions after granting
    std::size_t leased = 0;   ///< of those, out on a live lease
  };
  /// Ask/tell sessions only: leases up to max(1, max_count) pending
  /// suggestions to the caller.  Between rounds (or once the session is
  /// terminal) the grant list is empty with ok=true — poll status to
  /// distinguish "thinking" from "done".
  AskResult ask(std::uint64_t id, std::size_t max_count);

  struct TellResult {
    bool ok = false;
    std::string error;
    core::TellVerdict verdict = core::TellVerdict::kUnknown;
    core::ExternalObservation recorded;  ///< accepted/duplicate/conflict
  };
  /// Ask/tell sessions only: delivers an externally observed
  /// (value, cost, status) tuple for eval `index`.  Idempotent — an
  /// exact re-delivery acks with kDuplicate and the recorded tuple, a
  /// conflicting one is rejected with kConflict (ok=false).  Works
  /// against the journaled ack ledger even after the session finished
  /// and was evicted, so late executor retries always get a truthful
  /// answer.
  TellResult tell(std::uint64_t id, std::uint64_t index,
                  const core::ExternalObservation& obs);

  /// Advances the virtual clock one tick and runs the periodic sweeps:
  /// the lease reaper (expired leases return to the pending pool with a
  /// journaled lease_expired record) and terminal-TTL eviction.  The
  /// daemon wires this into Server::set_tick; tests call it directly —
  /// the clock only moves when someone drives it, which is what makes
  /// deadline tests deterministic.  Returns the leases reclaimed.
  std::size_t tick();
  std::uint64_t now_tick() const noexcept {
    return now_tick_.load(std::memory_order_relaxed);
  }

  /// Sessions currently resident in the in-memory map (the eviction
  /// regression's measure; list_sessions() reports exactly these).
  std::size_t resident_sessions() const;

  /// Rebuilds the fleet from the service root after a restart.  Must be
  /// called before serving requests (not thread-safe against start()).
  FleetRecovery recover_fleet();

  /// Blocks until every admitted session reaches a terminal state.
  void drain();
  /// Stops admissions, optionally cancels live sessions, and drains.
  void shutdown(bool cancel_live = true);

  const ServiceOptions& options() const noexcept { return options_; }
  std::string journal_path(std::uint64_t id) const;
  std::string spec_path(std::uint64_t id) const;

  /// The fleet event journal (disabled unless options.events_path is
  /// set).  Exposed so the server/daemon can emit transport-level
  /// events (client connects, protocol errors) into the same stream.
  EventJournal& events() noexcept { return events_; }
  /// Non-empty when options.events_path was set but could not be
  /// opened (the manager keeps serving; the operator should know).
  const std::string& events_error() const noexcept { return events_error_; }

 private:
  struct Entry {
    std::uint64_t id = 0;
    core::SessionSpec spec;
    SessionState state = SessionState::kQueued;
    std::atomic<bool> cancel{false};
    core::SessionProgress progress;
    bool resumed = false;
    std::size_t replayed = 0;
    bool journal_recovered = false;
    std::string error;
    std::chrono::steady_clock::time_point enqueued_at;
    double queue_wait_ms = 0.0;
    /// Non-null for ask/tell sessions; created at admission, shared with
    /// the dedicated runner thread, and kept after the session turns
    /// terminal so late duplicate observes still ack idempotently.
    std::shared_ptr<core::ExternalBridge> bridge;
    /// tick() value when the session turned terminal (eviction clock).
    std::uint64_t terminal_tick = 0;
    std::uint64_t reclaimed = 0;  ///< leases the reaper expired
  };

  StartResult admit(core::SessionSpec spec, bool derive_seed,
                    std::uint64_t fixed_id);
  void run_entry(const std::shared_ptr<Entry>& entry);
  /// Looks the id up in the resident map, re-hydrating an evicted
  /// terminal session from its on-disk spec/journal if necessary.  Null
  /// (with `error` set) for ids that were never admitted or whose files
  /// turned unreadable.
  std::shared_ptr<Entry> find_or_rehydrate(std::uint64_t id,
                                           std::string* error);
  static SessionStatus status_of(const Entry& entry);
  /// Fills SessionStatus::pending/leased from the bridge.  Takes the
  /// bridge mutex, so it must be called WITHOUT mutex_ held (the
  /// bridge's journal flush re-enters the manager via the progress
  /// callback — lock order is bridge → manager, never the reverse).
  void fill_bridge_status(SessionStatus& status,
                          const std::shared_ptr<core::ExternalBridge>& bridge)
      const;
  /// Re-samples the fleet gauges (queue depth, live/terminal counts,
  /// pool occupancy) — called at every state transition, under mutex_.
  void sample_gauges_locked();
  std::string tombstone_path(std::uint64_t id) const;
  void quarantine(std::uint64_t id, FleetRecovery& recovery);

  ServiceOptions options_;
  Turnstile turnstile_;
  ThreadPool pool_;
  EventJournal events_;
  std::string events_error_;
  mutable std::mutex mutex_;
  std::condition_variable terminal_cv_;
  std::map<std::uint64_t, std::shared_ptr<Entry>> sessions_;
  std::uint64_t next_id_ = 1;
  // Incrementally maintained state counts (ROADMAP 5): every transition
  // updates these under mutex_, so service_status() is O(1) instead of
  // scanning sessions_.  recount_status() is the O(n) verification twin.
  std::size_t queued_ = 0;
  std::size_t running_ = 0;
  std::size_t done_ = 0;
  std::size_t cancelled_ = 0;
  std::size_t failed_ = 0;
  bool accepting_ = true;
  /// Set by a cancelling shutdown so an admit() that reserved its slot
  /// before the sweep still sees the cancel when it inserts its entry.
  bool cancel_all_ = false;
  /// Dedicated runner threads for ask/tell sessions (joined at
  /// shutdown, after drain() has seen them reach a terminal state).
  std::vector<std::thread> external_threads_;
  /// Virtual clock: advanced only by tick(), never by wall time.
  std::atomic<std::uint64_t> now_tick_{0};
  std::uint64_t reclaimed_ = 0;  ///< fleet-wide reaper expiries
  /// Eviction ledger: terminal state of every session tick() evicted
  /// from sessions_, so find_or_rehydrate() re-admits exactly the ids
  /// the manager once owned (a few bytes per evicted session, vs. the
  /// full Entry with its spec strings and incumbent vector).
  std::map<std::uint64_t, SessionState> evicted_;
  std::size_t evicted_done_ = 0;
  std::size_t evicted_cancelled_ = 0;
};

/// Shared request dispatcher: the in-process LocalClient and the socket
/// server both route through this, so tests on the local path cover the
/// daemon's behavior too.
Response dispatch_request(SessionManager& manager, const Request& request,
                          std::atomic<bool>* shutdown_flag = nullptr);

}  // namespace robotune::service
