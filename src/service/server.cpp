#include "service/server.h"

#include <poll.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <vector>

#include "obs/metrics.h"

namespace robotune::service {

namespace {

constexpr int kPollTimeoutMs = 100;

/// Responses are dispatched synchronously on the serve loop, so a send
/// to a wedged peer would stall every other client and the shutdown
/// polling.  SO_SNDTIMEO bounds each send: a client that stops reading
/// for this long is dropped, not waited on.
constexpr int kSendTimeoutSec = 5;

/// Writes the whole buffer (handling short writes); false on error or
/// on the SO_SNDTIMEO deadline (EAGAIN/EWOULDBLOCK from a full buffer).
bool write_all(int fd, const std::string& bytes) {
  std::size_t off = 0;
  while (off < bytes.size()) {
    const ssize_t n = ::send(fd, bytes.data() + off, bytes.size() - off,
                             MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace

Server::Server(SessionManager& manager, std::string socket_path)
    : manager_(manager), socket_path_(std::move(socket_path)) {}

Server::~Server() {
  close_all();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    ::unlink(socket_path_.c_str());
  }
}

bool Server::listen(std::string* error) {
  const auto fail = [&](const std::string& why) {
    if (error != nullptr) *error = why + ": " + std::strerror(errno);
    if (listen_fd_ >= 0) {
      ::close(listen_fd_);
      listen_fd_ = -1;
    }
    return false;
  };
  sockaddr_un addr = {};
  addr.sun_family = AF_UNIX;
  if (socket_path_.size() >= sizeof(addr.sun_path)) {
    if (error != nullptr) *error = "socket path too long";
    return false;
  }
  std::memcpy(addr.sun_path, socket_path_.c_str(), socket_path_.size() + 1);

  listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listen_fd_ < 0) return fail("socket");
  ::unlink(socket_path_.c_str());  // stale socket from a previous run
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    return fail("bind " + socket_path_);
  }
  if (::listen(listen_fd_, 64) != 0) return fail("listen");
  return true;
}

std::size_t Server::serve(std::atomic<bool>& stop) {
  std::size_t served = 0;
  char buffer[4096];
  auto last_tick = std::chrono::steady_clock::now();
  const auto disconnect = [&](int fd) {
    ::close(fd);
    connections_.erase(fd);
    obs::count("service.clients.disconnected");
    manager_.events().emit(0, "client.disconnect");
  };
  while (!stop.load(std::memory_order_relaxed)) {
    if (tick_) {
      const auto now = std::chrono::steady_clock::now();
      if (now - last_tick >= std::chrono::seconds(1)) {
        last_tick = now;
        tick_();
      }
    }
    {
      // Idle sweep: a client that connected but never completed a frame
      // (or stalled mid-frame) holds a connection slot forever — poll
      // never fires for a silent peer, so SO_RCVTIMEO alone cannot save
      // us.  Clients with at least one completed frame and no partial
      // bytes are healthy-idle and stay.
      const auto now = std::chrono::steady_clock::now();
      for (auto it = connections_.begin(); it != connections_.end();) {
        const Connection& conn = it->second;
        const bool suspect = !conn.ever_framed || conn.mid_frame;
        if (suspect && now - conn.last_progress >= idle_timeout_) {
          const int fd = it->first;
          it = connections_.erase(it);
          ::close(fd);
          obs::count("service.clients.idle_dropped");
          manager_.events().emit(0, "client.idle_drop");
        } else {
          ++it;
        }
      }
    }
    std::vector<pollfd> fds;
    fds.push_back({listen_fd_, POLLIN, 0});
    for (const auto& [fd, conn] : connections_) {
      fds.push_back({fd, POLLIN, 0});
    }
    const int ready = ::poll(fds.data(), fds.size(), kPollTimeoutMs);
    if (ready < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (ready == 0) continue;

    if ((fds[0].revents & POLLIN) != 0) {
      const int client = ::accept(listen_fd_, nullptr, nullptr);
      if (client >= 0) {
        timeval deadline = {};
        deadline.tv_sec = kSendTimeoutSec;
        ::setsockopt(client, SOL_SOCKET, SO_SNDTIMEO, &deadline,
                     sizeof(deadline));
        // Bound any blocking read path the same way sends are bounded;
        // the poll loop itself never block-reads, so the idle sweep
        // above is what actually drops silent clients.
        timeval recv_deadline = {};
        recv_deadline.tv_sec = static_cast<time_t>(
            std::max<std::int64_t>(1, idle_timeout_.count() / 1000));
        ::setsockopt(client, SOL_SOCKET, SO_RCVTIMEO, &recv_deadline,
                     sizeof(recv_deadline));
        Connection conn;
        conn.last_progress = std::chrono::steady_clock::now();
        connections_.emplace(client, std::move(conn));
        obs::count("service.clients.connected");
        manager_.events().emit(0, "client.connect");
      }
    }
    for (std::size_t i = 1; i < fds.size(); ++i) {
      if ((fds[i].revents & (POLLIN | POLLHUP | POLLERR)) == 0) continue;
      const int fd = fds[i].fd;
      const auto it = connections_.find(fd);
      if (it == connections_.end()) continue;
      const ssize_t n = ::recv(fd, buffer, sizeof(buffer), 0);
      if (n <= 0) {
        disconnect(fd);
        continue;
      }
      it->second.reader.feed(std::string_view(buffer,
                                              static_cast<std::size_t>(n)));
      bool drop = false;
      for (;;) {
        std::string payload;
        std::string why;
        const auto result = it->second.reader.next(payload, why);
        if (result == FrameReader::Result::kNeedMore) break;
        if (result == FrameReader::Result::kReady) {
          it->second.ever_framed = true;
          it->second.last_progress = std::chrono::steady_clock::now();
        }
        if (result == FrameReader::Result::kCorrupt) {
          // Tell the client what happened, then cut the connection: a
          // corrupt stream cannot be re-synchronized.
          obs::count("service.protocol.corrupt_frames");
          manager_.events().emit(0, "protocol.corrupt", why);
          Response err;
          err.ok = false;
          err.error = why;
          write_all(fd, frame_message(encode_response(err)));
          drop = true;
          break;
        }
        Request request;
        Response response;
        if (!decode_request(payload, request, why)) {
          obs::count("service.protocol.decode_errors");
          manager_.events().emit(0, "rpc.error", why);
          response.ok = false;
          response.error = why;
        } else {
          response = dispatch_request(manager_, request, &stop);
        }
        ++served;
        if (!write_all(fd, frame_message(encode_response(response)))) {
          drop = true;
          break;
        }
      }
      if (!drop) it->second.mid_frame = !it->second.reader.idle();
      if (drop) disconnect(fd);
    }
  }
  close_all();
  return served;
}

void Server::close_all() {
  for (const auto& [fd, conn] : connections_) ::close(fd);
  connections_.clear();
}

}  // namespace robotune::service
