// Wire protocol of the tuning service (DESIGN.md §13).
//
// Every message — request or response — is one framed line, reusing the
// v3 journal's CRC32 framing so a torn or corrupted socket stream is
// detected instead of half-parsed:
//
//   <crc32:8 lowercase hex> <len:decimal payload bytes> <payload>\n
//
// Payloads are space-separated `key=value` tokens with a leading type
// token; values are percent-escaped (space, '%', '\n', '\t', '='), so
// arbitrary strings — error messages, embedded session specs — survive
// the token format:
//
//   req verb=start rid=1 derive_seed=1 spec=workload%3dPR%20dataset%3d1...
//   res rid=1 ok=1 id=7
//   req verb=suggest rid=2 session=7
//   res rid=2 ok=1 evals=24 best=41.52 unit=0.5%200.25%20...
//
// Verbs: start, suggest, observe, checkpoint, cancel, status, metrics,
// shutdown.
// The same Request/Response structs drive the in-process LocalClient
// (tests and benches skip the socket) and the Unix-domain-socket server,
// so both paths exercise identical dispatch code.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace robotune::service {

/// Percent-escapes a value for the token format ('%', space, '=', CR,
/// LF, TAB).  Escaping is stable: unescape(escape(s)) == s for any s.
std::string escape(std::string_view value);
/// Reverses escape().  Returns false on a malformed escape sequence.
bool unescape(std::string_view value, std::string& out);

/// Wraps a payload in the CRC frame (with trailing newline).
std::string frame_message(std::string_view payload);

/// Incremental frame parser for a byte stream (socket reads arrive in
/// arbitrary chunks).  Feed bytes, then drain complete payloads.
class FrameReader {
 public:
  enum class Result {
    kReady,     ///< one payload extracted
    kNeedMore,  ///< no complete frame buffered yet
    kCorrupt,   ///< framing violation — the stream cannot be trusted
  };

  void feed(std::string_view bytes) { buffer_.append(bytes); }
  /// Extracts the next complete payload.  After kCorrupt the reader is
  /// poisoned: the connection should be dropped.
  Result next(std::string& payload, std::string& error);
  /// True when no partial frame is buffered (the stream is between
  /// frames) — the server's idle sweep uses this to tell a quiet client
  /// from one stalled mid-frame.
  bool idle() const { return buffer_.empty(); }

 private:
  std::string buffer_;
  bool corrupt_ = false;
};

/// Parses one frame line (no trailing newline) into its payload.
bool unframe_line(std::string_view line, std::string& payload,
                  std::string& error);

struct Request {
  std::string verb;          ///< start|suggest|observe|checkpoint|cancel|
                             ///< status|metrics|shutdown
  std::uint64_t rid = 0;     ///< echoed in the response
  std::uint64_t session = 0; ///< target session id (0 = none/service-wide)
  std::uint64_t from = 0;    ///< observe: first evaluation index
  std::uint64_t limit = 0;   ///< observe: max records (0 = all)
  std::string spec_body;     ///< start: core::encode_spec_body output
  std::string format;        ///< metrics: "prom" adds the Prometheus text
                             ///< exposition in fields["prom"]
  /// start: let the daemon derive the session seed from its service seed
  /// and the assigned session id, ignoring spec_body's seed field.
  bool derive_seed = false;
  // ---- ask/tell (external sessions, DESIGN.md §16) ----------------------
  /// observe: when true this is a *tell* — deliver the observation below
  /// for eval index `eval` instead of reading the journal window.  The
  /// tell keys are only emitted when set, so requests that never use
  /// ask/tell stay byte-identical (and pre-external daemons reject only
  /// the requests that actually need the feature, via the unknown-key
  /// rule).
  bool has_observation = false;
  std::uint64_t eval = 0;    ///< tell: canonical eval index
  double value_s = 0.0;      ///< tell: observed objective seconds
  double cost_s = 0.0;       ///< tell: observed cost seconds
  std::string status = "ok";  ///< tell: sparksim RunStatus label
};

struct Response {
  bool ok = false;
  std::uint64_t rid = 0;
  std::string error;  ///< set when !ok
  /// Verb-specific scalar results (deterministically ordered).
  std::map<std::string, std::string> fields;
  /// Verb-specific repeated results (observe: one per evaluation).
  std::vector<std::string> records;
};

std::string encode_request(const Request& request);
bool decode_request(const std::string& payload, Request& request,
                    std::string& error);

std::string encode_response(const Response& response);
bool decode_response(const std::string& payload, Response& response,
                     std::string& error);

}  // namespace robotune::service
