// Unix-domain-socket front end of the tuning service: a single-threaded
// poll loop that accepts clients, parses framed requests, dispatches
// them against the SessionManager, and writes framed responses.  All
// heavy work happens on the manager's session pool — the loop itself
// only shuffles small control messages, so one thread is plenty.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <map>
#include <string>

#include "service/protocol.h"
#include "service/session_manager.h"

namespace robotune::service {

class Server {
 public:
  Server(SessionManager& manager, std::string socket_path);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds and listens (removing a stale socket file first).  Returns
  /// false with `error` set on failure.
  bool listen(std::string* error = nullptr);

  /// Serves until `stop` becomes true (checked every poll timeout) — a
  /// client's `shutdown` request sets it too.  Returns the number of
  /// requests served.
  std::size_t serve(std::atomic<bool>& stop);

  /// Periodic hook run on the serve loop roughly once a second (the
  /// daemon's metrics-file dump).  Runs between requests, never
  /// concurrently with dispatch.
  void set_tick(std::function<void()> tick) { tick_ = std::move(tick); }

  /// How long a client may sit on an accepted connection without ever
  /// completing a frame (or stalled mid-frame) before the serve loop
  /// drops it.  Clients that have completed at least one frame and are
  /// merely quiet between requests are never dropped.  Also applied as
  /// SO_RCVTIMEO on accepted sockets so any blocking read path is
  /// bounded too.  Default 30 s; tests dial it down.
  void set_idle_timeout(std::chrono::milliseconds timeout) {
    idle_timeout_ = timeout;
  }

  const std::string& socket_path() const noexcept { return socket_path_; }

 private:
  struct Connection {
    FrameReader reader;
    /// Connect time, advanced at every completed frame — the reference
    /// point the idle sweep measures silence from.
    std::chrono::steady_clock::time_point last_progress;
    bool ever_framed = false;  ///< completed at least one frame
    bool mid_frame = false;    ///< bytes buffered, frame incomplete
  };

  void close_all();

  SessionManager& manager_;
  std::string socket_path_;
  int listen_fd_ = -1;
  std::map<int, Connection> connections_;
  std::function<void()> tick_;
  std::chrono::milliseconds idle_timeout_{30'000};
};

}  // namespace robotune::service
