// Unix-domain-socket front end of the tuning service: a single-threaded
// poll loop that accepts clients, parses framed requests, dispatches
// them against the SessionManager, and writes framed responses.  All
// heavy work happens on the manager's session pool — the loop itself
// only shuffles small control messages, so one thread is plenty.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <string>

#include "service/protocol.h"
#include "service/session_manager.h"

namespace robotune::service {

class Server {
 public:
  Server(SessionManager& manager, std::string socket_path);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds and listens (removing a stale socket file first).  Returns
  /// false with `error` set on failure.
  bool listen(std::string* error = nullptr);

  /// Serves until `stop` becomes true (checked every poll timeout) — a
  /// client's `shutdown` request sets it too.  Returns the number of
  /// requests served.
  std::size_t serve(std::atomic<bool>& stop);

  /// Periodic hook run on the serve loop roughly once a second (the
  /// daemon's metrics-file dump).  Runs between requests, never
  /// concurrently with dispatch.
  void set_tick(std::function<void()> tick) { tick_ = std::move(tick); }

  const std::string& socket_path() const noexcept { return socket_path_; }

 private:
  struct Connection {
    FrameReader reader;
  };

  void close_all();

  SessionManager& manager_;
  std::string socket_path_;
  int listen_fd_ = -1;
  std::map<int, Connection> connections_;
  std::function<void()> tick_;
};

}  // namespace robotune::service
