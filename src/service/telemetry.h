// Fleet telemetry plumbing for the service hot path (DESIGN.md §14):
// per-verb request counters + latency histograms, the `metrics` verb
// handler, and the end-of-serve fleet summary table.
//
// Naming follows the obs determinism split (obs/metrics.h):
//
//   service.rpc.<verb>            logical   requests dispatched
//   service.rpc.<verb>.errors     logical   requests answered !ok
//   runtime.service.rpc.<verb>.latency_us      dispatch latency histogram
//   runtime.service.rpc.suggest.latency_us.session.<id>
//                                 per-session suggest latency (named
//                                 under runtime., NOT session/<id>/ —
//                                 wall-clock data must never enter the
//                                 byte-identical per-session sections)
//   runtime.service.queue.wait_ms              admission→running wait
//   runtime.service.{queue.depth,sessions.*,pool.busy}   fleet gauges
//
// Unknown verbs are counted under service.rpc.unknown — a garbage
// stream must not grow the registry without bound.
//
// With ROBOTUNE_OBS=OFF every recorder below no-ops through the metric
// stubs and the `metrics` verb still answers (session states and
// progress come from the SessionManager, which is not obs-gated); only
// the counter/histogram content is empty.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "obs/metrics.h"
#include "service/protocol.h"
#include "service/session_manager.h"

namespace robotune::service {

/// Dispatch-latency bucket bounds in microseconds (1 µs .. 1 s).
const std::vector<double>& rpc_latency_buckets_us();

/// Queue-wait bucket bounds in milliseconds (0.1 ms .. 60 s).
const std::vector<double>& queue_wait_buckets_ms();

/// True for the protocol's verb set (including `metrics`).
bool known_verb(std::string_view verb);

/// Records one dispatched request: per-verb counter, error counter,
/// fleet latency histogram, and — for suggest — the per-session latency
/// histogram behind the `robotune_top` p99 column.
void record_rpc(std::string_view verb, std::uint64_t session, bool ok,
                double latency_us);

/// "runtime.service.rpc.suggest.latency_us.session.<id>".
std::string session_suggest_metric(std::uint64_t session_id);

/// p99 of a session's suggest latency, 0 when never measured.
double session_suggest_p99_us(const obs::MetricsSnapshot& snapshot,
                              std::uint64_t session_id);

/// The `metrics` verb.  session=0: fleet-aggregated fields (state
/// counts, rpc totals, suggest p50/p95/p99) plus one record per session
/// `<id> <state> <evals> <best> <queue_wait_ms> <suggest_p99_us>`.
/// session=N: that session's progress fields plus its logical metric
/// section.  format=prom adds the full Prometheus exposition (fleet) or
/// the session-scoped section (per-session) in fields["prom"].
Response handle_metrics(SessionManager& manager, const Request& request);

/// End-of-serve fleet summary table: admissions, terminal state counts,
/// the per-verb rpc table with p50/p95/p99, protocol/client counters,
/// and per-session outcome lines — the fleet-level sibling of
/// obs::render_summary.
std::string render_fleet_summary(const obs::MetricsSnapshot& snapshot,
                                 const ServiceStatus& status,
                                 const std::vector<SessionStatus>& sessions);

}  // namespace robotune::service
