// Crash-safe structured fleet event journal (DESIGN.md §14).
//
// The daemon appends one CRC-framed JSONL record per fleet lifecycle
// event — admissions, queue transitions, session state changes,
// recovery verdicts, client connects, protocol errors — to
// `<root>/events.jsonl`:
//
//   robotune-events v1
//   <crc32:8 hex> <len> {"seq":1,"sid":3,"ts_ms":...,"kind":"admission.accept","detail":""}
//
// The framing is the wire protocol's / journal v3's `<crc32> <len>
// <payload>` line frame, so the loader mirrors journal v3 semantics:
// LoadMode::kStrict throws InvalidArgument at the first torn or corrupt
// record (with file:line), LoadMode::kRecover truncates to the longest
// valid prefix and reports how many trailing lines were dropped — the
// kill -9 case.  Reopening an existing journal recover-loads it first,
// truncates any torn tail *on disk*, and continues the sequence from
// the last durable record, so a crashed daemon's event history stays a
// single monotonic stream across restarts.
//
// Rotation is size-based: when the current file exceeds `max_bytes`
// after an append it is renamed to `<path>.1` (shifting older rotations
// up to `<path>.keep`, dropping the oldest) and a fresh headered file
// continues the same sequence.
//
// Event taxonomy — `kind` values and their determinism class:
//
//   logical (per-session lifecycle; for a fixed request sequence the
//   per-session subsequences are byte-identical at any max_live /
//   slots / worker count — pinned by service_obs_test):
//     admission.accept   queue.enter        queue.leave
//     session.running    session.done       session.cancelled
//     session.failed     cancel.requested
//     recovery.resumed   recovery.completed recovery.cancelled
//     recovery.quarantined
//   runtime (fleet-level or timing/connection-dependent; sid may be 0):
//     admission.reject   admission.backpressure  recovery.failed
//     client.connect     client.disconnect       protocol.corrupt
//     rpc.error          daemon.start            daemon.stop
//     lease.expired      client.idle_drop
//   (lease.expired carries "eval <i> lease <l>" detail; it is runtime
//   because reaper ticks race external tells, but the *journal v3*
//   lease_expired record it mirrors is part of the session's durable
//   state — see DESIGN.md §16.  client.idle_drop is the serve loop
//   shedding a connection that never completed a frame.)
//
// logical_event_projection() extracts exactly the logical class,
// grouped by session id with global sequence numbers and timestamps
// stripped — the projection the byte-identity contract is stated over.
//
// The journal is a durability/ops artifact like the session journals:
// it is *not* gated by ROBOTUNE_OBS (an OBS=OFF daemon still records
// its fleet history), only by ServiceOptions::events_path being set.
#pragma once

#include <cstdint>
#include <cstdio>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "core/persistence.h"

namespace robotune::service {

struct FleetEvent {
  std::uint64_t seq = 0;      ///< monotonic across rotation and restarts
  std::uint64_t session = 0;  ///< 0 = fleet-level
  std::int64_t ts_ms = 0;     ///< unix wall-clock milliseconds
  std::string kind;
  std::string detail;

  bool operator==(const FleetEvent&) const = default;
};

/// True for the per-session lifecycle kinds covered by the
/// byte-identity contract (see the taxonomy above).
bool logical_event_kind(std::string_view kind);

/// The deterministic projection: logical-kind events with sid != 0,
/// grouped by session id (ascending), per-session order preserved, one
/// `session <sid> <kind>` line each.  Sequence numbers and timestamps
/// are excluded — they encode global interleaving, which is
/// scheduling-dependent by nature.
std::string logical_event_projection(const std::vector<FleetEvent>& events);

class EventJournal {
 public:
  struct Options {
    std::string path;  ///< empty = journal disabled (every emit no-ops)
    std::size_t max_bytes = 256 * 1024;  ///< rotate above this size
    std::size_t keep = 3;                ///< rotated files retained
    bool fsync = false;  ///< fsync after every record (flush is always on)
  };

  struct LoadReport {
    std::size_t events = 0;
    std::size_t dropped = 0;    ///< torn/corrupt trailing lines (recover)
    bool recovered = false;     ///< recover mode dropped something
    bool header_ok = true;      ///< false: file exists but header is bad
    std::size_t valid_bytes = 0;  ///< byte length of the valid prefix
  };

  EventJournal() = default;
  ~EventJournal();

  EventJournal(const EventJournal&) = delete;
  EventJournal& operator=(const EventJournal&) = delete;

  /// Opens (creating or continuing) the journal.  An existing file with
  /// a torn tail is truncated to its valid prefix; one whose header is
  /// corrupt beyond recovery is set aside as `<path>.corrupt` and a
  /// fresh journal starts (mirroring the quarantine verdict — corrupt
  /// history is preserved, never silently overwritten).  False when the
  /// path cannot be opened for appending.
  bool open(const Options& options, std::string* error = nullptr);
  void close();

  bool enabled() const;
  std::string path() const;
  /// Sequence number of the last emitted (or recovered) event.
  std::uint64_t last_seq() const;

  /// Appends one event (no-op while disabled).  Thread-safe; the global
  /// sequence number is assigned under the journal lock.  Every record
  /// is flushed to the OS immediately, so kill -9 loses at most the
  /// record being written (the torn tail recover-load truncates).
  void emit(std::uint64_t session, std::string_view kind,
            std::string_view detail = {});

  /// Durability barrier: fsync the journal file.
  void flush();

  /// Rotation chain, oldest first, existing files only (ends with the
  /// active path).
  std::vector<std::string> chain() const;

  /// Loads one journal file.  Strict mode throws InvalidArgument with
  /// `<path>:<line>` on the first bad header/frame/record; recover mode
  /// truncates to the longest valid prefix.  False: file unreadable.
  static bool load_file(const std::string& path,
                        std::vector<FleetEvent>& out, core::LoadMode mode,
                        LoadReport* report = nullptr);

  /// Loads the whole rotation chain (oldest first) in recover mode.
  static bool load_chain(const Options& options,
                         std::vector<FleetEvent>& out,
                         LoadReport* report = nullptr);

 private:
  void rotate_locked();
  bool open_fresh_locked(std::string* error);

  mutable std::mutex mutex_;
  Options options_;
  std::FILE* file_ = nullptr;
  std::size_t bytes_ = 0;
  std::uint64_t seq_ = 0;
};

}  // namespace robotune::service
