// Request dispatcher shared by the in-process LocalClient and the
// Unix-domain-socket server: one code path, so the socketless tests and
// benches exercise exactly what the daemon executes — including the
// per-verb telemetry wrapped around every request (DESIGN.md §14).
#include <chrono>
#include <cstdio>
#include <sstream>

#include "service/session_manager.h"
#include "service/telemetry.h"

namespace robotune::service {

namespace {

std::string format_double(double v) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.17g", v);
  return buffer;
}

std::string format_unit(const std::vector<double>& unit) {
  std::ostringstream out;
  for (std::size_t i = 0; i < unit.size(); ++i) {
    if (i != 0) out << ' ';
    out << format_double(unit[i]);
  }
  return out.str();
}

Response error_response(std::uint64_t rid, std::string why) {
  Response r;
  r.rid = rid;
  r.ok = false;
  r.error = std::move(why);
  return r;
}

/// The verb switch, unwrapped: dispatch_request() times and counts
/// around this.
Response dispatch_inner(SessionManager& manager, const Request& request,
                        std::atomic<bool>* shutdown_flag) {
  Response response;
  response.rid = request.rid;

  if (request.verb == "start") {
    core::SessionSpec spec;
    std::string why;
    if (!core::decode_spec_body(request.spec_body, spec, &why)) {
      return error_response(request.rid, "bad spec: " + why);
    }
    const auto result = manager.start(std::move(spec), request.derive_seed);
    if (!result.admitted) return error_response(request.rid, result.error);
    response.ok = true;
    response.fields["id"] = std::to_string(result.id);
    return response;
  }

  if (request.verb == "suggest") {
    // Ask/tell sessions lease pending suggestions; internal sessions
    // report the incumbent.  One verb, mode-dependent meaning — the
    // response's `mode` field tells the client which it got.
    const auto status = manager.status(request.session);
    if (!status) return error_response(request.rid, "no such session");
    if (status->external) {
      const auto result = manager.ask(request.session, request.limit);
      if (!result.ok) return error_response(request.rid, result.error);
      response.ok = true;
      response.fields["mode"] = "external";
      response.fields["pending"] = std::to_string(result.pending);
      response.fields["leased"] = std::to_string(result.leased);
      response.fields["state"] = to_string(status->state);
      for (const auto& grant : result.grants) {
        std::ostringstream rec;
        rec << grant.index << ' ' << grant.lease << ' ' << grant.deadline
            << ' ' << format_unit(grant.unit);
        response.records.push_back(rec.str());
      }
      return response;
    }
    const auto result = manager.suggest(request.session);
    if (!result.ok) return error_response(request.rid, result.error);
    response.ok = true;
    response.fields["evals"] = std::to_string(result.evaluations);
    response.fields["best"] = format_double(result.best_value_s);
    response.fields["unit"] = format_unit(result.best_unit);
    return response;
  }

  if (request.verb == "observe") {
    if (request.has_observation) {
      // Tell: deliver an external observation into the lease ledger.
      const auto status = sparksim::run_status_from_string(request.status);
      if (!status) {
        return error_response(request.rid,
                              "bad status '" + request.status + "'");
      }
      core::ExternalObservation observation;
      observation.value_s = request.value_s;
      observation.cost_s = request.cost_s;
      observation.status = *status;
      const auto result =
          manager.tell(request.session, request.eval, observation);
      response.fields["verdict"] = core::to_string(result.verdict);
      if (result.verdict == core::TellVerdict::kDuplicate ||
          result.verdict == core::TellVerdict::kConflict) {
        // Show the ledger's tuple so a conflicted client can see what
        // the daemon actually recorded.
        response.fields["value"] = format_double(result.recorded.value_s);
        response.fields["cost"] = format_double(result.recorded.cost_s);
        response.fields["status"] =
            sparksim::to_string(result.recorded.status);
      }
      if (!result.ok) {
        response.error = result.error;
        return response;
      }
      response.ok = true;
      return response;
    }
    const auto result =
        manager.observe(request.session, request.from, request.limit);
    if (!result.ok) return error_response(request.rid, result.error);
    response.ok = true;
    response.fields["total"] = std::to_string(result.total);
    for (const auto& e : result.records) {
      std::ostringstream rec;
      rec << e.index << ' ' << static_cast<int>(e.status) << ' '
          << format_double(e.value_s) << ' ' << format_double(e.cost_s)
          << ' ' << (e.stopped_early ? 1 : 0) << ' '
          << (e.transient ? 1 : 0) << ' ' << e.attempts;
      response.records.push_back(rec.str());
    }
    return response;
  }

  if (request.verb == "checkpoint") {
    const auto result = manager.checkpoint(request.session);
    if (!result.ok) return error_response(request.rid, result.error);
    response.ok = true;
    response.fields["journal"] = result.journal_path;
    response.fields["evals"] = std::to_string(result.evaluations);
    return response;
  }

  if (request.verb == "cancel") {
    std::string why;
    if (!manager.cancel(request.session, &why)) {
      return error_response(request.rid, why);
    }
    response.ok = true;
    return response;
  }

  if (request.verb == "status") {
    if (request.session != 0) {
      const auto status = manager.status(request.session);
      if (!status) return error_response(request.rid, "no such session");
      response.ok = true;
      response.fields["state"] = to_string(status->state);
      response.fields["evals"] = std::to_string(status->evaluations);
      response.fields["best"] = format_double(status->best_value_s);
      response.fields["resumed"] = status->resumed ? "1" : "0";
      response.fields["replayed"] = std::to_string(status->replayed);
      response.fields["recovered"] = status->journal_recovered ? "1" : "0";
      response.fields["mode"] = status->external ? "external" : "internal";
      if (status->external) {
        response.fields["pending"] = std::to_string(status->pending);
        response.fields["leased"] = std::to_string(status->leased);
        response.fields["reclaimed"] = std::to_string(status->reclaimed);
      }
      if (!status->error.empty()) {
        response.fields["failure"] = status->error;
      }
      return response;
    }
    const auto s = manager.service_status();
    response.ok = true;
    response.fields["queued"] = std::to_string(s.queued);
    response.fields["running"] = std::to_string(s.running);
    response.fields["done"] = std::to_string(s.done);
    response.fields["cancelled"] = std::to_string(s.cancelled);
    response.fields["failed"] = std::to_string(s.failed);
    response.fields["accepting"] = s.accepting ? "1" : "0";
    response.fields["max_live"] = std::to_string(s.max_live);
    response.fields["max_pending"] = std::to_string(s.max_pending);
    response.fields["slots"] = std::to_string(s.slots);
    response.fields["reclaimed"] = std::to_string(s.reclaimed);
    response.fields["evicted"] = std::to_string(s.evicted);
    return response;
  }

  if (request.verb == "metrics") {
    return handle_metrics(manager, request);
  }

  if (request.verb == "shutdown") {
    if (shutdown_flag == nullptr) {
      return error_response(request.rid,
                            "shutdown is only available over the socket");
    }
    shutdown_flag->store(true, std::memory_order_relaxed);
    response.ok = true;
    return response;
  }

  return error_response(request.rid, "unknown verb '" + request.verb + "'");
}

}  // namespace

Response dispatch_request(SessionManager& manager, const Request& request,
                          std::atomic<bool>* shutdown_flag) {
  // The clock reads compile out with ROBOTUNE_OBS=OFF: without a metric
  // sink the measurement would be pure overhead on the hot path.
  if constexpr (obs::kCompiledIn) {
    const auto begin = std::chrono::steady_clock::now();
    Response response = dispatch_inner(manager, request, shutdown_flag);
    const double latency_us =
        std::chrono::duration<double, std::micro>(
            std::chrono::steady_clock::now() - begin)
            .count();
    record_rpc(request.verb, request.session, response.ok, latency_us);
    return response;
  } else {
    return dispatch_inner(manager, request, shutdown_flag);
  }
}

}  // namespace robotune::service
