// Client APIs for the tuning service.
//
// LocalClient drives a SessionManager in-process through the same
// dispatch path as the daemon — tests and benches measure protocol and
// manager behavior without a socket in the loop.  SocketClient speaks
// the framed protocol over a Unix-domain socket to a live daemon.
#pragma once

#include <cstdint>
#include <string>

#include "service/protocol.h"
#include "service/session_manager.h"

namespace robotune::service {

class LocalClient {
 public:
  explicit LocalClient(SessionManager& manager) : manager_(manager) {}

  /// Round-trips the request through encode → decode → dispatch →
  /// encode → decode, so even the in-process path exercises the full
  /// wire codec.
  Response call(const Request& request);

 private:
  SessionManager& manager_;
  std::uint64_t next_rid_ = 1;
};

class SocketClient {
 public:
  SocketClient() = default;
  ~SocketClient();

  SocketClient(const SocketClient&) = delete;
  SocketClient& operator=(const SocketClient&) = delete;

  bool connect(const std::string& socket_path, std::string* error = nullptr);
  void close();
  bool connected() const noexcept { return fd_ >= 0; }

  /// Sends one request and blocks for its response.  Returns false on
  /// transport failure (error set); protocol-level failures come back as
  /// response.ok == false.
  bool call(const Request& request, Response& response,
            std::string* error = nullptr);

 private:
  int fd_ = -1;
  FrameReader reader_;
  std::uint64_t next_rid_ = 1;
};

}  // namespace robotune::service
