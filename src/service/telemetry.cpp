#include "service/telemetry.h"

#include <cinttypes>
#include <cstdio>
#include <limits>

#include "obs/prometheus.h"

namespace robotune::service {

namespace {

constexpr std::string_view kVerbs[] = {
    "start",  "suggest", "observe",  "checkpoint",
    "cancel", "status",  "shutdown", "metrics",
};

std::string format_double(double v) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.17g", v);
  return buffer;
}

std::string format_us(double v) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.1f", v);
  return buffer;
}

std::uint64_t counter_or_zero(const obs::MetricsSnapshot& snapshot,
                              const std::string& name) {
  const auto it = snapshot.counters.find(name);
  return it == snapshot.counters.end() ? 0 : it->second;
}

const obs::HistogramData* find_histogram(
    const obs::MetricsSnapshot& snapshot, const std::string& name) {
  const auto it = snapshot.histograms.find(name);
  return it == snapshot.histograms.end() ? nullptr : &it->second;
}

double histogram_p(const obs::MetricsSnapshot& snapshot,
                   const std::string& name, double q) {
  const obs::HistogramData* h = find_histogram(snapshot, name);
  return h == nullptr ? 0.0 : obs::histogram_quantile(*h, q);
}

void append_line(std::string& out, const std::string& label,
                 const std::string& value) {
  out += "  ";
  out += label;
  if (label.size() < 38) out += std::string(38 - label.size(), '.');
  out += " ";
  out += value;
  out += "\n";
}

}  // namespace

const std::vector<double>& rpc_latency_buckets_us() {
  static const std::vector<double> bounds = {
      1.0,    2.0,    5.0,     10.0,    25.0,    50.0,    100.0,
      250.0,  500.0,  1000.0,  2500.0,  5000.0,  10000.0, 25000.0,
      50000.0, 100000.0, 250000.0, 1000000.0};
  return bounds;
}

const std::vector<double>& queue_wait_buckets_ms() {
  static const std::vector<double> bounds = {
      0.1, 0.5, 1.0, 5.0, 10.0, 50.0, 100.0, 500.0,
      1000.0, 5000.0, 10000.0, 60000.0};
  return bounds;
}

bool known_verb(std::string_view verb) {
  for (const std::string_view candidate : kVerbs) {
    if (verb == candidate) return true;
  }
  return false;
}

std::string session_suggest_metric(std::uint64_t session_id) {
  return "runtime.service.rpc.suggest.latency_us.session." +
         std::to_string(session_id);
}

double session_suggest_p99_us(const obs::MetricsSnapshot& snapshot,
                              std::uint64_t session_id) {
  return histogram_p(snapshot, session_suggest_metric(session_id), 0.99);
}

void record_rpc(std::string_view verb, std::uint64_t session, bool ok,
                double latency_us) {
  // Unknown verbs collapse into one name: arbitrary client strings must
  // never grow the registry without bound.
  const std::string v(known_verb(verb) ? verb : std::string_view("unknown"));
  obs::count("service.rpc." + v);
  if (!ok) obs::count("service.rpc." + v + ".errors");
  obs::metrics().observe("runtime.service.rpc." + v + ".latency_us",
                         latency_us, rpc_latency_buckets_us());
  if (v == "suggest" && session != 0) {
    obs::metrics().observe(session_suggest_metric(session), latency_us,
                           rpc_latency_buckets_us());
  }
}

Response handle_metrics(SessionManager& manager, const Request& request) {
  Response response;
  response.rid = request.rid;
  const auto snapshot = obs::metrics().snapshot();

  if (request.session != 0) {
    const auto status = manager.status(request.session);
    if (!status) {
      response.ok = false;
      response.error = "no such session";
      return response;
    }
    response.ok = true;
    response.fields["state"] = to_string(status->state);
    response.fields["evals"] = std::to_string(status->evaluations);
    response.fields["best"] = format_double(status->best_value_s);
    response.fields["queue_wait_ms"] = format_us(status->queue_wait_ms);
    response.fields["suggest_p99_us"] =
        format_us(session_suggest_p99_us(snapshot, request.session));
    if (request.format == "prom") {
      response.fields["prom"] =
          obs::render_prometheus(snapshot.session(request.session));
    }
    return response;
  }

  const auto status = manager.service_status();
  response.ok = true;
  response.fields["queued"] = std::to_string(status.queued);
  response.fields["running"] = std::to_string(status.running);
  response.fields["done"] = std::to_string(status.done);
  response.fields["cancelled"] = std::to_string(status.cancelled);
  response.fields["failed"] = std::to_string(status.failed);
  response.fields["accepting"] = status.accepting ? "1" : "0";
  std::uint64_t requests = 0;
  std::uint64_t errors = 0;
  for (const std::string_view verb : kVerbs) {
    requests += counter_or_zero(snapshot, "service.rpc." + std::string(verb));
    errors += counter_or_zero(snapshot,
                              "service.rpc." + std::string(verb) + ".errors");
  }
  requests += counter_or_zero(snapshot, "service.rpc.unknown");
  errors += counter_or_zero(snapshot, "service.rpc.unknown.errors");
  response.fields["rpc_requests"] = std::to_string(requests);
  response.fields["rpc_errors"] = std::to_string(errors);
  const std::string suggest_hist = "runtime.service.rpc.suggest.latency_us";
  response.fields["suggest_p50_us"] =
      format_us(histogram_p(snapshot, suggest_hist, 0.50));
  response.fields["suggest_p95_us"] =
      format_us(histogram_p(snapshot, suggest_hist, 0.95));
  response.fields["suggest_p99_us"] =
      format_us(histogram_p(snapshot, suggest_hist, 0.99));
  response.fields["events_seq"] =
      std::to_string(manager.events().last_seq());
  if (request.format == "prom") {
    response.fields["prom"] = obs::render_prometheus(snapshot);
  }
  for (const SessionStatus& s : manager.list_sessions()) {
    char record[160];
    std::snprintf(record, sizeof(record),
                  "%" PRIu64 " %s %zu %.17g %.1f %.1f", s.id,
                  to_string(s.state), s.evaluations, s.best_value_s,
                  s.queue_wait_ms,
                  session_suggest_p99_us(snapshot, s.id));
    response.records.push_back(record);
  }
  return response;
}

std::string render_fleet_summary(
    const obs::MetricsSnapshot& snapshot, const ServiceStatus& status,
    const std::vector<SessionStatus>& sessions) {
  std::string out;
  out += "== fleet observability summary "
         "========================================\n";
  out += "-- admission / sessions --\n";
  append_line(out, "admissions accepted",
              std::to_string(
                  counter_or_zero(snapshot, "service.admission.accepted")));
  append_line(out, "admissions rejected",
              std::to_string(
                  counter_or_zero(snapshot, "service.admission.rejected")));
  append_line(out, "queued / running",
              std::to_string(status.queued) + " / " +
                  std::to_string(status.running));
  append_line(out, "done / cancelled / failed",
              std::to_string(status.done) + " / " +
                  std::to_string(status.cancelled) + " / " +
                  std::to_string(status.failed));
  append_line(
      out, "quarantined",
      std::to_string(
          counter_or_zero(snapshot, "service.sessions.quarantined")));

  out += "-- rpc (latency NON-deterministic: timing only, never results) "
         "--\n";
  {
    char header[96];
    std::snprintf(header, sizeof(header), "  %-12s %9s %7s %9s %9s %9s\n",
                  "verb", "requests", "errors", "p50 us", "p95 us",
                  "p99 us");
    out += header;
  }
  for (const std::string_view verb : kVerbs) {
    const std::string name(verb);
    const std::uint64_t requests =
        counter_or_zero(snapshot, "service.rpc." + name);
    if (requests == 0) continue;
    const std::string hist = "runtime.service.rpc." + name + ".latency_us";
    char line[128];
    std::snprintf(line, sizeof(line),
                  "  %-12s %9llu %7llu %9.1f %9.1f %9.1f\n", name.c_str(),
                  static_cast<unsigned long long>(requests),
                  static_cast<unsigned long long>(counter_or_zero(
                      snapshot, "service.rpc." + name + ".errors")),
                  histogram_p(snapshot, hist, 0.50),
                  histogram_p(snapshot, hist, 0.95),
                  histogram_p(snapshot, hist, 0.99));
    out += line;
  }

  out += "-- transport / journal --\n";
  append_line(out, "clients connected",
              std::to_string(
                  counter_or_zero(snapshot, "service.clients.connected")));
  append_line(out, "corrupt frames",
              std::to_string(counter_or_zero(
                  snapshot, "service.protocol.corrupt_frames")));
  append_line(out, "protocol decode errors",
              std::to_string(counter_or_zero(
                  snapshot, "service.protocol.decode_errors")));
  append_line(out, "fleet events emitted",
              std::to_string(counter_or_zero(
                  snapshot, "runtime.service.events.emitted")));

  if (!sessions.empty()) {
    out += "-- sessions --\n";
    char header[96];
    std::snprintf(header, sizeof(header), "  %6s %-10s %6s %12s %9s %10s\n",
                  "id", "state", "evals", "best s", "wait ms",
                  "sug p99 us");
    out += header;
    for (const SessionStatus& s : sessions) {
      char line[160];
      char best[24];
      if (s.best_value_s ==
          std::numeric_limits<double>::infinity()) {
        std::snprintf(best, sizeof(best), "-");
      } else {
        std::snprintf(best, sizeof(best), "%.2f", s.best_value_s);
      }
      std::snprintf(line, sizeof(line),
                    "  %6" PRIu64 " %-10s %6zu %12s %9.1f %10.1f\n", s.id,
                    to_string(s.state), s.evaluations, best,
                    s.queue_wait_ms,
                    session_suggest_p99_us(snapshot, s.id));
      out += line;
    }
  }
  out += "================================================================="
         "======\n";
  return out;
}

}  // namespace robotune::service
