#include "ml/linear_models.h"

#include <algorithm>
#include <cmath>

#include "common/statistics.h"

namespace robotune::ml {

namespace {

double soft_threshold(double x, double lambda) {
  if (x > lambda) return x - lambda;
  if (x < -lambda) return x + lambda;
  return 0.0;
}

}  // namespace

void ElasticNet::fit(const Dataset& data) {
  require(data.num_rows() >= 2, "ElasticNet::fit: need at least 2 rows");
  const std::size_t n = data.num_rows();
  const std::size_t p = data.num_features();

  // Standardize columns (zero mean, unit variance); constant columns get
  // zero weight and are skipped during descent.
  std::vector<double> mean(p, 0.0), scale(p, 1.0);
  for (std::size_t j = 0; j < p; ++j) {
    double s = 0.0;
    for (std::size_t i = 0; i < n; ++i) s += data.feature(i, j);
    mean[j] = s / static_cast<double>(n);
    double ss = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      const double d = data.feature(i, j) - mean[j];
      ss += d * d;
    }
    scale[j] = std::sqrt(ss / static_cast<double>(n));
  }
  const double y_mean = stats::mean(data.targets());

  // Column-major standardized design for cache-friendly coordinate sweeps.
  std::vector<std::vector<double>> col(p, std::vector<double>(n, 0.0));
  for (std::size_t j = 0; j < p; ++j) {
    if (scale[j] <= 0.0) continue;
    for (std::size_t i = 0; i < n; ++i) {
      col[j][i] = (data.feature(i, j) - mean[j]) / scale[j];
    }
  }

  std::vector<double> beta(p, 0.0);
  std::vector<double> residual(n);
  for (std::size_t i = 0; i < n; ++i) residual[i] = data.target(i) - y_mean;

  const double nf = static_cast<double>(n);
  const double l1 = options_.alpha * options_.l1_ratio;
  const double l2 = options_.alpha * (1.0 - options_.l1_ratio);

  iterations_used_ = options_.max_iterations;
  for (int it = 0; it < options_.max_iterations; ++it) {
    double max_delta = 0.0;
    for (std::size_t j = 0; j < p; ++j) {
      if (scale[j] <= 0.0) continue;
      const auto& xj = col[j];
      // rho = (1/n) x_j . (residual + x_j beta_j); with standardized x_j,
      // (1/n) x_j.x_j == 1.
      double rho = 0.0;
      for (std::size_t i = 0; i < n; ++i) rho += xj[i] * residual[i];
      rho = rho / nf + beta[j];
      const double new_beta = soft_threshold(rho, l1) / (1.0 + l2);
      const double delta = new_beta - beta[j];
      if (delta != 0.0) {
        for (std::size_t i = 0; i < n; ++i) residual[i] -= delta * xj[i];
        beta[j] = new_beta;
        max_delta = std::max(max_delta, std::abs(delta));
      }
    }
    if (max_delta < options_.tolerance) {
      iterations_used_ = it + 1;
      break;
    }
  }

  // Un-standardize: y = y_mean + sum_j beta_j * (x_j - mean_j) / scale_j.
  coef_.assign(p, 0.0);
  intercept_ = y_mean;
  for (std::size_t j = 0; j < p; ++j) {
    if (scale[j] <= 0.0) continue;
    coef_[j] = beta[j] / scale[j];
    intercept_ -= coef_[j] * mean[j];
  }
  trained_ = true;
}

double ElasticNet::predict(std::span<const double> x) const {
  require(trained_, "ElasticNet::predict: not trained");
  require(x.size() == coef_.size(), "ElasticNet::predict: width mismatch");
  double y = intercept_;
  for (std::size_t j = 0; j < coef_.size(); ++j) y += coef_[j] * x[j];
  return y;
}

}  // namespace robotune::ml
