#include "ml/decision_tree.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

namespace robotune::ml {

namespace {

struct SplitResult {
  bool found = false;
  std::size_t feature = 0;
  double threshold = 0.0;
  double score = std::numeric_limits<double>::infinity();  // weighted SSE
  double parent_sse = 0.0;
};

double sum_targets(const Dataset& data, std::span<const std::size_t> rows) {
  double s = 0.0;
  for (std::size_t r : rows) s += data.target(r);
  return s;
}

// Sum of squared errors about the mean for the given rows.
double sse(const Dataset& data, std::span<const std::size_t> rows) {
  if (rows.empty()) return 0.0;
  const double mean = sum_targets(data, rows) / static_cast<double>(rows.size());
  double s = 0.0;
  for (std::size_t r : rows) {
    const double d = data.target(r) - mean;
    s += d * d;
  }
  return s;
}

// Best CART split on one feature: sort rows by the feature, scan prefix
// sums.  Returns weighted child SSE and the threshold, or infinity when no
// valid split exists (e.g. constant feature).
std::pair<double, double> best_split_on_feature(
    const Dataset& data, std::span<std::size_t> rows, std::size_t feature,
    std::size_t min_leaf) {
  std::sort(rows.begin(), rows.end(), [&](std::size_t a, std::size_t b) {
    return data.feature(a, feature) < data.feature(b, feature);
  });
  const std::size_t n = rows.size();
  // Prefix sums of y and y^2 enable O(1) SSE of any prefix/suffix.
  double left_sum = 0.0, left_sq = 0.0;
  double total_sum = 0.0, total_sq = 0.0;
  for (std::size_t r : rows) {
    const double y = data.target(r);
    total_sum += y;
    total_sq += y * y;
  }
  double best_score = std::numeric_limits<double>::infinity();
  double best_threshold = 0.0;
  for (std::size_t i = 0; i + 1 < n; ++i) {
    const double y = data.target(rows[i]);
    left_sum += y;
    left_sq += y * y;
    const double xi = data.feature(rows[i], feature);
    const double xj = data.feature(rows[i + 1], feature);
    if (xi == xj) continue;  // can't split between equal values
    const std::size_t nl = i + 1;
    const std::size_t nr = n - nl;
    if (nl < min_leaf || nr < min_leaf) continue;
    const double right_sum = total_sum - left_sum;
    const double right_sq = total_sq - left_sq;
    const double sse_l = left_sq - left_sum * left_sum / static_cast<double>(nl);
    const double sse_r =
        right_sq - right_sum * right_sum / static_cast<double>(nr);
    const double score = sse_l + sse_r;
    if (score < best_score) {
      best_score = score;
      best_threshold = 0.5 * (xi + xj);
    }
  }
  return {best_score, best_threshold};
}

// Extra-Trees split: one uniform threshold in (min, max) of the feature.
std::pair<double, double> random_split_on_feature(
    const Dataset& data, std::span<const std::size_t> rows,
    std::size_t feature, std::size_t min_leaf, Rng& rng) {
  double lo = std::numeric_limits<double>::infinity();
  double hi = -std::numeric_limits<double>::infinity();
  for (std::size_t r : rows) {
    const double x = data.feature(r, feature);
    lo = std::min(lo, x);
    hi = std::max(hi, x);
  }
  if (!(hi > lo)) {
    return {std::numeric_limits<double>::infinity(), 0.0};
  }
  const double threshold = rng.uniform(lo, hi);
  double ls = 0.0, lq = 0.0, rs = 0.0, rq = 0.0;
  std::size_t nl = 0, nr = 0;
  for (std::size_t r : rows) {
    const double y = data.target(r);
    if (data.feature(r, feature) <= threshold) {
      ls += y;
      lq += y * y;
      ++nl;
    } else {
      rs += y;
      rq += y * y;
      ++nr;
    }
  }
  if (nl < min_leaf || nr < min_leaf) {
    return {std::numeric_limits<double>::infinity(), 0.0};
  }
  const double sse_l = lq - ls * ls / static_cast<double>(nl);
  const double sse_r = rq - rs * rs / static_cast<double>(nr);
  return {sse_l + sse_r, threshold};
}

}  // namespace

void DecisionTree::fit(const Dataset& data, std::span<const std::size_t> rows,
                       Rng& rng) {
  require(!rows.empty(), "DecisionTree::fit: empty row set");
  nodes_.clear();
  depth_ = 0;
  mdi_importance_.assign(data.num_features(), 0.0);
  std::vector<std::size_t> work(rows.begin(), rows.end());
  build(data, work, 0, work.size(), 0, rng);
}

void DecisionTree::fit(const Dataset& data, Rng& rng) {
  std::vector<std::size_t> rows(data.num_rows());
  std::iota(rows.begin(), rows.end(), std::size_t{0});
  fit(data, rows, rng);
}

std::int32_t DecisionTree::build(const Dataset& data,
                                 std::vector<std::size_t>& rows,
                                 std::size_t begin, std::size_t end,
                                 std::size_t depth, Rng& rng) {
  depth_ = std::max(depth_, depth);
  const std::size_t n = end - begin;
  const std::span<std::size_t> node_rows(rows.data() + begin, n);

  const double node_sum = [&] {
    double s = 0.0;
    for (std::size_t r : node_rows) s += data.target(r);
    return s;
  }();
  const double node_mean = node_sum / static_cast<double>(n);

  auto make_leaf = [&]() -> std::int32_t {
    Node leaf;
    leaf.value = node_mean;
    nodes_.push_back(leaf);
    return static_cast<std::int32_t>(nodes_.size() - 1);
  };

  if (n < options_.min_samples_split ||
      (options_.max_depth != 0 && depth >= options_.max_depth)) {
    return make_leaf();
  }
  const double parent_sse = sse(data, node_rows);
  if (parent_sse <= 1e-12) return make_leaf();

  // Candidate feature subset.
  const std::size_t num_features = data.num_features();
  std::size_t mtry = options_.max_features;
  if (mtry == 0) mtry = std::max<std::size_t>(1, num_features / 3);
  mtry = std::min(mtry, num_features);
  std::vector<std::size_t> candidates(num_features);
  std::iota(candidates.begin(), candidates.end(), std::size_t{0});
  // Partial Fisher-Yates: choose mtry distinct features.
  for (std::size_t i = 0; i < mtry; ++i) {
    const std::size_t j = i + rng.uniform_index(num_features - i);
    std::swap(candidates[i], candidates[j]);
  }

  SplitResult best;
  best.parent_sse = parent_sse;
  std::vector<std::size_t> scratch(node_rows.begin(), node_rows.end());
  for (std::size_t i = 0; i < mtry; ++i) {
    const std::size_t f = candidates[i];
    std::pair<double, double> result;
    if (options_.split_mode == SplitMode::kBestSplit) {
      result = best_split_on_feature(data, scratch, f,
                                     options_.min_samples_leaf);
    } else {
      result = random_split_on_feature(data, node_rows, f,
                                       options_.min_samples_leaf, rng);
    }
    if (result.first < best.score) {
      best.found = true;
      best.score = result.first;
      best.threshold = result.second;
      best.feature = f;
    }
  }
  if (!best.found || best.score >= parent_sse) return make_leaf();

  mdi_importance_[best.feature] += parent_sse - best.score;

  // Partition rows in place around the chosen split.
  const auto mid_it = std::partition(
      rows.begin() + static_cast<std::ptrdiff_t>(begin),
      rows.begin() + static_cast<std::ptrdiff_t>(end), [&](std::size_t r) {
        return data.feature(r, best.feature) <= best.threshold;
      });
  const auto mid =
      static_cast<std::size_t>(mid_it - rows.begin());
  if (mid == begin || mid == end) return make_leaf();  // degenerate

  const auto my_index = static_cast<std::int32_t>(nodes_.size());
  nodes_.emplace_back();
  nodes_[my_index].feature = best.feature;
  nodes_[my_index].threshold = best.threshold;
  nodes_[my_index].value = node_mean;
  const std::int32_t left = build(data, rows, begin, mid, depth + 1, rng);
  const std::int32_t right = build(data, rows, mid, end, depth + 1, rng);
  nodes_[my_index].left = left;
  nodes_[my_index].right = right;
  return my_index;
}

double DecisionTree::predict(std::span<const double> x) const {
  require(trained(), "DecisionTree::predict: tree not trained");
  std::int32_t idx = 0;
  for (;;) {
    const Node& node = nodes_[static_cast<std::size_t>(idx)];
    if (node.feature == Node::kLeaf) return node.value;
    idx = (x[node.feature] <= node.threshold) ? node.left : node.right;
    if (idx < 0) return node.value;
  }
}

}  // namespace robotune::ml
