// K-fold cross-validation, used by the Figure-2 model comparison
// (five-fold CV R² of Lasso / ElasticNet / RF / ET).
#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <vector>

#include "common/rng.h"
#include "ml/dataset.h"

namespace robotune::ml {

struct CvResult {
  std::vector<double> fold_scores;  ///< R² per fold
  double mean_score = 0.0;
  double stddev_score = 0.0;
};

/// Factory so each fold gets a fresh, untrained model.
using ModelFactory = std::function<std::unique_ptr<Regressor>()>;

/// K-fold split: shuffles row indices, returns `k` disjoint folds whose
/// union is all rows.  Fold sizes differ by at most one.
std::vector<std::vector<std::size_t>> kfold_split(std::size_t num_rows,
                                                  std::size_t k, Rng& rng);

/// Runs k-fold CV, returning the per-fold and aggregate R² scores.
CvResult cross_validate(const Dataset& data, const ModelFactory& factory,
                        std::size_t k = 5, std::uint64_t seed = 13);

}  // namespace robotune::ml
