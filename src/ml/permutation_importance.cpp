#include "ml/permutation_importance.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/statistics.h"

namespace robotune::ml {

std::vector<ImportanceResult> permutation_importance(
    const RandomForest& forest, const std::vector<FeatureGroup>& groups,
    const ImportanceOptions& options) {
  require(forest.trained(), "permutation_importance: forest not trained");
  require(options.repeats > 0, "permutation_importance: repeats must be > 0");
  const double baseline = forest.oob_r2();
  const std::size_t n = forest.training_data().num_rows();

  Rng rng(options.seed);
  std::vector<ImportanceResult> results;
  results.reserve(groups.size());
  std::vector<std::size_t> perm(n);
  for (const auto& group : groups) {
    std::vector<double> drops;
    drops.reserve(static_cast<std::size_t>(options.repeats));
    for (int rep = 0; rep < options.repeats; ++rep) {
      std::iota(perm.begin(), perm.end(), std::size_t{0});
      for (std::size_t i = n; i-- > 1;) {
        const std::size_t j = rng.uniform_index(i + 1);
        std::swap(perm[i], perm[j]);
      }
      const double permuted = forest.oob_r2_permuted(group.features, perm);
      drops.push_back(baseline - permuted);
    }
    ImportanceResult r;
    r.group = group;
    r.mean_drop = stats::mean(drops);
    r.stddev_drop = stats::stddev(drops);
    results.push_back(std::move(r));
  }
  std::stable_sort(results.begin(), results.end(),
                   [](const ImportanceResult& a, const ImportanceResult& b) {
                     return a.mean_drop > b.mean_drop;
                   });
  return results;
}

std::vector<std::size_t> select_important(
    const std::vector<ImportanceResult>& results, double threshold) {
  std::vector<std::size_t> selected;
  for (std::size_t i = 0; i < results.size(); ++i) {
    if (results[i].mean_drop >= threshold) selected.push_back(i);
  }
  return selected;
}

}  // namespace robotune::ml
