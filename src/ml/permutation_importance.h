// Mean-Decrease-in-Accuracy (permutation) feature importance on the
// out-of-bag samples of a random forest — the importance mechanism the
// paper selects over MDI because it is robust to features of differing
// scale and cardinality (Strobl et al. 2007, Nicodemus 2011).
//
// Collinear parameters are permuted together as one *group* (paper §3.3
// "Handling Collinearity" / §4 "joint parameter"); each group is permuted
// `repeats` times (paper: 10) and the mean drop in OOB R² is reported.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "common/rng.h"
#include "ml/random_forest.h"

namespace robotune::ml {

/// A named set of feature columns permuted together.
struct FeatureGroup {
  std::string name;
  std::vector<std::size_t> features;
};

struct ImportanceResult {
  FeatureGroup group;
  double mean_drop = 0.0;    ///< average decrease in OOB R²
  double stddev_drop = 0.0;  ///< spread over repeats
};

struct ImportanceOptions {
  int repeats = 10;
  std::uint64_t seed = 7;
};

/// Computes MDA importance for each group.  Results are sorted by
/// mean_drop, descending.
std::vector<ImportanceResult> permutation_importance(
    const RandomForest& forest, const std::vector<FeatureGroup>& groups,
    const ImportanceOptions& options = {});

/// Indices (into `results`) of groups whose mean drop meets `threshold`
/// (paper default 0.05).
std::vector<std::size_t> select_important(
    const std::vector<ImportanceResult>& results, double threshold = 0.05);

}  // namespace robotune::ml
