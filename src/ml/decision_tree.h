// CART regression tree with variance-reduction splits.
//
// Two split modes are supported:
//  * kBestSplit — classic CART: for each candidate feature, scan all split
//    positions and take the one minimizing weighted child variance (used by
//    Random Forests).
//  * kRandomThreshold — Extra-Trees style: draw one uniform threshold per
//    candidate feature and keep the best among those (Geurts et al. 2006).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "common/rng.h"
#include "ml/dataset.h"

namespace robotune::ml {

enum class SplitMode { kBestSplit, kRandomThreshold };

struct TreeOptions {
  /// Number of features examined per split; 0 = max(1, n_features / 3),
  /// the standard default for regression forests.
  std::size_t max_features = 0;
  std::size_t min_samples_leaf = 2;
  std::size_t min_samples_split = 4;
  std::size_t max_depth = 0;  ///< 0 = unlimited
  SplitMode split_mode = SplitMode::kBestSplit;
};

class DecisionTree {
 public:
  explicit DecisionTree(TreeOptions options = {}) : options_(options) {}

  /// Fits on the rows of `data` listed in `rows` (with repetition for
  /// bootstrap samples).  `rng` drives feature subsampling / thresholds.
  void fit(const Dataset& data, std::span<const std::size_t> rows, Rng& rng);

  /// Convenience: fit on all rows.
  void fit(const Dataset& data, Rng& rng);

  double predict(std::span<const double> x) const;

  std::size_t node_count() const noexcept { return nodes_.size(); }
  std::size_t depth() const noexcept { return depth_; }
  bool trained() const noexcept { return !nodes_.empty(); }

  /// Mean-decrease-in-impurity importance accumulated during training
  /// (un-normalized).  Exposed for the MDI-vs-MDA ablation; the paper's
  /// pipeline uses permutation importance instead (§3.3).
  std::span<const double> mdi_importance() const noexcept {
    return mdi_importance_;
  }

 private:
  struct Node {
    // Leaf iff feature == kLeaf.
    static constexpr std::size_t kLeaf = static_cast<std::size_t>(-1);
    std::size_t feature = kLeaf;
    double threshold = 0.0;
    std::int32_t left = -1;
    std::int32_t right = -1;
    double value = 0.0;  // mean target for leaves
  };

  std::int32_t build(const Dataset& data, std::vector<std::size_t>& rows,
                     std::size_t begin, std::size_t end, std::size_t depth,
                     Rng& rng);

  TreeOptions options_;
  std::vector<Node> nodes_;
  std::vector<double> mdi_importance_;
  std::size_t depth_ = 0;
};

}  // namespace robotune::ml
