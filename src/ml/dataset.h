// Tabular regression dataset: row-major feature matrix plus targets.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "common/error.h"

namespace robotune::ml {

class Dataset {
 public:
  Dataset() = default;

  Dataset(std::size_t num_features) : num_features_(num_features) {}

  /// Appends one row.  `x.size()` must equal num_features().
  void add_row(std::span<const double> x, double y) {
    require(x.size() == num_features_, "Dataset::add_row: width mismatch");
    features_.insert(features_.end(), x.begin(), x.end());
    targets_.push_back(y);
  }

  std::size_t num_rows() const noexcept { return targets_.size(); }
  std::size_t num_features() const noexcept { return num_features_; }
  bool empty() const noexcept { return targets_.empty(); }

  std::span<const double> row(std::size_t i) const noexcept {
    return {features_.data() + i * num_features_, num_features_};
  }
  double target(std::size_t i) const noexcept { return targets_[i]; }
  std::span<const double> targets() const noexcept { return targets_; }

  double feature(std::size_t row, std::size_t col) const noexcept {
    return features_[row * num_features_ + col];
  }

  /// Copy of the dataset restricted to the given row indices (repeats
  /// allowed — used for bootstrap resamples).
  Dataset subset(std::span<const std::size_t> rows) const {
    Dataset out(num_features_);
    for (std::size_t r : rows) out.add_row(row(r), target(r));
    return out;
  }

 private:
  std::size_t num_features_ = 0;
  std::vector<double> features_;
  std::vector<double> targets_;
};

/// Common interface so cross-validation and the figure-2 model comparison
/// can treat tree ensembles and linear models uniformly.
class Regressor {
 public:
  virtual ~Regressor() = default;
  virtual void fit(const Dataset& data) = 0;
  virtual double predict(std::span<const double> x) const = 0;

  std::vector<double> predict_all(const Dataset& data) const {
    std::vector<double> out;
    out.reserve(data.num_rows());
    for (std::size_t i = 0; i < data.num_rows(); ++i) {
      out.push_back(predict(data.row(i)));
    }
    return out;
  }
};

}  // namespace robotune::ml
