// L1/L2-regularized linear regression fit by cyclic coordinate descent.
//
// Lasso and ElasticNet are the linear baselines the paper compares against
// tree models in Figure 2 before choosing Random Forests for parameter
// selection.  The implementation standardizes features internally, runs
// coordinate descent with soft-thresholding, and un-standardizes the
// coefficients for prediction.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "ml/dataset.h"

namespace robotune::ml {

struct LinearModelOptions {
  /// Overall regularization strength (scikit-learn's `alpha`).
  double alpha = 1.0;
  /// Mix between L1 (1.0 → Lasso) and L2 (0.0 → Ridge).
  double l1_ratio = 1.0;
  int max_iterations = 1000;
  double tolerance = 1e-6;
};

class ElasticNet : public Regressor {
 public:
  explicit ElasticNet(LinearModelOptions options = {}) : options_(options) {}

  void fit(const Dataset& data) override;
  double predict(std::span<const double> x) const override;

  bool trained() const noexcept { return trained_; }
  std::span<const double> coefficients() const noexcept { return coef_; }
  double intercept() const noexcept { return intercept_; }
  int iterations_used() const noexcept { return iterations_used_; }

 private:
  LinearModelOptions options_;
  std::vector<double> coef_;
  double intercept_ = 0.0;
  int iterations_used_ = 0;
  bool trained_ = false;
};

/// Lasso = ElasticNet with l1_ratio = 1.
class Lasso : public ElasticNet {
 public:
  explicit Lasso(double alpha = 1.0, int max_iterations = 1000)
      : ElasticNet({.alpha = alpha,
                    .l1_ratio = 1.0,
                    .max_iterations = max_iterations,
                    .tolerance = 1e-6}) {}
};

}  // namespace robotune::ml
