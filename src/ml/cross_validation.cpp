#include "ml/cross_validation.h"

#include <algorithm>
#include <numeric>

#include "common/statistics.h"

namespace robotune::ml {

std::vector<std::vector<std::size_t>> kfold_split(std::size_t num_rows,
                                                  std::size_t k, Rng& rng) {
  require(k >= 2, "kfold_split: k must be at least 2");
  require(num_rows >= k, "kfold_split: fewer rows than folds");
  std::vector<std::size_t> order(num_rows);
  std::iota(order.begin(), order.end(), std::size_t{0});
  for (std::size_t i = num_rows; i-- > 1;) {
    const std::size_t j = rng.uniform_index(i + 1);
    std::swap(order[i], order[j]);
  }
  std::vector<std::vector<std::size_t>> folds(k);
  for (std::size_t i = 0; i < num_rows; ++i) {
    folds[i % k].push_back(order[i]);
  }
  return folds;
}

CvResult cross_validate(const Dataset& data, const ModelFactory& factory,
                        std::size_t k, std::uint64_t seed) {
  Rng rng(seed);
  const auto folds = kfold_split(data.num_rows(), k, rng);
  CvResult result;
  for (std::size_t f = 0; f < k; ++f) {
    std::vector<std::size_t> train_rows;
    for (std::size_t g = 0; g < k; ++g) {
      if (g == f) continue;
      train_rows.insert(train_rows.end(), folds[g].begin(), folds[g].end());
    }
    const Dataset train = data.subset(train_rows);
    auto model = factory();
    model->fit(train);
    std::vector<double> y_true, y_pred;
    y_true.reserve(folds[f].size());
    y_pred.reserve(folds[f].size());
    for (std::size_t r : folds[f]) {
      y_true.push_back(data.target(r));
      y_pred.push_back(model->predict(data.row(r)));
    }
    result.fold_scores.push_back(stats::r2_score(y_true, y_pred));
  }
  result.mean_score = stats::mean(result.fold_scores);
  result.stddev_score = stats::stddev(result.fold_scores);
  return result;
}

}  // namespace robotune::ml
