#include "ml/random_forest.h"

#include <algorithm>
#include <numeric>

#include "common/statistics.h"

namespace robotune::ml {

RandomForest RandomForest::extra_trees(std::size_t num_trees,
                                       std::uint64_t seed) {
  ForestOptions options;
  options.num_trees = num_trees;
  options.bootstrap = false;
  options.tree.split_mode = SplitMode::kRandomThreshold;
  return RandomForest(options, seed);
}

void RandomForest::fit(const Dataset& data) {
  require(data.num_rows() >= 2, "RandomForest::fit: need at least 2 rows");
  const std::size_t n = data.num_rows();
  const std::size_t t = options_.num_trees;
  training_data_ = std::make_shared<Dataset>(data);
  trees_.assign(t, DecisionTree(options_.tree));
  in_bag_.assign(t, std::vector<char>(n, 0));

  // Pre-derive one RNG per tree so training is deterministic regardless of
  // thread scheduling (each task owns its generator; no shared state).
  Rng master(seed_);
  std::vector<Rng> tree_rngs;
  tree_rngs.reserve(t);
  for (std::size_t i = 0; i < t; ++i) tree_rngs.push_back(master.split());

  auto train_one = [&](std::size_t ti) {
    Rng& rng = tree_rngs[ti];
    std::vector<std::size_t> rows;
    rows.reserve(n);
    if (options_.bootstrap) {
      for (std::size_t i = 0; i < n; ++i) {
        const std::size_t r = rng.uniform_index(n);
        rows.push_back(r);
        in_bag_[ti][r] = 1;
      }
    } else {
      rows.resize(n);
      std::iota(rows.begin(), rows.end(), std::size_t{0});
      std::fill(in_bag_[ti].begin(), in_bag_[ti].end(), 1);
    }
    trees_[ti].fit(*training_data_, rows, rng);
  };

  if (options_.parallel && ThreadPool::global().size() > 1) {
    ThreadPool::global().parallel_for(t, train_one);
  } else {
    for (std::size_t ti = 0; ti < t; ++ti) train_one(ti);
  }
}

double RandomForest::predict(std::span<const double> x) const {
  require(trained(), "RandomForest::predict: not trained");
  double sum = 0.0;
  for (const auto& tree : trees_) sum += tree.predict(x);
  return sum / static_cast<double>(trees_.size());
}

std::optional<double> RandomForest::oob_prediction(std::size_t i) const {
  require(trained(), "RandomForest::oob_prediction: not trained");
  double sum = 0.0;
  std::size_t count = 0;
  for (std::size_t t = 0; t < trees_.size(); ++t) {
    if (!in_bag_[t][i]) {
      sum += trees_[t].predict(training_data_->row(i));
      ++count;
    }
  }
  if (count == 0) return std::nullopt;
  return sum / static_cast<double>(count);
}

double RandomForest::oob_r2() const {
  require(trained(), "RandomForest::oob_r2: not trained");
  std::vector<double> y_true, y_pred;
  for (std::size_t i = 0; i < training_data_->num_rows(); ++i) {
    if (auto p = oob_prediction(i)) {
      y_true.push_back(training_data_->target(i));
      y_pred.push_back(*p);
    }
  }
  return stats::r2_score(y_true, y_pred);
}

double RandomForest::oob_r2_permuted(
    std::span<const std::size_t> features,
    std::span<const std::size_t> perm) const {
  require(trained(), "RandomForest::oob_r2_permuted: not trained");
  const std::size_t n = training_data_->num_rows();
  require(perm.size() == n, "oob_r2_permuted: permutation size mismatch");
  std::vector<double> x(training_data_->num_features());
  std::vector<double> y_true, y_pred;
  y_true.reserve(n);
  y_pred.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const auto row = training_data_->row(i);
    std::copy(row.begin(), row.end(), x.begin());
    for (std::size_t f : features) {
      x[f] = training_data_->feature(perm[i], f);
    }
    double sum = 0.0;
    std::size_t count = 0;
    for (std::size_t t = 0; t < trees_.size(); ++t) {
      if (!in_bag_[t][i]) {
        sum += trees_[t].predict(x);
        ++count;
      }
    }
    if (count > 0) {
      y_true.push_back(training_data_->target(i));
      y_pred.push_back(sum / static_cast<double>(count));
    }
  }
  return stats::r2_score(y_true, y_pred);
}

std::vector<double> RandomForest::mdi_importance() const {
  require(trained(), "RandomForest::mdi_importance: not trained");
  std::vector<double> total(training_data_->num_features(), 0.0);
  for (const auto& tree : trees_) {
    const auto imp = tree.mdi_importance();
    for (std::size_t f = 0; f < total.size(); ++f) total[f] += imp[f];
  }
  double sum = 0.0;
  for (double v : total) sum += v;
  if (sum > 0.0) {
    for (double& v : total) v /= sum;
  }
  return total;
}

}  // namespace robotune::ml
