// Random Forests (Breiman 2001) and Extremely Randomized Trees
// (Geurts et al. 2006) regression ensembles.
//
// This is the parameter-selection model of ROBOTune (§3.3): a forest is
// trained on LHS samples of the configuration space, its out-of-bag R²
// serves as the baseline for Mean-Decrease-in-Accuracy permutation
// importance, and features whose permutation drops the OOB R² by at least
// 0.05 are declared high-impact.
#pragma once

#include <cstddef>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "ml/dataset.h"
#include "ml/decision_tree.h"

namespace robotune::ml {

struct ForestOptions {
  std::size_t num_trees = 100;
  TreeOptions tree;
  /// Bootstrap resampling (true for RF).  Extra-Trees conventionally fits
  /// each tree on the full sample; `extra_trees()` sets this to false.
  bool bootstrap = true;
  /// Train trees in parallel on the shared pool.
  bool parallel = true;
};

class RandomForest : public Regressor {
 public:
  explicit RandomForest(ForestOptions options = {}, std::uint64_t seed = 1)
      : options_(options), seed_(seed) {}

  /// Standard Extra-Trees configuration: random thresholds, no bootstrap.
  static RandomForest extra_trees(std::size_t num_trees = 100,
                                  std::uint64_t seed = 1);

  void fit(const Dataset& data) override;
  double predict(std::span<const double> x) const override;

  std::size_t num_trees() const noexcept { return trees_.size(); }
  bool trained() const noexcept { return !trees_.empty(); }

  /// Out-of-bag prediction for training row `i`; empty when the row was
  /// in-bag for every tree (rare) or bootstrap is off.
  std::optional<double> oob_prediction(std::size_t i) const;

  /// Out-of-bag R² against the training targets.  Requires bootstrap.
  double oob_r2() const;

  /// OOB R² with the listed feature columns jointly permuted by `perm`
  /// (a permutation of row indices).  This is the inner step of MDA
  /// importance; grouping several columns implements the paper's joint
  /// (collinear) parameters.
  double oob_r2_permuted(std::span<const std::size_t> features,
                         std::span<const std::size_t> perm) const;

  /// Normalized mean-decrease-in-impurity importance (sums to 1).
  /// Exposed for the MDI-vs-MDA ablation bench.
  std::vector<double> mdi_importance() const;

  const Dataset& training_data() const { return *training_data_; }

 private:
  ForestOptions options_;
  std::uint64_t seed_;
  std::vector<DecisionTree> trees_;
  /// in_bag_[t] marks rows sampled into tree t's bootstrap.
  std::vector<std::vector<char>> in_bag_;
  std::shared_ptr<const Dataset> training_data_;
};

}  // namespace robotune::ml
