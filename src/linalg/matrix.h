// Dense row-major matrix and the handful of BLAS-like operations the
// Gaussian-process and optimizer code need.  Deliberately small: this is
// not a general linear-algebra library, it is the exact substrate required
// by src/gp and src/opt.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "common/error.h"

namespace robotune::linalg {

class Matrix {
 public:
  Matrix() = default;

  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  static Matrix identity(std::size_t n) {
    Matrix m(n, n);
    for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
    return m;
  }

  std::size_t rows() const noexcept { return rows_; }
  std::size_t cols() const noexcept { return cols_; }
  bool empty() const noexcept { return data_.empty(); }

  /// Reshapes in place, reusing the existing allocation when it is large
  /// enough.  Element values are unspecified afterwards — for workspace
  /// matrices whose every element the caller overwrites (a fresh
  /// Matrix(rows, cols) would pay a full zero-fill pass per call).
  void resize(std::size_t rows, std::size_t cols) {
    rows_ = rows;
    cols_ = cols;
    data_.resize(rows * cols);
  }

  double& operator()(std::size_t r, std::size_t c) noexcept {
    return data_[r * cols_ + c];
  }
  double operator()(std::size_t r, std::size_t c) const noexcept {
    return data_[r * cols_ + c];
  }

  std::span<double> row(std::size_t r) noexcept {
    return {data_.data() + r * cols_, cols_};
  }
  std::span<const double> row(std::size_t r) const noexcept {
    return {data_.data() + r * cols_, cols_};
  }

  std::span<double> data() noexcept { return data_; }
  std::span<const double> data() const noexcept { return data_; }

  Matrix transposed() const;

  /// this * x  (rows() == result size, cols() == x size).
  std::vector<double> matvec(std::span<const double> x) const;

  /// this^T * x.
  std::vector<double> matvec_transposed(std::span<const double> x) const;

  /// Cache-blocked this * rhs.  Tiles the output columns so each column
  /// panel of `rhs` stays cache-resident across rows; the per-element
  /// accumulation order over k is unchanged (ascending), so the product
  /// is bit-identical to the naive i-k-j loop.
  Matrix operator*(const Matrix& rhs) const;

  /// this * rhs^T without materializing the transpose: out(i,j) is the
  /// dot product of row i of this and row j of rhs — two contiguous
  /// streams, the cache-optimal layout for row-major Gram products.
  /// Accumulation order matches dot(), so the result is bit-identical to
  /// (*this) * rhs.transposed().
  Matrix multiply_transposed(const Matrix& rhs) const;

  void add_diagonal(double value);

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

double dot(std::span<const double> a, std::span<const double> b);
double norm2(std::span<const double> a);

/// a += alpha * b
void axpy(double alpha, std::span<const double> b, std::span<double> a);

/// Lower-triangular Cholesky factor of a symmetric positive-definite
/// matrix.  If factorization fails, retries with exponentially growing
/// diagonal jitter (starting at `jitter`) up to `max_attempts`; throws
/// NumericalError if all attempts fail.  Returns the factor L with
/// A + jitter*I = L L^T.
Matrix cholesky(const Matrix& a, double jitter = 1e-10,
                int max_attempts = 8);

/// Solve L y = b for lower-triangular L.
std::vector<double> solve_lower(const Matrix& l, std::span<const double> b);

/// Allocation-free overload: writes the solution into `y` (same size as
/// `b`; may not alias it).  Identical arithmetic to the vector overload.
void solve_lower(const Matrix& l, std::span<const double> b,
                 std::span<double> y);

/// Solve L^T x = y for lower-triangular L.
std::vector<double> solve_lower_transposed(const Matrix& l,
                                           std::span<const double> y);

/// Allocation-free overload (see solve_lower).
void solve_lower_transposed(const Matrix& l, std::span<const double> y,
                            std::span<double> x);

/// Multi-RHS forward solve: row j of the result solves L y = rhs_rows.row(j).
/// Each right-hand side lives in a *row* (not column) so both the inputs
/// and the solutions are contiguous; the per-RHS arithmetic is exactly
/// solve_lower's, so every row is bit-identical to the single-RHS solve.
Matrix solve_lower_rows(const Matrix& l, const Matrix& rhs_rows);

/// Allocation-free overload: `out` is resized to rhs_rows' shape and every
/// element overwritten.  Identical arithmetic to the returning overload.
void solve_lower_rows(const Matrix& l, const Matrix& rhs_rows, Matrix& out);

/// Multi-RHS backward solve: row j solves L^T x = rhs_rows.row(j).
Matrix solve_lower_transposed_rows(const Matrix& l, const Matrix& rhs_rows);

/// Solve (L L^T) x = b given the Cholesky factor L.
std::vector<double> cholesky_solve(const Matrix& l, std::span<const double> b);

/// log(det(A)) = 2 * sum(log(diag(L))) given the Cholesky factor L.
double log_det_from_cholesky(const Matrix& l);

}  // namespace robotune::linalg
