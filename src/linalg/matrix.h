// Dense row-major matrix and the handful of BLAS-like operations the
// Gaussian-process and optimizer code need.  Deliberately small: this is
// not a general linear-algebra library, it is the exact substrate required
// by src/gp and src/opt.
#pragma once

#include <algorithm>
#include <cstddef>
#include <span>
#include <vector>

#include "common/error.h"

namespace robotune::linalg {

class Matrix {
 public:
  Matrix() = default;

  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), stride_(cols), data_(rows * cols, fill) {}

  static Matrix identity(std::size_t n) {
    Matrix m(n, n);
    for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
    return m;
  }

  std::size_t rows() const noexcept { return rows_; }
  std::size_t cols() const noexcept { return cols_; }
  bool empty() const noexcept { return data_.empty(); }

  /// Reshapes in place, reusing the existing allocation when it is large
  /// enough.  Element values are unspecified afterwards — for workspace
  /// matrices whose every element the caller overwrites (a fresh
  /// Matrix(rows, cols) would pay a full zero-fill pass per call).
  /// Resets the stride: any reserved square capacity is forgotten.
  void resize(std::size_t rows, std::size_t cols) {
    rows_ = rows;
    cols_ = cols;
    stride_ = cols;
    data_.resize(rows * cols);
  }

  double& operator()(std::size_t r, std::size_t c) noexcept {
    return data_[r * stride_ + c];
  }
  double operator()(std::size_t r, std::size_t c) const noexcept {
    return data_[r * stride_ + c];
  }

  std::span<double> row(std::size_t r) noexcept {
    return {data_.data() + r * stride_, cols_};
  }
  std::span<const double> row(std::size_t r) const noexcept {
    return {data_.data() + r * stride_, cols_};
  }

  /// Raw backing storage.  Rows are contiguous only while stride() ==
  /// cols() — true for every matrix that has not taken reserve_square().
  std::span<double> data() noexcept { return data_; }
  std::span<const double> data() const noexcept { return data_; }

  /// Leading dimension of the row-major layout (>= cols()).
  std::size_t stride() const noexcept { return stride_; }

  // ---- square-factor capacity (incremental Cholesky growth) ------------
  //
  // A square matrix can reserve storage so its logical order grows one
  // row/column at a time *in place* — the GP's factor grows per
  // observation without the O(n²) reallocate-and-copy a fresh (n+1)²
  // matrix would cost every add.  The layout keeps stride() fixed at the
  // reserved capacity, so existing elements never move.

  /// Rows/cols the matrix can reach through grow_square() without
  /// reallocating.
  std::size_t square_capacity() const noexcept {
    return stride_ == 0 ? 0 : std::min(stride_, data_.size() / stride_);
  }

  /// Reserves square capacity `cap` (no-op when already reserved).  The
  /// matrix must be square; one reallocate-and-copy re-lays rows out on
  /// the new stride.
  void reserve_square(std::size_t cap);

  /// Grows a square matrix to (n+1)×(n+1) inside reserved capacity.
  /// Returns false (and leaves the matrix unchanged) when capacity is
  /// exhausted.  The new row and column contents are unspecified.
  bool grow_square();

  /// Shrinks a square matrix's logical order to `n` (<= rows()), keeping
  /// the storage and the leading n×n block bit-for-bit intact.
  void shrink_square(std::size_t n);

  Matrix transposed() const;

  /// this * x  (rows() == result size, cols() == x size).
  std::vector<double> matvec(std::span<const double> x) const;

  /// this^T * x.
  std::vector<double> matvec_transposed(std::span<const double> x) const;

  /// Cache-blocked this * rhs.  Tiles the output columns so each column
  /// panel of `rhs` stays cache-resident across rows; the per-element
  /// accumulation order over k is unchanged (ascending), so the product
  /// is bit-identical to the naive i-k-j loop.
  Matrix operator*(const Matrix& rhs) const;

  /// this * rhs^T without materializing the transpose: out(i,j) is the
  /// dot product of row i of this and row j of rhs — two contiguous
  /// streams, the cache-optimal layout for row-major Gram products.
  /// Accumulation order matches dot(), so the result is bit-identical to
  /// (*this) * rhs.transposed().
  Matrix multiply_transposed(const Matrix& rhs) const;

  void add_diagonal(double value);

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::size_t stride_ = 0;  ///< leading dimension, >= cols_
  std::vector<double> data_;
};

double dot(std::span<const double> a, std::span<const double> b);
double norm2(std::span<const double> a);

/// a += alpha * b
void axpy(double alpha, std::span<const double> b, std::span<double> a);

/// Lower-triangular Cholesky factor of a symmetric positive-definite
/// matrix.  If factorization fails, retries with exponentially growing
/// diagonal jitter (starting at `jitter`) up to `max_attempts`; throws
/// NumericalError if all attempts fail.  Returns the factor L with
/// A + jitter*I = L L^T.
Matrix cholesky(const Matrix& a, double jitter = 1e-10,
                int max_attempts = 8);

/// Solve L y = b for lower-triangular L.
std::vector<double> solve_lower(const Matrix& l, std::span<const double> b);

/// Allocation-free overload: writes the solution into `y` (same size as
/// `b`; may not alias it).  Identical arithmetic to the vector overload.
void solve_lower(const Matrix& l, std::span<const double> b,
                 std::span<double> y);

/// Solve L^T x = y for lower-triangular L.
std::vector<double> solve_lower_transposed(const Matrix& l,
                                           std::span<const double> y);

/// Allocation-free overload (see solve_lower).
void solve_lower_transposed(const Matrix& l, std::span<const double> y,
                            std::span<double> x);

/// Multi-RHS forward solve: row j of the result solves L y = rhs_rows.row(j).
/// Each right-hand side lives in a *row* (not column) so both the inputs
/// and the solutions are contiguous; the per-RHS arithmetic is exactly
/// solve_lower's, so every row is bit-identical to the single-RHS solve.
Matrix solve_lower_rows(const Matrix& l, const Matrix& rhs_rows);

/// Allocation-free overload: `out` is resized to rhs_rows' shape and every
/// element overwritten.  Identical arithmetic to the returning overload.
void solve_lower_rows(const Matrix& l, const Matrix& rhs_rows, Matrix& out);

/// Multi-RHS backward solve: row j solves L^T x = rhs_rows.row(j).
Matrix solve_lower_transposed_rows(const Matrix& l, const Matrix& rhs_rows);

/// In-place rank-1 *update* of a lower Cholesky factor: the trailing
/// block of `l` starting at row/column `begin` is replaced by the factor
/// of L33·L33ᵀ + v·vᵀ (the classic c/s-rotation sweep).  `v` has
/// l.rows() − begin entries and is consumed as rotation workspace.
/// Cannot fail for a valid factor and finite v: the updated matrix is
/// positive definite by construction.  O((n − begin)²).
void cholesky_update_rank1(Matrix& l, std::size_t begin, std::span<double> v);

/// In-place rank-1 *downdate*: `l` becomes the factor of L·Lᵀ − v·vᵀ.
/// Throws NumericalError when the downdated matrix is not positive
/// definite — `l` is left partially rotated, so callers needing the
/// strong guarantee downdate a copy and commit on success.  `v` (size
/// l.rows()) is consumed as workspace.  O(n²).
void cholesky_downdate_rank1(Matrix& l, std::span<double> v);

/// Solve (L L^T) x = b given the Cholesky factor L.
std::vector<double> cholesky_solve(const Matrix& l, std::span<const double> b);

/// log(det(A)) = 2 * sum(log(diag(L))) given the Cholesky factor L.
double log_det_from_cholesky(const Matrix& l);

}  // namespace robotune::linalg
