#include "linalg/matrix.h"

#include <algorithm>
#include <cmath>

#include "common/chaos.h"
#include "linalg/simd.h"

namespace robotune::linalg {

Matrix Matrix::transposed() const {
  Matrix t(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < cols_; ++c) {
      t(c, r) = (*this)(r, c);
    }
  }
  return t;
}

std::vector<double> Matrix::matvec(std::span<const double> x) const {
  require(x.size() == cols_, "matvec: dimension mismatch");
  std::vector<double> y(rows_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    const double* row_ptr = data_.data() + r * stride_;
    double sum = 0.0;
    for (std::size_t c = 0; c < cols_; ++c) sum += row_ptr[c] * x[c];
    y[r] = sum;
  }
  return y;
}

std::vector<double> Matrix::matvec_transposed(std::span<const double> x) const {
  require(x.size() == rows_, "matvec_transposed: dimension mismatch");
  std::vector<double> y(cols_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    const double* row_ptr = data_.data() + r * stride_;
    const double xr = x[r];
    for (std::size_t c = 0; c < cols_; ++c) y[c] += row_ptr[c] * xr;
  }
  return y;
}

Matrix Matrix::operator*(const Matrix& rhs) const {
  require(cols_ == rhs.rows_, "matmul: dimension mismatch");
  Matrix out(rows_, rhs.cols_);
  // Column-panel blocking: for each tile of output columns the streamed
  // slice of rhs is n_k * kColTile doubles, small enough to stay in L1/L2
  // across all rows of the output.  Only the j loop is tiled — k remains
  // the innermost accumulation, ascending, so every out(i, j) sums its
  // terms in the same order as the unblocked loop (bit-identical result).
  // The j loop vectorizes 4 output columns per step: lanes are
  // independent outputs, each still accumulating over k in scalar order.
  constexpr std::size_t kColTile = 64;
  for (std::size_t jb = 0; jb < rhs.cols_; jb += kColTile) {
    const std::size_t je = std::min(rhs.cols_, jb + kColTile);
    for (std::size_t i = 0; i < rows_; ++i) {
      double* out_row = out.data_.data() + i * out.stride_;
      for (std::size_t k = 0; k < cols_; ++k) {
        const double aik = (*this)(i, k);
        if (aik == 0.0) continue;
        const double* rhs_row = rhs.data_.data() + k * rhs.stride_;
        std::size_t j = jb;
#if ROBOTUNE_SIMD_ENABLED
        const simd::v4d va = simd::broadcast(aik);
        for (; j + simd::kLanes <= je; j += simd::kLanes) {
          simd::store(out_row + j,
                      simd::load(out_row + j) + va * simd::load(rhs_row + j));
        }
#endif
        for (; j < je; ++j) {
          out_row[j] += aik * rhs_row[j];
        }
      }
    }
  }
  return out;
}

void Matrix::reserve_square(std::size_t cap) {
  require(rows_ == cols_, "reserve_square: matrix must be square");
  if (cap <= square_capacity()) return;
  std::vector<double> grown(cap * cap, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    std::copy_n(data_.data() + r * stride_, cols_, grown.data() + r * cap);
  }
  data_ = std::move(grown);
  stride_ = cap;
}

bool Matrix::grow_square() {
  require(rows_ == cols_, "grow_square: matrix must be square");
  if (rows_ + 1 > square_capacity()) return false;
  ++rows_;
  ++cols_;
  return true;
}

void Matrix::shrink_square(std::size_t n) {
  require(rows_ == cols_, "shrink_square: matrix must be square");
  require(n <= rows_, "shrink_square: cannot grow");
  rows_ = n;
  cols_ = n;
}

Matrix Matrix::multiply_transposed(const Matrix& rhs) const {
  require(cols_ == rhs.cols_, "multiply_transposed: dimension mismatch");
  // Gram fast path (A Aᵀ with rhs == this): only the lower triangle is
  // computed; out(i,j) and out(j,i) are the same ascending-order dot, so
  // mirroring is bit-identical to computing both.
  const bool gram = this == &rhs;
  Matrix out(rows_, rhs.rows_);
  const std::size_t depth = cols_;
  for (std::size_t i = 0; i < rows_; ++i) {
    const std::span<const double> a = row(i);
    const std::size_t j_end = gram ? i + 1 : rhs.rows_;
    std::size_t j = 0;
#if ROBOTUNE_SIMD_ENABLED
    // Four output columns per sweep: each lane is an independent output
    // whose reduction over k stays in ascending scalar order, so the
    // result is bit-identical to the naive dot() loop (including the
    // unblocked scalar tail below).
    for (; j + simd::kLanes <= j_end; j += simd::kLanes) {
      const double* b0 = rhs.data_.data() + j * rhs.stride_;
      const double* b1 = rhs.data_.data() + (j + 1) * rhs.stride_;
      const double* b2 = rhs.data_.data() + (j + 2) * rhs.stride_;
      const double* b3 = rhs.data_.data() + (j + 3) * rhs.stride_;
      simd::v4d acc = simd::broadcast(0.0);
      for (std::size_t k = 0; k < depth; ++k) {
        acc = acc + simd::broadcast(a[k]) * simd::gather(b0, b1, b2, b3, k);
      }
      simd::store(&out(i, j), acc);
    }
#endif
    for (; j < j_end; ++j) out(i, j) = dot(a, rhs.row(j));
  }
  if (gram) {
    for (std::size_t i = 0; i < rows_; ++i) {
      for (std::size_t j = i + 1; j < rows_; ++j) out(i, j) = out(j, i);
    }
  }
  return out;
}

void Matrix::add_diagonal(double value) {
  const std::size_t n = std::min(rows_, cols_);
  for (std::size_t i = 0; i < n; ++i) (*this)(i, i) += value;
}

double dot(std::span<const double> a, std::span<const double> b) {
  require(a.size() == b.size(), "dot: dimension mismatch");
  double sum = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) sum += a[i] * b[i];
  return sum;
}

double norm2(std::span<const double> a) { return std::sqrt(dot(a, a)); }

void axpy(double alpha, std::span<const double> b, std::span<double> a) {
  require(a.size() == b.size(), "axpy: dimension mismatch");
  for (std::size_t i = 0; i < a.size(); ++i) a[i] += alpha * b[i];
}

namespace {

// In-place attempt; returns false if a non-positive pivot is hit.  `l`
// must already be an n x n matrix — it is wiped and reused across jitter
// attempts so the retry loop performs no per-attempt allocations.
bool try_cholesky(const Matrix& a, double jitter, Matrix& l) {
  const std::size_t n = a.rows();
  std::ranges::fill(l.data(), 0.0);
  for (std::size_t j = 0; j < n; ++j) {
    double diag = a(j, j) + jitter;
    for (std::size_t k = 0; k < j; ++k) diag -= l(j, k) * l(j, k);
    if (!(diag > 0.0) || !std::isfinite(diag)) return false;
    const double ljj = std::sqrt(diag);
    l(j, j) = ljj;
    for (std::size_t i = j + 1; i < n; ++i) {
      double sum = a(i, j);
      for (std::size_t k = 0; k < j; ++k) sum -= l(i, k) * l(j, k);
      l(i, j) = sum / ljj;
    }
  }
  return true;
}

}  // namespace

Matrix cholesky(const Matrix& a, double jitter, int max_attempts) {
  require(a.rows() == a.cols(), "cholesky: matrix must be square");
  // Chaos site: a forced failure is indistinguishable from a genuinely
  // non-PD matrix, so callers exercise exactly their real recovery path.
  if (chaos::fail(chaos::Site::kCholesky)) {
    throw NumericalError("cholesky: matrix not positive definite (chaos)");
  }
  // One workspace shared by every jitter attempt: a failed attempt leaves
  // garbage behind, but try_cholesky wipes the factor before writing, so
  // the successful attempt's output is identical to a fresh allocation.
  Matrix l(a.rows(), a.rows());
  if (try_cholesky(a, 0.0, l)) return l;
  double j = jitter;
  for (int attempt = 0; attempt < max_attempts; ++attempt, j *= 10.0) {
    if (try_cholesky(a, j, l)) return l;
  }
  throw NumericalError("cholesky: matrix not positive definite after jitter");
}

void solve_lower(const Matrix& l, std::span<const double> b,
                 std::span<double> y) {
  const std::size_t n = l.rows();
  require(b.size() == n && y.size() == n, "solve_lower: dimension mismatch");
  for (std::size_t i = 0; i < n; ++i) {
    double sum = b[i];
    for (std::size_t k = 0; k < i; ++k) sum -= l(i, k) * y[k];
    y[i] = sum / l(i, i);
  }
}

std::vector<double> solve_lower(const Matrix& l, std::span<const double> b) {
  std::vector<double> y(l.rows());
  solve_lower(l, b, y);
  return y;
}

void solve_lower_transposed(const Matrix& l, std::span<const double> y,
                            std::span<double> x) {
  const std::size_t n = l.rows();
  require(y.size() == n && x.size() == n,
          "solve_lower_transposed: dimension mismatch");
  for (std::size_t ii = n; ii-- > 0;) {
    double sum = y[ii];
    for (std::size_t k = ii + 1; k < n; ++k) sum -= l(k, ii) * x[k];
    x[ii] = sum / l(ii, ii);
  }
}

std::vector<double> solve_lower_transposed(const Matrix& l,
                                           std::span<const double> y) {
  std::vector<double> x(l.rows());
  solve_lower_transposed(l, y, x);
  return x;
}

Matrix solve_lower_rows(const Matrix& l, const Matrix& rhs_rows) {
  Matrix out;
  solve_lower_rows(l, rhs_rows, out);
  return out;
}

#if ROBOTUNE_SIMD_ENABLED

namespace {

// Solves four independent triangular systems at once.  The systems are
// interleaved into an n×4 panel so the inner k loop reads one contiguous
// 4-vector per step; lane r runs exactly solve_lower's scalar recurrence
// (ascending k, sum-then-divide), so each solution row is bit-identical
// to the single-RHS solve.
void solve_lower_panel4(const Matrix& l,
                        std::span<const double> b0, std::span<const double> b1,
                        std::span<const double> b2, std::span<const double> b3,
                        std::span<double> y0, std::span<double> y1,
                        std::span<double> y2, std::span<double> y3,
                        std::vector<double>& panel) {
  const std::size_t n = l.rows();
  panel.resize(n * simd::kLanes);
  for (std::size_t i = 0; i < n; ++i) {
    simd::v4d sum = simd::v4d{b0[i], b1[i], b2[i], b3[i]};
    for (std::size_t k = 0; k < i; ++k) {
      sum -= simd::broadcast(l(i, k)) * simd::load(&panel[k * simd::kLanes]);
    }
    sum /= simd::broadcast(l(i, i));
    simd::store(&panel[i * simd::kLanes], sum);
  }
  for (std::size_t i = 0; i < n; ++i) {
    y0[i] = panel[i * simd::kLanes + 0];
    y1[i] = panel[i * simd::kLanes + 1];
    y2[i] = panel[i * simd::kLanes + 2];
    y3[i] = panel[i * simd::kLanes + 3];
  }
}

// Backward-substitution twin of solve_lower_panel4 (lane r runs
// solve_lower_transposed's recurrence: descending ii, ascending k).
void solve_lower_transposed_panel4(
    const Matrix& l, std::span<const double> b0, std::span<const double> b1,
    std::span<const double> b2, std::span<const double> b3,
    std::span<double> y0, std::span<double> y1, std::span<double> y2,
    std::span<double> y3, std::vector<double>& panel) {
  const std::size_t n = l.rows();
  panel.resize(n * simd::kLanes);
  for (std::size_t ii = n; ii-- > 0;) {
    simd::v4d sum = simd::v4d{b0[ii], b1[ii], b2[ii], b3[ii]};
    for (std::size_t k = ii + 1; k < n; ++k) {
      sum -= simd::broadcast(l(k, ii)) * simd::load(&panel[k * simd::kLanes]);
    }
    sum /= simd::broadcast(l(ii, ii));
    simd::store(&panel[ii * simd::kLanes], sum);
  }
  for (std::size_t i = 0; i < n; ++i) {
    y0[i] = panel[i * simd::kLanes + 0];
    y1[i] = panel[i * simd::kLanes + 1];
    y2[i] = panel[i * simd::kLanes + 2];
    y3[i] = panel[i * simd::kLanes + 3];
  }
}

}  // namespace

#endif  // ROBOTUNE_SIMD_ENABLED

void solve_lower_rows(const Matrix& l, const Matrix& rhs_rows, Matrix& out) {
  require(rhs_rows.cols() == l.rows(), "solve_lower_rows: dimension mismatch");
  out.resize(rhs_rows.rows(), rhs_rows.cols());
  std::size_t j = 0;
#if ROBOTUNE_SIMD_ENABLED
  std::vector<double> panel;
  for (; j + simd::kLanes <= rhs_rows.rows(); j += simd::kLanes) {
    solve_lower_panel4(l, rhs_rows.row(j), rhs_rows.row(j + 1),
                       rhs_rows.row(j + 2), rhs_rows.row(j + 3), out.row(j),
                       out.row(j + 1), out.row(j + 2), out.row(j + 3), panel);
  }
#endif
  for (; j < rhs_rows.rows(); ++j) {
    solve_lower(l, rhs_rows.row(j), out.row(j));
  }
}

Matrix solve_lower_transposed_rows(const Matrix& l, const Matrix& rhs_rows) {
  require(rhs_rows.cols() == l.rows(),
          "solve_lower_transposed_rows: dimension mismatch");
  Matrix out(rhs_rows.rows(), rhs_rows.cols());
  std::size_t j = 0;
#if ROBOTUNE_SIMD_ENABLED
  std::vector<double> panel;
  for (; j + simd::kLanes <= rhs_rows.rows(); j += simd::kLanes) {
    solve_lower_transposed_panel4(
        l, rhs_rows.row(j), rhs_rows.row(j + 1), rhs_rows.row(j + 2),
        rhs_rows.row(j + 3), out.row(j), out.row(j + 1), out.row(j + 2),
        out.row(j + 3), panel);
  }
#endif
  for (; j < rhs_rows.rows(); ++j) {
    solve_lower_transposed(l, rhs_rows.row(j), out.row(j));
  }
  return out;
}

void cholesky_update_rank1(Matrix& l, std::size_t begin, std::span<double> v) {
  const std::size_t n = l.rows();
  require(l.rows() == l.cols(), "cholesky_update_rank1: factor must be square");
  require(begin <= n && v.size() == n - begin,
          "cholesky_update_rank1: workspace size mismatch");
  // Givens-style sweep (LINPACK dchud): rotate v into the factor one
  // column at a time.  Every pivot sqrt(l² + v²) is positive, so a
  // positive update cannot fail on finite input.
  for (std::size_t k = begin; k < n; ++k) {
    const double lkk = l(k, k);
    const double vk = v[k - begin];
    const double r = std::sqrt(lkk * lkk + vk * vk);
    const double c = r / lkk;
    const double s = vk / lkk;
    l(k, k) = r;
    for (std::size_t i = k + 1; i < n; ++i) {
      l(i, k) = (l(i, k) + s * v[i - begin]) / c;
      v[i - begin] = c * v[i - begin] - s * l(i, k);
    }
  }
}

void cholesky_downdate_rank1(Matrix& l, std::span<double> v) {
  const std::size_t n = l.rows();
  require(l.rows() == l.cols(),
          "cholesky_downdate_rank1: factor must be square");
  require(v.size() == n, "cholesky_downdate_rank1: workspace size mismatch");
  for (std::size_t k = 0; k < n; ++k) {
    const double lkk = l(k, k);
    const double d2 = lkk * lkk - v[k] * v[k];
    if (!(d2 > 0.0) || !std::isfinite(d2)) {
      throw NumericalError(
          "cholesky_downdate_rank1: downdated matrix not positive definite");
    }
    const double r = std::sqrt(d2);
    const double c = r / lkk;
    const double s = v[k] / lkk;
    l(k, k) = r;
    for (std::size_t i = k + 1; i < n; ++i) {
      l(i, k) = (l(i, k) - s * v[i]) / c;
      v[i] = c * v[i] - s * l(i, k);
    }
  }
}

std::vector<double> cholesky_solve(const Matrix& l,
                                   std::span<const double> b) {
  return solve_lower_transposed(l, solve_lower(l, b));
}

double log_det_from_cholesky(const Matrix& l) {
  double sum = 0.0;
  for (std::size_t i = 0; i < l.rows(); ++i) sum += std::log(l(i, i));
  return 2.0 * sum;
}

}  // namespace robotune::linalg
