#include "linalg/matrix.h"

#include <algorithm>
#include <cmath>

#include "common/chaos.h"

namespace robotune::linalg {

Matrix Matrix::transposed() const {
  Matrix t(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < cols_; ++c) {
      t(c, r) = (*this)(r, c);
    }
  }
  return t;
}

std::vector<double> Matrix::matvec(std::span<const double> x) const {
  require(x.size() == cols_, "matvec: dimension mismatch");
  std::vector<double> y(rows_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    const double* row_ptr = data_.data() + r * cols_;
    double sum = 0.0;
    for (std::size_t c = 0; c < cols_; ++c) sum += row_ptr[c] * x[c];
    y[r] = sum;
  }
  return y;
}

std::vector<double> Matrix::matvec_transposed(std::span<const double> x) const {
  require(x.size() == rows_, "matvec_transposed: dimension mismatch");
  std::vector<double> y(cols_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    const double* row_ptr = data_.data() + r * cols_;
    const double xr = x[r];
    for (std::size_t c = 0; c < cols_; ++c) y[c] += row_ptr[c] * xr;
  }
  return y;
}

Matrix Matrix::operator*(const Matrix& rhs) const {
  require(cols_ == rhs.rows_, "matmul: dimension mismatch");
  Matrix out(rows_, rhs.cols_);
  // Column-panel blocking: for each tile of output columns the streamed
  // slice of rhs is n_k * kColTile doubles, small enough to stay in L1/L2
  // across all rows of the output.  Only the j loop is tiled — k remains
  // the innermost accumulation, ascending, so every out(i, j) sums its
  // terms in the same order as the unblocked loop (bit-identical result).
  constexpr std::size_t kColTile = 64;
  for (std::size_t jb = 0; jb < rhs.cols_; jb += kColTile) {
    const std::size_t je = std::min(rhs.cols_, jb + kColTile);
    for (std::size_t i = 0; i < rows_; ++i) {
      double* out_row = out.data_.data() + i * out.cols_;
      for (std::size_t k = 0; k < cols_; ++k) {
        const double aik = (*this)(i, k);
        if (aik == 0.0) continue;
        const double* rhs_row = rhs.data_.data() + k * rhs.cols_;
        for (std::size_t j = jb; j < je; ++j) {
          out_row[j] += aik * rhs_row[j];
        }
      }
    }
  }
  return out;
}

Matrix Matrix::multiply_transposed(const Matrix& rhs) const {
  require(cols_ == rhs.cols_, "multiply_transposed: dimension mismatch");
  Matrix out(rows_, rhs.rows_);
  for (std::size_t i = 0; i < rows_; ++i) {
    const std::span<const double> a = row(i);
    for (std::size_t j = 0; j < rhs.rows_; ++j) {
      out(i, j) = dot(a, rhs.row(j));
    }
  }
  return out;
}

void Matrix::add_diagonal(double value) {
  const std::size_t n = std::min(rows_, cols_);
  for (std::size_t i = 0; i < n; ++i) (*this)(i, i) += value;
}

double dot(std::span<const double> a, std::span<const double> b) {
  require(a.size() == b.size(), "dot: dimension mismatch");
  double sum = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) sum += a[i] * b[i];
  return sum;
}

double norm2(std::span<const double> a) { return std::sqrt(dot(a, a)); }

void axpy(double alpha, std::span<const double> b, std::span<double> a) {
  require(a.size() == b.size(), "axpy: dimension mismatch");
  for (std::size_t i = 0; i < a.size(); ++i) a[i] += alpha * b[i];
}

namespace {

// In-place attempt; returns false if a non-positive pivot is hit.  `l`
// must already be an n x n matrix — it is wiped and reused across jitter
// attempts so the retry loop performs no per-attempt allocations.
bool try_cholesky(const Matrix& a, double jitter, Matrix& l) {
  const std::size_t n = a.rows();
  std::ranges::fill(l.data(), 0.0);
  for (std::size_t j = 0; j < n; ++j) {
    double diag = a(j, j) + jitter;
    for (std::size_t k = 0; k < j; ++k) diag -= l(j, k) * l(j, k);
    if (!(diag > 0.0) || !std::isfinite(diag)) return false;
    const double ljj = std::sqrt(diag);
    l(j, j) = ljj;
    for (std::size_t i = j + 1; i < n; ++i) {
      double sum = a(i, j);
      for (std::size_t k = 0; k < j; ++k) sum -= l(i, k) * l(j, k);
      l(i, j) = sum / ljj;
    }
  }
  return true;
}

}  // namespace

Matrix cholesky(const Matrix& a, double jitter, int max_attempts) {
  require(a.rows() == a.cols(), "cholesky: matrix must be square");
  // Chaos site: a forced failure is indistinguishable from a genuinely
  // non-PD matrix, so callers exercise exactly their real recovery path.
  if (chaos::fail(chaos::Site::kCholesky)) {
    throw NumericalError("cholesky: matrix not positive definite (chaos)");
  }
  // One workspace shared by every jitter attempt: a failed attempt leaves
  // garbage behind, but try_cholesky wipes the factor before writing, so
  // the successful attempt's output is identical to a fresh allocation.
  Matrix l(a.rows(), a.rows());
  if (try_cholesky(a, 0.0, l)) return l;
  double j = jitter;
  for (int attempt = 0; attempt < max_attempts; ++attempt, j *= 10.0) {
    if (try_cholesky(a, j, l)) return l;
  }
  throw NumericalError("cholesky: matrix not positive definite after jitter");
}

void solve_lower(const Matrix& l, std::span<const double> b,
                 std::span<double> y) {
  const std::size_t n = l.rows();
  require(b.size() == n && y.size() == n, "solve_lower: dimension mismatch");
  for (std::size_t i = 0; i < n; ++i) {
    double sum = b[i];
    for (std::size_t k = 0; k < i; ++k) sum -= l(i, k) * y[k];
    y[i] = sum / l(i, i);
  }
}

std::vector<double> solve_lower(const Matrix& l, std::span<const double> b) {
  std::vector<double> y(l.rows());
  solve_lower(l, b, y);
  return y;
}

void solve_lower_transposed(const Matrix& l, std::span<const double> y,
                            std::span<double> x) {
  const std::size_t n = l.rows();
  require(y.size() == n && x.size() == n,
          "solve_lower_transposed: dimension mismatch");
  for (std::size_t ii = n; ii-- > 0;) {
    double sum = y[ii];
    for (std::size_t k = ii + 1; k < n; ++k) sum -= l(k, ii) * x[k];
    x[ii] = sum / l(ii, ii);
  }
}

std::vector<double> solve_lower_transposed(const Matrix& l,
                                           std::span<const double> y) {
  std::vector<double> x(l.rows());
  solve_lower_transposed(l, y, x);
  return x;
}

Matrix solve_lower_rows(const Matrix& l, const Matrix& rhs_rows) {
  Matrix out;
  solve_lower_rows(l, rhs_rows, out);
  return out;
}

void solve_lower_rows(const Matrix& l, const Matrix& rhs_rows, Matrix& out) {
  require(rhs_rows.cols() == l.rows(), "solve_lower_rows: dimension mismatch");
  out.resize(rhs_rows.rows(), rhs_rows.cols());
  for (std::size_t j = 0; j < rhs_rows.rows(); ++j) {
    solve_lower(l, rhs_rows.row(j), out.row(j));
  }
}

Matrix solve_lower_transposed_rows(const Matrix& l, const Matrix& rhs_rows) {
  require(rhs_rows.cols() == l.rows(),
          "solve_lower_transposed_rows: dimension mismatch");
  Matrix out(rhs_rows.rows(), rhs_rows.cols());
  for (std::size_t j = 0; j < rhs_rows.rows(); ++j) {
    solve_lower_transposed(l, rhs_rows.row(j), out.row(j));
  }
  return out;
}

std::vector<double> cholesky_solve(const Matrix& l,
                                   std::span<const double> b) {
  return solve_lower_transposed(l, solve_lower(l, b));
}

double log_det_from_cholesky(const Matrix& l) {
  double sum = 0.0;
  for (std::size_t i = 0; i < l.rows(); ++i) sum += std::log(l(i, i));
  return 2.0 * sum;
}

}  // namespace robotune::linalg
