// Minimal 4-lane double SIMD built on the GCC/Clang vector extension —
// no immintrin, no runtime dispatch, portable to any target the
// toolchain supports (the compiler lowers 32-byte vectors to whatever
// the ISA offers, two 16-byte ops on bare SSE2).
//
// Bit-identity discipline (DESIGN.md §15): lanes are only ever mapped to
// *independent outputs* — four output columns of a blocked multiply,
// four right-hand sides of a triangular solve, four kernel-matrix
// entries.  Each output's accumulation order over the reduction index is
// exactly the scalar loop's (ascending), and transcendental tails
// (sqrt/exp) run through scalar libm per lane, so every result is
// bit-identical to the scalar reference at every problem size.  What is
// forbidden: vectorizing *within* a dot product or distance sum, which
// would reassociate the reduction.
//
// Define ROBOTUNE_NO_SIMD to force the scalar fallbacks everywhere (the
// bit-identity tests compare the two paths).
#pragma once

#include <cstddef>
#include <cstring>

#if defined(__GNUC__) && !defined(ROBOTUNE_NO_SIMD)
#define ROBOTUNE_SIMD_ENABLED 1
#else
#define ROBOTUNE_SIMD_ENABLED 0
#endif

namespace robotune::linalg::simd {

/// Lanes per vector; callers peel scalar tails of size() % kLanes.
inline constexpr std::size_t kLanes = 4;

#if ROBOTUNE_SIMD_ENABLED

inline constexpr bool kEnabled = true;

/// Four doubles.  Alignment is pinned to alignof(double) so loads and
/// stores through arbitrary double* positions are well-defined.
typedef double v4d __attribute__((vector_size(32), aligned(8)));

inline v4d load(const double* p) noexcept {
  v4d v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

inline void store(double* p, v4d v) noexcept { std::memcpy(p, &v, sizeof(v)); }

inline v4d broadcast(double x) noexcept { return v4d{x, x, x, x}; }

/// Gathers one element from each of four strided rows.
inline v4d gather(const double* p0, const double* p1, const double* p2,
                  const double* p3, std::size_t i) noexcept {
  return v4d{p0[i], p1[i], p2[i], p3[i]};
}

#else  // ROBOTUNE_SIMD_ENABLED

inline constexpr bool kEnabled = false;

#endif  // ROBOTUNE_SIMD_ENABLED

}  // namespace robotune::linalg::simd
