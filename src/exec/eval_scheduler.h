// Parallel batch-evaluation scheduler: dispatches groups of configuration
// evaluations onto a thread pool with *deterministic* results.
//
// A production tuning service fronting a real cluster launches several
// trial runs concurrently (OnlineTune, Tuneful); the paper's Algorithm 1
// evaluates one configuration at a time.  This subsystem bridges the two:
// tuners hand the scheduler a whole round — a GA generation, a DDS sample
// set, a q-point BO batch — and get the outcomes back in canonical
// (submission) order.
//
// The determinism contract, which the tier-1 parallel_determinism suite
// enforces:
//  * every evaluation `i` of a session runs on a private fork of the
//    objective whose RNG stream (and therefore fault-injector stream) is
//    derived from (session_seed, eval_index) — see
//    sparksim::derive_eval_seed — so its outcome is a pure function of
//    the session seed and its index;
//  * outcomes are returned, and fork counters merged, in eval-index
//    order, so downstream bookkeeping (guard medians, incumbents, search
//    cost) never sees completion order;
//  * completion hooks fire in completion order (that is the point: the
//    session journal records what actually finished before a crash), but
//    each completion carries its canonical index so resume can replay in
//    order.
// Consequence: results are bit-identical for any `parallelism`, 1
// included.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/thread_pool.h"
#include "sparksim/objective.h"

namespace robotune::exec {

/// Early-stop policy the scheduler races in-flight evaluations under.
enum class RacingMode {
  kOff,      ///< no racing: every run goes to completion (or guard cap)
  kMedian,   ///< kill when partial time projects past the guard threshold
  kHalving   ///< successive-halving rungs at 25/50/75% progress
};

/// Stable, unique label per mode ("off", "median", "halving").
std::string to_string(RacingMode mode);
/// Inverse of to_string; returns false for unrecognized labels.
bool racing_mode_from_string(const std::string& label, RacingMode& out);

/// Racing / deadline policy of a scheduler.  Everything is keyed on
/// *simulated* time and the frozen per-batch guard threshold — the rules
/// are pure functions of one evaluation's own progress, with no shared
/// racer state, so kills are bit-identical at any worker count and
/// resume never has to reconstruct racer internals.
struct RacingOptions {
  RacingMode mode = RacingMode::kOff;
  /// Per-evaluation simulated-time deadline, checked at stage
  /// boundaries, applied to each attempt.  <= 0 disables the deadline.
  double deadline_s = 0.0;
  /// Median rule: never kill before this fraction of stages completed
  /// (early progress is too noisy to project from).
  double min_progress = 0.2;
  /// Median rule: kill when sim_elapsed > threshold x fraction x slack —
  /// i.e. the run's projected total time dominates the frozen guard
  /// threshold by this factor.
  double dominance_slack = 1.25;
  /// Halving: kill at rung r (of 25/50/75% progress) when
  /// sim_elapsed > threshold x r x rung_margin.
  double rung_margin = 1.1;

  bool active() const noexcept {
    return mode != RacingMode::kOff || deadline_s > 0.0;
  }
};

/// Stable signature of a racing configuration, journaled with the
/// session ("off" when inactive) so resume can refuse a cross-mode
/// restart — a journal produced under one racing policy replays
/// different evaluations than another policy would have produced.
std::string racing_signature(const RacingOptions& racing);

/// One evaluation of a batch: the full-space unit vector and the guard
/// threshold frozen at submission time.  Freezing per batch (instead of
/// per evaluation) is what makes a round's outcomes independent of
/// completion order: every evaluation of the round sees the guard state
/// from before the round.
struct EvalRequest {
  std::vector<double> unit;
  double stop_threshold_s = 0.0;
};

/// A finished evaluation as reported to the completion hook.
struct CompletedEval {
  std::uint64_t eval_index = 0;  ///< canonical index within the session
  std::size_t batch_slot = 0;    ///< position within the submitted batch
  const EvalRequest* request = nullptr;
  const sparksim::EvalOutcome* outcome = nullptr;
};

struct SchedulerOptions {
  /// Concurrent evaluations per batch; 0 = hardware_concurrency.  The
  /// value changes wall-clock time only, never results.
  int parallelism = 1;
  /// Pool to run on; nullptr = a private pool sized to `parallelism`
  /// (created lazily, only when parallelism > 1).
  ThreadPool* pool = nullptr;
  /// Wall-clock seconds slept per simulated cost second of each
  /// evaluation (0 = off).  Emulates real cluster-run latency for
  /// scaling studies (bench/fig_batch_scaling): the sleep happens on the
  /// worker, so it parallelizes exactly like a real trial run would,
  /// without perturbing any result.  Killed evaluations sleep only their
  /// partial cost — the racer's refund is real wall-clock time.
  double emulate_latency_per_cost_s = 0.0;
  /// Deadline + racing early-stop policy (default: off — byte-identical
  /// to a scheduler without the racing layer).
  RacingOptions racing;
};

class EvalScheduler {
 public:
  explicit EvalScheduler(SchedulerOptions options = {});

  EvalScheduler(const EvalScheduler&) = delete;
  EvalScheduler& operator=(const EvalScheduler&) = delete;

  /// Called once per finished evaluation, in completion order, serialized
  /// under an internal mutex (the hook itself need not be thread-safe).
  /// The pointers are valid only for the duration of the call.
  using CompletionHook = std::function<void(const CompletedEval&)>;

  /// Evaluates `requests` as one batch.  Evaluation i of the batch gets
  /// session-wide index `first_eval_index + i` and runs on
  /// `objective.fork_for_eval(index)`; outcomes come back in request
  /// order and fork counters merge into `objective` in the same order.
  /// An exception thrown by an evaluation propagates (lowest batch slot
  /// wins) after the whole batch has drained, so `objective` is never
  /// left with workers still writing to forks.
  std::vector<sparksim::EvalOutcome> run_batch(
      sparksim::SparkObjective& objective,
      const std::vector<EvalRequest>& requests,
      std::uint64_t first_eval_index,
      const CompletionHook& on_complete = nullptr);

  /// Effective worker count (>= 1).
  int parallelism() const noexcept { return parallelism_; }

  /// The racing policy this scheduler runs batches under.
  const RacingOptions& racing() const noexcept { return options_.racing; }

 private:
  ThreadPool& pool();

  SchedulerOptions options_;
  int parallelism_ = 1;
  std::unique_ptr<ThreadPool> owned_pool_;
};

}  // namespace robotune::exec
