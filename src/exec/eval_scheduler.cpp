#include "exec/eval_scheduler.h"

#include <algorithm>
#include <chrono>
#include <mutex>
#include <sstream>
#include <thread>

#include "common/error.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace robotune::exec {

std::string to_string(RacingMode mode) {
  // Exhaustive over the enum: a new mode without a label is a -Wswitch
  // warning, which the -Werror CI build turns into a failure.
  switch (mode) {
    case RacingMode::kOff:
      return "off";
    case RacingMode::kMedian:
      return "median";
    case RacingMode::kHalving:
      return "halving";
  }
  return "unknown";
}

bool racing_mode_from_string(const std::string& label, RacingMode& out) {
  for (const RacingMode mode :
       {RacingMode::kOff, RacingMode::kMedian, RacingMode::kHalving}) {
    if (label == to_string(mode)) {
      out = mode;
      return true;
    }
  }
  return false;
}

std::string racing_signature(const RacingOptions& racing) {
  if (!racing.active()) return "off";
  std::string sig = to_string(racing.mode);
  if (racing.deadline_s > 0.0) {
    // One whitespace-free token: the journal stores the signature as a
    // single field of the `racing` record.
    std::ostringstream os;
    os.precision(17);
    os << ",deadline=" << racing.deadline_s;
    sig += os.str();
  }
  return sig;
}

EvalScheduler::EvalScheduler(SchedulerOptions options) : options_(options) {
  parallelism_ =
      options_.parallelism > 0
          ? options_.parallelism
          : static_cast<int>(std::max<unsigned>(
                1, std::thread::hardware_concurrency()));
  if (options_.pool != nullptr) {
    // An external pool caps concurrency at its own worker count.
    parallelism_ =
        std::min(parallelism_, static_cast<int>(options_.pool->size()));
    parallelism_ = std::max(parallelism_, 1);
  }
}

ThreadPool& EvalScheduler::pool() {
  if (options_.pool != nullptr) return *options_.pool;
  if (!owned_pool_) {
    owned_pool_ = std::make_unique<ThreadPool>(
        static_cast<std::size_t>(parallelism_));
  }
  return *owned_pool_;
}

std::vector<sparksim::EvalOutcome> EvalScheduler::run_batch(
    sparksim::SparkObjective& objective,
    const std::vector<EvalRequest>& requests,
    std::uint64_t first_eval_index, const CompletionHook& on_complete) {
  const std::size_t n = requests.size();
  std::vector<sparksim::EvalOutcome> outcomes(n);
  if (n == 0) return outcomes;

  // Batch shape is decided by the tuner, never by the worker count, so
  // these are logical metrics; the effective parallelism is runtime.
  obs::count("exec.batches");
  obs::count("exec.evals_dispatched", n);
  obs::set_gauge("runtime.exec.parallelism",
                 static_cast<double>(parallelism_));
  obs::Span batch_span("eval_batch", "exec");
  batch_span.arg("size", static_cast<std::uint64_t>(n));
  batch_span.arg("first_eval_index", first_eval_index);

  // Every evaluation runs on its own fork: private index-derived RNG
  // stream, private counters.  The parent objective is read-only until
  // the canonical-order merge below.
  std::vector<sparksim::SparkObjective> forks;
  forks.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    forks.push_back(objective.fork_for_eval(first_eval_index + i));
  }

  // Racing / deadline watchdog.  One cancellation token per evaluation,
  // allocated up front so workers never observe a reallocation.  The
  // watcher runs synchronously at the run's own stage boundaries and its
  // rules are pure functions of (frozen batch threshold, the run's own
  // simulated progress) — no shared racer state, no wall clock — so a
  // kill decision is identical at any worker count and needs no racer
  // state journaled for resume.
  const RacingOptions& racing = options_.racing;
  const bool racing_active = racing.active();
  std::vector<sparksim::CancellationToken> tokens(racing_active ? n : 0);

  const auto emulate_latency = [this](const sparksim::EvalOutcome& out) {
    if (options_.emulate_latency_per_cost_s <= 0.0) return;
    std::this_thread::sleep_for(std::chrono::duration<double>(
        out.cost_s * options_.emulate_latency_per_cost_s));
  };

  // Per-evaluation span with eval-index attribution; on the parallel
  // path it runs on the worker thread, so the exported timeline shows
  // which worker ran which evaluation.
  const auto traced_evaluate = [&](std::size_t i) {
    obs::Span span("eval", "exec");
    span.arg("eval_index", first_eval_index + i);
    span.arg("batch_slot", static_cast<std::uint64_t>(i));
    sparksim::EvalLifecycle lifecycle;
    if (racing_active) {
      sparksim::CancellationToken* token = &tokens[i];
      const double threshold = requests[i].stop_threshold_s;
      lifecycle.token = token;
      lifecycle.chaos_index = first_eval_index + i;
      lifecycle.progress = [&racing, threshold,
                            token](const sparksim::StageProgress& p) {
        // Per-attempt simulated-time deadline.
        if (racing.deadline_s > 0.0 &&
            p.sim_elapsed_s > racing.deadline_s) {
          token->request(sparksim::KillReason::kDeadline);
        }
        if (threshold <= 0.0 || p.fraction <= 0.0) return;
        if (racing.mode == RacingMode::kMedian) {
          // Projected dominance: with fraction f of stages done in t
          // simulated seconds, the projected total t/f already dominates
          // the frozen guard threshold once t > threshold * f * slack.
          // min_progress keeps the projection from firing on the noisy
          // first stages.
          if (p.fraction >= racing.min_progress &&
              p.sim_elapsed_s >
                  threshold * p.fraction * racing.dominance_slack) {
            token->request(sparksim::KillReason::kMedianRule);
          }
        } else if (racing.mode == RacingMode::kHalving) {
          // Successive halving: at each rung (25/50/75% of stages) the
          // run must have spent no more than its pro-rated share of the
          // threshold, with a small margin.
          double rung = 0.0;
          for (const double r : {0.25, 0.5, 0.75}) {
            if (p.fraction >= r) rung = r;
          }
          if (rung > 0.0 &&
              p.sim_elapsed_s > threshold * rung * racing.rung_margin) {
            token->request(sparksim::KillReason::kHalvingRung);
          }
        }
      };
    }
    outcomes[i] =
        forks[i].evaluate(requests[i].unit, requests[i].stop_threshold_s,
                          racing_active ? &lifecycle : nullptr);
    if (outcomes[i].status == sparksim::RunStatus::kKilled) {
      obs::count("exec.racing.kills");
      obs::count(std::string("exec.racing.kills.") +
                 sparksim::to_string(outcomes[i].kill_reason));
      // The refund: the session is charged the partial time actually
      // simulated instead of the threshold a guard stop would have paid.
      const double refund =
          requests[i].stop_threshold_s - outcomes[i].cost_s;
      if (refund > 0.0) obs::observe("exec.racing.refund_s", refund);
    }
    span.arg("status", sparksim::to_string(outcomes[i].status));
    span.arg("value_s", outcomes[i].value_s);
    span.arg("attempts", outcomes[i].attempts);
  };

  if (parallelism_ <= 1 || n == 1) {
    for (std::size_t i = 0; i < n; ++i) {
      traced_evaluate(i);
      emulate_latency(outcomes[i]);
      if (on_complete) {
        CompletedEval done;
        done.eval_index = first_eval_index + i;
        done.batch_slot = i;
        done.request = &requests[i];
        done.outcome = &outcomes[i];
        on_complete(done);
      }
    }
  } else {
    std::mutex hook_mutex;
    std::vector<std::function<void()>> tasks;
    tasks.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      tasks.emplace_back([&, i]() {
        traced_evaluate(i);
        emulate_latency(outcomes[i]);
        if (on_complete) {
          std::scoped_lock lock(hook_mutex);
          CompletedEval done;
          done.eval_index = first_eval_index + i;
          done.batch_slot = i;
          done.request = &requests[i];
          done.outcome = &outcomes[i];
          on_complete(done);
        }
      });
    }
    auto futures = pool().submit_batch(std::move(tasks));
    ThreadPool::wait_all(futures);
  }

  // Canonical-order counter merge: evaluations()/total_cost_s() advance
  // as if the batch had run sequentially.
  for (const auto& fork : forks) objective.merge_fork(fork);
  return outcomes;
}

}  // namespace robotune::exec
