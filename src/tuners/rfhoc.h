// RFHOC-style learning-based tuner (Bei et al., TPDS 2016): train a
// Random-Forest performance model from sampled executions, then search
// the *model* with a genetic algorithm and evaluate its best candidates
// on the cluster.
//
// The paper deliberately excludes learning-based tuners from its
// evaluation because they need thousands of samples ("at least 2,000
// executions ... infeasible in most real-life scenarios", §1/§5.1).
// This implementation exists to *demonstrate* that argument under the
// same 100-evaluation budget the search-based tuners get
// (bench/abl_learning_based): with ~70 training runs the surrogate is too
// weak to guide the GA anywhere better than random sampling.
#pragma once

#include "tuners/tuner.h"

namespace robotune::tuners {

struct RfhocOptions {
  /// Fraction of the budget spent collecting model-training samples; the
  /// remainder evaluates the model-optimized candidates for real.
  double train_fraction = 0.7;
  std::size_t forest_trees = 300;
  /// Model-side GA (evaluations against the RF are free).
  int ga_population = 120;
  int ga_generations = 40;
  int ga_elite = 12;
  double mutation_rate = 0.10;
  double static_threshold_s = 480.0;
};

class Rfhoc : public Tuner {
 public:
  explicit Rfhoc(RfhocOptions options = {}) : options_(options) {}

  std::string name() const override { return "RFHOC"; }
  TuningResult tune(sparksim::SparkObjective& objective, int budget,
                    std::uint64_t seed) override;

 private:
  RfhocOptions options_;
};

}  // namespace robotune::tuners
