// Session trace export: serialize a tuning session's evaluation history
// to CSV for offline analysis/plotting (the figures in bench_results/ can
// be re-plotted from these).
//
// Columns: index, tuner, value_s, cost_s, status, stopped_early,
// best_so_far, then one column per configuration parameter (unit coords
// by default, decoded values when a ConfigSpace is supplied).
#pragma once

#include <iosfwd>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "sparksim/param_space.h"
#include "tuners/tuner.h"

namespace robotune::tuners {

/// RFC 4180 field quoting: fields containing commas, double quotes, or
/// line breaks are wrapped in quotes with embedded quotes doubled; all
/// other fields pass through unchanged.
std::string csv_escape(std::string_view field);

/// Reads one CSV record (which may span physical lines when a quoted
/// field embeds newlines) into `fields`.  Returns false at end of input.
/// Inverse of csv_escape: quoted fields are unescaped.
bool read_csv_record(std::istream& in, std::vector<std::string>& fields);

struct TraceOptions {
  /// Decode unit coordinates into parameter values using this space.
  const sparksim::ConfigSpace* space = nullptr;
  /// Include one column per parameter (otherwise only the summary
  /// columns are written).
  bool include_parameters = true;
};

/// Writes the session as CSV.  Returns the number of data rows.
std::size_t write_csv(const TuningResult& result, std::ostream& out,
                      const TraceOptions& options = {});

/// Convenience file wrapper; returns false if the file cannot be opened.
bool write_csv_file(const TuningResult& result, const std::string& path,
                    const TraceOptions& options = {});

}  // namespace robotune::tuners
