// Random Search baseline (Bergstra & Bengio 2012): parameter ranges are
// explored uniformly at random.  Per §5.1 it is augmented with the static
// threshold guard so its search cost is comparable with the other tuners.
#pragma once

#include "tuners/tuner.h"

namespace robotune::tuners {

class RandomSearch : public Tuner {
 public:
  explicit RandomSearch(double static_threshold_s = 480.0)
      : static_threshold_s_(static_threshold_s) {}

  std::string name() const override { return "RS"; }
  TuningResult tune(sparksim::SparkObjective& objective, int budget,
                    std::uint64_t seed) override;

 private:
  double static_threshold_s_;
};

}  // namespace robotune::tuners
