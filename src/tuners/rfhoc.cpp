#include "tuners/rfhoc.h"

#include <algorithm>
#include <cmath>

#include "ml/random_forest.h"
#include "obs/trace.h"
#include "sampling/latin_hypercube.h"

namespace robotune::tuners {

namespace {

struct ModelIndividual {
  std::vector<double> genes;
  double predicted = 0.0;
};

}  // namespace

TuningResult Rfhoc::tune(sparksim::SparkObjective& objective, int budget,
                         std::uint64_t seed) {
  TuningResult result;
  result.tuner = name();
  Rng rng(seed);
  const std::size_t dims = objective.space().size();
  obs::Span session_span("session", "tuners");
  session_span.arg("tuner", name());
  session_span.arg("budget", budget);
  session_span.arg("seed", seed);
  GuardPolicy guard(options_.static_threshold_s, /*median_multiple=*/0.0);

  // ---- Phase 1: collect training executions ------------------------------
  int train_count = static_cast<int>(
      std::lround(budget * std::clamp(options_.train_fraction, 0.1, 0.95)));
  train_count = std::clamp(train_count, std::min(budget, 10), budget);
  const auto design = sampling::latin_hypercube(
      static_cast<std::size_t>(train_count), dims, rng);
  ml::Dataset data(dims);
  // Transient failures are excluded from the training set: their
  // censored value reflects cluster flakiness, not the configuration,
  // and would teach the forest that a random region is slow.
  // Model log(time): same rationale as the BO engine.
  {
    obs::Span span("train", "tuners");
    span.arg("samples", train_count);
    if (scheduler() != nullptr) {
      // Sample collection is RFHOC's embarrassingly parallel phase: the
      // whole LHS design evaluates as one batch.
      const auto evals =
          evaluate_batch_into(*scheduler(), objective, design, guard, result);
      for (std::size_t i = 0; i < design.size(); ++i) {
        if (evals[i].transient) continue;
        data.add_row(design[i], std::log(std::max(1e-6, evals[i].value_s)));
      }
    } else {
      for (const auto& unit : design) {
        const auto e = evaluate_into(objective, unit, guard, result);
        if (e.transient) continue;
        data.add_row(unit, std::log(std::max(1e-6, e.value_s)));
      }
    }
  }
  if (train_count >= budget) return result;

  // ---- Phase 2: GA over the surrogate -------------------------------------
  std::vector<ModelIndividual> population(
      static_cast<std::size_t>(options_.ga_population));
  {
    obs::Span span("surrogate_ga", "tuners");
    span.arg("population", options_.ga_population);
    span.arg("generations", options_.ga_generations);
    ml::ForestOptions forest_options;
    forest_options.num_trees = options_.forest_trees;
    forest_options.tree.max_features = dims;
    ml::RandomForest model(forest_options, seed ^ 0xabcdULL);
    model.fit(data);

    for (auto& ind : population) {
      ind.genes.resize(dims);
      for (auto& g : ind.genes) g = rng.uniform();
      ind.predicted = model.predict(ind.genes);
    }
    for (int gen = 0; gen < options_.ga_generations; ++gen) {
      std::sort(population.begin(), population.end(),
                [](const ModelIndividual& a, const ModelIndividual& b) {
                  return a.predicted < b.predicted;
                });
      const auto elite = static_cast<std::size_t>(
          std::max(2, options_.ga_elite));
      for (std::size_t i = elite; i < population.size(); ++i) {
        const auto& a = population[rng.uniform_index(elite)];
        const auto& b = population[rng.uniform_index(elite)];
        auto& child = population[i];
        for (std::size_t d = 0; d < dims; ++d) {
          child.genes[d] = rng.bernoulli(0.5) ? a.genes[d] : b.genes[d];
          if (rng.bernoulli(options_.mutation_rate)) {
            child.genes[d] = rng.uniform();
          }
        }
        child.predicted = model.predict(child.genes);
      }
    }
    std::sort(population.begin(), population.end(),
              [](const ModelIndividual& a, const ModelIndividual& b) {
                return a.predicted < b.predicted;
              });
  }

  // ---- Phase 3: validate the model's favourites on the cluster -----------
  // Validation stays sequential (the near-duplicate filter depends on
  // what was already validated); in scheduler mode each evaluation is a
  // single-eval batch so its seed stream stays index-derived and the
  // session remains bit-identical at any parallelism.
  const auto validate_one = [&](const std::vector<double>& unit) {
    if (scheduler() != nullptr) {
      evaluate_batch_into(*scheduler(), objective, {unit}, guard, result);
    } else {
      evaluate_into(objective, unit, guard, result);
    }
  };
  const int validation_budget = budget - train_count;
  obs::Span validate_span("validate", "tuners");
  validate_span.arg("budget", validation_budget);
  int validated = 0;
  for (const auto& ind : population) {
    if (validated >= validation_budget) break;
    if (paced_stop()) return result;  // cooperative cancel between probes
    // Skip near-duplicates of already-validated candidates.
    bool duplicate = false;
    for (int j = 0; j < validated; ++j) {
      const auto& prev =
          result.history[result.history.size() - 1 -
                         static_cast<std::size_t>(j)];
      double distance = 0.0;
      for (std::size_t d = 0; d < dims; ++d) {
        distance += std::abs(prev.unit[d] - ind.genes[d]);
      }
      if (distance < 0.05 * static_cast<double>(dims)) {
        duplicate = true;
        break;
      }
    }
    if (duplicate) continue;
    validate_one(ind.genes);
    ++validated;
  }
  // If dedup starved the validation phase, fill with fresh random probes.
  while (static_cast<int>(result.history.size()) < budget) {
    if (paced_stop()) break;
    std::vector<double> unit(dims);
    for (auto& u : unit) u = rng.uniform();
    validate_one(unit);
  }
  return result;
}

}  // namespace robotune::tuners
