#include "tuners/session_trace.h"

#include <cmath>
#include <fstream>
#include <limits>
#include <ostream>

namespace robotune::tuners {

std::size_t write_csv(const TuningResult& result, std::ostream& out,
                      const TraceOptions& options) {
  // Header.
  out << "index,tuner,value_s,cost_s,status,stopped_early,best_so_far";
  const std::size_t dims =
      result.history.empty() ? 0 : result.history.front().unit.size();
  if (options.include_parameters) {
    for (std::size_t d = 0; d < dims; ++d) {
      if (options.space != nullptr) {
        out << "," << options.space->spec(d).name;
      } else {
        out << ",u" << d;
      }
    }
  }
  out << "\n";

  out.precision(10);
  double best = std::numeric_limits<double>::infinity();
  std::size_t rows = 0;
  for (std::size_t i = 0; i < result.history.size(); ++i) {
    const auto& e = result.history[i];
    if (e.ok()) best = std::min(best, e.value_s);
    out << i << "," << result.tuner << "," << e.value_s << "," << e.cost_s
        << "," << sparksim::to_string(e.status) << ","
        << (e.stopped_early ? 1 : 0) << ",";
    if (std::isfinite(best)) {
      out << best;
    }  // empty until the first success
    if (options.include_parameters) {
      const auto decoded =
          options.space != nullptr
              ? options.space->decode(e.unit)
              : sparksim::DecodedConfig(e.unit.begin(), e.unit.end());
      for (double v : decoded) out << "," << v;
    }
    out << "\n";
    ++rows;
  }
  return rows;
}

bool write_csv_file(const TuningResult& result, const std::string& path,
                    const TraceOptions& options) {
  std::ofstream out(path);
  if (!out) return false;
  write_csv(result, out, options);
  return static_cast<bool>(out);
}

}  // namespace robotune::tuners
