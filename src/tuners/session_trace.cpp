#include "tuners/session_trace.h"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <istream>
#include <limits>
#include <ostream>

namespace robotune::tuners {

std::string csv_escape(std::string_view field) {
  if (field.find_first_of(",\"\r\n") == std::string_view::npos) {
    return std::string(field);
  }
  std::string out;
  out.reserve(field.size() + 2);
  out.push_back('"');
  for (char c : field) {
    if (c == '"') out.push_back('"');
    out.push_back(c);
  }
  out.push_back('"');
  return out;
}

bool read_csv_record(std::istream& in, std::vector<std::string>& fields) {
  fields.clear();
  int c = in.get();
  if (c == std::istream::traits_type::eof()) return false;
  std::string field;
  bool quoted = false;
  for (;; c = in.get()) {
    if (c == std::istream::traits_type::eof()) break;
    if (quoted) {
      if (c == '"') {
        if (in.peek() == '"') {
          field.push_back('"');
          in.get();
        } else {
          quoted = false;  // closing quote
        }
      } else {
        field.push_back(static_cast<char>(c));
      }
      continue;
    }
    if (c == '"' && field.empty()) {
      quoted = true;
    } else if (c == ',') {
      fields.push_back(std::move(field));
      field.clear();
    } else if (c == '\n') {
      break;
    } else if (c != '\r') {
      field.push_back(static_cast<char>(c));
    }
  }
  fields.push_back(std::move(field));
  return true;
}

std::size_t write_csv(const TuningResult& result, std::ostream& out,
                      const TraceOptions& options) {
  // Header.
  out << "index,tuner,value_s,cost_s,status,stopped_early,best_so_far";
  const std::size_t dims =
      result.history.empty() ? 0 : result.history.front().unit.size();
  if (options.include_parameters) {
    for (std::size_t d = 0; d < dims; ++d) {
      if (options.space != nullptr) {
        out << "," << csv_escape(options.space->spec(d).name);
      } else {
        out << ",u" << d;
      }
    }
  }
  out << "\n";

  out.precision(10);
  double best = std::numeric_limits<double>::infinity();
  std::size_t rows = 0;
  for (std::size_t i = 0; i < result.history.size(); ++i) {
    const auto& e = result.history[i];
    if (e.ok()) best = std::min(best, e.value_s);
    out << i << "," << csv_escape(result.tuner) << "," << e.value_s << ","
        << e.cost_s << "," << csv_escape(sparksim::to_string(e.status))
        << "," << (e.stopped_early ? 1 : 0) << ",";
    if (std::isfinite(best)) {
      out << best;
    }  // empty until the first success
    if (options.include_parameters) {
      const auto decoded =
          options.space != nullptr
              ? options.space->decode(e.unit)
              : sparksim::DecodedConfig(e.unit.begin(), e.unit.end());
      for (double v : decoded) out << "," << v;
    }
    out << "\n";
    ++rows;
  }
  return rows;
}

bool write_csv_file(const TuningResult& result, const std::string& path,
                    const TraceOptions& options) {
  // Write-then-rename: a failure at any point (unwritable directory,
  // disk full) leaves no partial file at `path`.
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp);
    if (!out) return false;
    write_csv(result, out, options);
    out.flush();
    if (!out) {
      out.close();
      std::remove(tmp.c_str());
      return false;
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return false;
  }
  return true;
}

}  // namespace robotune::tuners
