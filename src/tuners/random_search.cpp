#include "tuners/random_search.h"

#include "obs/trace.h"

namespace robotune::tuners {

TuningResult RandomSearch::tune(sparksim::SparkObjective& objective,
                                int budget, std::uint64_t seed) {
  TuningResult result;
  result.tuner = name();
  obs::Span session_span("session", "tuners");
  session_span.arg("tuner", name());
  session_span.arg("budget", budget);
  session_span.arg("seed", seed);
  Rng rng(seed);
  const std::size_t dims = objective.space().size();
  // Transient-fault handling rides entirely on evaluate_into/GuardPolicy:
  // censored flake values never enter the guard median, and RS keeps no
  // model state that a flake could poison.
  GuardPolicy guard(static_threshold_s_, /*median_multiple=*/0.0);
  if (scheduler() != nullptr) {
    // Scheduler mode: RS has no sequential dependence at all (static
    // threshold, no model), so the whole budget is one batch.  The unit
    // vectors are drawn up front in the same RNG order as the sequential
    // loop below.
    std::vector<std::vector<double>> units(
        static_cast<std::size_t>(std::max(0, budget)));
    for (auto& unit : units) {
      unit.resize(dims);
      for (auto& u : unit) u = rng.uniform();
    }
    evaluate_batch_into(*scheduler(), objective, units, guard, result);
    return result;
  }
  std::vector<double> unit(dims);
  for (int i = 0; i < budget; ++i) {
    if (paced_stop()) break;  // cooperative cancel between evaluations
    for (auto& u : unit) u = rng.uniform();
    evaluate_into(objective, unit, guard, result);
  }
  return result;
}

}  // namespace robotune::tuners
