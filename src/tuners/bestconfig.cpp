#include "tuners/bestconfig.h"

#include <algorithm>
#include <limits>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "sampling/latin_hypercube.h"

namespace robotune::tuners {

namespace {

// DDS within a box: a Latin hypercube design scaled into [lo, hi] per dim.
std::vector<std::vector<double>> dds(std::size_t count,
                                     const std::vector<double>& lo,
                                     const std::vector<double>& hi,
                                     Rng& rng) {
  sampling::LhsOptions options;
  options.maximin_candidates = 1;  // BestConfig uses plain interval DDS
  auto design =
      sampling::latin_hypercube(count, lo.size(), rng, options);
  for (auto& row : design) {
    for (std::size_t d = 0; d < row.size(); ++d) {
      row[d] = lo[d] + row[d] * (hi[d] - lo[d]);
    }
  }
  return design;
}

}  // namespace

TuningResult BestConfig::tune(sparksim::SparkObjective& objective, int budget,
                              std::uint64_t seed) {
  TuningResult result;
  result.tuner = name();
  Rng rng(seed);
  const std::size_t dims = objective.space().size();
  obs::Span session_span("session", "tuners");
  session_span.arg("tuner", name());
  session_span.arg("budget", budget);
  session_span.arg("seed", seed);

  // BestConfig's runtime threshold: static cap initially, then a multiple
  // of the incumbent best once one exists.
  double incumbent = std::numeric_limits<double>::infinity();
  auto current_threshold = [&]() {
    if (std::isfinite(incumbent)) {
      return std::min(options_.static_threshold_s,
                      incumbent * options_.best_multiple_threshold);
    }
    return options_.static_threshold_s;
  };

  std::vector<double> lo(dims, 0.0), hi(dims, 1.0);
  bool bounded = false;  // current round restricted around the incumbent?

  int remaining = budget;
  while (remaining > 0) {
    if (paced_stop()) break;  // cooperative cancel at round boundary
    const int round = std::min(options_.sample_set_size, remaining);
    obs::count("bestconfig.rounds");
    obs::Span round_span("iteration", "tuners");
    round_span.arg("samples", round);
    round_span.arg("bounded", bounded ? 1 : 0);
    const auto samples =
        dds(static_cast<std::size_t>(round), lo, hi, rng);
    const double round_start_best = incumbent;
    if (scheduler() != nullptr) {
      // Per-DDS-round parallelism: the whole sample set evaluates as one
      // batch under the threshold captured at round start.  (Detached
      // mode retightens the threshold after every sample; freezing it
      // per round is the price of completion-order independence.)
      GuardPolicy round_guard(current_threshold(), 0.0);
      const auto evals = evaluate_batch_into(*scheduler(), objective,
                                             samples, round_guard, result);
      for (const auto& e : evals) {
        if (e.ok()) incumbent = std::min(incumbent, e.value_s);
      }
      remaining -= static_cast<int>(evals.size());
    } else {
      for (const auto& unit : samples) {
        if (remaining <= 0) break;
        GuardPolicy guard(current_threshold(), 0.0);
        const auto e = evaluate_into(objective, unit, guard, result);
        if (e.ok()) incumbent = std::min(incumbent, e.value_s);
        --remaining;
      }
    }
    if (remaining <= 0) break;

    const bool improved = incumbent < round_start_best;
    if (!std::isfinite(incumbent) || (bounded && !improved)) {
      // Diverge: back to the full space.
      obs::count("bestconfig.diverges");
      std::fill(lo.begin(), lo.end(), 0.0);
      std::fill(hi.begin(), hi.end(), 1.0);
      bounded = false;
      continue;
    }
    obs::count("bestconfig.shrinks");
    // Bound: for each dimension, the gap between the nearest sampled
    // coordinates below and above the incumbent best.  Transient failures
    // yielded no usable observation at their location, so they do not
    // count as exploration evidence when shrinking the box.
    const auto& best = result.history[result.best_index].unit;
    for (std::size_t d = 0; d < dims; ++d) {
      double below = 0.0, above = 1.0;
      for (const auto& e : result.history) {
        if (e.transient) continue;
        const double v = e.unit[d];
        if (v < best[d]) below = std::max(below, v);
        if (v > best[d]) above = std::min(above, v);
      }
      lo[d] = below;
      hi[d] = above;
    }
    bounded = true;
  }
  return result;
}

}  // namespace robotune::tuners
