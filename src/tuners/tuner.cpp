#include "tuners/tuner.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"
#include "obs/metrics.h"

namespace robotune::tuners {

bool TuningResult::found_any() const noexcept {
  for (const auto& e : history) {
    if (e.ok()) return true;
  }
  return false;
}

double TuningResult::best_value_s() const {
  require(!history.empty(), "TuningResult: empty history");
  return history[best_index].value_s;
}

const std::vector<double>& TuningResult::best_unit() const {
  require(!history.empty(), "TuningResult: empty history");
  return history[best_index].unit;
}

std::vector<double> TuningResult::best_trajectory() const {
  std::vector<double> out;
  out.reserve(history.size());
  double best = std::numeric_limits<double>::infinity();
  for (const auto& e : history) {
    if (e.ok()) best = std::min(best, e.value_s);
    out.push_back(best);
  }
  return out;
}

std::vector<double> TuningResult::sampled_times() const {
  std::vector<double> out;
  out.reserve(history.size());
  for (const auto& e : history) {
    if (e.status == sparksim::RunStatus::kOk ||
        e.status == sparksim::RunStatus::kTimeLimit) {
      out.push_back(e.value_s);
    }
  }
  return out;
}

std::size_t TuningResult::transient_failure_count() const {
  std::size_t n = 0;
  for (const auto& e : history) {
    if (e.transient) ++n;
  }
  return n;
}

std::size_t TuningResult::total_attempts() const {
  std::size_t n = 0;
  for (const auto& e : history) {
    n += static_cast<std::size_t>(std::max(1, e.attempts));
  }
  return n;
}

void append_evaluation(Evaluation& e, GuardPolicy& guard,
                       TuningResult& result) {
  // The canonical-order funnel every tuner's bookkeeping runs through —
  // the one place evaluation metrics are counted, so totals are
  // identical no matter which tuner, scheduler, or worker count
  // produced the evaluations (DESIGN.md §7 determinism contract).
  //
  // Quarantine non-finite values here, at the single funnel: a NaN/Inf
  // observation would otherwise poison every downstream model (GP, RF,
  // Gunther, BestConfig).  The evaluation is censored like a transient
  // run — its value says nothing about the configuration — so it is
  // charged to the session but excluded from model training, the guard
  // median, and incumbent tracking.
  if (!std::isfinite(e.value_s) || !std::isfinite(e.cost_s)) {
    obs::count("evals.quarantined");
    if (!std::isfinite(e.value_s)) {
      const double cap = guard.current();
      e.value_s = cap > 0.0 ? cap : 0.0;
    }
    if (!std::isfinite(e.cost_s)) e.cost_s = std::max(0.0, e.value_s);
    e.transient = true;
  }
  obs::count("evals.total");
  // Lifecycle sub-counters: killed/preempted evaluations are censored
  // (counted below) but observable in their own right.
  if (e.status == sparksim::RunStatus::kKilled) {
    obs::count("evals.killed");
  } else if (e.status == sparksim::RunStatus::kPreempted) {
    obs::count("evals.preempted");
  }
  if (e.transient) {
    obs::count("evals.censored");
  } else if (e.stopped_early) {
    obs::count("evals.guard_kills");
  } else if (e.ok()) {
    obs::count("evals.ok");
  } else {
    obs::count("evals.failed");
  }
  if (e.attempts > 1) {
    obs::count("evals.retries",
               static_cast<std::uint64_t>(e.attempts - 1));
  }
  obs::observe("evals.value_s", e.value_s);
  obs::observe("evals.cost_s", e.cost_s);
  guard.record(e);
  result.search_cost_s += e.cost_s;
  result.history.push_back(e);
  // Track the incumbent: only successful runs can be "best".
  const std::size_t idx = result.history.size() - 1;
  if (e.ok()) {
    if (!result.history[result.best_index].ok() ||
        e.value_s < result.history[result.best_index].value_s) {
      result.best_index = idx;
    }
  }
}

Evaluation to_evaluation(const std::vector<double>& unit,
                         const sparksim::EvalOutcome& outcome) {
  Evaluation e;
  e.unit = unit;
  e.value_s = outcome.value_s;
  e.cost_s = outcome.cost_s;
  e.status = outcome.status;
  e.stopped_early = outcome.stopped_early;
  e.attempts = outcome.attempts;
  e.transient = outcome.transient;
  e.kill_reason = outcome.kill_reason;
  return e;
}

Evaluation evaluate_into(sparksim::SparkObjective& objective,
                         const std::vector<double>& unit, GuardPolicy& guard,
                         TuningResult& result) {
  const auto outcome = objective.evaluate(unit, guard.current());
  auto e = to_evaluation(unit, outcome);
  append_evaluation(e, guard, result);
  return e;
}

std::vector<Evaluation> evaluate_batch_into(
    exec::EvalScheduler& scheduler, sparksim::SparkObjective& objective,
    const std::vector<std::vector<double>>& units, GuardPolicy& guard,
    TuningResult& result) {
  // Freeze the guard threshold for the whole round: every evaluation of
  // a batch sees the guard state from before the batch, which is what
  // keeps outcomes independent of completion order.
  const double threshold = guard.current();
  std::vector<exec::EvalRequest> requests;
  requests.reserve(units.size());
  for (const auto& unit : units) {
    requests.push_back({unit, threshold});
  }
  const auto outcomes = scheduler.run_batch(objective, requests,
                                            result.history.size());
  std::vector<Evaluation> evals;
  evals.reserve(units.size());
  for (std::size_t i = 0; i < units.size(); ++i) {
    evals.push_back(to_evaluation(units[i], outcomes[i]));
    append_evaluation(evals.back(), guard, result);
  }
  return evals;
}

}  // namespace robotune::tuners
