#include "tuners/tuner.h"

#include <algorithm>

#include "common/error.h"

namespace robotune::tuners {

bool TuningResult::found_any() const noexcept {
  for (const auto& e : history) {
    if (e.ok()) return true;
  }
  return false;
}

double TuningResult::best_value_s() const {
  require(!history.empty(), "TuningResult: empty history");
  return history[best_index].value_s;
}

const std::vector<double>& TuningResult::best_unit() const {
  require(!history.empty(), "TuningResult: empty history");
  return history[best_index].unit;
}

std::vector<double> TuningResult::best_trajectory() const {
  std::vector<double> out;
  out.reserve(history.size());
  double best = std::numeric_limits<double>::infinity();
  for (const auto& e : history) {
    if (e.ok()) best = std::min(best, e.value_s);
    out.push_back(best);
  }
  return out;
}

std::vector<double> TuningResult::sampled_times() const {
  std::vector<double> out;
  out.reserve(history.size());
  for (const auto& e : history) {
    if (e.status == sparksim::RunStatus::kOk ||
        e.status == sparksim::RunStatus::kTimeLimit) {
      out.push_back(e.value_s);
    }
  }
  return out;
}

std::size_t TuningResult::transient_failure_count() const {
  std::size_t n = 0;
  for (const auto& e : history) {
    if (e.transient) ++n;
  }
  return n;
}

std::size_t TuningResult::total_attempts() const {
  std::size_t n = 0;
  for (const auto& e : history) {
    n += static_cast<std::size_t>(std::max(1, e.attempts));
  }
  return n;
}

void append_evaluation(const Evaluation& e, GuardPolicy& guard,
                       TuningResult& result) {
  guard.record(e);
  result.search_cost_s += e.cost_s;
  result.history.push_back(e);
  // Track the incumbent: only successful runs can be "best".
  const std::size_t idx = result.history.size() - 1;
  if (e.ok()) {
    if (!result.history[result.best_index].ok() ||
        e.value_s < result.history[result.best_index].value_s) {
      result.best_index = idx;
    }
  }
}

Evaluation evaluate_into(sparksim::SparkObjective& objective,
                         const std::vector<double>& unit, GuardPolicy& guard,
                         TuningResult& result) {
  const auto outcome = objective.evaluate(unit, guard.current());
  Evaluation e;
  e.unit = unit;
  e.value_s = outcome.value_s;
  e.cost_s = outcome.cost_s;
  e.status = outcome.status;
  e.stopped_early = outcome.stopped_early;
  e.attempts = outcome.attempts;
  e.transient = outcome.transient;
  append_evaluation(e, guard, result);
  return e;
}

}  // namespace robotune::tuners
