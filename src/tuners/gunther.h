// Gunther (Liao, Datta & Willke, Euro-Par 2013): genetic-algorithm search
// with aggressive selection and mutation, reimplemented for Spark the way
// the paper does (§5.1, using the published algorithm).
//
// Per the paper's discussion (§6), Gunther's initial population is random
// and grows by two for each tuned parameter, so with many parameters the
// initialization consumes a significant share of the budget — the source
// of its exploration-heavy behaviour in Figures 3-5.  §5.1 also augments
// it with a static stop threshold.
#pragma once

#include "tuners/tuner.h"

namespace robotune::tuners {

struct GuntherOptions {
  /// Initial population = initial_per_param × dims (clamped to budget·frac).
  double initial_per_param = 2.0;
  /// Fraction of the budget the initial population may consume at most.
  /// Deliberately high: Gunther's initialization really does consume most
  /// of a 100-evaluation budget at 44 parameters (paper §6).
  double max_initial_budget_fraction = 0.85;
  /// Survivors per generation (aggressive truncation selection).
  int elite = 4;
  /// Offspring per generation.
  int generation_size = 10;
  /// Per-gene mutation probability (aggressive mutation).
  double mutation_rate = 0.20;
  /// Mutation is a full random reset of the gene (aggressive), otherwise
  /// a Gaussian perturbation.
  double reset_probability = 0.5;
  double gaussian_sigma = 0.12;
  double static_threshold_s = 480.0;
};

class Gunther : public Tuner {
 public:
  explicit Gunther(GuntherOptions options = {}) : options_(options) {}

  std::string name() const override { return "Gunther"; }
  TuningResult tune(sparksim::SparkObjective& objective, int budget,
                    std::uint64_t seed) override;

 private:
  GuntherOptions options_;
};

}  // namespace robotune::tuners
