// Common tuner interface and shared machinery: evaluation history,
// tuning results, and the guard thresholds that stop pathologically bad
// configurations (paper §4 "Guard against bad configurations" and §5.1,
// where Gunther/RS are augmented with a static threshold for fairness).
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <limits>
#include <string>
#include <vector>

#include "common/statistics.h"
#include "exec/eval_scheduler.h"
#include "sparksim/objective.h"

namespace robotune::tuners {

struct Evaluation {
  std::vector<double> unit;  ///< full-space unit vector evaluated
  double value_s = 0.0;      ///< observed objective (capped/penalized)
  double cost_s = 0.0;       ///< wall-clock charge to the session
  sparksim::RunStatus status = sparksim::RunStatus::kOk;
  bool stopped_early = false;
  /// Simulator attempts consumed (1 + transient retries); equals the
  /// objective seed draws replayed on checkpoint resume.
  int attempts = 1;
  /// True when the run died of cluster flakiness after exhausting its
  /// retries: the value is censored at the guard threshold, and the
  /// observation says nothing about the configuration itself.  Racing/
  /// deadline kills (status kKilled) are transient too: their partial
  /// time is a lower bound, not a measurement.
  bool transient = false;
  /// Why the racer killed the run; kNone unless status == kKilled.
  sparksim::KillReason kill_reason = sparksim::KillReason::kNone;

  bool ok() const noexcept { return status == sparksim::RunStatus::kOk; }
};

struct TuningResult {
  std::string tuner;
  std::vector<Evaluation> history;
  std::size_t best_index = 0;
  /// Total time spent generating + evaluating configurations (§5.3).
  double search_cost_s = 0.0;

  bool found_any() const noexcept;
  double best_value_s() const;
  const std::vector<double>& best_unit() const;
  /// best-so-far value after each evaluation (the Fig. 6 curves).
  std::vector<double> best_trajectory() const;
  /// Execution times of all successfully evaluated configurations (the
  /// Fig. 5 distributions; early-stopped runs contribute their threshold).
  std::vector<double> sampled_times() const;
  /// Evaluations that died of transient faults despite retries.
  std::size_t transient_failure_count() const;
  /// Total simulator attempts across the session (>= history.size();
  /// the excess is retries charged to flaky-cluster recovery).
  std::size_t total_attempts() const;
};

/// Tracks the guard threshold: the tighter of a static cap and a multiple
/// of the running median of successful evaluations.
class GuardPolicy {
 public:
  GuardPolicy(double static_threshold_s, double median_multiple)
      : static_threshold_s_(static_threshold_s),
        median_multiple_(median_multiple) {}

  /// Threshold to kill a run at; 0 = no guard active yet.
  double current() const {
    double t = static_threshold_s_ > 0.0
                   ? static_threshold_s_
                   : 0.0;
    if (median_multiple_ > 0.0 && observed_.size() >= 5) {
      const double m =
          stats::median(observed_) * median_multiple_;
      t = t > 0.0 ? std::min(t, m) : m;
    }
    return t;
  }

  /// Feeds the running median.  Only clean successes count: failed runs
  /// (deterministic or transient) and early-stopped runs carry censored
  /// or penalized values that would skew the median.
  void record(const Evaluation& e) {
    if (e.ok() && !e.stopped_early) observed_.push_back(e.value_s);
  }

  /// Number of observations feeding the median (diagnostics/tests).
  std::size_t observations() const noexcept { return observed_.size(); }

 private:
  double static_threshold_s_;
  double median_multiple_;
  std::vector<double> observed_;
};

class Tuner {
 public:
  virtual ~Tuner() = default;
  virtual std::string name() const = 0;
  /// Runs a tuning session with a budget of `budget` evaluations.
  virtual TuningResult tune(sparksim::SparkObjective& objective, int budget,
                            std::uint64_t seed) = 0;

  /// Attaches a batch-evaluation scheduler: subsequent tune() calls
  /// dispatch whole rounds (GA generations, DDS sample sets, BO batches)
  /// through it, with evaluation seeds derived per eval index so results
  /// are bit-identical for any scheduler parallelism (see
  /// exec/eval_scheduler.h).  Scheduler-mode trajectories differ from
  /// detached-mode ones — the seed streams and per-round guard semantics
  /// differ — so compare like with like.  Detach with nullptr.
  void set_scheduler(exec::EvalScheduler* scheduler) noexcept {
    scheduler_ = scheduler;
  }
  exec::EvalScheduler* scheduler() const noexcept { return scheduler_; }

  /// Cooperative pacing for sessions hosted by the service layer.
  /// `cancel` (nullable) is polled at round boundaries: when set, the
  /// tuner returns early with every completed evaluation kept in the
  /// result.  `yield` (nullable) is invoked at the same boundaries so a
  /// fair scheduler can slice CPU between concurrent sessions; it must
  /// not mutate tuner-visible state — with a null/no-op yield the
  /// session's results are unchanged.
  void set_pacing(const std::atomic<bool>* cancel,
                  std::function<void()> yield) {
    cancel_ = cancel;
    yield_ = std::move(yield);
  }
  const std::atomic<bool>* pacing_cancel() const noexcept { return cancel_; }
  const std::function<void()>& pacing_yield() const noexcept {
    return yield_;
  }

 protected:
  /// Round-boundary pacing point: yields to the fair scheduler (if any),
  /// then reports whether the session was cancelled.
  bool paced_stop() const {
    if (yield_) yield_();
    return cancel_ != nullptr && cancel_->load(std::memory_order_relaxed);
  }

 private:
  exec::EvalScheduler* scheduler_ = nullptr;
  const std::atomic<bool>* cancel_ = nullptr;
  std::function<void()> yield_;
};

/// Helper shared by tuner implementations: evaluate a unit vector under
/// the guard, append to the result, update the guard.
Evaluation evaluate_into(sparksim::SparkObjective& objective,
                         const std::vector<double>& unit, GuardPolicy& guard,
                         TuningResult& result);

/// The bookkeeping half of evaluate_into: records an already-obtained
/// evaluation (guard update, search cost, incumbent tracking).  Checkpoint
/// resume replays journaled evaluations through this so a resumed session
/// rebuilds byte-identical tuner state.
///
/// This is also the quarantine point for non-finite objective values: a
/// NaN/Inf value or cost is censored in place (classified like a
/// transient run — charged to the session but never trained on and never
/// the incumbent), which is why `e` is taken by mutable reference.
void append_evaluation(Evaluation& e, GuardPolicy& guard,
                       TuningResult& result);

/// Converts a scheduler outcome into the tuner-facing Evaluation record.
Evaluation to_evaluation(const std::vector<double>& unit,
                         const sparksim::EvalOutcome& outcome);

/// Batch counterpart of evaluate_into: evaluates `units` as one scheduler
/// batch (guard threshold frozen at submission, canonical eval indices
/// starting at result.history.size()) and appends the outcomes — guard
/// running-median updates included — in eval-index order.  Returns the
/// evaluations in unit order.
std::vector<Evaluation> evaluate_batch_into(
    exec::EvalScheduler& scheduler, sparksim::SparkObjective& objective,
    const std::vector<std::vector<double>>& units, GuardPolicy& guard,
    TuningResult& result);

}  // namespace robotune::tuners
