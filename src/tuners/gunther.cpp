#include "tuners/gunther.h"

#include <algorithm>
#include <cmath>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace robotune::tuners {

namespace {

struct Individual {
  std::vector<double> genes;
  double fitness = std::numeric_limits<double>::infinity();  // lower = better
};

}  // namespace

TuningResult Gunther::tune(sparksim::SparkObjective& objective, int budget,
                           std::uint64_t seed) {
  TuningResult result;
  result.tuner = name();
  Rng rng(seed);
  const std::size_t dims = objective.space().size();
  obs::Span session_span("session", "tuners");
  session_span.arg("tuner", name());
  session_span.arg("budget", budget);
  session_span.arg("seed", seed);
  GuardPolicy guard(options_.static_threshold_s, /*median_multiple=*/0.0);

  // Evaluates a whole group of individuals — the initial population or
  // one generation's offspring.  In scheduler mode the group is one
  // concurrent batch (per-generation parallelism; genes were all drawn
  // before any evaluation, so the RNG stream is identical either way).
  // Failed configurations get the penalty value so selection avoids
  // them.  Transient failures carry a censored value that says nothing
  // about the genes, so they rank last instead of mid-population — the
  // GA never breeds from an observation that was pure cluster flake.
  auto evaluate_group = [&](std::vector<Individual>& group) {
    if (scheduler() != nullptr) {
      std::vector<std::vector<double>> units;
      units.reserve(group.size());
      for (const auto& ind : group) units.push_back(ind.genes);
      const auto evals =
          evaluate_batch_into(*scheduler(), objective, units, guard, result);
      for (std::size_t i = 0; i < group.size(); ++i) {
        group[i].fitness = evals[i].transient
                               ? std::numeric_limits<double>::infinity()
                               : evals[i].value_s;
      }
      return;
    }
    for (auto& ind : group) {
      const auto e = evaluate_into(objective, ind.genes, guard, result);
      ind.fitness = e.transient ? std::numeric_limits<double>::infinity()
                                : e.value_s;
    }
  };

  // --- Initial population (random, sized by parameter count) -------------
  int init_size = static_cast<int>(
      std::lround(options_.initial_per_param * static_cast<double>(dims)));
  init_size = std::min(
      init_size,
      static_cast<int>(budget * options_.max_initial_budget_fraction));
  init_size = std::max(init_size, std::min(budget, 4));

  int remaining = budget;
  std::vector<Individual> population;
  const int init_count = std::min(init_size, remaining);
  population.reserve(static_cast<std::size_t>(init_count));
  for (int i = 0; i < init_count; ++i) {
    Individual ind;
    ind.genes.resize(dims);
    for (auto& g : ind.genes) g = rng.uniform();
    population.push_back(std::move(ind));
  }
  {
    obs::Span span("init", "tuners");
    span.arg("population", init_count);
    evaluate_group(population);
  }
  remaining -= init_count;

  // --- Generations: aggressive selection, crossover, mutation -------------
  while (remaining > 0) {
    if (paced_stop()) break;  // cooperative cancel at generation boundary
    obs::count("gunther.generations");
    obs::Span gen_span("iteration", "tuners");
    std::sort(population.begin(), population.end(),
              [](const Individual& a, const Individual& b) {
                return a.fitness < b.fitness;
              });
    const int elite = std::min<int>(options_.elite,
                                    static_cast<int>(population.size()));
    population.resize(static_cast<std::size_t>(std::max(elite, 2)));

    std::vector<Individual> offspring;
    const int gen = std::min(options_.generation_size, remaining);
    gen_span.arg("offspring", gen);
    offspring.reserve(static_cast<std::size_t>(gen));
    for (int c = 0; c < gen; ++c) {
      const auto& a =
          population[rng.uniform_index(population.size())];
      const auto& b =
          population[rng.uniform_index(population.size())];
      Individual child;
      child.genes.resize(dims);
      for (std::size_t d = 0; d < dims; ++d) {
        child.genes[d] = rng.bernoulli(0.5) ? a.genes[d] : b.genes[d];
        if (rng.bernoulli(options_.mutation_rate)) {
          if (rng.bernoulli(options_.reset_probability)) {
            child.genes[d] = rng.uniform();  // aggressive reset
          } else {
            child.genes[d] = std::clamp(
                child.genes[d] + rng.normal(0.0, options_.gaussian_sigma),
                0.0, 1.0 - 1e-12);
          }
        }
      }
      offspring.push_back(std::move(child));
    }
    evaluate_group(offspring);
    remaining -= gen;
    population.insert(population.end(),
                      std::make_move_iterator(offspring.begin()),
                      std::make_move_iterator(offspring.end()));
  }
  return result;
}

}  // namespace robotune::tuners
