#include "tuners/gunther.h"

#include <algorithm>
#include <cmath>

namespace robotune::tuners {

namespace {

struct Individual {
  std::vector<double> genes;
  double fitness = std::numeric_limits<double>::infinity();  // lower = better
};

}  // namespace

TuningResult Gunther::tune(sparksim::SparkObjective& objective, int budget,
                           std::uint64_t seed) {
  TuningResult result;
  result.tuner = name();
  Rng rng(seed);
  const std::size_t dims = objective.space().size();
  GuardPolicy guard(options_.static_threshold_s, /*median_multiple=*/0.0);

  auto evaluate = [&](Individual& ind) {
    const auto e = evaluate_into(objective, ind.genes, guard, result);
    // Failed configurations get the penalty value so selection avoids
    // them.  Transient failures carry a censored value that says nothing
    // about the genes, so they rank last instead of mid-population — the
    // GA never breeds from an observation that was pure cluster flake.
    ind.fitness = e.transient ? std::numeric_limits<double>::infinity()
                              : e.value_s;
  };

  // --- Initial population (random, sized by parameter count) -------------
  int init_size = static_cast<int>(
      std::lround(options_.initial_per_param * static_cast<double>(dims)));
  init_size = std::min(
      init_size,
      static_cast<int>(budget * options_.max_initial_budget_fraction));
  init_size = std::max(init_size, std::min(budget, 4));

  std::vector<Individual> population;
  population.reserve(static_cast<std::size_t>(init_size));
  int remaining = budget;
  for (int i = 0; i < init_size && remaining > 0; ++i, --remaining) {
    Individual ind;
    ind.genes.resize(dims);
    for (auto& g : ind.genes) g = rng.uniform();
    evaluate(ind);
    population.push_back(std::move(ind));
  }

  // --- Generations: aggressive selection, crossover, mutation -------------
  while (remaining > 0) {
    std::sort(population.begin(), population.end(),
              [](const Individual& a, const Individual& b) {
                return a.fitness < b.fitness;
              });
    const int elite = std::min<int>(options_.elite,
                                    static_cast<int>(population.size()));
    population.resize(static_cast<std::size_t>(std::max(elite, 2)));

    std::vector<Individual> offspring;
    const int gen = std::min(options_.generation_size, remaining);
    offspring.reserve(static_cast<std::size_t>(gen));
    for (int c = 0; c < gen; ++c) {
      const auto& a =
          population[rng.uniform_index(population.size())];
      const auto& b =
          population[rng.uniform_index(population.size())];
      Individual child;
      child.genes.resize(dims);
      for (std::size_t d = 0; d < dims; ++d) {
        child.genes[d] = rng.bernoulli(0.5) ? a.genes[d] : b.genes[d];
        if (rng.bernoulli(options_.mutation_rate)) {
          if (rng.bernoulli(options_.reset_probability)) {
            child.genes[d] = rng.uniform();  // aggressive reset
          } else {
            child.genes[d] = std::clamp(
                child.genes[d] + rng.normal(0.0, options_.gaussian_sigma),
                0.0, 1.0 - 1e-12);
          }
        }
      }
      evaluate(child);
      --remaining;
      offspring.push_back(std::move(child));
      if (remaining <= 0) break;
    }
    population.insert(population.end(),
                      std::make_move_iterator(offspring.begin()),
                      std::make_move_iterator(offspring.end()));
  }
  return result;
}

}  // namespace robotune::tuners
