// BestConfig (Zhu et al., SoCC 2017): divide-and-diverge sampling (DDS)
// plus recursive bound-and-search (RBS).
//
// DDS divides each parameter's range into k intervals and draws k samples
// so every interval of every parameter is covered exactly once (a Latin
// hypercube); RBS then bounds a subspace around the incumbent best — for
// each parameter, between the nearest sampled values below and above the
// incumbent — and re-samples inside it.  When a bounded round fails to
// improve, the search *diverges* back to global sampling.
//
// BestConfig's recommended sample-set size is 100; with the paper's total
// budget of 100 evaluations that leaves exactly one DDS round and no RBS,
// which is why it behaves like pure exploration in the evaluation (§5.2).
// Smaller `sample_set_size` values exercise the full recursion.
//
// BestConfig also adapts its kill threshold at runtime (the best time
// seen so far times a multiplier), reproduced here per §5.3.
#pragma once

#include "tuners/tuner.h"

namespace robotune::tuners {

struct BestConfigOptions {
  int sample_set_size = 100;
  /// Runtime threshold: multiple of the incumbent best (paper §5.3 notes
  /// BestConfig modifies its threshold during runtime).
  double best_multiple_threshold = 4.0;
  double static_threshold_s = 480.0;
};

class BestConfig : public Tuner {
 public:
  explicit BestConfig(BestConfigOptions options = {}) : options_(options) {}

  std::string name() const override { return "BestConfig"; }
  TuningResult tune(sparksim::SparkObjective& objective, int budget,
                    std::uint64_t seed) override;

 private:
  BestConfigOptions options_;
};

}  // namespace robotune::tuners
