// Task-level Spark execution engine.
//
// Given a cluster, a workload stage DAG and a full Spark configuration,
// the engine simulates the run: executors are packed onto nodes, each
// stage's partitions are scheduled onto task slots in waves, and per-task
// time is assembled from CPU (user code, serialization, compression, GC),
// disk (input, shuffle write, spill, output) and network (shuffle fetch)
// components.  Pathological configurations fail the same way they do on a
// real cluster: tasks whose working set exceeds available execution
// memory throw OOM, and executor requests larger than a node are never
// scheduled.
//
// Every documented effect is traceable to a Spark mechanism; see
// DESIGN.md §8 for the inventory and EXPERIMENTS.md for the calibration.
#pragma once

#include <string>
#include <vector>

#include "common/rng.h"
#include "sparksim/cluster.h"
#include "sparksim/spark_config.h"
#include "sparksim/workload.h"

namespace robotune::sparksim {

enum class RunStatus {
  kOk,
  kOom,         ///< a task exceeded execution memory; the job died
  kInfeasible,  ///< executors could not be placed at all
  kTimeLimit    ///< exceeded the caller-provided cap
};

std::string to_string(RunStatus status);

/// Diagnostics accumulated over a run (used heavily by tests).
struct SimMetrics {
  double gc_fraction = 0.0;        ///< CPU-time multiplier due to GC − 1
  double spill_gb = 0.0;           ///< total bytes spilled to disk
  double cache_evicted_fraction = 0.0;
  double straggler_factor = 0.0;   ///< mean wave max / mean task time
  double cpu_seconds = 0.0;        ///< aggregate task CPU component
  double disk_seconds = 0.0;       ///< aggregate task disk component
  double network_seconds = 0.0;    ///< aggregate task network component
  double scheduler_seconds = 0.0;  ///< driver/stage overheads
  int total_tasks = 0;
  int total_waves = 0;
};

struct SimResult {
  RunStatus status = RunStatus::kOk;
  /// Wall-clock seconds of the run.  For kOom/kInfeasible this is the
  /// time until the failure surfaced; for kTimeLimit it equals the cap.
  double seconds = 0.0;
  SimMetrics metrics;
  std::vector<double> stage_seconds;  ///< per executed stage
  std::string failure_stage;          ///< stage that OOMed, if any

  bool ok() const noexcept { return status == RunStatus::kOk; }
};

struct EngineOptions {
  /// Wall-clock cap; the run is cut off (status kTimeLimit) beyond it.
  /// <= 0 disables the cap.
  double time_cap_s = 0.0;
  /// Multiplicative lognormal noise sigma applied to the whole run
  /// (shared-cluster variance).  0 disables noise.
  double run_noise_sigma = 0.04;
};

/// Simulates one execution.  Deterministic for a fixed seed.
SimResult simulate(const ClusterSpec& cluster, const WorkloadSpec& workload,
                   const SparkConfig& config, std::uint64_t seed,
                   const EngineOptions& options = {});

}  // namespace robotune::sparksim
