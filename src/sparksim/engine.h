// Task-level Spark execution engine.
//
// Given a cluster, a workload stage DAG and a full Spark configuration,
// the engine simulates the run: executors are packed onto nodes, each
// stage's partitions are scheduled onto task slots in waves, and per-task
// time is assembled from CPU (user code, serialization, compression, GC),
// disk (input, shuffle write, spill, output) and network (shuffle fetch)
// components.  Pathological configurations fail the same way they do on a
// real cluster: tasks whose working set exceeds available execution
// memory throw OOM, and executor requests larger than a node are never
// scheduled.
//
// Every documented effect is traceable to a Spark mechanism; see
// DESIGN.md §9 for the inventory and EXPERIMENTS.md for the calibration.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "common/rng.h"
#include "sparksim/cluster.h"
#include "sparksim/faults.h"
#include "sparksim/lifecycle.h"
#include "sparksim/spark_config.h"
#include "sparksim/workload.h"

namespace robotune::sparksim {

enum class RunStatus {
  kOk,
  kOom,           ///< a task exceeded execution memory; the job died
  kInfeasible,    ///< executors could not be placed at all
  kTimeLimit,     ///< exceeded the caller-provided cap
  kExecutorLost,  ///< a task exhausted spark.task.maxFailures (transient)
  kFetchFailure,  ///< stage reattempts after fetch failures ran out (transient)
  kKilled,        ///< cooperatively cancelled mid-run (deadline/racing)
  kPreempted      ///< spot-instance preemptions exhausted rescheduling (transient)
};

/// Stable, unique label per status; "unknown" for out-of-range values.
std::string to_string(RunStatus status);
/// Inverse of to_string; nullopt for unrecognized labels.
std::optional<RunStatus> run_status_from_string(const std::string& label);
/// Every enumerator, in declaration order (round-trip tests iterate this).
const std::vector<RunStatus>& all_run_statuses();
/// True for failures caused by injected cluster flakiness (executor loss,
/// fetch failure, spot preemption): retrying the same configuration may
/// well succeed.  Deterministic failures (OOM, unplaceable), guard kills
/// and racing kills are not transient — a retried racing victim would
/// just be killed again, so retrying them wastes budget.
bool is_transient(RunStatus status);

/// Diagnostics accumulated over a run (used heavily by tests).
struct SimMetrics {
  double gc_fraction = 0.0;        ///< CPU-time multiplier due to GC − 1
  double spill_gb = 0.0;           ///< total bytes spilled to disk
  double cache_evicted_fraction = 0.0;
  double straggler_factor = 0.0;   ///< mean wave max / mean task time
  double cpu_seconds = 0.0;        ///< aggregate task CPU component
  double disk_seconds = 0.0;       ///< aggregate task disk component
  double network_seconds = 0.0;    ///< aggregate task network component
  double scheduler_seconds = 0.0;  ///< driver/stage overheads
  int total_tasks = 0;
  int total_waves = 0;
  // Fault-injection diagnostics (all zero when no profile is active).
  int executors_lost = 0;          ///< executor-loss events across the run
  int task_retries = 0;            ///< tasks re-queued after executor loss
  int stage_reattempts = 0;        ///< stage retries after fetch failures
  int preemptions = 0;             ///< spot-instance preemption events
  double fault_delay_s = 0.0;      ///< wall-clock added by injected faults
};

struct SimResult {
  RunStatus status = RunStatus::kOk;
  /// Wall-clock seconds of the run.  For kOom/kInfeasible this is the
  /// time until the failure surfaced; for kTimeLimit it equals the cap.
  double seconds = 0.0;
  SimMetrics metrics;
  std::vector<double> stage_seconds;  ///< per executed stage
  std::string failure_stage;          ///< stage that failed the job, if any
  /// Why the run was killed; kNone unless status == kKilled.
  KillReason kill_reason = KillReason::kNone;

  bool ok() const noexcept { return status == RunStatus::kOk; }
};

struct EngineOptions {
  /// Wall-clock cap; the run is cut off (status kTimeLimit) beyond it.
  /// <= 0 disables the cap.
  double time_cap_s = 0.0;
  /// Multiplicative lognormal noise sigma applied to the whole run
  /// (shared-cluster variance).  0 disables noise.
  double run_noise_sigma = 0.04;
  /// Transient-fault injection (see sparksim/faults.h).  The default
  /// all-zero profile is strictly opt-in: it draws no randomness and the
  /// run is byte-identical to one without the fault layer.
  FaultProfile faults;
  /// Optional evaluation lifecycle (see sparksim/lifecycle.h): the engine
  /// streams per-stage simulated-time progress through it and honors its
  /// cancellation token at stage boundaries (status kKilled with partial
  /// stage_seconds).  Null (the default) changes nothing — no boundary
  /// work, no randomness, byte-identical runs.
  const EvalLifecycle* lifecycle = nullptr;
};

/// Simulates one execution.  Deterministic for a fixed seed.
SimResult simulate(const ClusterSpec& cluster, const WorkloadSpec& workload,
                   const SparkConfig& config, std::uint64_t seed,
                   const EngineOptions& options = {});

}  // namespace robotune::sparksim
