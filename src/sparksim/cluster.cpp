#include "sparksim/cluster.h"

#include <algorithm>

namespace robotune::sparksim {

ExecutorPlacement place_executors(const ClusterSpec& cluster,
                                  const SparkConfig& config) {
  // Spark-standalone semantics: a worker grants an executor only when it
  // has both the cores and the memory for it, so a node hosts
  // min(cores/executor.cores, memory/executor_footprint) executors.
  // Requesting more memory per executor therefore trades away executor
  // count — the cores-vs-memory balance of the paper's Figure 8.
  ExecutorPlacement p;
  const int mem_per_executor_mb = config.executor_memory_mb +
                                  config.executor_memory_overhead_mb +
                                  (config.offheap_enabled
                                       ? config.offheap_size_mb
                                       : 0);
  const int by_cores =
      config.executor_cores > 0
          ? cluster.cores_per_node / config.executor_cores
          : 0;
  const int by_memory =
      mem_per_executor_mb > 0
          ? cluster.usable_memory_per_node_mb() / mem_per_executor_mb
          : 0;
  p.executors_per_node = std::min(by_cores, by_memory);
  if (p.executors_per_node <= 0) {
    p.infeasible = true;  // a single executor exceeds a node
    return p;
  }
  int total = p.executors_per_node * cluster.worker_nodes;
  // spark.cores.max caps the application's aggregate core grant.
  const int by_cores_max =
      std::max(1, config.cores_max / std::max(1, config.executor_cores));
  total = std::min(total, by_cores_max);
  p.total_executors = total;
  // Executors spread round-robin across workers.
  p.executors_per_node =
      std::min(p.executors_per_node,
               (total + cluster.worker_nodes - 1) / cluster.worker_nodes);

  p.slots_per_executor =
      std::max(1, config.executor_cores / std::max(1, config.task_cpus));
  p.total_slots = p.total_executors * p.slots_per_executor;

  const double used_cores =
      static_cast<double>(p.executors_per_node * config.executor_cores);
  p.wasted_core_fraction =
      1.0 - used_cores / static_cast<double>(cluster.cores_per_node);
  const double used_mem =
      static_cast<double>(p.executors_per_node) * mem_per_executor_mb;
  p.wasted_memory_fraction =
      1.0 - used_mem / static_cast<double>(cluster.usable_memory_per_node_mb());
  p.wasted_core_fraction = std::clamp(p.wasted_core_fraction, 0.0, 1.0);
  p.wasted_memory_fraction = std::clamp(p.wasted_memory_fraction, 0.0, 1.0);
  return p;
}

}  // namespace robotune::sparksim
