#include "sparksim/spark_config.h"

#include <cmath>

namespace robotune::sparksim {

namespace {

double get(const ConfigSpace& space, const DecodedConfig& values,
           const char* name) {
  const auto idx = space.index_of(name);
  require(idx.has_value(), std::string("SparkConfig: missing parameter ") +
                               name);
  return values[*idx];
}

int geti(const ConfigSpace& space, const DecodedConfig& values,
         const char* name) {
  return static_cast<int>(std::llround(get(space, values, name)));
}

bool getb(const ConfigSpace& space, const DecodedConfig& values,
          const char* name) {
  return get(space, values, name) >= 0.5;
}

}  // namespace

SparkConfig SparkConfig::from_decoded(const ConfigSpace& space,
                                      const DecodedConfig& values) {
  require(values.size() == space.size(),
          "SparkConfig::from_decoded: size mismatch");
  SparkConfig c;
  c.executor_cores = geti(space, values, "spark.executor.cores");
  c.executor_memory_mb = geti(space, values, "spark.executor.memory.mb");
  c.cores_max = geti(space, values, "spark.cores.max");
  c.executor_memory_overhead_mb =
      geti(space, values, "spark.executor.memoryOverhead.mb");
  c.driver_memory_mb = geti(space, values, "spark.driver.memory.mb");
  c.driver_cores = geti(space, values, "spark.driver.cores");
  c.task_cpus = geti(space, values, "spark.task.cpus");
  c.memory_fraction = get(space, values, "spark.memory.fraction");
  c.memory_storage_fraction =
      get(space, values, "spark.memory.storageFraction");
  c.offheap_enabled = getb(space, values, "spark.memory.offHeap.enabled");
  c.offheap_size_mb = geti(space, values, "spark.memory.offHeap.size.mb");
  c.memory_map_threshold_mb =
      geti(space, values, "spark.storage.memoryMapThreshold.mb");
  c.shuffle_compress = getb(space, values, "spark.shuffle.compress");
  c.shuffle_spill_compress =
      getb(space, values, "spark.shuffle.spill.compress");
  c.shuffle_file_buffer_kb =
      geti(space, values, "spark.shuffle.file.buffer.kb");
  c.reducer_max_size_in_flight_mb =
      geti(space, values, "spark.reducer.maxSizeInFlight.mb");
  c.sort_bypass_merge_threshold =
      geti(space, values, "spark.shuffle.sort.bypassMergeThreshold");
  c.shuffle_connections_per_peer =
      geti(space, values, "spark.shuffle.io.numConnectionsPerPeer");
  c.shuffle_io_max_retries =
      geti(space, values, "spark.shuffle.io.maxRetries");
  c.shuffle_io_retry_wait_s =
      geti(space, values, "spark.shuffle.io.retryWait.s");
  c.shuffle_service_enabled =
      getb(space, values, "spark.shuffle.service.enabled");
  c.serializer =
      static_cast<Serializer>(geti(space, values, "spark.serializer"));
  c.kryo_buffer_max_mb =
      geti(space, values, "spark.kryoserializer.buffer.max.mb");
  c.kryo_reference_tracking =
      getb(space, values, "spark.kryo.referenceTracking");
  c.rdd_compress = getb(space, values, "spark.rdd.compress");
  c.compression_codec =
      static_cast<Codec>(geti(space, values, "spark.io.compression.codec"));
  c.compression_block_size_kb =
      geti(space, values, "spark.io.compression.blockSize.kb");
  c.broadcast_compress = getb(space, values, "spark.broadcast.compress");
  c.broadcast_block_size_mb =
      geti(space, values, "spark.broadcast.blockSize.mb");
  c.default_parallelism = geti(space, values, "spark.default.parallelism");
  c.locality_wait_s = get(space, values, "spark.locality.wait.s");
  c.scheduler_revive_interval_s =
      geti(space, values, "spark.scheduler.reviveInterval.s");
  c.speculation = getb(space, values, "spark.speculation");
  c.speculation_multiplier =
      get(space, values, "spark.speculation.multiplier");
  c.speculation_quantile = get(space, values, "spark.speculation.quantile");
  c.task_max_failures = geti(space, values, "spark.task.maxFailures");
  c.network_timeout_s = geti(space, values, "spark.network.timeout.s");
  c.shuffle_prefer_direct_bufs =
      getb(space, values, "spark.shuffle.io.preferDirectBufs");
  c.executor_heartbeat_interval_s =
      geti(space, values, "spark.executor.heartbeatInterval.s");
  c.broadcast_checksum = getb(space, values, "spark.broadcast.checksum");
  c.periodic_gc_interval_min =
      geti(space, values, "spark.cleaner.periodicGC.interval.min");
  c.max_partition_bytes_mb =
      geti(space, values, "spark.files.maxPartitionBytes.mb");
  c.gc_algo = static_cast<GcAlgo>(geti(space, values, "spark.executor.gc"));
  c.fair_scheduler = geti(space, values, "spark.scheduler.mode") == 1;
  return c;
}

}  // namespace robotune::sparksim
