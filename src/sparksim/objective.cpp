#include "sparksim/objective.h"

#include <algorithm>

#include "obs/metrics.h"

namespace robotune::sparksim {

std::uint64_t derive_eval_seed(std::uint64_t session_seed,
                               std::uint64_t eval_index) noexcept {
  // Mix the index in with a golden-ratio multiply before the SplitMix64
  // finalizer; the extra next() whitens low-entropy (seed, index) pairs.
  SplitMix64 mix(session_seed ^
                 ((eval_index + 1) * 0x9e3779b97f4a7c15ULL));
  mix.next();
  return mix.next();
}

SparkObjective SparkObjective::fork_for_eval(
    std::uint64_t eval_index) const {
  SparkObjective fork(cluster_, workload_, space_,
                      derive_eval_seed(initial_seed_, eval_index),
                      time_cap_s_, run_noise_sigma_, metric_);
  fork.fault_profile_ = fault_profile_;
  fork.retry_policy_ = retry_policy_;
  return fork;
}

SparkObjective::SparkObjective(ClusterSpec cluster, WorkloadSpec workload,
                               ConfigSpace space, std::uint64_t seed,
                               double time_cap_s, double run_noise_sigma,
                               ObjectiveMetric metric)
    : cluster_(cluster),
      workload_(std::move(workload)),
      space_(std::move(space)),
      initial_seed_(seed),
      seed_stream_(seed),
      time_cap_s_(time_cap_s),
      run_noise_sigma_(run_noise_sigma),
      metric_(metric) {}

EvalOutcome SparkObjective::evaluate(std::span<const double> unit,
                                     double stop_threshold_s,
                                     const EvalLifecycle* lifecycle) {
  return evaluate_decoded(space_.decode(unit), stop_threshold_s,
                          /*apply_cap=*/true, lifecycle);
}

EvalOutcome SparkObjective::evaluate_decoded(const DecodedConfig& values,
                                             double stop_threshold_s,
                                             bool apply_cap,
                                             const EvalLifecycle* lifecycle) {
  const SparkConfig config = SparkConfig::from_decoded(space_, values);

  // Effective kill threshold: the tighter of the global cap and the
  // caller's guard.
  double kill_s = 0.0;
  if (apply_cap && time_cap_s_ > 0.0) kill_s = time_cap_s_;
  if (stop_threshold_s > 0.0) {
    kill_s = kill_s > 0.0 ? std::min(kill_s, stop_threshold_s)
                          : stop_threshold_s;
  }

  EngineOptions engine_options;
  engine_options.time_cap_s = kill_s;
  engine_options.run_noise_sigma = run_noise_sigma_;
  engine_options.faults = fault_profile_;
  engine_options.lifecycle = lifecycle;

  // Run, retrying only transient faults: a lost executor or a failed
  // fetch says nothing about the configuration, so bounded re-runs (with
  // backoff charged to the session) recover the observation.  Every
  // attempt draws a fresh run seed — a retried run sees different luck.
  EvalOutcome out;
  double retry_cost_s = 0.0;
  for (int attempt = 0;; ++attempt) {
    const std::uint64_t run_seed = next_run_seed();
    out.raw = simulate(cluster_, workload_, config, run_seed, engine_options);
    out.attempts = attempt + 1;
    // Logical fault/retry metrics: attempt outcomes are a pure function
    // of the run seed (sequential or index-derived), so these totals are
    // identical for any scheduler worker count.
    obs::count("objective.attempts");
    if (out.raw.status == RunStatus::kExecutorLost) {
      obs::count("objective.faults.executor_lost");
    } else if (out.raw.status == RunStatus::kFetchFailure) {
      obs::count("objective.faults.fetch_failure");
    } else if (out.raw.status == RunStatus::kPreempted) {
      obs::count("objective.faults.preempted");
    }
    if (!is_transient(out.raw.status) || attempt >= retry_policy_.max_retries) {
      break;
    }
    obs::count("objective.retries");
    const double backoff = retry_policy_.backoff_s(attempt);
    obs::observe("objective.backoff_s", backoff);
    retry_cost_s += out.raw.seconds + backoff;
  }
  out.status = out.raw.status;

  // Failed runs are observed as "as bad as a killed run, plus a margin":
  // bad enough for surrogates to avoid the region without swamping the
  // response variance the parameter-selection forest has to explain.
  const double penalty = (kill_s > 0.0 ? kill_s : 600.0) * 1.05;
  // Metric transform for successful runs: kExecutionTime is the raw wall
  // clock; kCoreSeconds weights it by the cluster share the configuration
  // occupies.  The session still pays wall-clock time (cost_s).
  const double metric_scale = [&] {
    if (metric_ == ObjectiveMetric::kExecutionTime) return 1.0;
    const auto placement = place_executors(cluster_, config);
    const double granted =
        placement.infeasible
            ? 1.0
            : static_cast<double>(placement.total_executors *
                                  config.executor_cores);
    return granted / static_cast<double>(cluster_.total_cores());
  }();
  switch (out.raw.status) {
    case RunStatus::kOk:
      out.value_s = out.raw.seconds * metric_scale;
      out.cost_s = out.raw.seconds;
      break;
    case RunStatus::kTimeLimit:
      out.value_s = kill_s > 0.0 ? kill_s : out.raw.seconds;
      out.cost_s = out.value_s;
      out.stopped_early = true;
      break;
    case RunStatus::kOom:
    case RunStatus::kInfeasible:
      out.value_s = penalty;
      out.cost_s = out.raw.seconds;  // failures die quickly
      break;
    case RunStatus::kExecutorLost:
    case RunStatus::kFetchFailure:
    case RunStatus::kPreempted:
      // Exhausted transient retries: the flake, not the configuration,
      // killed the run.  Censor at the threshold (like a guard stop) so
      // surrogates are not poisoned by a penalty the configuration did
      // not earn; the session still pays what the attempts actually cost.
      out.value_s = kill_s > 0.0 ? kill_s : out.raw.seconds;
      out.cost_s = out.raw.seconds;
      out.transient = true;
      break;
    case RunStatus::kKilled:
      // Racing/deadline kill: a censored observation, like a transient
      // failure — its partial time says "at least this slow", nothing
      // more, so it must never enter the surrogates as a hard value.
      // The session is charged only the partial time actually simulated;
      // the rest of the threshold is the racer's budget refund.
      out.value_s = kill_s > 0.0 ? kill_s : out.raw.seconds;
      out.cost_s = out.raw.seconds;
      out.transient = true;
      out.kill_reason = out.raw.kill_reason;
      break;
  }
  out.cost_s += retry_cost_s;
  ++evaluations_;
  total_cost_s_ += out.cost_s;
  return out;
}

}  // namespace robotune::sparksim
