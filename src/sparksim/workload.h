// Stage-DAG models of the five SparkBench workloads evaluated in the
// paper (Table 1): PageRank, KMeans, ConnectedComponents,
// LogisticRegression, TeraSort, each with three dataset sizes D1-D3.
//
// A workload is a list of setup stages (run once: load + cache the input)
// followed by a list of iteration stages repeated `iterations` times.
// The per-stage constants (CPU seconds per GB on one reference core,
// working-set expansion of a task's partition in JVM memory, shuffle
// volumes, partition skew) encode the qualitative behaviours the paper
// reports:
//  * PR/CC: shuffle-heavy iterative graph workloads with skewed
//    partitions and large JVM expansion of adjacency structures — they
//    OOM under the 1 GB default executors (§5.2) and have narrow
//    high-performing regions (§5.2, §5.6).
//  * KM/LR: ML workloads that cache their full training set; KMeans
//    suffers a long execution-time tail whenever the cache does not fit
//    and points are re-read every iteration (§5.3).
//  * TS: a single sort with one wide shuffle, IO-bound, broad optimum;
//    the default configuration only survives the smallest dataset (§5.2).
#pragma once

#include <string>
#include <vector>

namespace robotune::sparksim {

enum class WorkloadKind {
  kPageRank,
  kKMeans,
  kConnectedComponents,
  kLogisticRegression,
  kTeraSort
};

std::string to_string(WorkloadKind kind);
/// Short labels used in the paper's figures: PR, KM, CC, LR, TS.
std::string short_name(WorkloadKind kind);

struct StageModel {
  std::string name;
  /// GB read as stage input: from HDFS for non-cached stages, from the
  /// cached RDD (if resident) otherwise.
  double input_gb = 0.0;
  /// GB written to shuffle files (map side of the next exchange).
  double shuffle_write_gb = 0.0;
  /// GB fetched from the previous stage's shuffle output.
  double shuffle_read_gb = 0.0;
  /// CPU cost of the stage's user code, seconds per GB per reference core.
  double cpu_s_per_gb = 1.0;
  /// Fraction of the stage's bytes that pass through the serializer
  /// (shuffle + cache writes are serialization-heavy; scans are not).
  double serialization_intensity = 0.5;
  bool reads_cached = false;  ///< input comes from the cached RDD
  bool writes_cache = false;  ///< output is cached (populates the cache)
  double output_gb = 0.0;     ///< GB written to HDFS at the end
  /// GB broadcast to every executor at stage start (centroids, model
  /// weights, hash-join sides).  Cost scales with the executor count.
  double broadcast_gb = 0.0;
  /// Multiplier mapping a task's on-disk partition bytes to its JVM
  /// working set (hash tables, object headers, boxing).
  double working_set_expansion = 2.0;
  /// Lognormal sigma of per-task time spread; graph stages are skewed.
  double task_skew = 0.12;
};

struct WorkloadSpec {
  WorkloadKind kind = WorkloadKind::kPageRank;
  std::string dataset_label;  ///< "D1" | "D2" | "D3"
  double input_gb = 0.0;
  /// Deserialized (Java-object) size of all RDDs the workload caches.
  double cached_gb = 0.0;
  int iterations = 1;
  std::vector<StageModel> setup_stages;
  std::vector<StageModel> iteration_stages;

  std::string full_name() const {
    return short_name(kind) + "-" + dataset_label;
  }
};

/// Builds the workload spec for one of the paper's (workload, dataset)
/// combinations.  `dataset` is 1, 2, or 3 per Table 1.
WorkloadSpec make_workload(WorkloadKind kind, int dataset);

/// All five workloads in the paper's order.
std::vector<WorkloadKind> all_workloads();

}  // namespace robotune::sparksim
