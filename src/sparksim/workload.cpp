#include "sparksim/workload.h"

#include "common/error.h"

namespace robotune::sparksim {

std::string to_string(WorkloadKind kind) {
  switch (kind) {
    case WorkloadKind::kPageRank:
      return "PageRank";
    case WorkloadKind::kKMeans:
      return "KMeans";
    case WorkloadKind::kConnectedComponents:
      return "ConnectedComponents";
    case WorkloadKind::kLogisticRegression:
      return "LogisticRegression";
    case WorkloadKind::kTeraSort:
      return "TeraSort";
  }
  return "?";
}

std::string short_name(WorkloadKind kind) {
  switch (kind) {
    case WorkloadKind::kPageRank:
      return "PR";
    case WorkloadKind::kKMeans:
      return "KM";
    case WorkloadKind::kConnectedComponents:
      return "CC";
    case WorkloadKind::kLogisticRegression:
      return "LR";
    case WorkloadKind::kTeraSort:
      return "TS";
  }
  return "?";
}

std::vector<WorkloadKind> all_workloads() {
  return {WorkloadKind::kPageRank, WorkloadKind::kKMeans,
          WorkloadKind::kConnectedComponents,
          WorkloadKind::kLogisticRegression, WorkloadKind::kTeraSort};
}

namespace {

WorkloadSpec make_pagerank(int dataset) {
  // Table 1: 5 / 7.5 / 10 million pages; ~1.2 GB of edge list per million.
  const double pages_m[] = {5.0, 7.5, 10.0};
  const double input = pages_m[dataset - 1] * 1.2;
  WorkloadSpec w;
  w.kind = WorkloadKind::kPageRank;
  w.dataset_label = "D" + std::to_string(dataset);
  w.input_gb = input;
  w.cached_gb = input * 6.0;  // adjacency lists as Java objects (5-10x on-disk)
  w.iterations = 8;
  w.setup_stages = {
      {.name = "load-edges",
       .input_gb = input,
       .shuffle_write_gb = input * 0.6,
       .cpu_s_per_gb = 4.0,
       .serialization_intensity = 0.7,
       .working_set_expansion = 3.0,
       .task_skew = 0.12},
      {.name = "build-links",
       .shuffle_read_gb = input * 0.6,
       .cpu_s_per_gb = 5.0,
       .serialization_intensity = 0.6,
       .writes_cache = true,
       .working_set_expansion = 6.0,
       .task_skew = 0.16},
  };
  w.iteration_stages = {
      {.name = "contribs",
       .input_gb = input,
       .shuffle_write_gb = input * 1.2,
       .cpu_s_per_gb = 9.0,
       .serialization_intensity = 0.8,
       .reads_cached = true,
       .working_set_expansion = 4.0,
       .task_skew = 0.18},
      {.name = "aggregate-ranks",
       .shuffle_read_gb = input * 1.2,
       .cpu_s_per_gb = 6.0,
       .serialization_intensity = 0.7,
       .working_set_expansion = 12.0,  // hash join of adjacency + ranks
       .task_skew = 0.20},
  };
  return w;
}

WorkloadSpec make_connected_components(int dataset) {
  const double pages_m[] = {5.0, 7.5, 10.0};
  const double input = pages_m[dataset - 1] * 1.2;
  WorkloadSpec w;
  w.kind = WorkloadKind::kConnectedComponents;
  w.dataset_label = "D" + std::to_string(dataset);
  w.input_gb = input;
  w.cached_gb = input * 5.5;
  w.iterations = 7;
  w.setup_stages = {
      {.name = "load-graph",
       .input_gb = input,
       .shuffle_write_gb = input * 0.5,
       .cpu_s_per_gb = 4.0,
       .serialization_intensity = 0.7,
       .working_set_expansion = 3.0,
       .task_skew = 0.12},
      {.name = "init-components",
       .shuffle_read_gb = input * 0.5,
       .cpu_s_per_gb = 3.0,
       .serialization_intensity = 0.6,
       .writes_cache = true,
       .working_set_expansion = 6.0,
       .task_skew = 0.16},
  };
  w.iteration_stages = {
      {.name = "propagate-labels",
       .input_gb = input,
       .shuffle_write_gb = input * 1.0,
       .cpu_s_per_gb = 6.0,
       .serialization_intensity = 0.8,
       .reads_cached = true,
       .working_set_expansion = 4.0,
       .task_skew = 0.19},
      {.name = "merge-labels",
       .shuffle_read_gb = input * 1.0,
       .cpu_s_per_gb = 4.0,
       .serialization_intensity = 0.7,
       .working_set_expansion = 12.0,
       .task_skew = 0.19},
  };
  return w;
}

WorkloadSpec make_kmeans(int dataset) {
  // Table 1: 200 / 300 / 400 million points, ~100 B per point on disk.
  const double points_m[] = {200.0, 300.0, 400.0};
  const double input = points_m[dataset - 1] * 0.1;
  WorkloadSpec w;
  w.kind = WorkloadKind::kKMeans;
  w.dataset_label = "D" + std::to_string(dataset);
  w.input_gb = input;
  w.cached_gb = input * 5.0;  // boxed java vectors with object headers
  w.iterations = 10;
  w.setup_stages = {
      {.name = "load-points",
       .input_gb = input,
       .cpu_s_per_gb = 3.0,
       .serialization_intensity = 0.4,
       .writes_cache = true,
       .working_set_expansion = 0.8,
       .task_skew = 0.10},
  };
  w.iteration_stages = {
      {.name = "assign-clusters",
       .input_gb = input,
       .shuffle_write_gb = 0.002,
       .cpu_s_per_gb = 36.0,  // distance to k centroids per point
       .serialization_intensity = 0.05,
       .reads_cached = true,
       .broadcast_gb = 0.05,  // centroid matrix to every executor
       .working_set_expansion = 0.15,
       .task_skew = 0.10},
      {.name = "update-centroids",
       .shuffle_read_gb = 0.002,
       .cpu_s_per_gb = 2.0,
       .serialization_intensity = 0.3,
       .working_set_expansion = 0.5,
       .task_skew = 0.08},
  };
  return w;
}

WorkloadSpec make_logistic_regression(int dataset) {
  // Table 1: 100 / 200 / 300 million examples, ~200 B per example.
  const double examples_m[] = {100.0, 200.0, 300.0};
  const double input = examples_m[dataset - 1] * 0.2;
  WorkloadSpec w;
  w.kind = WorkloadKind::kLogisticRegression;
  w.dataset_label = "D" + std::to_string(dataset);
  w.input_gb = input;
  w.cached_gb = input * 0.5;  // compact dense feature vectors
  w.iterations = 5;
  w.setup_stages = {
      {.name = "load-examples",
       .input_gb = input,
       .cpu_s_per_gb = 2.5,
       .serialization_intensity = 0.4,
       .writes_cache = true,
       .working_set_expansion = 0.6,
       .task_skew = 0.08},
  };
  w.iteration_stages = {
      {.name = "gradient",
       .input_gb = input,
       .shuffle_write_gb = input * 0.05,  // per-partition gradient blocks
       .cpu_s_per_gb = 10.0,
       .serialization_intensity = 0.25,
       .reads_cached = true,
       .broadcast_gb = 0.02,  // weight vector to every executor
       .working_set_expansion = 0.35,
       .task_skew = 0.10},
      {.name = "update-weights",
       .shuffle_read_gb = input * 0.05,
       .cpu_s_per_gb = 2.0,
       .serialization_intensity = 0.4,
       .working_set_expansion = 0.8,
       .task_skew = 0.08},
  };
  return w;
}

WorkloadSpec make_terasort(int dataset) {
  // Table 1: 20 / 30 / 40 GB.
  const double sizes[] = {20.0, 30.0, 40.0};
  const double input = sizes[dataset - 1];
  WorkloadSpec w;
  w.kind = WorkloadKind::kTeraSort;
  w.dataset_label = "D" + std::to_string(dataset);
  w.input_gb = input;
  w.cached_gb = 0.0;
  w.iterations = 1;
  w.setup_stages = {};
  w.iteration_stages = {
      {.name = "map-sort",
       .input_gb = input,
       .shuffle_write_gb = input,
       .cpu_s_per_gb = 4.0,
       .serialization_intensity = 0.9,
       .working_set_expansion = 4.0,  // record objects during in-heap sort
       .task_skew = 0.12},
      {.name = "reduce-write",
       .shuffle_read_gb = input,
       .cpu_s_per_gb = 2.5,
       .serialization_intensity = 0.8,
       .output_gb = input,
       .working_set_expansion = 4.0,
       .task_skew = 0.12},
  };
  return w;
}

}  // namespace

WorkloadSpec make_workload(WorkloadKind kind, int dataset) {
  require(dataset >= 1 && dataset <= 3, "make_workload: dataset must be 1-3");
  switch (kind) {
    case WorkloadKind::kPageRank:
      return make_pagerank(dataset);
    case WorkloadKind::kKMeans:
      return make_kmeans(dataset);
    case WorkloadKind::kConnectedComponents:
      return make_connected_components(dataset);
    case WorkloadKind::kLogisticRegression:
      return make_logistic_regression(dataset);
    case WorkloadKind::kTeraSort:
      return make_terasort(dataset);
  }
  throw InvalidArgument("make_workload: unknown kind");
}

}  // namespace robotune::sparksim
