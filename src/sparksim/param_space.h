// The Spark 2.4 configuration space tuned in the paper: 44 performance-
// related parameters (§5.1), each with a type, range and default value.
//
// Tuners work in the unit hypercube [0,1)^n; ConfigSpace decodes a unit
// vector into concrete parameter values (the paper's "Configuration
// Encoder", §4) and encodes concrete values back for caching/memoization.
#pragma once

#include <cstddef>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "common/error.h"

namespace robotune::sparksim {

enum class ParamKind {
  kInt,         ///< integer in [lo, hi]
  kDouble,      ///< real in [lo, hi]
  kBool,        ///< {false, true}
  kCategorical  ///< one of `categories`
};

struct ParamSpec {
  std::string name;
  ParamKind kind = ParamKind::kDouble;
  double lo = 0.0;                       ///< numeric kinds
  double hi = 1.0;
  bool log_scale = false;                ///< decode on a log grid
  std::vector<std::string> categories;   ///< kCategorical only
  double default_value = 0.0;            ///< in decoded units (category idx)

  /// Decodes a unit-interval coordinate to this parameter's value.
  double decode(double unit) const;
  /// Inverse of decode (clamped); categorical/bool map to bucket centers.
  double encode(double value) const;
  /// Number of distinct values (0 = continuous).
  std::size_t cardinality() const;
};

/// A fully decoded configuration: one double per parameter (ints are
/// integral-valued doubles, bools 0/1, categoricals the category index).
using DecodedConfig = std::vector<double>;

class ConfigSpace {
 public:
  explicit ConfigSpace(std::vector<ParamSpec> specs);

  std::size_t size() const noexcept { return specs_.size(); }
  const ParamSpec& spec(std::size_t i) const { return specs_[i]; }
  std::span<const ParamSpec> specs() const noexcept { return specs_; }

  std::optional<std::size_t> index_of(const std::string& name) const;

  DecodedConfig decode(std::span<const double> unit) const;
  std::vector<double> encode(const DecodedConfig& values) const;

  /// The framework default configuration, decoded (what an untuned user
  /// runs with; §5.2 compares against it).
  DecodedConfig defaults() const;
  /// Same, as a unit vector.
  std::vector<double> default_unit() const;

 private:
  std::vector<ParamSpec> specs_;
};

/// Builds the 44-parameter Spark 2.4 space used throughout the evaluation.
ConfigSpace spark24_config_space();

/// Collinear / dependent parameter groups permuted jointly during MDA
/// importance (paper §3.3 "Handling Collinearity", §4 "joint parameter").
/// Each group lists parameter names; parameters not mentioned form their
/// own singleton group.  Includes the domain-knowledge "executor size"
/// group {spark.executor.cores, spark.executor.memory}.
std::vector<std::vector<std::string>> spark24_joint_parameter_groups();

}  // namespace robotune::sparksim
