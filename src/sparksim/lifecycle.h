// Evaluation-lifecycle primitives: cooperative cancellation and per-stage
// progress streaming for in-flight simulator runs.
//
// A production tuning service does not wait out a doomed trial: it watches
// the run's progress and kills it the moment its partial execution already
// dominates the batch's guard threshold (median rule / successive halving)
// or overruns its deadline.  The simulator supports that lifecycle through
// two cooperating pieces:
//
//  * a `ProgressHook` the engine calls at every stage boundary with the
//    run's simulated-time progress (never wall clock — so every decision
//    derived from it is bit-identical at any worker count);
//  * a `CancellationToken` the watcher side sets and the engine checks at
//    the same boundaries, aborting the run cleanly with partial results
//    (RunStatus::kKilled and the stage_seconds executed so far).
//
// The token is write-once: the first requested KillReason wins, so a
// deadline and a median-rule decision racing each other on the same run
// still yield one deterministic reason (the watcher runs synchronously on
// the evaluating worker, keyed on simulated time only).
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

namespace robotune::sparksim {

/// Why an in-flight evaluation was killed (RunStatus::kKilled).
enum class KillReason {
  kNone,         ///< not killed
  kDeadline,     ///< overran the per-evaluation simulated-time deadline
  kMedianRule,   ///< partial time already dominates the guard threshold
  kHalvingRung,  ///< exceeded its successive-halving rung budget
};

/// Stable, unique label per reason; "unknown" for out-of-range values.
std::string to_string(KillReason reason);
/// Inverse of to_string; nullopt for unrecognized labels.
std::optional<KillReason> kill_reason_from_string(const std::string& label);
/// Every enumerator, in declaration order (round-trip tests iterate this).
const std::vector<KillReason>& all_kill_reasons();

/// Write-once cancellation flag shared between a watcher (who requests a
/// kill) and the engine (who honors it at the next stage boundary).  The
/// first requested reason wins; later requests are ignored.  A request
/// outlives simulator attempts: a retried evaluation whose earlier
/// attempt left an undelivered request is killed at its first boundary.
class CancellationToken {
 public:
  void request(KillReason reason) noexcept {
    if (reason == KillReason::kNone) return;
    int expected = 0;
    requested_.compare_exchange_strong(expected, static_cast<int>(reason),
                                       std::memory_order_relaxed);
  }

  KillReason requested() const noexcept {
    return static_cast<KillReason>(
        requested_.load(std::memory_order_relaxed));
  }

  bool kill_requested() const noexcept {
    return requested() != KillReason::kNone;
  }

  void reset() noexcept {
    requested_.store(0, std::memory_order_relaxed);
  }

 private:
  std::atomic<int> requested_{0};
};

/// Simulated-time progress of a run, reported at every stage boundary.
/// All fields are pre-noise simulated quantities — wall clock never
/// appears, which is what keeps racing decisions worker-count-invariant.
struct StageProgress {
  std::size_t stages_done = 0;   ///< stages completed so far
  std::size_t total_stages = 0;  ///< setup + iterations x iteration stages
  double fraction = 0.0;         ///< stages_done / total_stages
  double sim_elapsed_s = 0.0;    ///< cumulative simulated seconds so far
};

/// Called synchronously by the engine at each stage boundary, on the
/// thread evaluating the run.
using ProgressHook = std::function<void(const StageProgress&)>;

/// Lifecycle attachment for one evaluation: the scheduler wires a token
/// and a progress watcher per in-flight evaluation; a null token (the
/// default) draws no randomness and changes no behavior.
struct EvalLifecycle {
  CancellationToken* token = nullptr;
  ProgressHook progress;
  /// Keys the cancel-delivery chaos site (delayed/dropped cancellation):
  /// the scheduler sets this to the canonical eval index so chaos
  /// decisions are a pure function of (chaos seed, eval index, boundary).
  std::uint64_t chaos_index = 0;
};

}  // namespace robotune::sparksim
