// Deterministic fault injection for the cluster simulator.
//
// Real shared clusters — the setting LOCAT and OnlineTune target — do not
// fail only deterministically (OOM, unplaceable executors): executors are
// preempted or their nodes die, shuffle fetches fail when a map output is
// lost, and straggler/noisy-neighbor nodes slow whole stages down.  A
// `FaultProfile` describes the per-stage probabilities of those transient
// events and a `FaultInjector`, sampled from the run seed on a dedicated
// RNG stream, decides what happens to each stage.
//
// Two invariants the rest of the system relies on:
//  * an all-zero profile is strictly opt-out: the injector draws nothing,
//    so runs are byte-identical to a build without the fault layer;
//  * for a fixed (profile, seed) the event sequence is deterministic —
//    independent of thread count or scheduling — because the injector
//    owns a private RNG derived from the run seed.
//
// Semantics follow Spark's failure handling (see DESIGN.md § failure
// model): tasks lost with an executor are re-queued and the job only dies
// when a task exhausts `spark.task.maxFailures`; a shuffle-fetch failure
// that survives `spark.shuffle.io.maxRetries` triggers a bounded stage
// reattempt; stragglers slow the stage tail and are mitigated by
// speculative execution.
#pragma once

#include <cstdint>
#include <string>

#include "common/rng.h"
#include "sparksim/spark_config.h"

namespace robotune::sparksim {

/// Per-stage probabilities of transient cluster faults.  Default (all
/// rates zero) injects nothing.
struct FaultProfile {
  /// Probability that an executor is lost (preemption, node failure)
  /// during a stage.  Each loss re-queues the executor's running tasks;
  /// repeated losses escalate towards `spark.task.maxFailures`.
  double executor_loss_per_stage = 0.0;
  /// Probability that a reduce stage suffers a shuffle-fetch failure
  /// round after exhausting the configured IO retries.  Consecutive
  /// failed rounds escalate towards `max_stage_attempts`.
  double fetch_failure_per_stage = 0.0;
  /// Probability that a stage lands on a straggler / noisy-neighbor node.
  double straggler_per_stage = 0.0;
  /// Worst-case slowdown of a straggling stage (uniform in
  /// [1, straggler_max_slowdown]); speculation caps the realized factor.
  double straggler_max_slowdown = 3.0;
  /// Bound on stage reattempts after fetch failures (Spark's
  /// spark.stage.maxConsecutiveAttempts default).
  int max_stage_attempts = 4;
  /// Probability that a spot-instance executor is reclaimed by the cloud
  /// provider during a stage.  A preempted executor's tasks are re-queued
  /// and a replacement is acquired at `preemption_reschedule_s`; when the
  /// replacement is itself reclaimed in the same stage the run gives up
  /// (RunStatus::kPreempted, transient — retrying may land on stabler
  /// capacity).  Appended after the original fields so positional
  /// brace-initialized presets keep their meaning.
  double preemption_per_stage = 0.0;
  /// Seconds to acquire and warm a replacement executor after a
  /// preemption (resource-manager round trip + JVM/executor startup).
  double preemption_reschedule_s = 15.0;

  /// True when any fault can actually fire.  Inactive profiles must not
  /// consume randomness anywhere.
  bool active() const noexcept {
    return executor_loss_per_stage > 0.0 || fetch_failure_per_stage > 0.0 ||
           straggler_per_stage > 0.0 || preemption_per_stage > 0.0;
  }

  /// Convenience profile where all three event classes fire at `rate`
  /// (used by the resilience bench to sweep fault intensity).
  static FaultProfile uniform(double rate, double max_slowdown = 3.0);

  /// Named presets for the CLI: "none", "mild", "moderate", "severe".
  /// Returns false for an unknown name.
  static bool from_preset(const std::string& name, FaultProfile& out);
};

/// What the injector decided for one stage.
struct StageFaults {
  /// Consecutive executor-loss events; each re-queues the lost executor's
  /// running tasks.
  int executor_losses = 0;
  /// True when losses reached spark.task.maxFailures: the job dies with
  /// RunStatus::kExecutorLost.
  bool executor_exhausted = false;
  /// Failed shuffle-fetch rounds (each one costs the IO retry waits and a
  /// partial refetch before the stage reattempt succeeds).
  int fetch_retries = 0;
  /// True when fetch failures reached max_stage_attempts: the job dies
  /// with RunStatus::kFetchFailure.
  bool fetch_exhausted = false;
  /// Multiplicative stage slowdown (1.0 = healthy node).
  double straggler_slowdown = 1.0;
  /// Spot-instance preemption events; each re-queues the reclaimed
  /// executor's tasks and pays the reschedule cost.
  int preemptions = 0;
  /// True when the replacement executor was reclaimed too: the run dies
  /// with RunStatus::kPreempted.
  bool preempted = false;

  bool any() const noexcept {
    return executor_losses > 0 || fetch_retries > 0 || executor_exhausted ||
           fetch_exhausted || straggler_slowdown > 1.0 || preemptions > 0 ||
           preempted;
  }
};

/// Samples the fault events of one run.  Owns a private RNG stream derived
/// from the run seed so the engine's noise stream is never perturbed.
class FaultInjector {
 public:
  FaultInjector(const FaultProfile& profile, std::uint64_t run_seed);

  /// Samples the events hitting one stage.  `has_shuffle_read` gates fetch
  /// failures; `config` supplies the mitigation knobs (task.maxFailures,
  /// shuffle.io.maxRetries, speculation).
  StageFaults sample_stage(const SparkConfig& config, bool has_shuffle_read);

  const FaultProfile& profile() const noexcept { return profile_; }

 private:
  FaultProfile profile_;
  Rng rng_;
};

}  // namespace robotune::sparksim
