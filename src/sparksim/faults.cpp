#include "sparksim/faults.h"

#include <algorithm>
#include <cmath>

namespace robotune::sparksim {

FaultProfile FaultProfile::uniform(double rate, double max_slowdown) {
  FaultProfile p;
  p.executor_loss_per_stage = rate;
  p.fetch_failure_per_stage = rate;
  p.straggler_per_stage = std::min(1.0, 2.0 * rate);
  p.straggler_max_slowdown = max_slowdown;
  return p;
}

bool FaultProfile::from_preset(const std::string& name, FaultProfile& out) {
  if (name == "none") {
    out = FaultProfile{};
    return true;
  }
  if (name == "mild") {
    out = FaultProfile{0.01, 0.02, 0.05, 2.0, 4};
    return true;
  }
  if (name == "moderate") {
    out = FaultProfile{0.03, 0.05, 0.10, 3.0, 4};
    return true;
  }
  if (name == "severe") {
    out = FaultProfile{0.08, 0.12, 0.20, 4.0, 4};
    return true;
  }
  return false;
}

FaultInjector::FaultInjector(const FaultProfile& profile,
                             std::uint64_t run_seed)
    // A fixed tweak keeps this stream independent of the engine's noise
    // stream, which is seeded with the raw run seed.
    : profile_(profile), rng_(run_seed ^ 0xfa017c7a11edULL) {}

StageFaults FaultInjector::sample_stage(const SparkConfig& config,
                                        bool has_shuffle_read) {
  StageFaults f;

  // Executor loss: consecutive Bernoulli trials model a task that keeps
  // landing on dying executors; Spark gives up once a single task has
  // failed spark.task.maxFailures times.
  if (profile_.executor_loss_per_stage > 0.0) {
    const int max_failures = std::max(1, config.task_max_failures);
    while (f.executor_losses < max_failures &&
           rng_.bernoulli(profile_.executor_loss_per_stage)) {
      ++f.executor_losses;
    }
    if (f.executor_losses >= max_failures) f.executor_exhausted = true;
  }

  // Shuffle-fetch failure: each configured IO retry halves the chance the
  // transient outage survives long enough to fail the fetch, at the price
  // of the retry waits charged by the engine.  Rounds that still fail
  // trigger a stage reattempt, bounded by max_stage_attempts.
  if (has_shuffle_read && profile_.fetch_failure_per_stage > 0.0) {
    const int extra_retries = std::max(0, config.shuffle_io_max_retries - 3);
    const double p_round = std::clamp(
        profile_.fetch_failure_per_stage * std::pow(0.5, extra_retries), 0.0,
        1.0);
    const int max_attempts = std::max(1, profile_.max_stage_attempts);
    while (f.fetch_retries < max_attempts && rng_.bernoulli(p_round)) {
      ++f.fetch_retries;
    }
    if (f.fetch_retries >= max_attempts) f.fetch_exhausted = true;
  }

  // Straggler / noisy neighbor: the stage lands on a slow node.
  // Speculative execution re-launches the slow tasks elsewhere, capping
  // the realized slowdown near the speculation multiplier.
  if (profile_.straggler_per_stage > 0.0 &&
      rng_.bernoulli(profile_.straggler_per_stage)) {
    double slow =
        rng_.uniform(1.0, std::max(1.0, profile_.straggler_max_slowdown));
    if (config.speculation) {
      slow = std::min(slow, std::max(1.0, config.speculation_multiplier));
    }
    f.straggler_slowdown = slow;
  }

  // Spot-instance preemption: the cloud provider reclaims an executor
  // mid-stage.  One preemption is survivable (re-queue + reschedule cost);
  // when the replacement is reclaimed in the same stage the run gives up
  // and reports kPreempted.  Gated on the rate so profiles without
  // preemption draw nothing here — their event streams (and every
  // pre-preemption session) stay byte-identical.
  if (profile_.preemption_per_stage > 0.0) {
    while (f.preemptions < 2 &&
           rng_.bernoulli(profile_.preemption_per_stage)) {
      ++f.preemptions;
    }
    if (f.preemptions >= 2) f.preempted = true;
  }

  return f;
}

}  // namespace robotune::sparksim
