// The black-box objective f(configuration) -> execution time that every
// tuner optimizes (paper Eq. 1), backed by the cluster simulator.
//
// Evaluation semantics follow §4/§5.1:
//  * every evaluation is capped at `time_cap_s` (the paper uses 480 s);
//  * the caller may pass an additional stop threshold (the guard against
//    bad configurations) — a run crossing it is killed and charged the
//    threshold, and its observed value is the threshold;
//  * failed configurations (OOM / unplaceable) are charged the short time
//    it took them to die and observed as a distinctly bad penalty value so
//    that surrogate models learn to avoid the region.
#pragma once

#include <cstdint>
#include <span>

#include "sparksim/cluster.h"
#include "sparksim/engine.h"
#include "sparksim/param_space.h"
#include "sparksim/spark_config.h"
#include "sparksim/workload.h"

namespace robotune::sparksim {

/// What the tuner minimizes (paper §5.1 "Objective": execution time; the
/// conclusion notes other metrics drop in by replacing the objective).
enum class ObjectiveMetric {
  kExecutionTime,  ///< wall-clock seconds of the run (paper default)
  /// Cluster-share-weighted time: seconds x (granted cores / cluster
  /// cores).  Approximates the job's core-hours bill; favors small-
  /// footprint configurations in multi-tenant clusters.
  kCoreSeconds
};

struct EvalOutcome {
  RunStatus status = RunStatus::kOk;
  /// Observed objective value in seconds (capped / penalized as above).
  double value_s = 0.0;
  /// Wall-clock seconds the evaluation cost the tuning session.
  double cost_s = 0.0;
  /// True when the guard threshold killed the run.
  bool stopped_early = false;
  SimResult raw;
};

class SparkObjective {
 public:
  SparkObjective(ClusterSpec cluster, WorkloadSpec workload,
                 ConfigSpace space, std::uint64_t seed,
                 double time_cap_s = 480.0, double run_noise_sigma = 0.04,
                 ObjectiveMetric metric = ObjectiveMetric::kExecutionTime);

  /// Evaluates a configuration given as a unit-cube vector over the full
  /// space.  `stop_threshold_s` <= 0 disables the per-evaluation guard.
  EvalOutcome evaluate(std::span<const double> unit,
                       double stop_threshold_s = 0.0);

  /// Evaluates a decoded configuration directly (used for the default-
  /// config comparison, §5.2, where no cap applies).
  EvalOutcome evaluate_decoded(const DecodedConfig& values,
                               double stop_threshold_s = 0.0,
                               bool apply_cap = true);

  const ConfigSpace& space() const noexcept { return space_; }
  const WorkloadSpec& workload() const noexcept { return workload_; }
  const ClusterSpec& cluster() const noexcept { return cluster_; }
  double time_cap_s() const noexcept { return time_cap_s_; }
  ObjectiveMetric metric() const noexcept { return metric_; }

  std::size_t evaluations() const noexcept { return evaluations_; }
  double total_cost_s() const noexcept { return total_cost_s_; }
  void reset_counters() {
    evaluations_ = 0;
    total_cost_s_ = 0.0;
  }

 private:
  ClusterSpec cluster_;
  WorkloadSpec workload_;
  ConfigSpace space_;
  Rng seed_stream_;
  double time_cap_s_;
  double run_noise_sigma_;
  ObjectiveMetric metric_;
  std::size_t evaluations_ = 0;
  double total_cost_s_ = 0.0;
};

}  // namespace robotune::sparksim
