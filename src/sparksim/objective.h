// The black-box objective f(configuration) -> execution time that every
// tuner optimizes (paper Eq. 1), backed by the cluster simulator.
//
// Evaluation semantics follow §4/§5.1:
//  * every evaluation is capped at `time_cap_s` (the paper uses 480 s);
//  * the caller may pass an additional stop threshold (the guard against
//    bad configurations) — a run crossing it is killed and charged the
//    threshold, and its observed value is the threshold;
//  * failed configurations (OOM / unplaceable) are charged the short time
//    it took them to die and observed as a distinctly bad penalty value so
//    that surrogate models learn to avoid the region.
//
// Failure resilience (flaky shared clusters): when a FaultProfile is
// attached, runs can also die transiently (executor loss, fetch failure).
// A RetryPolicy re-runs only those transient failures, with exponential
// backoff charged to the session's wall clock.  A transient failure that
// survives every retry is *censored*, not penalized: it observes the kill
// threshold like a guard-stopped run, so flake penalties never poison the
// surrogate models' picture of the configuration space.
#pragma once

#include <cstdint>
#include <span>

#include "sparksim/cluster.h"
#include "sparksim/engine.h"
#include "sparksim/param_space.h"
#include "sparksim/spark_config.h"
#include "sparksim/workload.h"

namespace robotune::sparksim {

/// Derives the private run-seed-stream seed of evaluation `eval_index`
/// in a session whose objective was constructed with `session_seed`.
/// The mixing differs from the objective's sequential stream (a plain
/// SplitMix64 expansion of the seed), so index-derived streams and the
/// sequential stream are statistically independent.
std::uint64_t derive_eval_seed(std::uint64_t session_seed,
                               std::uint64_t eval_index) noexcept;

/// What the tuner minimizes (paper §5.1 "Objective": execution time; the
/// conclusion notes other metrics drop in by replacing the objective).
enum class ObjectiveMetric {
  kExecutionTime,  ///< wall-clock seconds of the run (paper default)
  /// Cluster-share-weighted time: seconds x (granted cores / cluster
  /// cores).  Approximates the job's core-hours bill; favors small-
  /// footprint configurations in multi-tenant clusters.
  kCoreSeconds
};

/// Bounded retries for transient failures.  The default (no retries)
/// keeps evaluation byte-identical to the retry-free pipeline.
struct RetryPolicy {
  /// Extra attempts after a transient failure (0 = fail fast).
  /// Deterministic failures (OOM, unplaceable) always fail fast.
  int max_retries = 0;
  /// Exponential backoff before retry k: base * multiplier^k seconds,
  /// charged to the evaluation's cost_s (the session waits it out).
  double backoff_base_s = 5.0;
  double backoff_multiplier = 2.0;

  double backoff_s(int retry_index) const noexcept {
    double b = backoff_base_s;
    for (int i = 0; i < retry_index; ++i) b *= backoff_multiplier;
    return b;
  }
};

struct EvalOutcome {
  RunStatus status = RunStatus::kOk;
  /// Observed objective value in seconds (capped / penalized as above).
  double value_s = 0.0;
  /// Wall-clock seconds the evaluation cost the tuning session, including
  /// every failed attempt and backoff wait.
  double cost_s = 0.0;
  /// True when the guard threshold killed the run.
  bool stopped_early = false;
  /// Simulator runs performed (1 + retries); equals the seed draws the
  /// evaluation consumed, which checkpoint/resume replays.
  int attempts = 1;
  /// True when the final status is a transient fault that exhausted its
  /// retries — the value is censored at the threshold, not penalized.
  /// Racing/deadline kills (kKilled) are also marked transient so the
  /// same censoring machinery keeps them out of the surrogate models.
  bool transient = false;
  /// Why the run was killed; kNone unless status == kKilled.
  KillReason kill_reason = KillReason::kNone;
  SimResult raw;  ///< last attempt's raw simulation result
};

class SparkObjective {
 public:
  SparkObjective(ClusterSpec cluster, WorkloadSpec workload,
                 ConfigSpace space, std::uint64_t seed,
                 double time_cap_s = 480.0, double run_noise_sigma = 0.04,
                 ObjectiveMetric metric = ObjectiveMetric::kExecutionTime);

  /// Evaluates a configuration given as a unit-cube vector over the full
  /// space.  `stop_threshold_s` <= 0 disables the per-evaluation guard.
  /// `lifecycle` (optional) attaches a progress watcher + cancellation
  /// token to every simulator attempt — see sparksim/lifecycle.h; null
  /// changes nothing.
  EvalOutcome evaluate(std::span<const double> unit,
                       double stop_threshold_s = 0.0,
                       const EvalLifecycle* lifecycle = nullptr);

  /// Evaluates a decoded configuration directly (used for the default-
  /// config comparison, §5.2, where no cap applies).
  EvalOutcome evaluate_decoded(const DecodedConfig& values,
                               double stop_threshold_s = 0.0,
                               bool apply_cap = true,
                               const EvalLifecycle* lifecycle = nullptr);

  /// Attaches transient-fault injection to every subsequent run.  The
  /// default all-zero profile keeps evaluation byte-identical to a
  /// fault-free objective.
  void set_fault_profile(const FaultProfile& profile) {
    fault_profile_ = profile;
  }
  const FaultProfile& fault_profile() const noexcept {
    return fault_profile_;
  }

  void set_retry_policy(const RetryPolicy& policy) { retry_policy_ = policy; }
  const RetryPolicy& retry_policy() const noexcept { return retry_policy_; }

  const ConfigSpace& space() const noexcept { return space_; }
  const WorkloadSpec& workload() const noexcept { return workload_; }
  const ClusterSpec& cluster() const noexcept { return cluster_; }
  double time_cap_s() const noexcept { return time_cap_s_; }
  ObjectiveMetric metric() const noexcept { return metric_; }

  std::size_t evaluations() const noexcept { return evaluations_; }
  double total_cost_s() const noexcept { return total_cost_s_; }

  /// Per-run seeds drawn so far (one per simulator attempt).  Checkpoints
  /// record this so a resumed session can fast-forward to the same point
  /// in the seed stream.
  std::uint64_t seed_draws() const noexcept { return seed_draws_; }
  /// Advances the seed stream by `n` draws without running anything —
  /// used when replaying checkpointed evaluations on resume.
  void skip_seed_draws(std::uint64_t n) {
    for (std::uint64_t i = 0; i < n; ++i) next_run_seed();
  }

  /// Rewinds the objective to its just-constructed state: evaluation and
  /// cost counters AND the internal per-run seed stream.  A reset
  /// objective therefore produces the exact evaluation sequence of a
  /// freshly constructed one with the same seed.
  ///
  /// Interaction with fork_for_eval: forked evaluation streams are
  /// derived from (initial_seed, eval_index), never from the sequential
  /// stream or the counters, so reset_counters() does not change what a
  /// fork at a given index evaluates.  What it does reset is the counter
  /// baseline that merge_fork folds into — callers running a scheduler
  /// session must reset (or not) *before* the first batch, not mid-
  /// session, or the merged totals lose the pre-reset evaluations.
  void reset_counters() {
    evaluations_ = 0;
    total_cost_s_ = 0.0;
    seed_draws_ = 0;
    seed_stream_.reseed(initial_seed_);
  }

  /// Clones the objective for one scheduler-dispatched evaluation: same
  /// cluster/workload/space/cap/noise/faults/retries, but a private run-
  /// seed stream derived from (initial_seed, eval_index) and zeroed
  /// counters.  Forked evaluations are therefore bit-identical for a
  /// given index regardless of worker count or completion order, and two
  /// forks never share writable state (each owns its RNG and counters).
  SparkObjective fork_for_eval(std::uint64_t eval_index) const;

  /// Folds a completed fork's counters back into this objective.  The
  /// scheduler calls this in canonical (eval-index) order after a batch
  /// completes, so evaluations()/total_cost_s() are deterministic even
  /// though the forks ran concurrently.  The sequential seed stream and
  /// seed_draws() are untouched: forks never consume it (their streams
  /// are index-derived), and checkpoint resume of scheduler sessions
  /// skips eval *indices*, not seed draws.
  void merge_fork(const SparkObjective& fork) {
    evaluations_ += fork.evaluations_;
    total_cost_s_ += fork.total_cost_s_;
  }

 private:
  std::uint64_t next_run_seed() {
    ++seed_draws_;
    return seed_stream_();
  }

  ClusterSpec cluster_;
  WorkloadSpec workload_;
  ConfigSpace space_;
  std::uint64_t initial_seed_;
  Rng seed_stream_;
  double time_cap_s_;
  double run_noise_sigma_;
  ObjectiveMetric metric_;
  FaultProfile fault_profile_;
  RetryPolicy retry_policy_;
  std::size_t evaluations_ = 0;
  double total_cost_s_ = 0.0;
  std::uint64_t seed_draws_ = 0;
};

}  // namespace robotune::sparksim
