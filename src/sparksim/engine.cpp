#include "sparksim/engine.h"

#include <algorithm>
#include <cmath>
#include <optional>

#include "common/chaos.h"
#include "common/error.h"

namespace robotune::sparksim {

std::string to_string(RunStatus status) {
  // Exhaustive over the enum: a new enumerator without a label is a
  // -Wswitch warning, which the -Werror CI build turns into a failure
  // (tests/faults_test.cpp round-trips every enumerator as well).
  switch (status) {
    case RunStatus::kOk:
      return "ok";
    case RunStatus::kOom:
      return "oom";
    case RunStatus::kInfeasible:
      return "infeasible";
    case RunStatus::kTimeLimit:
      return "time-limit";
    case RunStatus::kExecutorLost:
      return "executor-lost";
    case RunStatus::kFetchFailure:
      return "fetch-failure";
    case RunStatus::kKilled:
      return "killed";
    case RunStatus::kPreempted:
      return "preempted";
  }
  return "unknown";
}

std::optional<RunStatus> run_status_from_string(const std::string& label) {
  for (RunStatus s : all_run_statuses()) {
    if (to_string(s) == label) return s;
  }
  return std::nullopt;
}

const std::vector<RunStatus>& all_run_statuses() {
  static const std::vector<RunStatus> statuses = {
      RunStatus::kOk,           RunStatus::kOom,
      RunStatus::kInfeasible,   RunStatus::kTimeLimit,
      RunStatus::kExecutorLost, RunStatus::kFetchFailure,
      RunStatus::kKilled,       RunStatus::kPreempted};
  return statuses;
}

bool is_transient(RunStatus status) {
  // kKilled is deliberately NOT transient: a racing/deadline kill is a
  // policy decision about the configuration's projected time, and a
  // retried victim would just be killed again at the same boundary.
  return status == RunStatus::kExecutorLost ||
         status == RunStatus::kFetchFailure ||
         status == RunStatus::kPreempted;
}

namespace {

// (compression ratio, compress s/GB, decompress s/GB) per codec.
struct CodecProfile {
  double ratio;
  double comp_s_per_gb;
  double decomp_s_per_gb;
};

CodecProfile codec_profile(Codec codec, int block_size_kb) {
  CodecProfile p{};
  switch (codec) {
    case Codec::kLz4:
      p = {0.52, 1.6, 0.7};
      break;
    case Codec::kLzf:
      p = {0.60, 2.2, 1.0};
      break;
    case Codec::kSnappy:
      p = {0.58, 1.3, 0.6};
      break;
    case Codec::kZstd:
      p = {0.45, 7.5, 2.0};
      break;
  }
  // Small blocks hurt the ratio slightly and add per-block overhead.
  const double block_penalty =
      0.04 * std::max(0.0, 32.0 / std::max(8, block_size_kb) - 1.0);
  p.ratio = std::min(0.95, p.ratio + block_penalty);
  return p;
}

// Serialization throughput (s/GB) and in-memory expansion of serialized
// forms; Kryo is both faster and denser than Java serialization.
struct SerializerProfile {
  double ser_s_per_gb;
  double deser_s_per_gb;
  double cache_expansion;  // multiplier on deserialized cache footprint
  double gc_churn;         // allocation churn multiplier for GC
};

SerializerProfile serializer_profile(const SparkConfig& c) {
  // Java serialization streams ~70-100 MB/s per core; Kryo is 3-4x faster
  // and produces denser output.
  if (c.serializer == Serializer::kKryo) {
    SerializerProfile p{4.5, 3.5, 0.65, 1.0};
    if (c.kryo_reference_tracking) {
      p.ser_s_per_gb *= 1.18;
      p.deser_s_per_gb *= 1.18;
    }
    // A cramped Kryo buffer forces copies on large records.
    if (c.kryo_buffer_max_mb < 16) {
      p.ser_s_per_gb *= 1.12;
    }
    return p;
  }
  return SerializerProfile{22.0, 16.0, 1.0, 1.3};
}

// Base pause-time factor per collector, scaled by heap size: stop-the-world
// ParallelGC pauses grow with the heap, G1's region-based collection stays
// nearly flat, CMS sits in between.
double gc_base_factor(GcAlgo algo, double heap_gb) {
  switch (algo) {
    case GcAlgo::kParallel:
      return 0.30 * (1.0 + heap_gb / 60.0);
    case GcAlgo::kG1:
      return 0.17 * (1.0 + heap_gb / 400.0);
    case GcAlgo::kCms:
      return 0.23 * (1.0 + heap_gb / 120.0);
  }
  return 0.30;
}

// Inverse CDF of the standard normal (Acklam's rational approximation,
// ~1e-9 absolute error) — used for quantiles of the lognormal task-time
// distribution.
double normal_quantile(double p) {
  p = std::clamp(p, 1e-12, 1.0 - 1e-12);
  static const double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                             -2.759285104469687e+02, 1.383577518672690e+02,
                             -3.066479806614716e+01, 2.506628277459239e+00};
  static const double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                             -1.556989798598866e+02, 6.680131188771972e+01,
                             -1.328068155288572e+01};
  static const double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                             -2.400758277161838e+00, -2.549732539343734e+00,
                             4.374664141464968e+00,  2.938163982698783e+00};
  static const double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                             2.445134137142996e+00, 3.754408661907416e+00};
  const double plow = 0.02425;
  if (p < plow) {
    const double q = std::sqrt(-2.0 * std::log(p));
    return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
            c[5]) /
           ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }
  if (p > 1.0 - plow) {
    const double q = std::sqrt(-2.0 * std::log(1.0 - p));
    return -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
             c[5]) /
           ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }
  const double q = p - 0.5;
  const double r = q * q;
  return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r +
          a[5]) *
         q /
         (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0);
}

// Expected max of k i.i.d. lognormal(−σ²/2, σ) task-time factors, via the
// standard extreme-value approximation E[max] ≈ F⁻¹((k − 0.375)/(k + 0.25)).
// Speculation re-launches tasks slower than multiplier × quantile(q), so the
// wave finishes at that cap instead of the raw maximum.  A small sampled
// perturbation keeps run-to-run straggler variance without making the
// factor unlearnable for surrogate models.
double wave_straggler_factor(std::size_t k, double sigma,
                             const SparkConfig& config, Rng& rng) {
  if (k <= 1) return 1.0;
  const double kd = static_cast<double>(k);
  const double z_max = normal_quantile((kd - 0.375) / (kd + 0.25));
  double factor = std::exp(-0.5 * sigma * sigma + sigma * z_max);
  if (config.speculation) {
    const double zq = normal_quantile(config.speculation_quantile);
    const double cap = std::exp(-0.5 * sigma * sigma + sigma * zq) *
                       config.speculation_multiplier;
    factor = std::min(factor, std::max(1.0, cap));
  }
  // Residual randomness of the realized maximum.
  factor *= rng.lognormal(0.0, 0.03);
  return std::max(1.0, factor);
}

struct MemoryModel {
  double unified_mb = 0.0;        // on-heap unified region per executor
  double offheap_mb = 0.0;        // additional off-heap unified memory
  double storage_target_mb = 0.0; // eviction-protected storage region
  double heap_mb = 0.0;
};

MemoryModel memory_model(const SparkConfig& c) {
  MemoryModel m;
  m.heap_mb = static_cast<double>(c.executor_memory_mb);
  const double usable = std::max(0.0, m.heap_mb - 300.0);
  m.unified_mb = usable * c.memory_fraction;
  m.offheap_mb = c.offheap_enabled ? static_cast<double>(c.offheap_size_mb)
                                   : 0.0;
  m.storage_target_mb =
      (m.unified_mb + m.offheap_mb) * c.memory_storage_fraction;
  return m;
}

}  // namespace

SimResult simulate(const ClusterSpec& cluster, const WorkloadSpec& workload,
                   const SparkConfig& config, std::uint64_t seed,
                   const EngineOptions& options) {
  SimResult result;
  Rng rng(seed);
  // The injector owns a separate RNG stream derived from the same seed, so
  // an inactive profile leaves the main noise stream — and therefore every
  // sampled value of the run — untouched.
  std::optional<FaultInjector> injector;
  if (options.faults.active()) injector.emplace(options.faults, seed);

  const ExecutorPlacement place = place_executors(cluster, config);
  if (place.infeasible) {
    // The resource manager never grants the request; the submission times
    // out quickly at the scheduler.
    result.status = RunStatus::kInfeasible;
    result.seconds = 30.0;
    return result;
  }

  const MemoryModel mem = memory_model(config);
  const SerializerProfile ser = serializer_profile(config);
  const CodecProfile codec =
      codec_profile(config.compression_codec, config.compression_block_size_kb);
  const double cpu_speed = cluster.cpu_speed;

  // ---- Cache residency ---------------------------------------------------
  // Deserialized cache footprint, shrunk by Kryo and/or RDD compression.
  double cache_need_gb = workload.cached_gb * ser.cache_expansion;
  if (config.rdd_compress) cache_need_gb *= codec.ratio * 1.15;
  // Unified model: storage may borrow idle execution memory but is only
  // protected up to storage_target.  Steady-state capacity: the protected
  // region plus whatever execution leaves free.  Execution demand is
  // estimated from the widest iteration stage below; for capacity we use
  // the protected region plus half of the remainder (borrowed space is
  // evicted whenever execution spikes).
  const double pool_mb = mem.unified_mb + mem.offheap_mb;
  const double borrowable_mb =
      0.5 * std::max(0.0, pool_mb - mem.storage_target_mb);
  const double cache_capacity_gb = (mem.storage_target_mb + borrowable_mb) *
                                   static_cast<double>(place.total_executors) /
                                   1024.0;
  double evicted_fraction = 0.0;
  if (cache_need_gb > 1e-9) {
    evicted_fraction =
        std::clamp(1.0 - cache_capacity_gb / cache_need_gb, 0.0, 1.0);
  }
  result.metrics.cache_evicted_fraction = evicted_fraction;

  // Storage memory actually occupied per executor (MB).
  const double storage_used_mb =
      std::min(cache_need_gb * 1024.0 /
                   std::max(1, place.total_executors),
               mem.storage_target_mb + borrowable_mb);
  // Execution memory available per task slot.
  const double exec_pool_mb =
      std::max(16.0, pool_mb - storage_used_mb);
  const double exec_per_slot_mb =
      exec_pool_mb / std::max(1, place.slots_per_executor);

  // ---- GC model -----------------------------------------------------------
  // On-heap occupancy drives pause time superlinearly; off-heap memory and
  // compact serialization relieve it.  Storage and execution usage split
  // between heap and off-heap proportionally to the pool composition, so
  // only the on-heap share pressures the collector.
  const double onheap_share =
      pool_mb > 0.0 ? mem.unified_mb / pool_mb : 1.0;
  const double onheap_used_mb =
      300.0 + std::min(storage_used_mb * onheap_share, mem.unified_mb) +
      std::min(exec_pool_mb * onheap_share, mem.unified_mb) * 0.6;
  const double occupancy = std::clamp(onheap_used_mb / mem.heap_mb, 0.0, 1.0);
  double gc_frac = gc_base_factor(config.gc_algo, mem.heap_mb / 1024.0) *
                   std::pow(occupancy, 3.0) /
                   std::max(0.30, 1.0 - 0.6 * occupancy);
  gc_frac *= ser.gc_churn;
  if (config.rdd_compress) gc_frac *= 0.85;
  gc_frac = std::min(gc_frac, 1.8);
  result.metrics.gc_fraction = gc_frac;

  // ---- Per-stage execution -------------------------------------------------
  const int nodes = std::max(1, cluster.worker_nodes);
  const double slots_per_node =
      static_cast<double>(place.total_slots) / nodes;

  double total_s = 0.0;
  double straggler_accum = 0.0;
  int straggler_waves = 0;

  auto run_stage = [&](const StageModel& stage, bool cache_resident) -> bool {
    // Partition count: input stages follow the HDFS split size; shuffle
    // stages follow spark.default.parallelism.
    int partitions;
    if (stage.shuffle_read_gb > 1e-9) {
      partitions = config.default_parallelism;
    } else {
      partitions = std::max(
          1, static_cast<int>(std::ceil(stage.input_gb * 1024.0 /
                                        config.max_partition_bytes_mb)));
      partitions = std::max(partitions, 1);
    }
    const double stage_gb =
        std::max({stage.input_gb, stage.shuffle_read_gb, 0.001});
    const double part_gb = stage_gb / partitions;
    const double part_mb = part_gb * 1024.0;

    // Working set & OOM / spill checks.  Kryo's compact binary forms shrink
    // shuffle/sort buffers somewhat; deserialized user objects dominate the
    // rest, so the relief is mild.
    const double ws_serializer_relief =
        config.serializer == Serializer::kKryo ? 0.85 : 1.0;
    const double ws_mb =
        part_mb * stage.working_set_expansion * ws_serializer_relief;
    // Spill absorbs moderate overflow; the JVM only dies when a task's
    // working set far exceeds its execution share.
    const double headroom = 2.2;
    if (ws_mb > exec_per_slot_mb * headroom) {
      // Tasks die with OOM; Spark retries task_max_failures times before
      // failing the job.
      const double failure_time =
          10.0 + 4.0 * std::min(config.task_max_failures, 6);
      total_s += failure_time;
      result.failure_stage = stage.name;
      result.status = RunStatus::kOom;
      return false;
    }
    double spill_gb_task = 0.0;
    if (ws_mb > exec_per_slot_mb) {
      // External sort/aggregation: every pass over data that does not fit
      // writes and re-reads it; the pass count grows with the overflow
      // ratio (multi-pass merge).
      const double overflow = ws_mb / std::max(1.0, exec_per_slot_mb);
      const double passes = std::ceil(std::log2(std::max(1.01, overflow)));
      spill_gb_task = part_gb * 2.0 * passes;
    }

    // ---- Per-task time components --------------------------------------
    double cpu_s = part_gb * stage.cpu_s_per_gb / cpu_speed;
    double disk_s = 0.0;
    double net_s = 0.0;

    const double io_concurrency = std::max(
        1.0, std::min<double>(slots_per_node,
                              static_cast<double>(partitions) / nodes));
    const double disk_bw_task =
        cluster.disk_bandwidth_mb_s / io_concurrency;
    double net_bw_task = cluster.network_bandwidth_mb_s / io_concurrency;
    net_bw_task *=
        std::min(1.20, 1.0 + 0.04 * (config.shuffle_connections_per_peer - 1));

    // Input read: cache hit (memory-speed) / miss (disk + reparse) / HDFS.
    if (stage.input_gb > 1e-9) {
      if (stage.reads_cached) {
        const double hit = cache_resident ? (1.0 - evicted_fraction) : 0.0;
        const double miss = 1.0 - hit;
        // Hits: memory scan (decompress if the cache is compressed).
        cpu_s += part_gb * hit * 0.05;
        if (config.rdd_compress) {
          cpu_s += part_gb * hit * codec.decomp_s_per_gb / cpu_speed;
        }
        // Misses: recompute from source — disk read plus re-parse CPU.
        disk_s += part_mb * miss / disk_bw_task;
        cpu_s += part_gb * miss * (1.5 + ser.deser_s_per_gb) / cpu_speed;
      } else {
        disk_s += part_mb / disk_bw_task;
        cpu_s += part_gb * 0.3 / cpu_speed;  // input decode
      }
    }

    // Shuffle write (map side): serialize, compress, write.
    if (stage.shuffle_write_gb > 1e-9) {
      const double sw_gb = stage.shuffle_write_gb / partitions;
      double bytes_gb = sw_gb;
      cpu_s += sw_gb * ser.ser_s_per_gb * stage.serialization_intensity /
               cpu_speed;
      if (config.shuffle_compress) {
        cpu_s += sw_gb * codec.comp_s_per_gb / cpu_speed;
        bytes_gb *= codec.ratio;
      }
      disk_s += bytes_gb * 1024.0 / disk_bw_task;
      // Buffer flush overhead: each flush of the shuffle file buffer costs
      // a small, fixed amount of kernel/IO time.
      const double flushes =
          bytes_gb * 1024.0 * 1024.0 / std::max(8, config.shuffle_file_buffer_kb);
      disk_s += flushes * 6e-5;
    }

    // Shuffle read (reduce side): fetch over network, decompress,
    // deserialize.
    if (stage.shuffle_read_gb > 1e-9) {
      double bytes_gb = part_gb;
      if (config.shuffle_compress) bytes_gb *= codec.ratio;
      double fetch_s = bytes_gb * 1024.0 / net_bw_task;
      // Too little in-flight data stalls the fetch pipeline.
      const double inflight_stall =
          1.0 + 0.25 * std::max(0.0, 24.0 / std::max(
                                          4, config.reducer_max_size_in_flight_mb) -
                                          1.0);
      fetch_s *= inflight_stall;
      net_s += fetch_s;
      if (config.shuffle_compress) {
        cpu_s += part_gb * codec.decomp_s_per_gb / cpu_speed;
      }
      cpu_s += part_gb * ser.deser_s_per_gb * stage.serialization_intensity /
               cpu_speed;
    }

    // Spill IO (optionally compressed).
    if (spill_gb_task > 0.0) {
      double bytes_gb = spill_gb_task;
      if (config.shuffle_spill_compress) {
        cpu_s += spill_gb_task *
                 (codec.comp_s_per_gb + codec.decomp_s_per_gb) * 0.5 /
                 cpu_speed;
        bytes_gb *= codec.ratio;
      }
      disk_s += bytes_gb * 1024.0 / disk_bw_task;
      result.metrics.spill_gb +=
          spill_gb_task * partitions;
    }

    // HDFS output.
    if (stage.output_gb > 1e-9) {
      disk_s += (stage.output_gb / partitions) * 1024.0 / disk_bw_task;
    }

    // Locality: eager scheduling (tiny wait) loses locality on cached /
    // HDFS-local reads; excessive wait idles slots.
    if (config.locality_wait_s < 0.5 && stage.input_gb > 1e-9) {
      disk_s *= 1.10;
      net_s += part_mb * 0.15 / net_bw_task;
    }

    // GC inflates the CPU component.
    cpu_s *= 1.0 + gc_frac;

    const double task_s = cpu_s + disk_s + net_s;

    // ---- Greedy task scheduling -----------------------------------------
    // Spark assigns the next pending task to any freed slot, so the stage
    // makespan follows the list-scheduling bound: total work spread over
    // the slots, plus the straggling tail of the last running tasks.
    const int slots = std::max(1, place.total_slots);
    const int waves = (partitions + slots - 1) / slots;  // reporting only
    const int concurrent = std::min(partitions, slots);
    const double f = wave_straggler_factor(
        static_cast<std::size_t>(concurrent), stage.task_skew, config, rng);
    straggler_accum += f;
    ++straggler_waves;
    const double work_s =
        task_s * static_cast<double>(partitions) / slots;
    const double tail_s = task_s * (f - 1.0);
    double stage_s = std::max(task_s, work_s) + tail_s;
    if (config.speculation) stage_s *= 1.03;  // relaunch overhead
    // Idle time waiting for locality when tasks become schedulable.
    stage_s += waves * 0.02 * std::min(config.locality_wait_s, 4.0);

    // Broadcast variables ship to every executor at stage start.
    if (stage.broadcast_gb > 1e-9) {
      double bcast_gb = stage.broadcast_gb;
      if (config.broadcast_compress) bcast_gb *= codec.ratio;
      const double blocks = std::max(
          1.0, stage.broadcast_gb * 1024.0 / config.broadcast_block_size_mb);
      stage_s += bcast_gb * 1024.0 * place.total_executors /
                     (cluster.network_bandwidth_mb_s * nodes) +
                 blocks * 0.002;
    }

    // Driver / scheduler overhead: task launch bookkeeping is serial-ish,
    // and every live executor adds heartbeat/registration work per stage.
    const double driver_speed = std::min(2, config.driver_cores) == 2 ? 1.3 : 1.0;
    double sched_s = 0.35 + partitions * 0.0035 / driver_speed +
                     place.total_executors * 0.02;
    if (config.fair_scheduler) sched_s *= 1.05;
    stage_s += sched_s;

    // ---- Injected transient faults --------------------------------------
    if (injector) {
      const StageFaults faults =
          injector->sample_stage(config, stage.shuffle_read_gb > 1e-9);
      const double healthy_stage_s = stage_s;
      // Straggler / noisy neighbor: the whole stage runs on a slow node.
      stage_s *= faults.straggler_slowdown;
      // Executor loss: the lost executor's running tasks are re-queued
      // onto the surviving slots (≈ one extra task duration per loss) and
      // the resource manager takes a few seconds to replace the executor.
      if (faults.executor_losses > 0) {
        stage_s += faults.executor_losses * (task_s + 8.0);
        result.metrics.executors_lost += faults.executor_losses;
        result.metrics.task_retries +=
            faults.executor_losses * place.slots_per_executor;
      }
      if (faults.executor_exhausted) {
        // One task failed spark.task.maxFailures times; the job dies after
        // paying for the partial stage and every re-queue round.
        const double failure_time =
            0.5 * healthy_stage_s + faults.executor_losses * (task_s + 8.0);
        total_s += failure_time;
        result.metrics.fault_delay_s += failure_time;
        result.failure_stage = stage.name;
        result.status = RunStatus::kExecutorLost;
        return false;
      }
      // Spot-instance preemption: the reclaimed executor's running tasks
      // are re-queued (≈ one task duration) and a replacement is acquired
      // at the reschedule cost.  When the replacement is reclaimed too,
      // the run gives up after paying for the partial stage — a transient
      // failure: a retry may land on stabler capacity.
      if (faults.preemptions > 0) {
        const double resched_s =
            injector->profile().preemption_reschedule_s;
        stage_s += faults.preemptions * (task_s + resched_s);
        result.metrics.preemptions += faults.preemptions;
        result.metrics.task_retries +=
            faults.preemptions * place.slots_per_executor;
        if (faults.preempted) {
          const double failure_time =
              0.5 * healthy_stage_s +
              faults.preemptions * (task_s + resched_s);
          total_s += failure_time;
          result.metrics.fault_delay_s += failure_time;
          result.failure_stage = stage.name;
          result.status = RunStatus::kPreempted;
          return false;
        }
      }
      // Fetch failure: each failed round burns the configured IO retry
      // waits, then triggers a stage reattempt that recomputes the lost
      // map outputs (≈ half the stage) before refetching.
      if (faults.fetch_retries > 0) {
        const double retry_wait_s =
            static_cast<double>(config.shuffle_io_max_retries) *
            static_cast<double>(config.shuffle_io_retry_wait_s);
        const double reattempt_s =
            faults.fetch_retries * (0.5 * healthy_stage_s + retry_wait_s);
        if (faults.fetch_exhausted) {
          total_s += reattempt_s;
          result.metrics.fault_delay_s += reattempt_s;
          result.failure_stage = stage.name;
          result.status = RunStatus::kFetchFailure;
          return false;
        }
        stage_s += reattempt_s;
        result.metrics.stage_reattempts += faults.fetch_retries;
      }
      result.metrics.fault_delay_s += stage_s - healthy_stage_s;
    }

    result.metrics.cpu_seconds += cpu_s * partitions;
    result.metrics.disk_seconds += disk_s * partitions;
    result.metrics.network_seconds += net_s * partitions;
    result.metrics.scheduler_seconds += sched_s;
    result.metrics.total_tasks += partitions;
    result.metrics.total_waves += waves;

    total_s += stage_s;
    result.stage_seconds.push_back(stage_s);
    return true;
  };

  // ---- Evaluation lifecycle (progress + cooperative cancellation) -------
  // stage_boundary() runs after every completed stage: it streams the
  // run's simulated-time progress to the attached watcher and honors a
  // pending kill request (status kKilled, partial stage_seconds kept).
  // Every quantity it exposes is pre-noise simulated time, so a watcher's
  // decisions are a pure function of (seed, eval index) — never of wall
  // clock or worker count.  The cancel-delivery chaos site models a
  // delayed/dropped kill signal: when it fires, this boundary ignores the
  // request and the next boundary makes its own delivery decision.  With
  // no lifecycle attached (the default) the boundary is a no-op.
  const EvalLifecycle* lifecycle = options.lifecycle;
  const std::size_t total_stages =
      workload.setup_stages.size() +
      static_cast<std::size_t>(std::max(0, workload.iterations)) *
          workload.iteration_stages.size();
  std::size_t stages_done = 0;
  std::uint64_t boundary = 0;
  auto stage_boundary = [&]() -> bool {
    if (lifecycle == nullptr) return true;
    ++boundary;
    if (lifecycle->progress) {
      StageProgress p;
      p.stages_done = stages_done;
      p.total_stages = total_stages;
      p.fraction = total_stages > 0
                       ? static_cast<double>(stages_done) / total_stages
                       : 1.0;
      p.sim_elapsed_s = total_s;
      lifecycle->progress(p);
    }
    if (lifecycle->token != nullptr && lifecycle->token->kill_requested() &&
        !chaos::fail_indexed(
            chaos::Site::kCancelDelivery,
            lifecycle->chaos_index * 0x9e3779b97f4a7c15ULL + boundary)) {
      result.kill_reason = lifecycle->token->requested();
      result.status = RunStatus::kKilled;
      return false;
    }
    return true;
  };

  bool alive = true;
  for (const auto& stage : workload.setup_stages) {
    if (!(alive = run_stage(stage, /*cache_resident=*/false))) break;
    ++stages_done;
    if (options.time_cap_s > 0.0 && total_s > options.time_cap_s) {
      result.status = RunStatus::kTimeLimit;
      alive = false;
      break;
    }
    if (!stage_boundary()) {
      alive = false;
      break;
    }
  }
  if (alive) {
    for (int it = 0; it < workload.iterations && alive; ++it) {
      for (const auto& stage : workload.iteration_stages) {
        if (!(alive = run_stage(stage, /*cache_resident=*/true))) break;
        ++stages_done;
        if (options.time_cap_s > 0.0 && total_s > options.time_cap_s) {
          result.status = RunStatus::kTimeLimit;
          alive = false;
          break;
        }
        if (!stage_boundary()) {
          alive = false;
          break;
        }
      }
    }
  }

  if (straggler_waves > 0) {
    result.metrics.straggler_factor =
        straggler_accum / straggler_waves;
  }

  // Shared-cluster run-to-run noise.
  if (options.run_noise_sigma > 0.0) {
    total_s *= rng.lognormal(-0.5 * options.run_noise_sigma *
                                 options.run_noise_sigma,
                             options.run_noise_sigma);
  }

  // The kill threshold applies to observed wall-clock time, noise included.
  if (options.time_cap_s > 0.0 && result.status == RunStatus::kOk &&
      total_s > options.time_cap_s) {
    result.status = RunStatus::kTimeLimit;
  }
  if (result.status == RunStatus::kTimeLimit && options.time_cap_s > 0.0) {
    total_s = options.time_cap_s;
  }
  result.seconds = total_s;
  return result;
}

}  // namespace robotune::sparksim
