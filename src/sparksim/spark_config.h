// Typed view of a decoded Spark configuration: named fields for every
// parameter the execution model consumes, extracted once from the flat
// DecodedConfig vector.
#pragma once

#include <cstddef>

#include "sparksim/param_space.h"

namespace robotune::sparksim {

enum class Serializer { kJava = 0, kKryo = 1 };
enum class Codec { kLz4 = 0, kLzf = 1, kSnappy = 2, kZstd = 3 };
enum class GcAlgo { kParallel = 0, kG1 = 1, kCms = 2 };

struct SparkConfig {
  // Resources
  int executor_cores = 1;
  int executor_memory_mb = 1024;
  int cores_max = 160;
  int executor_memory_overhead_mb = 384;
  int driver_memory_mb = 1024;
  int driver_cores = 1;
  int task_cpus = 1;
  // Memory
  double memory_fraction = 0.6;
  double memory_storage_fraction = 0.5;
  bool offheap_enabled = false;
  int offheap_size_mb = 0;
  int memory_map_threshold_mb = 2;
  // Shuffle
  bool shuffle_compress = true;
  bool shuffle_spill_compress = true;
  int shuffle_file_buffer_kb = 32;
  int reducer_max_size_in_flight_mb = 48;
  int sort_bypass_merge_threshold = 200;
  int shuffle_connections_per_peer = 1;
  int shuffle_io_max_retries = 3;
  int shuffle_io_retry_wait_s = 5;
  bool shuffle_service_enabled = false;
  // Serialization / compression
  Serializer serializer = Serializer::kJava;
  int kryo_buffer_max_mb = 64;
  bool kryo_reference_tracking = true;
  bool rdd_compress = false;
  Codec compression_codec = Codec::kLz4;
  int compression_block_size_kb = 32;
  bool broadcast_compress = true;
  int broadcast_block_size_mb = 4;
  // Parallelism / scheduling
  int default_parallelism = 128;
  double locality_wait_s = 3.0;
  int scheduler_revive_interval_s = 1;
  bool speculation = false;
  double speculation_multiplier = 1.5;
  double speculation_quantile = 0.75;
  int task_max_failures = 4;
  // Network / misc
  int network_timeout_s = 120;
  bool shuffle_prefer_direct_bufs = true;
  int executor_heartbeat_interval_s = 10;
  bool broadcast_checksum = true;
  int periodic_gc_interval_min = 30;
  int max_partition_bytes_mb = 128;
  GcAlgo gc_algo = GcAlgo::kParallel;
  bool fair_scheduler = false;

  /// Extracts the typed view from a decoded configuration of `space`.
  /// The space must be (or be layout-compatible with) spark24_config_space().
  static SparkConfig from_decoded(const ConfigSpace& space,
                                  const DecodedConfig& values);
};

}  // namespace robotune::sparksim
