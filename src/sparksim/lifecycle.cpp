#include "sparksim/lifecycle.h"

namespace robotune::sparksim {

// Labels are journal/CLI surface (the v3 `kill <index> <reason>` record),
// so they are frozen: renaming one breaks resume of existing journals.
// The switch is exhaustive on purpose — -Wswitch turns a forgotten
// enumerator into a compile error before it can become an "unknown"
// record on disk.
std::string to_string(KillReason reason) {
  switch (reason) {
    case KillReason::kNone:
      return "none";
    case KillReason::kDeadline:
      return "deadline";
    case KillReason::kMedianRule:
      return "median-rule";
    case KillReason::kHalvingRung:
      return "halving-rung";
  }
  return "unknown";
}

std::optional<KillReason> kill_reason_from_string(const std::string& label) {
  for (const KillReason reason : all_kill_reasons()) {
    if (label == to_string(reason)) return reason;
  }
  return std::nullopt;
}

const std::vector<KillReason>& all_kill_reasons() {
  static const std::vector<KillReason> kAll = {
      KillReason::kNone,
      KillReason::kDeadline,
      KillReason::kMedianRule,
      KillReason::kHalvingRung,
  };
  return kAll;
}

}  // namespace robotune::sparksim
