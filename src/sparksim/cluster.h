// Cluster hardware model and executor placement.
//
// Mirrors the paper's testbed (§5.1): five worker nodes, each with two
// 16-core 2.1 GHz Xeons (32 cores), 192 GB RAM, one 7200-RPM disk, and
// 10 GbE between nodes.
#pragma once

#include <cstddef>

#include "sparksim/spark_config.h"

namespace robotune::sparksim {

struct ClusterSpec {
  int worker_nodes = 5;
  int cores_per_node = 32;
  int memory_per_node_mb = 192 * 1024;
  /// Memory reserved for OS + HDFS datanode per worker.
  int reserved_memory_mb = 8 * 1024;
  /// Sequential bandwidth of the single 7200-RPM disk.
  double disk_bandwidth_mb_s = 140.0;
  /// Random/seek-bound effective bandwidth (many small files).
  double disk_seek_penalty_ms = 8.0;
  /// 10 GbE, realistic goodput.
  double network_bandwidth_mb_s = 1100.0;
  /// Relative CPU speed factor (1.0 = the paper's 2.1 GHz Xeon Gold 6130).
  double cpu_speed = 1.0;

  int total_cores() const noexcept { return worker_nodes * cores_per_node; }
  int usable_memory_per_node_mb() const noexcept {
    return memory_per_node_mb - reserved_memory_mb;
  }

  /// The paper's six-node (1 master + 5 workers) NoleLand-style testbed.
  static ClusterSpec paper_testbed() { return ClusterSpec{}; }
};

/// Result of packing executors onto the cluster under a configuration.
struct ExecutorPlacement {
  int executors_per_node = 0;
  int total_executors = 0;
  int slots_per_executor = 0;  ///< concurrent tasks per executor
  int total_slots = 0;
  /// Fraction of node CPU left idle by the packing (0 = perfectly packed).
  double wasted_core_fraction = 0.0;
  /// Fraction of node memory unused.
  double wasted_memory_fraction = 0.0;
  /// True when the configuration cannot place even a single executor
  /// (request exceeds node capacity).
  bool infeasible = false;
};

/// Packs executors greedily: per node,
///   min(cores/executor_cores, usable_mem/(heap + overhead + offheap))
/// executors, globally capped by spark.cores.max.
ExecutorPlacement place_executors(const ClusterSpec& cluster,
                                  const SparkConfig& config);

}  // namespace robotune::sparksim
