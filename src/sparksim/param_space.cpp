#include "sparksim/param_space.h"

#include <algorithm>
#include <cmath>

namespace robotune::sparksim {

double ParamSpec::decode(double unit) const {
  unit = std::clamp(unit, 0.0, 1.0 - 1e-12);
  switch (kind) {
    case ParamKind::kDouble: {
      if (log_scale) {
        const double ll = std::log(lo);
        return std::exp(ll + unit * (std::log(hi) - ll));
      }
      return lo + unit * (hi - lo);
    }
    case ParamKind::kInt: {
      if (log_scale) {
        const double ll = std::log(std::max(lo, 1.0));
        const double v = std::exp(ll + unit * (std::log(hi) - ll));
        return std::clamp(std::round(v), lo, hi);
      }
      const double span = hi - lo + 1.0;
      return std::clamp(lo + std::floor(unit * span), lo, hi);
    }
    case ParamKind::kBool:
      return unit < 0.5 ? 0.0 : 1.0;
    case ParamKind::kCategorical: {
      const auto k = static_cast<double>(categories.size());
      return std::clamp(std::floor(unit * k), 0.0, k - 1.0);
    }
  }
  return 0.0;
}

double ParamSpec::encode(double value) const {
  switch (kind) {
    case ParamKind::kDouble: {
      if (log_scale) {
        const double ll = std::log(lo);
        return std::clamp((std::log(value) - ll) / (std::log(hi) - ll), 0.0,
                          1.0 - 1e-12);
      }
      return std::clamp((value - lo) / (hi - lo), 0.0, 1.0 - 1e-12);
    }
    case ParamKind::kInt: {
      if (log_scale) {
        const double ll = std::log(std::max(lo, 1.0));
        return std::clamp((std::log(std::max(value, 1.0)) - ll) /
                              (std::log(hi) - ll),
                          0.0, 1.0 - 1e-12);
      }
      const double span = hi - lo + 1.0;
      return std::clamp((value - lo + 0.5) / span, 0.0, 1.0 - 1e-12);
    }
    case ParamKind::kBool:
      return value >= 0.5 ? 0.75 : 0.25;
    case ParamKind::kCategorical: {
      const auto k = static_cast<double>(categories.size());
      return std::clamp((value + 0.5) / k, 0.0, 1.0 - 1e-12);
    }
  }
  return 0.0;
}

std::size_t ParamSpec::cardinality() const {
  switch (kind) {
    case ParamKind::kDouble:
      return 0;
    case ParamKind::kInt:
      return log_scale ? 0 : static_cast<std::size_t>(hi - lo + 1.0);
    case ParamKind::kBool:
      return 2;
    case ParamKind::kCategorical:
      return categories.size();
  }
  return 0;
}

ConfigSpace::ConfigSpace(std::vector<ParamSpec> specs)
    : specs_(std::move(specs)) {
  require(!specs_.empty(), "ConfigSpace: no parameters");
  for (const auto& s : specs_) {
    if (s.kind == ParamKind::kCategorical) {
      require(!s.categories.empty(), "ConfigSpace: empty category list");
    } else if (s.kind != ParamKind::kBool) {
      require(s.lo <= s.hi, "ConfigSpace: inverted range for " + s.name);
      if (s.log_scale) {
        require(s.lo > 0.0 || s.kind == ParamKind::kInt,
                "ConfigSpace: log scale needs positive lower bound");
      }
    }
  }
}

std::optional<std::size_t> ConfigSpace::index_of(
    const std::string& name) const {
  for (std::size_t i = 0; i < specs_.size(); ++i) {
    if (specs_[i].name == name) return i;
  }
  return std::nullopt;
}

DecodedConfig ConfigSpace::decode(std::span<const double> unit) const {
  require(unit.size() == specs_.size(), "ConfigSpace::decode: size mismatch");
  DecodedConfig out(specs_.size());
  for (std::size_t i = 0; i < specs_.size(); ++i) {
    out[i] = specs_[i].decode(unit[i]);
  }
  return out;
}

std::vector<double> ConfigSpace::encode(const DecodedConfig& values) const {
  require(values.size() == specs_.size(),
          "ConfigSpace::encode: size mismatch");
  std::vector<double> out(specs_.size());
  for (std::size_t i = 0; i < specs_.size(); ++i) {
    out[i] = specs_[i].encode(values[i]);
  }
  return out;
}

DecodedConfig ConfigSpace::defaults() const {
  DecodedConfig out(specs_.size());
  for (std::size_t i = 0; i < specs_.size(); ++i) {
    out[i] = specs_[i].default_value;
  }
  return out;
}

std::vector<double> ConfigSpace::default_unit() const {
  return encode(defaults());
}

ConfigSpace spark24_config_space() {
  using K = ParamKind;
  std::vector<ParamSpec> p;
  p.reserve(44);
  auto add = [&p](ParamSpec spec) { p.push_back(std::move(spec)); };

  // --- Executor / driver resources ------------------------------------
  add({.name = "spark.executor.cores", .kind = K::kInt, .lo = 1, .hi = 32,
       .default_value = 1});
  // Tuned range is 8-180 GB (§5.1); the 1 GB framework default sits below
  // it, which is exactly why the default OOMs resource-hungry workloads.
  add({.name = "spark.executor.memory.mb", .kind = K::kInt, .lo = 8192,
       .hi = 184320, .log_scale = true, .default_value = 1024});
  // Standalone deployments cap an application's total cores with
  // spark.cores.max (the cluster grants executors until the cap or the
  // cluster is exhausted); the default grants everything.
  add({.name = "spark.cores.max", .kind = K::kInt, .lo = 16, .hi = 160,
       .default_value = 160});
  add({.name = "spark.executor.memoryOverhead.mb", .kind = K::kInt, .lo = 384,
       .hi = 8192, .log_scale = true, .default_value = 384});
  add({.name = "spark.driver.memory.mb", .kind = K::kInt, .lo = 1024,
       .hi = 32768, .log_scale = true, .default_value = 1024});
  add({.name = "spark.driver.cores", .kind = K::kInt, .lo = 1, .hi = 8,
       .default_value = 1});
  add({.name = "spark.task.cpus", .kind = K::kInt, .lo = 1, .hi = 4,
       .default_value = 1});

  // --- Memory management ----------------------------------------------
  add({.name = "spark.memory.fraction", .kind = K::kDouble, .lo = 0.3,
       .hi = 0.9, .default_value = 0.6});
  add({.name = "spark.memory.storageFraction", .kind = K::kDouble, .lo = 0.1,
       .hi = 0.9, .default_value = 0.5});
  add({.name = "spark.memory.offHeap.enabled", .kind = K::kBool,
       .default_value = 0});
  add({.name = "spark.memory.offHeap.size.mb", .kind = K::kInt, .lo = 0,
       .hi = 32768, .default_value = 0});
  add({.name = "spark.storage.memoryMapThreshold.mb", .kind = K::kInt,
       .lo = 1, .hi = 16, .default_value = 2});

  // --- Shuffle ----------------------------------------------------------
  add({.name = "spark.shuffle.compress", .kind = K::kBool,
       .default_value = 1});
  add({.name = "spark.shuffle.spill.compress", .kind = K::kBool,
       .default_value = 1});
  add({.name = "spark.shuffle.file.buffer.kb", .kind = K::kInt, .lo = 16,
       .hi = 256, .log_scale = true, .default_value = 32});
  add({.name = "spark.reducer.maxSizeInFlight.mb", .kind = K::kInt, .lo = 16,
       .hi = 256, .log_scale = true, .default_value = 48});
  add({.name = "spark.shuffle.sort.bypassMergeThreshold", .kind = K::kInt,
       .lo = 100, .hi = 1000, .default_value = 200});
  add({.name = "spark.shuffle.io.numConnectionsPerPeer", .kind = K::kInt,
       .lo = 1, .hi = 8, .default_value = 1});
  add({.name = "spark.shuffle.io.maxRetries", .kind = K::kInt, .lo = 1,
       .hi = 10, .default_value = 3});
  add({.name = "spark.shuffle.io.retryWait.s", .kind = K::kInt, .lo = 1,
       .hi = 30, .default_value = 5});
  add({.name = "spark.shuffle.service.enabled", .kind = K::kBool,
       .default_value = 0});

  // --- Serialization / compression --------------------------------------
  add({.name = "spark.serializer",
       .kind = K::kCategorical,
       .categories = {"JavaSerializer", "KryoSerializer"},
       .default_value = 0});
  add({.name = "spark.kryoserializer.buffer.max.mb", .kind = K::kInt, .lo = 8,
       .hi = 128, .log_scale = true, .default_value = 64});
  add({.name = "spark.kryo.referenceTracking", .kind = K::kBool,
       .default_value = 1});
  add({.name = "spark.rdd.compress", .kind = K::kBool, .default_value = 0});
  add({.name = "spark.io.compression.codec",
       .kind = K::kCategorical,
       .categories = {"lz4", "lzf", "snappy", "zstd"},
       .default_value = 0});
  add({.name = "spark.io.compression.blockSize.kb", .kind = K::kInt, .lo = 16,
       .hi = 128, .log_scale = true, .default_value = 32});
  add({.name = "spark.broadcast.compress", .kind = K::kBool,
       .default_value = 1});
  add({.name = "spark.broadcast.blockSize.mb", .kind = K::kInt, .lo = 1,
       .hi = 16, .default_value = 4});

  // --- Parallelism / scheduling ------------------------------------------
  add({.name = "spark.default.parallelism", .kind = K::kInt, .lo = 8,
       .hi = 1000, .log_scale = true, .default_value = 128});
  add({.name = "spark.locality.wait.s", .kind = K::kDouble, .lo = 0.0,
       .hi = 10.0, .default_value = 3.0});
  add({.name = "spark.scheduler.reviveInterval.s", .kind = K::kInt, .lo = 1,
       .hi = 5, .default_value = 1});
  add({.name = "spark.speculation", .kind = K::kBool, .default_value = 0});
  add({.name = "spark.speculation.multiplier", .kind = K::kDouble, .lo = 1.1,
       .hi = 3.0, .default_value = 1.5});
  add({.name = "spark.speculation.quantile", .kind = K::kDouble, .lo = 0.5,
       .hi = 0.95, .default_value = 0.75});
  add({.name = "spark.task.maxFailures", .kind = K::kInt, .lo = 1, .hi = 8,
       .default_value = 4});

  // --- Network / misc -----------------------------------------------------
  add({.name = "spark.network.timeout.s", .kind = K::kInt, .lo = 60, .hi = 600,
       .default_value = 120});
  add({.name = "spark.shuffle.io.preferDirectBufs", .kind = K::kBool,
       .default_value = 1});
  add({.name = "spark.executor.heartbeatInterval.s", .kind = K::kInt, .lo = 5,
       .hi = 60, .default_value = 10});
  add({.name = "spark.broadcast.checksum", .kind = K::kBool,
       .default_value = 1});
  add({.name = "spark.cleaner.periodicGC.interval.min", .kind = K::kInt,
       .lo = 10, .hi = 60, .default_value = 30});
  add({.name = "spark.files.maxPartitionBytes.mb", .kind = K::kInt, .lo = 32,
       .hi = 512, .log_scale = true, .default_value = 128});
  add({.name = "spark.executor.gc",
       .kind = K::kCategorical,
       .categories = {"ParallelGC", "G1GC", "ConcMarkSweepGC"},
       .default_value = 0});
  add({.name = "spark.scheduler.mode",
       .kind = K::kCategorical,
       .categories = {"FIFO", "FAIR"},
       .default_value = 0});

  return ConfigSpace(std::move(p));
}

std::vector<std::vector<std::string>> spark24_joint_parameter_groups() {
  return {
      // Domain knowledge: executor *size* is one knob (paper §4).
      {"spark.executor.cores", "spark.executor.memory.mb"},
      // Dependent parameters: only meaningful when the leader is active.
      {"spark.memory.offHeap.enabled", "spark.memory.offHeap.size.mb"},
      {"spark.speculation", "spark.speculation.multiplier",
       "spark.speculation.quantile"},
      {"spark.serializer", "spark.kryoserializer.buffer.max.mb",
       "spark.kryo.referenceTracking"},
      {"spark.io.compression.codec", "spark.io.compression.blockSize.kb"},
      {"spark.shuffle.io.maxRetries", "spark.shuffle.io.retryWait.s"},
  };
}

}  // namespace robotune::sparksim
