// End-of-session reporting over the metrics registry and tracer: a
// machine-readable JSON export and a human-readable summary table.
//
// Both consumers keep the determinism split explicit: the JSON document
// has separate "logical" and "runtime" sections, and the summary table
// labels its wall-clock block non-deterministic.  This module is plain
// data-shuffling over snapshots, so it compiles identically with
// ROBOTUNE_OBS=OFF (everything is simply empty).
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace robotune::obs {

/// Serializes a snapshot as JSON: {"logical": {...}, "runtime": {...}}
/// with counters/gauges/histograms per section.  The runtime section is
/// annotated as scheduling-dependent.
void write_metrics_json(const MetricsSnapshot& snapshot, std::ostream& out);

/// File wrapper (temp file + rename); false when the path is unwritable,
/// leaving no partial file behind.
bool write_metrics_file(const MetricsSnapshot& snapshot,
                        const std::string& path);

/// Renders the end-of-session summary table: logical counts (guard
/// kills, retries, censored evaluations, memoization hits, hedge
/// selections), the simulated eval-latency histogram, and per-phase
/// wall-clock aggregates from the spans (labelled NON-deterministic).
std::string render_summary(const MetricsSnapshot& snapshot,
                           const std::vector<SpanRecord>& spans);

}  // namespace robotune::obs
