#include "obs/summary.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <map>
#include <ostream>
#include <sstream>

namespace robotune::obs {

namespace {

std::string format_double(double value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6g", value);
  return buf;
}

void write_section(std::ostream& out, const MetricsSnapshot& section) {
  out << "{\"counters\":{";
  bool first = true;
  for (const auto& [name, v] : section.counters) {
    if (!first) out << ",";
    first = false;
    out << "\"" << json_escape(name) << "\":" << v;
  }
  out << "},\"gauges\":{";
  first = true;
  for (const auto& [name, v] : section.gauges) {
    if (!first) out << ",";
    first = false;
    out << "\"" << json_escape(name) << "\":" << format_double(v);
  }
  out << "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : section.histograms) {
    if (!first) out << ",";
    first = false;
    out << "\"" << json_escape(name) << "\":{\"bounds\":[";
    for (std::size_t i = 0; i < h.bounds.size(); ++i) {
      if (i > 0) out << ",";
      out << format_double(h.bounds[i]);
    }
    out << "],\"counts\":[";
    for (std::size_t i = 0; i < h.counts.size(); ++i) {
      if (i > 0) out << ",";
      out << h.counts[i];
    }
    out << "],\"total\":" << h.total << "}";
  }
  out << "}}";
}

/// A counter's value, or 0 when it never fired.
std::uint64_t counter_or_zero(const MetricsSnapshot& snapshot,
                              const std::string& name) {
  const auto it = snapshot.counters.find(name);
  return it == snapshot.counters.end() ? 0 : it->second;
}

void append_line(std::string& out, const std::string& label,
                 const std::string& value) {
  out += "  ";
  out += label;
  if (label.size() < 38) out += std::string(38 - label.size(), '.');
  out += " ";
  out += value;
  out += "\n";
}

}  // namespace

void write_metrics_json(const MetricsSnapshot& snapshot, std::ostream& out) {
  out << "{\"logical\":";
  write_section(out, snapshot.logical());
  out << ",\"runtime\":";
  write_section(out, snapshot.runtime());
  out << ",\"note\":\"logical metrics are deterministic for any worker "
         "count; runtime metrics are scheduling-dependent\"}\n";
}

bool write_metrics_file(const MetricsSnapshot& snapshot,
                        const std::string& path) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::trunc);
    if (!out) return false;
    write_metrics_json(snapshot, out);
    if (!out) {
      out.close();
      std::remove(tmp.c_str());
      return false;
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return false;
  }
  return true;
}

std::string render_summary(const MetricsSnapshot& snapshot,
                           const std::vector<SpanRecord>& spans) {
  std::string out;
  out += "== observability summary "
         "==============================================\n";
  out += "-- logical metrics (deterministic for any --parallel) --\n";
  append_line(out, "evaluations",
              std::to_string(counter_or_zero(snapshot, "evals.total")));
  append_line(out, "  ok",
              std::to_string(counter_or_zero(snapshot, "evals.ok")));
  append_line(out, "  guard kills",
              std::to_string(counter_or_zero(snapshot, "evals.guard_kills")));
  append_line(out, "  failed (oom/unplaceable)",
              std::to_string(counter_or_zero(snapshot, "evals.failed")));
  append_line(out, "  censored (transient)",
              std::to_string(counter_or_zero(snapshot, "evals.censored")));
  append_line(out, "retried attempts",
              std::to_string(counter_or_zero(snapshot, "evals.retries")));
  append_line(
      out, "simulator attempts",
      std::to_string(counter_or_zero(snapshot, "objective.attempts")));
  append_line(
      out, "memo: selection cache hits",
      std::to_string(
          counter_or_zero(snapshot, "memo.selection_cache.hits")) +
          " / " +
          std::to_string(
              counter_or_zero(snapshot, "memo.selection_cache.hits") +
              counter_or_zero(snapshot, "memo.selection_cache.misses")) +
          " lookups");
  append_line(
      out, "memo: config buffer hits",
      std::to_string(counter_or_zero(snapshot, "memo.configs.hits")) + " / " +
          std::to_string(counter_or_zero(snapshot, "memo.configs.hits") +
                         counter_or_zero(snapshot, "memo.configs.misses")) +
          " lookups");
  append_line(
      out, "hedge selections (PI | EI | LCB)",
      std::to_string(counter_or_zero(snapshot, "bo.hedge.selected.PI")) +
          " | " +
          std::to_string(counter_or_zero(snapshot, "bo.hedge.selected.EI")) +
          " | " +
          std::to_string(counter_or_zero(snapshot, "bo.hedge.selected.LCB")));

  const auto hist = snapshot.histograms.find("evals.value_s");
  if (hist != snapshot.histograms.end() && hist->second.total > 0) {
    out += "  eval latency histogram (simulated seconds):\n";
    const auto& h = hist->second;
    const std::uint64_t peak =
        *std::max_element(h.counts.begin(), h.counts.end());
    for (std::size_t i = 0; i < h.counts.size(); ++i) {
      if (h.counts[i] == 0) continue;
      char label[64];
      if (i == 0) {
        std::snprintf(label, sizeof(label), "<= %g s", h.bounds[0]);
      } else if (i == h.bounds.size()) {
        std::snprintf(label, sizeof(label), "> %g s",
                      h.bounds[h.bounds.size() - 1]);
      } else {
        std::snprintf(label, sizeof(label), "(%g, %g] s", h.bounds[i - 1],
                      h.bounds[i]);
      }
      char line[128];
      const int bar_len = static_cast<int>(
          peak == 0 ? 0 : (40 * h.counts[i] + peak - 1) / peak);
      std::snprintf(line, sizeof(line), "    %-14s %6llu  %s\n", label,
                    static_cast<unsigned long long>(h.counts[i]),
                    std::string(static_cast<std::size_t>(bar_len), '#')
                        .c_str());
      out += line;
    }
  }

  out += "-- wall clock (NON-deterministic: timing only, never results) "
         "--\n";
  struct PhaseAgg {
    std::uint64_t count = 0;
    std::int64_t total_us = 0;
  };
  std::map<std::string, PhaseAgg> phases;
  for (const auto& span : spans) {
    auto& agg = phases[span.name];
    agg.count += 1;
    agg.total_us += span.dur_us;
  }
  if (phases.empty()) {
    out += "  (no spans recorded; run with tracing enabled)\n";
  } else {
    char header[128];
    std::snprintf(header, sizeof(header), "  %-24s %8s %12s %12s\n", "phase",
                  "count", "total ms", "mean ms");
    out += header;
    for (const auto& [name, agg] : phases) {
      char line[160];
      const double total_ms = static_cast<double>(agg.total_us) / 1000.0;
      std::snprintf(line, sizeof(line), "  %-24s %8llu %12.2f %12.3f\n",
                    name.c_str(),
                    static_cast<unsigned long long>(agg.count), total_ms,
                    agg.count == 0 ? 0.0
                                   : total_ms / static_cast<double>(agg.count));
      out += line;
    }
  }
  out += "================================================================="
         "======\n";
  return out;
}

}  // namespace robotune::obs
