#include "obs/metrics.h"

#include <algorithm>
#include <atomic>

namespace robotune::obs {

namespace {

MetricsSnapshot filter_snapshot(const MetricsSnapshot& in, bool runtime) {
  MetricsSnapshot out;
  for (const auto& [name, v] : in.counters) {
    if (is_runtime_metric(name) == runtime) out.counters.emplace(name, v);
  }
  for (const auto& [name, v] : in.gauges) {
    if (is_runtime_metric(name) == runtime) out.gauges.emplace(name, v);
  }
  for (const auto& [name, v] : in.histograms) {
    if (is_runtime_metric(name) == runtime) out.histograms.emplace(name, v);
  }
  return out;
}

}  // namespace

MetricsSnapshot MetricsSnapshot::logical() const {
  return filter_snapshot(*this, /*runtime=*/false);
}

MetricsSnapshot MetricsSnapshot::runtime() const {
  return filter_snapshot(*this, /*runtime=*/true);
}

const std::vector<double>& seconds_buckets() {
  static const std::vector<double> bounds = {0.5, 1.0,   2.0,   5.0,  10.0,
                                             20.0, 50.0, 100.0, 200.0, 480.0,
                                             600.0, 1200.0};
  return bounds;
}

#if ROBOTUNE_OBS_ENABLED

struct MetricsRegistry::Shard {
  std::map<std::string, std::uint64_t, std::less<>> counters;
  std::map<std::string, HistogramData, std::less<>> histograms;

  void clear() {
    counters.clear();
    histograms.clear();
  }
};

namespace {

std::uint64_t next_registry_id() {
  static std::atomic<std::uint64_t> counter{1};
  return counter.fetch_add(1, std::memory_order_relaxed);
}

/// One thread-local entry per (thread, registry) pair.  Keyed by the
/// registry's process-unique id — never its address — so a registry
/// destroyed and another allocated at the same address can never pick up
/// a stale shard.  The registry owns the shard (shared_ptr), so a thread
/// exiting never invalidates data a later snapshot() needs.
struct TlsEntry {
  std::uint64_t registry_id = 0;
  MetricsRegistry::Shard* shard = nullptr;
};
thread_local std::vector<TlsEntry> tls_shards;

void bucket_observe(HistogramData& h, double value,
                    const std::vector<double>& bounds) {
  if (h.bounds.empty()) {
    h.bounds = bounds;
    h.counts.assign(bounds.size() + 1, 0);
  }
  const auto it =
      std::lower_bound(h.bounds.begin(), h.bounds.end(), value);
  h.counts[static_cast<std::size_t>(it - h.bounds.begin())] += 1;
  h.total += 1;
}

}  // namespace

MetricsRegistry::MetricsRegistry() : id_(next_registry_id()) {}

MetricsRegistry::~MetricsRegistry() = default;

MetricsRegistry::Shard& MetricsRegistry::local_shard() {
  for (const auto& entry : tls_shards) {
    if (entry.registry_id == id_) return *entry.shard;
  }
  auto shard = std::make_shared<Shard>();
  {
    std::scoped_lock lock(mutex_);
    shards_.push_back(shard);
  }
  tls_shards.push_back({id_, shard.get()});
  return *shard;
}

void MetricsRegistry::add(std::string_view name, std::uint64_t delta) {
  auto& counters = local_shard().counters;
  const auto it = counters.find(name);
  if (it != counters.end()) {
    it->second += delta;
  } else {
    counters.emplace(std::string(name), delta);
  }
}

void MetricsRegistry::set_gauge(std::string_view name, double value) {
  std::scoped_lock lock(mutex_);
  const auto it = gauges_.find(name);
  if (it != gauges_.end()) {
    it->second = value;
  } else {
    gauges_.emplace(std::string(name), value);
  }
}

void MetricsRegistry::observe(std::string_view name, double value) {
  observe(name, value, seconds_buckets());
}

void MetricsRegistry::observe(std::string_view name, double value,
                              const std::vector<double>& bounds) {
  auto& histograms = local_shard().histograms;
  const auto it = histograms.find(name);
  if (it != histograms.end()) {
    bucket_observe(it->second, value, bounds);
  } else {
    bucket_observe(histograms.emplace(std::string(name), HistogramData{})
                       .first->second,
                   value, bounds);
  }
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  MetricsSnapshot out;
  std::scoped_lock lock(mutex_);
  for (const auto& shard : shards_) {
    for (const auto& [name, v] : shard->counters) out.counters[name] += v;
    for (const auto& [name, h] : shard->histograms) {
      auto& merged = out.histograms[name];
      if (merged.bounds.empty()) {
        merged.bounds = h.bounds;
        merged.counts.assign(h.counts.size(), 0);
      }
      // Every call site uses one fixed bound set per name, so shard
      // layouts agree; integer bucket sums make the merge canonical.
      for (std::size_t i = 0;
           i < std::min(merged.counts.size(), h.counts.size()); ++i) {
        merged.counts[i] += h.counts[i];
      }
      merged.total += h.total;
    }
  }
  for (const auto& [name, v] : gauges_) out.gauges.emplace(name, v);
  return out;
}

void MetricsRegistry::reset() {
  std::scoped_lock lock(mutex_);
  for (const auto& shard : shards_) shard->clear();
  gauges_.clear();
}

#endif  // ROBOTUNE_OBS_ENABLED

MetricsRegistry& metrics() {
  static MetricsRegistry registry;
  return registry;
}

}  // namespace robotune::obs
