#include "obs/metrics.h"

#include <algorithm>
#include <atomic>

namespace robotune::obs {

namespace {

MetricsSnapshot filter_snapshot(const MetricsSnapshot& in, bool runtime) {
  MetricsSnapshot out;
  for (const auto& [name, v] : in.counters) {
    if (is_runtime_metric(name) == runtime) out.counters.emplace(name, v);
  }
  for (const auto& [name, v] : in.gauges) {
    if (is_runtime_metric(name) == runtime) out.gauges.emplace(name, v);
  }
  for (const auto& [name, v] : in.histograms) {
    if (is_runtime_metric(name) == runtime) out.histograms.emplace(name, v);
  }
  return out;
}

}  // namespace

MetricsSnapshot MetricsSnapshot::logical() const {
  return filter_snapshot(*this, /*runtime=*/false);
}

MetricsSnapshot MetricsSnapshot::runtime() const {
  return filter_snapshot(*this, /*runtime=*/true);
}

std::string session_prefix(std::uint64_t session_id) {
  return std::string(kSessionPrefix) + std::to_string(session_id) + "/";
}

MetricsSnapshot MetricsSnapshot::session(std::uint64_t session_id) const {
  const std::string prefix = session_prefix(session_id);
  MetricsSnapshot out;
  const auto strip = [&prefix](const std::string& name) {
    return name.substr(prefix.size());
  };
  for (const auto& [name, v] : counters) {
    if (name.starts_with(prefix)) out.counters.emplace(strip(name), v);
  }
  for (const auto& [name, v] : gauges) {
    if (name.starts_with(prefix)) out.gauges.emplace(strip(name), v);
  }
  for (const auto& [name, v] : histograms) {
    if (name.starts_with(prefix)) out.histograms.emplace(strip(name), v);
  }
  return out;
}

const std::vector<double>& seconds_buckets() {
  static const std::vector<double> bounds = {0.5, 1.0,   2.0,   5.0,  10.0,
                                             20.0, 50.0, 100.0, 200.0, 480.0,
                                             600.0, 1200.0};
  return bounds;
}

#if ROBOTUNE_OBS_ENABLED

struct MetricsRegistry::Shard {
  /// Taken only by the owning thread (per write) and by snapshot()/
  /// reset() (per merge), so writes never contend with each other —
  /// the lock exists purely to make live snapshots coherent per shard.
  std::mutex mutex;
  std::map<std::string, std::uint64_t, std::less<>> counters;
  std::map<std::string, HistogramData, std::less<>> histograms;

  void clear() {
    std::scoped_lock lock(mutex);
    counters.clear();
    histograms.clear();
  }
};

namespace {

std::uint64_t next_registry_id() {
  static std::atomic<std::uint64_t> counter{1};
  return counter.fetch_add(1, std::memory_order_relaxed);
}

/// One thread-local entry per (thread, registry) pair.  Keyed by the
/// registry's process-unique id — never its address — so a registry
/// destroyed and another allocated at the same address can never pick up
/// a stale shard.  The registry owns the shard (shared_ptr), so a thread
/// exiting never invalidates data a later snapshot() needs.
struct TlsEntry {
  std::uint64_t registry_id = 0;
  MetricsRegistry::Shard* shard = nullptr;
};
thread_local std::vector<TlsEntry> tls_shards;

/// Session id attached to the calling thread (0 = none).  A plain
/// thread_local — ScopedSession saves/restores it, ThreadPool::submit
/// forwards it to worker threads.
thread_local std::uint64_t tls_session_id = 0;

void bucket_observe(HistogramData& h, double value,
                    const std::vector<double>& bounds) {
  if (h.bounds.empty()) {
    h.bounds = bounds;
    h.counts.assign(bounds.size() + 1, 0);
  }
  const auto it =
      std::lower_bound(h.bounds.begin(), h.bounds.end(), value);
  h.counts[static_cast<std::size_t>(it - h.bounds.begin())] += 1;
  h.total += 1;
}

}  // namespace

MetricsRegistry::MetricsRegistry() : id_(next_registry_id()) {}

MetricsRegistry::~MetricsRegistry() = default;

MetricsRegistry::Shard& MetricsRegistry::local_shard() {
  for (const auto& entry : tls_shards) {
    if (entry.registry_id == id_) return *entry.shard;
  }
  auto shard = std::make_shared<Shard>();
  {
    std::scoped_lock lock(mutex_);
    shards_.push_back(shard);
  }
  tls_shards.push_back({id_, shard.get()});
  return *shard;
}

namespace {

void add_to(std::map<std::string, std::uint64_t, std::less<>>& counters,
            std::string_view name, std::uint64_t delta) {
  const auto it = counters.find(name);
  if (it != counters.end()) {
    it->second += delta;
  } else {
    counters.emplace(std::string(name), delta);
  }
}

void observe_into(std::map<std::string, HistogramData, std::less<>>& hists,
                  std::string_view name, double value,
                  const std::vector<double>& bounds) {
  const auto it = hists.find(name);
  if (it != hists.end()) {
    bucket_observe(it->second, value, bounds);
  } else {
    bucket_observe(
        hists.emplace(std::string(name), HistogramData{}).first->second,
        value, bounds);
  }
}

}  // namespace

void MetricsRegistry::add(std::string_view name, std::uint64_t delta) {
  Shard& shard = local_shard();
  std::scoped_lock lock(shard.mutex);
  auto& counters = shard.counters;
  add_to(counters, name, delta);
  // Duplicate logical events into the active session scope, if any, so a
  // multi-session process can attribute them (see ScopedSession).
  if (tls_session_id != 0 && !is_runtime_metric(name)) {
    add_to(counters, session_prefix(tls_session_id).append(name), delta);
  }
}

void MetricsRegistry::set_gauge(std::string_view name, double value) {
  std::scoped_lock lock(mutex_);
  const auto set = [this](std::string_view key, double v) {
    const auto it = gauges_.find(key);
    if (it != gauges_.end()) {
      it->second = v;
    } else {
      gauges_.emplace(std::string(key), v);
    }
  };
  set(name, value);
  if (tls_session_id != 0 && !is_runtime_metric(name)) {
    set(session_prefix(tls_session_id).append(name), value);
  }
}

void MetricsRegistry::observe(std::string_view name, double value) {
  observe(name, value, seconds_buckets());
}

void MetricsRegistry::observe(std::string_view name, double value,
                              const std::vector<double>& bounds) {
  Shard& shard = local_shard();
  std::scoped_lock lock(shard.mutex);
  auto& histograms = shard.histograms;
  observe_into(histograms, name, value, bounds);
  if (tls_session_id != 0 && !is_runtime_metric(name)) {
    observe_into(histograms, session_prefix(tls_session_id).append(name),
                 value, bounds);
  }
}

ScopedSession::ScopedSession(std::uint64_t id) noexcept
    : prev_(tls_session_id) {
  if (id != 0) tls_session_id = id;
}

ScopedSession::~ScopedSession() { tls_session_id = prev_; }

std::uint64_t ScopedSession::current() noexcept { return tls_session_id; }

MetricsSnapshot MetricsRegistry::snapshot() const {
  MetricsSnapshot out;
  std::scoped_lock lock(mutex_);
  for (const auto& shard : shards_) {
    std::scoped_lock shard_lock(shard->mutex);
    for (const auto& [name, v] : shard->counters) out.counters[name] += v;
    for (const auto& [name, h] : shard->histograms) {
      auto& merged = out.histograms[name];
      if (merged.bounds.empty()) {
        merged.bounds = h.bounds;
        merged.counts.assign(h.counts.size(), 0);
      }
      // Every call site uses one fixed bound set per name, so shard
      // layouts agree; integer bucket sums make the merge canonical.
      for (std::size_t i = 0;
           i < std::min(merged.counts.size(), h.counts.size()); ++i) {
        merged.counts[i] += h.counts[i];
      }
      merged.total += h.total;
    }
  }
  for (const auto& [name, v] : gauges_) out.gauges.emplace(name, v);
  return out;
}

void MetricsRegistry::reset() {
  std::scoped_lock lock(mutex_);
  for (const auto& shard : shards_) shard->clear();
  gauges_.clear();
}

#endif  // ROBOTUNE_OBS_ENABLED

MetricsRegistry& metrics() {
  static MetricsRegistry registry;
  return registry;
}

}  // namespace robotune::obs
