// Zero-dependency structured tracer: nested spans over the tuning
// pipeline (session → iteration → {gp_fit, acq_opt, eval, journal}),
// with thread and eval-index attribution.
//
// Spans are RAII: constructing an obs::Span opens it, destruction closes
// it and appends one record to the current thread's buffer.  Nesting is
// implicit (a thread-local depth counter per tracer); spans opened on
// scheduler worker threads carry that worker's stable tid, which is how
// per-evaluation work is attributed in the exported timeline.
//
// Export formats:
//  * JSONL — one JSON object per completed span per line, sorted by
//    start time: {"name","cat","ts_us","dur_us","tid","depth","args"}.
//  * Chrome trace-event format — complete ("ph":"X") events plus thread
//    metadata, loadable in Perfetto / chrome://tracing.
//
// The tracer is disabled by default (one relaxed atomic load per span
// construction); when ROBOTUNE_OBS=OFF it compiles out entirely.  Span
// timestamps are wall-clock and therefore non-deterministic by nature —
// the determinism contract lives in the metrics registry, never here.
// Like the metrics shards, records()/reset() require quiescence ordered
// after the workers' writes.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#ifndef ROBOTUNE_OBS_ENABLED
#define ROBOTUNE_OBS_ENABLED 1
#endif

namespace robotune::obs {

struct SpanRecord {
  std::string name;
  std::string category;
  std::int64_t start_us = 0;  ///< microseconds since the tracer's epoch
  std::int64_t dur_us = 0;
  std::uint32_t tid = 0;    ///< stable per-thread index within the tracer
  std::uint32_t depth = 0;  ///< nesting depth on its thread (0 = root)
  std::vector<std::pair<std::string, std::string>> args;
};

enum class TraceFormat { kJsonl, kChrome };

/// "jsonl" / "chrome" → format; false on anything else.
bool parse_trace_format(std::string_view text, TraceFormat& out);

/// Minimal JSON string escaping (quotes, backslashes, control chars).
std::string json_escape(std::string_view text);

/// Writes an explicit span list in the given format — the same output
/// Tracer::write produces, for callers exporting a *subset* of the
/// recorded spans (e.g. the daemon's per-session --trace-dir files).
/// Spans are written in the order given; pass Tracer::records() slices
/// to keep the canonical (start_us, tid) order.
void write_spans(const std::vector<SpanRecord>& spans, std::ostream& out,
                 TraceFormat format);

/// File wrapper over write_spans (temp file + rename); false when the
/// path is unwritable, leaving no partial file behind.
bool write_spans_file(const std::vector<SpanRecord>& spans,
                      const std::string& path, TraceFormat format);

#if ROBOTUNE_OBS_ENABLED

class Tracer {
 public:
  Tracer();
  ~Tracer();

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// Spans constructed while disabled record nothing (and cost one
  /// relaxed atomic load).  Enabling mid-session is allowed; a span that
  /// was open at enable time is simply absent from the output.
  void set_enabled(bool on) {
    enabled_.store(on, std::memory_order_relaxed);
  }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// All completed spans, merged across threads and sorted by
  /// (start_us, tid).  Requires quiescence (see file comment).
  std::vector<SpanRecord> records() const;
  /// Drops every recorded span and restarts the time epoch.
  void reset();

  void write(std::ostream& out, TraceFormat format) const;
  /// Writes via a temp file + rename; false when the path is unwritable
  /// (no partial file is left behind).
  bool write_file(const std::string& path, TraceFormat format) const;

  struct Buffer;  // public for the thread-local registration machinery

 private:
  friend class Span;

  Buffer& local_buffer();
  std::int64_t now_us() const {
    return std::chrono::duration_cast<std::chrono::microseconds>(
               std::chrono::steady_clock::now() - epoch_)
        .count();
  }

  const std::uint64_t id_;  ///< process-unique, never reused
  std::atomic<bool> enabled_{false};
  std::chrono::steady_clock::time_point epoch_;
  mutable std::mutex mutex_;
  std::vector<std::shared_ptr<Buffer>> buffers_;
  std::uint32_t next_tid_ = 0;
};

/// Process-wide tracer all instrumentation hooks write to.
Tracer& tracer();

/// RAII span over the global (or an explicit) tracer.
class Span {
 public:
  explicit Span(std::string_view name, std::string_view category = "");
  Span(std::string_view name, std::string_view category, Tracer& tracer);
  ~Span();

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  /// Attaches a key/value annotation (eval index, iteration, ...).
  /// No-ops when the tracer was disabled at construction.
  void arg(std::string_view key, std::string_view value);
  void arg(std::string_view key, const char* value) {
    arg(key, std::string_view(value));
  }
  void arg(std::string_view key, std::int64_t value);
  void arg(std::string_view key, std::uint64_t value);
  void arg(std::string_view key, int value) {
    arg(key, static_cast<std::int64_t>(value));
  }
  void arg(std::string_view key, double value);

 private:
  Tracer* tracer_ = nullptr;  ///< nullptr when disabled at construction
  Tracer::Buffer* buffer_ = nullptr;
  SpanRecord record_;
};

#else  // ROBOTUNE_OBS_ENABLED

/// Compiled-out stubs: spans vanish, exports produce valid empty output.
class Tracer {
 public:
  void set_enabled(bool) {}
  bool enabled() const { return false; }
  std::vector<SpanRecord> records() const { return {}; }
  void reset() {}
  void write(std::ostream& out, TraceFormat format) const;
  bool write_file(const std::string& path, TraceFormat format) const;
};

Tracer& tracer();

class Span {
 public:
  explicit Span(std::string_view, std::string_view = "") {}
  Span(std::string_view, std::string_view, Tracer&) {}
  template <typename V>
  void arg(std::string_view, V&&) {}
};

#endif  // ROBOTUNE_OBS_ENABLED

}  // namespace robotune::obs
