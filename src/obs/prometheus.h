// Prometheus text-format exposition (format version 0.0.4) over a
// MetricsSnapshot, plus the fixed-bucket quantile estimator the fleet
// telemetry reports p50/p95/p99 through.
//
// Name mapping: every metric is prefixed `robotune_` and sanitized to
// the Prometheus charset ([a-zA-Z0-9_:], everything else becomes '_').
// Session-scoped metrics — names under "session/<id>/" (obs/metrics.h)
// — are exported as the *unscoped* metric name carrying a
// `session="<id>"` label, so one scrape sees the fleet aggregate and
// every per-session series under the same metric family.  Histograms
// emit cumulative `_bucket{le="..."}` series plus `_count`; there is
// deliberately no `_sum` — the registry keeps no floating-point sums
// (cross-shard FP addition order would be scheduling-dependent).
//
// Like obs/summary.h this is plain data-shuffling over snapshots: it
// compiles identically with ROBOTUNE_OBS=OFF (snapshots are simply
// empty) and never touches the live registry.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>

#include "obs/metrics.h"

namespace robotune::obs {

/// Upper-bound estimate of the q-quantile (0 < q <= 1) of a
/// fixed-bucket histogram, linearly interpolated within the selected
/// bucket (Prometheus `histogram_quantile` semantics).  Ranks landing
/// in the overflow bucket report the largest finite bound; an empty
/// histogram reports 0.
double histogram_quantile(const HistogramData& histogram, double q);

/// Writes the whole snapshot in Prometheus text exposition format.
void write_prometheus(const MetricsSnapshot& snapshot, std::ostream& out);

/// String convenience over write_prometheus (the `metrics format=prom`
/// verb ships this over the socket).
std::string render_prometheus(const MetricsSnapshot& snapshot);

/// File wrapper (temp file + rename — a scraper never sees a partial
/// dump); false when the path is unwritable, leaving nothing behind.
bool write_prometheus_file(const MetricsSnapshot& snapshot,
                           const std::string& path);

}  // namespace robotune::obs
