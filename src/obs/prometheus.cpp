#include "obs/prometheus.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <map>
#include <ostream>
#include <sstream>
#include <vector>

namespace robotune::obs {

namespace {

std::string sanitize(std::string_view name) {
  std::string out = "robotune_";
  out.reserve(out.size() + name.size());
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out.push_back(ok ? c : '_');
  }
  return out;
}

/// Splits "session/<id>/rest" into (rest, session label); other names
/// pass through with an empty label.
void split_session(const std::string& name, std::string& base,
                   std::string& label) {
  label.clear();
  base = name;
  if (!std::string_view(name).starts_with(kSessionPrefix)) return;
  const std::size_t id_begin = kSessionPrefix.size();
  const std::size_t slash = name.find('/', id_begin);
  if (slash == std::string::npos || slash == id_begin) return;
  const std::string digits = name.substr(id_begin, slash - id_begin);
  if (digits.find_first_not_of("0123456789") != std::string::npos) return;
  base = name.substr(slash + 1);
  label = "session=\"" + digits + "\"";
}

std::string format_value(double value) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.12g", value);
  return buf;
}

struct Series {
  std::string label;  ///< "" or `session="<id>"`
  std::uint64_t count = 0;
  double gauge = 0.0;
  const HistogramData* histogram = nullptr;
};

/// Metric family: one # TYPE line, then every series (the fleet
/// aggregate first — empty label sorts before any session label).
using Families = std::map<std::string, std::vector<Series>>;

void emit_scalar_families(std::ostream& out, const Families& families,
                          const char* type, bool gauge) {
  for (const auto& [name, series] : families) {
    out << "# TYPE " << name << ' ' << type << '\n';
    for (const Series& s : series) {
      out << name;
      if (!s.label.empty()) out << '{' << s.label << '}';
      out << ' ';
      if (gauge) {
        out << format_value(s.gauge);
      } else {
        out << s.count;
      }
      out << '\n';
    }
  }
}

}  // namespace

double histogram_quantile(const HistogramData& histogram, double q) {
  if (histogram.total == 0 || histogram.counts.empty()) return 0.0;
  q = std::min(1.0, std::max(q, 0.0));
  const double target_rank =
      std::max(1.0, std::ceil(q * static_cast<double>(histogram.total)));
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < histogram.counts.size(); ++i) {
    const std::uint64_t before = cumulative;
    cumulative += histogram.counts[i];
    if (static_cast<double>(cumulative) < target_rank) continue;
    if (i >= histogram.bounds.size()) {
      // Overflow bucket: no finite upper bound to interpolate toward.
      return histogram.bounds.empty() ? 0.0 : histogram.bounds.back();
    }
    const double hi = histogram.bounds[i];
    const double lo = i == 0 ? 0.0 : histogram.bounds[i - 1];
    const double in_bucket = static_cast<double>(histogram.counts[i]);
    const double frac =
        in_bucket == 0.0
            ? 1.0
            : (target_rank - static_cast<double>(before)) / in_bucket;
    return lo + (hi - lo) * frac;
  }
  return histogram.bounds.empty() ? 0.0 : histogram.bounds.back();
}

void write_prometheus(const MetricsSnapshot& snapshot, std::ostream& out) {
  out << "# robotune metrics exposition (text format 0.0.4)\n";
  std::string base;
  std::string label;

  Families counters;
  for (const auto& [name, value] : snapshot.counters) {
    split_session(name, base, label);
    Series s;
    s.label = label;
    s.count = value;
    counters[sanitize(base)].push_back(std::move(s));
  }
  emit_scalar_families(out, counters, "counter", /*gauge=*/false);

  Families gauges;
  for (const auto& [name, value] : snapshot.gauges) {
    split_session(name, base, label);
    Series s;
    s.label = label;
    s.gauge = value;
    gauges[sanitize(base)].push_back(std::move(s));
  }
  emit_scalar_families(out, gauges, "gauge", /*gauge=*/true);

  Families histograms;
  for (const auto& [name, histogram] : snapshot.histograms) {
    split_session(name, base, label);
    Series s;
    s.label = label;
    s.histogram = &histogram;
    histograms[sanitize(base)].push_back(std::move(s));
  }
  for (const auto& [name, series] : histograms) {
    out << "# TYPE " << name << " histogram\n";
    for (const Series& s : series) {
      const HistogramData& h = *s.histogram;
      std::uint64_t cumulative = 0;
      for (std::size_t i = 0; i < h.counts.size(); ++i) {
        cumulative += h.counts[i];
        const std::string le =
            i < h.bounds.size() ? format_value(h.bounds[i]) : "+Inf";
        out << name << "_bucket{";
        if (!s.label.empty()) out << s.label << ',';
        out << "le=\"" << le << "\"} " << cumulative << '\n';
      }
      out << name << "_count";
      if (!s.label.empty()) out << '{' << s.label << '}';
      out << ' ' << h.total << '\n';
    }
  }
}

std::string render_prometheus(const MetricsSnapshot& snapshot) {
  std::ostringstream out;
  write_prometheus(snapshot, out);
  return out.str();
}

bool write_prometheus_file(const MetricsSnapshot& snapshot,
                           const std::string& path) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::trunc);
    if (!out) return false;
    write_prometheus(snapshot, out);
    if (!out) {
      out.close();
      std::remove(tmp.c_str());
      return false;
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return false;
  }
  return true;
}

}  // namespace robotune::obs
