#include "obs/trace.h"

#include "obs/metrics.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <ostream>

namespace robotune::obs {

bool parse_trace_format(std::string_view text, TraceFormat& out) {
  if (text == "jsonl") {
    out = TraceFormat::kJsonl;
    return true;
  }
  if (text == "chrome") {
    out = TraceFormat::kChrome;
    return true;
  }
  return false;
}

std::string json_escape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

namespace {

void write_span_json(std::ostream& out, const SpanRecord& span,
                     TraceFormat format) {
  if (format == TraceFormat::kJsonl) {
    out << "{\"name\":\"" << json_escape(span.name) << "\",\"cat\":\""
        << json_escape(span.category) << "\",\"ts_us\":" << span.start_us
        << ",\"dur_us\":" << span.dur_us << ",\"tid\":" << span.tid
        << ",\"depth\":" << span.depth;
  } else {
    out << "{\"name\":\"" << json_escape(span.name) << "\",\"cat\":\""
        << json_escape(span.category.empty() ? std::string("robotune")
                                             : span.category)
        << "\",\"ph\":\"X\",\"ts\":" << span.start_us
        << ",\"dur\":" << std::max<std::int64_t>(span.dur_us, 1)
        << ",\"pid\":1,\"tid\":" << span.tid;
  }
  if (!span.args.empty() || format == TraceFormat::kChrome) {
    out << ",\"args\":{";
    bool first = true;
    for (const auto& [key, value] : span.args) {
      if (!first) out << ",";
      first = false;
      out << "\"" << json_escape(key) << "\":\"" << json_escape(value)
          << "\"";
    }
    if (format == TraceFormat::kChrome) {
      if (!first) out << ",";
      out << "\"depth\":\"" << span.depth << "\"";
    }
    out << "}";
  }
  out << "}";
}

template <typename WriteFn>
bool atomic_write(const std::string& path, WriteFn&& write_fn) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::trunc);
    if (!out) return false;
    write_fn(out);
    if (!out) {
      out.close();
      std::remove(tmp.c_str());
      return false;
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return false;
  }
  return true;
}

}  // namespace

void write_spans(const std::vector<SpanRecord>& spans, std::ostream& out,
                 TraceFormat format) {
  if (format == TraceFormat::kJsonl) {
    for (const auto& span : spans) {
      write_span_json(out, span, format);
      out << "\n";
    }
    return;
  }
  out << "{\"traceEvents\":[";
  bool first = true;
  // Thread-name metadata so Perfetto labels the lanes.
  std::vector<std::uint32_t> tids;
  for (const auto& span : spans) tids.push_back(span.tid);
  std::sort(tids.begin(), tids.end());
  tids.erase(std::unique(tids.begin(), tids.end()), tids.end());
  for (const std::uint32_t tid : tids) {
    if (!first) out << ",";
    first = false;
    out << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":" << tid
        << ",\"args\":{\"name\":\""
        << (tid == 0 ? "session" : "worker-" + std::to_string(tid))
        << "\"}}";
  }
  for (const auto& span : spans) {
    if (!first) out << ",";
    first = false;
    write_span_json(out, span, format);
  }
  out << "]}\n";
}

bool write_spans_file(const std::vector<SpanRecord>& spans,
                      const std::string& path, TraceFormat format) {
  return atomic_write(
      path, [&](std::ostream& out) { write_spans(spans, out, format); });
}

#if ROBOTUNE_OBS_ENABLED

struct Tracer::Buffer {
  std::uint32_t tid = 0;
  std::uint32_t depth = 0;  ///< currently open spans on this thread
  std::vector<SpanRecord> spans;
};

namespace {

std::uint64_t next_tracer_id() {
  static std::atomic<std::uint64_t> counter{1};
  return counter.fetch_add(1, std::memory_order_relaxed);
}

/// Same id-keyed thread-local registration scheme as the metrics shards
/// (see metrics.cpp): ids are process-unique so stale entries can never
/// be revived by address reuse, and the tracer owns every buffer.
struct TlsEntry {
  std::uint64_t tracer_id = 0;
  Tracer::Buffer* buffer = nullptr;
};
thread_local std::vector<TlsEntry> tls_buffers;

}  // namespace

Tracer::Tracer()
    : id_(next_tracer_id()), epoch_(std::chrono::steady_clock::now()) {}

Tracer::~Tracer() = default;

Tracer::Buffer& Tracer::local_buffer() {
  for (const auto& entry : tls_buffers) {
    if (entry.tracer_id == id_) return *entry.buffer;
  }
  auto buffer = std::make_shared<Buffer>();
  {
    std::scoped_lock lock(mutex_);
    buffer->tid = next_tid_++;
    buffers_.push_back(buffer);
  }
  tls_buffers.push_back({id_, buffer.get()});
  return *buffer;
}

std::vector<SpanRecord> Tracer::records() const {
  std::vector<SpanRecord> out;
  {
    std::scoped_lock lock(mutex_);
    for (const auto& buffer : buffers_) {
      out.insert(out.end(), buffer->spans.begin(), buffer->spans.end());
    }
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const SpanRecord& a, const SpanRecord& b) {
                     if (a.start_us != b.start_us) {
                       return a.start_us < b.start_us;
                     }
                     if (a.tid != b.tid) return a.tid < b.tid;
                     // Parents before children: longer first, and when a
                     // whole subtree fits in one microsecond (equal start
                     // and duration), shallower first.
                     if (a.dur_us != b.dur_us) return a.dur_us > b.dur_us;
                     return a.depth < b.depth;
                   });
  return out;
}

void Tracer::reset() {
  std::scoped_lock lock(mutex_);
  for (const auto& buffer : buffers_) {
    buffer->spans.clear();
    buffer->depth = 0;
  }
  epoch_ = std::chrono::steady_clock::now();
}

void Tracer::write(std::ostream& out, TraceFormat format) const {
  write_spans(records(), out, format);
}

bool Tracer::write_file(const std::string& path, TraceFormat format) const {
  return atomic_write(
      path, [&](std::ostream& out) { write(out, format); });
}

Span::Span(std::string_view name, std::string_view category)
    : Span(name, category, obs::tracer()) {}

Span::Span(std::string_view name, std::string_view category,
           Tracer& tracer) {
  if (!tracer.enabled()) return;
  tracer_ = &tracer;
  buffer_ = &tracer.local_buffer();
  record_.name.assign(name);
  record_.category.assign(category);
  record_.tid = buffer_->tid;
  record_.depth = buffer_->depth++;
  record_.start_us = tracer.now_us();
  // Multi-session attribution (the service layer): every span opened
  // under an obs::ScopedSession carries its session id, which is what
  // parents an "iteration" span to its owning "session" in a process
  // hosting many interleaved sessions.
  if (const std::uint64_t sid = ScopedSession::current(); sid != 0) {
    arg("session", sid);
  }
}

Span::~Span() {
  if (tracer_ == nullptr) return;
  record_.dur_us = tracer_->now_us() - record_.start_us;
  --buffer_->depth;
  buffer_->spans.push_back(std::move(record_));
}

void Span::arg(std::string_view key, std::string_view value) {
  if (tracer_ == nullptr) return;
  record_.args.emplace_back(std::string(key), std::string(value));
}

void Span::arg(std::string_view key, std::int64_t value) {
  arg(key, std::string_view(std::to_string(value)));
}

void Span::arg(std::string_view key, std::uint64_t value) {
  arg(key, std::string_view(std::to_string(value)));
}

void Span::arg(std::string_view key, double value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6g", value);
  arg(key, std::string_view(buf));
}

#else  // ROBOTUNE_OBS_ENABLED

void Tracer::write(std::ostream& out, TraceFormat format) const {
  if (format == TraceFormat::kChrome) out << "{\"traceEvents\":[]}\n";
}

bool Tracer::write_file(const std::string& path, TraceFormat format) const {
  return atomic_write(
      path, [&](std::ostream& out) { write(out, format); });
}

#endif  // ROBOTUNE_OBS_ENABLED

Tracer& tracer() {
  static Tracer instance;
  return instance;
}

}  // namespace robotune::obs
