// Zero-dependency metrics registry: counters, gauges, and fixed-bucket
// histograms for the tuning pipeline.
//
// Determinism contract (DESIGN.md §7): *logical* metrics — evaluation
// counts, guard kills, retries, memoization hits, hedge selections —
// count events whose multiset is a pure function of the session seed, so
// their merged totals are identical for any `--parallel` worker count.
// Anything scheduling- or wall-clock-dependent (pool task counts,
// effective parallelism) lives under the `runtime.` name prefix and is
// excluded from the deterministic section; span *durations* live in the
// Tracer, never here.
//
// Concurrency: the hot path writes to a per-thread shard guarded by a
// shard-local mutex that only the owning thread and snapshot()/reset()
// ever take — writes stay contention-free in steady state, while
// snapshot() may run concurrently with instrumented work (the daemon's
// `metrics` verb and --metrics-file dumps poll a live fleet).  A live
// snapshot is coherent per shard but not across shards: events written
// while the merge walks other shards may or may not be included.
// Determinism assertions (exact totals, byte-identical logical
// sections) therefore still require quiescence ordered after the
// workers' writes (a ThreadPool::wait_all or future.get() establishes
// the needed happens-before edge).  Counter and bucket merges are
// integer sums, so the merged snapshot is independent of how events
// were sharded across threads; histograms deliberately carry no
// floating-point sum (cross-shard FP addition order would make the
// last bits scheduling-dependent).
//
// Compile-out: building with -DROBOTUNE_OBS=OFF (ROBOTUNE_OBS_ENABLED=0)
// turns every class in this header into an empty inline stub — call
// sites compile unchanged and the instrumentation provably cannot affect
// tuning results because it no longer exists.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#ifndef ROBOTUNE_OBS_ENABLED
#define ROBOTUNE_OBS_ENABLED 1
#endif

namespace robotune::obs {

/// True when the library was built with instrumentation compiled in.
inline constexpr bool kCompiledIn = ROBOTUNE_OBS_ENABLED != 0;

/// Metrics named under this prefix are scheduling-dependent (worker
/// counts, pool task placement) and excluded from the deterministic
/// "logical" section of a snapshot.
inline constexpr std::string_view kRuntimePrefix = "runtime.";

inline bool is_runtime_metric(std::string_view name) {
  return name.substr(0, kRuntimePrefix.size()) == kRuntimePrefix;
}

/// Session-scoped tallies live under this prefix: while an
/// obs::ScopedSession is active on a thread, every logical counter,
/// gauge, and histogram is *additionally* recorded under
/// "session/<id>/<name>", so a multi-session process (the service layer)
/// can attribute events per session.  Runtime metrics are never
/// duplicated into a session scope — they are scheduling-dependent by
/// definition, and the per-session section keeps the same
/// byte-identical-at-any-worker-count guarantee the global logical
/// section has (pinned by obs_determinism_test).
inline constexpr std::string_view kSessionPrefix = "session/";

/// "session/<id>/" — the name prefix a session's tallies live under.
std::string session_prefix(std::uint64_t session_id);

/// Fixed-bucket histogram: counts[i] tallies values <= bounds[i] (first
/// matching bound wins), counts.back() tallies the overflow.  Bounds are
/// fixed per metric name at first observation; all counts are integers so
/// merged histograms are deterministic.
struct HistogramData {
  std::vector<double> bounds;
  std::vector<std::uint64_t> counts;  ///< bounds.size() + 1 entries
  std::uint64_t total = 0;

  bool operator==(const HistogramData&) const = default;
};

/// A merged, point-in-time view of every metric, keyed in canonical
/// (lexicographic) name order.
struct MetricsSnapshot {
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, HistogramData> histograms;

  bool operator==(const MetricsSnapshot&) const = default;

  /// The deterministic section: everything not under `runtime.`.
  MetricsSnapshot logical() const;
  /// The scheduling-dependent section: everything under `runtime.`.
  MetricsSnapshot runtime() const;
  /// One session's tallies ("session/<id>/..."), with the scope prefix
  /// stripped — directly comparable against a single-session run's
  /// logical section.
  MetricsSnapshot session(std::uint64_t session_id) const;
  bool empty() const {
    return counters.empty() && gauges.empty() && histograms.empty();
  }
};

/// Default bucket bounds for metrics measured in (simulated) seconds:
/// roughly exponential, with knots at the paper's 480 s cap.
const std::vector<double>& seconds_buckets();

#if ROBOTUNE_OBS_ENABLED

class MetricsRegistry {
 public:
  MetricsRegistry();
  ~MetricsRegistry();

  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Adds `delta` to the named counter (per-thread shard; the shard
  /// mutex is only ever contended by a concurrent snapshot).
  void add(std::string_view name, std::uint64_t delta = 1);
  /// Sets the named gauge (mutex-protected; call from canonical-order
  /// code, last write wins).
  void set_gauge(std::string_view name, double value);
  /// Records `value` into the named histogram with seconds_buckets().
  void observe(std::string_view name, double value);
  /// Records `value` into the named histogram; `bounds` fixes the bucket
  /// upper bounds on the histogram's first observation in each shard
  /// (pass the same bounds at every call site for a given name).
  void observe(std::string_view name, double value,
               const std::vector<double>& bounds);

  /// Merges every shard in canonical name order.  Safe to call while
  /// instrumented work is in flight (live exposition); exact totals
  /// require quiescence (see file comment).
  MetricsSnapshot snapshot() const;
  /// Clears all shards and gauges.  Requires quiescence.
  void reset();

  struct Shard;  // public for the thread-local registration machinery

 private:
  Shard& local_shard();

  const std::uint64_t id_;  ///< process-unique, never reused
  mutable std::mutex mutex_;
  std::vector<std::shared_ptr<Shard>> shards_;
  std::map<std::string, double, std::less<>> gauges_;
};

/// RAII session attribution: while alive on a thread, logical metrics
/// are additionally tallied under "session/<id>/<name>" and spans carry
/// a "session" arg.  Scopes nest (the previous id is restored on
/// destruction) and propagate across ThreadPool::submit/submit_batch —
/// a task observes the session that *enqueued* it, whichever worker
/// runs it.  Id 0 means "no session" and records nothing extra.
class ScopedSession {
 public:
  explicit ScopedSession(std::uint64_t id) noexcept;
  ~ScopedSession();

  ScopedSession(const ScopedSession&) = delete;
  ScopedSession& operator=(const ScopedSession&) = delete;

  /// The session id attached to the calling thread; 0 = none.
  static std::uint64_t current() noexcept;

 private:
  std::uint64_t prev_;
};

#else  // ROBOTUNE_OBS_ENABLED

/// Compiled-out stub: every operation is an inline no-op and a snapshot
/// is always empty.
class MetricsRegistry {
 public:
  void add(std::string_view, std::uint64_t = 1) {}
  void set_gauge(std::string_view, double) {}
  void observe(std::string_view, double) {}
  void observe(std::string_view, double, const std::vector<double>&) {}
  MetricsSnapshot snapshot() const { return {}; }
  void reset() {}
};

/// Compiled-out stub: no thread-local state, no per-session tallies.
class ScopedSession {
 public:
  explicit ScopedSession(std::uint64_t) noexcept {}
  static std::uint64_t current() noexcept { return 0; }
};

#endif  // ROBOTUNE_OBS_ENABLED

/// Process-wide registry all instrumentation hooks write to.
MetricsRegistry& metrics();

// Convenience wrappers over the global registry (the instrumentation
// call-site idiom).
inline void count(std::string_view name, std::uint64_t delta = 1) {
  metrics().add(name, delta);
}
inline void set_gauge(std::string_view name, double value) {
  metrics().set_gauge(name, value);
}
inline void observe(std::string_view name, double value) {
  metrics().observe(name, value);
}

}  // namespace robotune::obs
