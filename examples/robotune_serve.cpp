// Tuning-as-a-service daemon: hosts a fleet of concurrent tuning
// sessions behind a Unix-domain socket (DESIGN.md §13).
//
//   $ ./build/examples/robotune_serve --root /tmp/rt-fleet
//         --socket /tmp/rt.sock --max-live 2 --slots 1 &
//   $ ./build/examples/robotune_cli --connect /tmp/rt.sock
//         --remote start --workload PR --dataset 2 --budget 24 --init 8
//   session 1 started
//   $ ./build/examples/robotune_cli --connect /tmp/rt.sock
//         --remote status --session 1
//
// On startup the daemon replays every session found under --root:
// completed sessions are re-registered, interrupted ones resume from
// their crash-safe journals, and a session whose files are corrupt
// beyond recovery is quarantined (the fleet keeps serving).  SIGINT and
// SIGTERM shut down gracefully: live sessions stop at their next round
// boundary with resumable journals, so the next start continues the
// fleet where it left off.
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <map>
#include <string>
#include <system_error>
#include <vector>

#include "common/thread_pool.h"
#include "obs/metrics.h"
#include "obs/prometheus.h"
#include "obs/trace.h"
#include "service/server.h"
#include "service/session_manager.h"
#include "service/telemetry.h"

using namespace robotune;

namespace {

std::atomic<bool> g_stop{false};
volatile std::sig_atomic_t g_signal = 0;

extern "C" void handle_stop_signal(int sig) {
  g_signal = sig;
  g_stop.store(true, std::memory_order_relaxed);
}

void usage(const char* argv0) {
  std::printf(
      "usage: %s --root DIR [options]\n"
      "  --root DIR        service root for per-session spec/journal files\n"
      "  --socket PATH     listening socket      (default DIR/robotune.sock)\n"
      "  --max-live N      concurrent sessions   (default 2)\n"
      "  --queue N         pending-queue bound   (default 8)\n"
      "  --slots N         turnstile compute slices, 0 = max-live\n"
      "                    (default 0; 1 = strict round-robin)\n"
      "  --seed N          service seed for derived session seeds\n"
      "                    (default 2024)\n"
      "  --lease-timeout N ask/tell lease lifetime in ticks (~seconds);\n"
      "                    leased suggestions unobserved for this long\n"
      "                    return to the pending pool  (default 60)\n"
      "  --terminal-ttl N  evict done/cancelled sessions from memory\n"
      "                    after N ticks; 0 = keep resident (default 0)\n"
      "  --idle-timeout N  drop clients that never complete a request\n"
      "                    frame after N seconds       (default 30)\n"
      "  --fsync           fsync every journal flush\n"
      "  --pool-threads N  size the process-global thread pool before\n"
      "                    first use (0 = hardware concurrency)\n"
      "  --events-file P   fleet event journal   (default DIR/events.jsonl)\n"
      "  --no-events       disable the fleet event journal\n"
      "  --events-max-bytes N  event journal rotation threshold\n"
      "  --metrics-file P  Prometheus text dump, rewritten ~1/s and at\n"
      "                    exit (atomic temp+rename; point a scraper or\n"
      "                    node_exporter textfile collector at it)\n"
      "  --trace-dir DIR   enable span tracing; per-session JSONL trace\n"
      "                    files are exported here at shutdown\n",
      argv0);
}

/// Exports the recorded spans split by owning session:
/// `<dir>/session-<id>.trace.jsonl` per session plus
/// `<dir>/fleet.trace.jsonl` for spans outside any session scope.
void export_traces(const std::string& dir) {
  const auto records = obs::tracer().records();
  std::map<std::string, std::vector<obs::SpanRecord>> by_session;
  for (const auto& span : records) {
    std::string sid;
    for (const auto& [key, value] : span.args) {
      if (key == "session") {
        sid = value;
        break;
      }
    }
    by_session[sid].push_back(span);
  }
  for (const auto& [sid, spans] : by_session) {
    const std::string path =
        sid.empty() ? dir + "/fleet.trace.jsonl"
                    : dir + "/session-" + sid + ".trace.jsonl";
    if (!obs::write_spans_file(spans, path, obs::TraceFormat::kJsonl)) {
      std::fprintf(stderr, "warning: cannot write trace file %s\n",
                   path.c_str());
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  service::ServiceOptions options;
  std::string socket_path;
  std::string events_file;
  bool no_events = false;
  std::string metrics_file;
  std::string trace_dir;
  long pool_threads = -1;
  int idle_timeout_s = 30;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return (i + 1 < argc) ? argv[++i] : nullptr;
    };
    if (arg == "--root") {
      const char* v = next();
      if (!v) return usage(argv[0]), 2;
      options.root = v;
    } else if (arg == "--socket") {
      const char* v = next();
      if (!v) return usage(argv[0]), 2;
      socket_path = v;
    } else if (arg == "--max-live") {
      const char* v = next();
      if (!v || std::atoi(v) < 1) return usage(argv[0]), 2;
      options.max_live = static_cast<std::size_t>(std::atoi(v));
    } else if (arg == "--queue") {
      const char* v = next();
      if (!v || std::atoi(v) < 0) return usage(argv[0]), 2;
      options.max_pending = static_cast<std::size_t>(std::atoi(v));
    } else if (arg == "--slots") {
      const char* v = next();
      if (!v || std::atoi(v) < 0) return usage(argv[0]), 2;
      options.slots = static_cast<std::size_t>(std::atoi(v));
    } else if (arg == "--seed") {
      const char* v = next();
      if (!v) return usage(argv[0]), 2;
      options.seed = static_cast<std::uint64_t>(std::atoll(v));
    } else if (arg == "--lease-timeout") {
      const char* v = next();
      if (!v || std::atoll(v) < 1) return usage(argv[0]), 2;
      options.lease_timeout_ticks = static_cast<std::uint64_t>(std::atoll(v));
    } else if (arg == "--terminal-ttl") {
      const char* v = next();
      if (!v || std::atoll(v) < 0) return usage(argv[0]), 2;
      options.terminal_ttl_ticks = static_cast<std::uint64_t>(std::atoll(v));
    } else if (arg == "--idle-timeout") {
      const char* v = next();
      if (!v || std::atoi(v) < 1) return usage(argv[0]), 2;
      idle_timeout_s = std::atoi(v);
    } else if (arg == "--fsync") {
      options.sync = core::SyncPolicy::kFsync;
    } else if (arg == "--pool-threads") {
      const char* v = next();
      if (!v || std::atoi(v) < 0) return usage(argv[0]), 2;
      pool_threads = std::atol(v);
    } else if (arg == "--events-file") {
      const char* v = next();
      if (!v) return usage(argv[0]), 2;
      events_file = v;
    } else if (arg == "--no-events") {
      no_events = true;
    } else if (arg == "--events-max-bytes") {
      const char* v = next();
      if (!v || std::atoll(v) < 1) return usage(argv[0]), 2;
      options.events_max_bytes = static_cast<std::size_t>(std::atoll(v));
    } else if (arg == "--metrics-file") {
      const char* v = next();
      if (!v) return usage(argv[0]), 2;
      metrics_file = v;
    } else if (arg == "--trace-dir") {
      const char* v = next();
      if (!v) return usage(argv[0]), 2;
      trace_dir = v;
    } else {
      usage(argv[0]);
      return 2;
    }
  }
  if (options.root.empty()) {
    usage(argv[0]);
    return 2;
  }
  if (socket_path.empty()) socket_path = options.root + "/robotune.sock";
  if (pool_threads >= 0 &&
      !ThreadPool::configure_global(
          static_cast<std::size_t>(pool_threads))) {
    std::fprintf(stderr,
                 "warning: global thread pool already created; "
                 "--pool-threads ignored\n");
  }

  // The event journal defaults ON (it is a durability/ops artifact like
  // the session journals): <root>/events.jsonl unless overridden.
  if (!no_events) {
    options.events_path =
        events_file.empty() ? options.root + "/events.jsonl" : events_file;
  }
  if (!trace_dir.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(trace_dir, ec);
    obs::tracer().set_enabled(true);
  }

  {
    struct sigaction sa = {};
    sa.sa_handler = handle_stop_signal;
    sigemptyset(&sa.sa_mask);
    sigaction(SIGINT, &sa, nullptr);
    sigaction(SIGTERM, &sa, nullptr);
  }

  service::SessionManager manager(options);
  if (!manager.events_error().empty()) {
    std::fprintf(stderr, "warning: event journal disabled: %s\n",
                 manager.events_error().c_str());
  }
  manager.events().emit(0, "daemon.start");
  const auto recovery = manager.recover_fleet();
  std::printf(
      "fleet recovery: %zu resumed, %zu completed, %zu cancelled, "
      "%zu quarantined\n",
      recovery.readmitted, recovery.completed, recovery.cancelled,
      recovery.quarantined);
  for (const auto& file : recovery.quarantined_files) {
    std::printf("  quarantined: %s\n", file.c_str());
  }
  // Operational re-admission failures (not corruption): files are left
  // in place; surface them so the operator knows those sessions are not
  // running.
  for (const auto& line : recovery.errors) {
    std::fprintf(stderr, "recovery failure: %s\n", line.c_str());
  }

  service::Server server(manager, socket_path);
  std::string error;
  if (!server.listen(&error)) {
    std::fprintf(stderr, "cannot listen on %s: %s\n", socket_path.c_str(),
                 error.c_str());
    return 1;
  }
  server.set_idle_timeout(std::chrono::seconds(idle_timeout_s));
  // The serve-loop tick (roughly once a second) drives the manager's
  // virtual clock — lease reaping and terminal-TTL eviction — and,
  // when configured, the Prometheus metrics dump.
  server.set_tick([&manager, metrics_file] {
    manager.tick();
    if (!metrics_file.empty()) {
      obs::write_prometheus_file(obs::metrics().snapshot(), metrics_file);
    }
  });
  std::printf("serving on %s (max-live %zu, queue %zu, slots %zu)\n",
              socket_path.c_str(), options.max_live, options.max_pending,
              options.slots == 0 ? options.max_live : options.slots);
  std::fflush(stdout);

  const std::size_t served = server.serve(g_stop);

  // Graceful shutdown: every live session checkpoints at its next round
  // boundary; journals stay resumable for the next start.
  std::printf("shutting down after %zu request(s)\n", served);
  manager.shutdown(/*cancel_live=*/true);
  manager.events().emit(0, "daemon.stop",
                        g_signal != 0
                            ? "signal " + std::to_string(g_signal)
                            : "shutdown verb");
  manager.events().flush();
  const auto snapshot = obs::metrics().snapshot();
  if (!metrics_file.empty()) {
    if (!obs::write_prometheus_file(snapshot, metrics_file)) {
      std::fprintf(stderr, "warning: cannot write metrics file %s\n",
                   metrics_file.c_str());
    }
  }
  if (!trace_dir.empty()) export_traces(trace_dir);
  const auto status = manager.service_status();
  std::printf("%s", service::render_fleet_summary(
                        snapshot, status, manager.list_sessions())
                        .c_str());
  std::printf("fleet at exit: %zu done, %zu cancelled, %zu failed\n",
              status.done, status.cancelled, status.failed);
  // The conventional shell exit status for death-by-signal, so process
  // supervisors can tell an operator interrupt from a clean shutdown.
  return g_signal != 0 ? 128 + g_signal : 0;
}
