// Tuning-as-a-service daemon: hosts a fleet of concurrent tuning
// sessions behind a Unix-domain socket (DESIGN.md §13).
//
//   $ ./build/examples/robotune_serve --root /tmp/rt-fleet
//         --socket /tmp/rt.sock --max-live 2 --slots 1 &
//   $ ./build/examples/robotune_cli --connect /tmp/rt.sock
//         --remote start --workload PR --dataset 2 --budget 24 --init 8
//   session 1 started
//   $ ./build/examples/robotune_cli --connect /tmp/rt.sock
//         --remote status --session 1
//
// On startup the daemon replays every session found under --root:
// completed sessions are re-registered, interrupted ones resume from
// their crash-safe journals, and a session whose files are corrupt
// beyond recovery is quarantined (the fleet keeps serving).  SIGINT and
// SIGTERM shut down gracefully: live sessions stop at their next round
// boundary with resumable journals, so the next start continues the
// fleet where it left off.
#include <atomic>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "common/thread_pool.h"
#include "service/server.h"
#include "service/session_manager.h"

using namespace robotune;

namespace {

std::atomic<bool> g_stop{false};

extern "C" void handle_stop_signal(int) {
  g_stop.store(true, std::memory_order_relaxed);
}

void usage(const char* argv0) {
  std::printf(
      "usage: %s --root DIR [options]\n"
      "  --root DIR        service root for per-session spec/journal files\n"
      "  --socket PATH     listening socket      (default DIR/robotune.sock)\n"
      "  --max-live N      concurrent sessions   (default 2)\n"
      "  --queue N         pending-queue bound   (default 8)\n"
      "  --slots N         turnstile compute slices, 0 = max-live\n"
      "                    (default 0; 1 = strict round-robin)\n"
      "  --seed N          service seed for derived session seeds\n"
      "                    (default 2024)\n"
      "  --fsync           fsync every journal flush\n"
      "  --pool-threads N  size the process-global thread pool before\n"
      "                    first use (0 = hardware concurrency)\n",
      argv0);
}

}  // namespace

int main(int argc, char** argv) {
  service::ServiceOptions options;
  std::string socket_path;
  long pool_threads = -1;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return (i + 1 < argc) ? argv[++i] : nullptr;
    };
    if (arg == "--root") {
      const char* v = next();
      if (!v) return usage(argv[0]), 2;
      options.root = v;
    } else if (arg == "--socket") {
      const char* v = next();
      if (!v) return usage(argv[0]), 2;
      socket_path = v;
    } else if (arg == "--max-live") {
      const char* v = next();
      if (!v || std::atoi(v) < 1) return usage(argv[0]), 2;
      options.max_live = static_cast<std::size_t>(std::atoi(v));
    } else if (arg == "--queue") {
      const char* v = next();
      if (!v || std::atoi(v) < 0) return usage(argv[0]), 2;
      options.max_pending = static_cast<std::size_t>(std::atoi(v));
    } else if (arg == "--slots") {
      const char* v = next();
      if (!v || std::atoi(v) < 0) return usage(argv[0]), 2;
      options.slots = static_cast<std::size_t>(std::atoi(v));
    } else if (arg == "--seed") {
      const char* v = next();
      if (!v) return usage(argv[0]), 2;
      options.seed = static_cast<std::uint64_t>(std::atoll(v));
    } else if (arg == "--fsync") {
      options.sync = core::SyncPolicy::kFsync;
    } else if (arg == "--pool-threads") {
      const char* v = next();
      if (!v || std::atoi(v) < 0) return usage(argv[0]), 2;
      pool_threads = std::atol(v);
    } else {
      usage(argv[0]);
      return 2;
    }
  }
  if (options.root.empty()) {
    usage(argv[0]);
    return 2;
  }
  if (socket_path.empty()) socket_path = options.root + "/robotune.sock";
  if (pool_threads >= 0 &&
      !ThreadPool::configure_global(
          static_cast<std::size_t>(pool_threads))) {
    std::fprintf(stderr,
                 "warning: global thread pool already created; "
                 "--pool-threads ignored\n");
  }

  {
    struct sigaction sa = {};
    sa.sa_handler = handle_stop_signal;
    sigemptyset(&sa.sa_mask);
    sigaction(SIGINT, &sa, nullptr);
    sigaction(SIGTERM, &sa, nullptr);
  }

  service::SessionManager manager(options);
  const auto recovery = manager.recover_fleet();
  std::printf(
      "fleet recovery: %zu resumed, %zu completed, %zu cancelled, "
      "%zu quarantined\n",
      recovery.readmitted, recovery.completed, recovery.cancelled,
      recovery.quarantined);
  for (const auto& file : recovery.quarantined_files) {
    std::printf("  quarantined: %s\n", file.c_str());
  }
  // Operational re-admission failures (not corruption): files are left
  // in place; surface them so the operator knows those sessions are not
  // running.
  for (const auto& line : recovery.errors) {
    std::fprintf(stderr, "recovery failure: %s\n", line.c_str());
  }

  service::Server server(manager, socket_path);
  std::string error;
  if (!server.listen(&error)) {
    std::fprintf(stderr, "cannot listen on %s: %s\n", socket_path.c_str(),
                 error.c_str());
    return 1;
  }
  std::printf("serving on %s (max-live %zu, queue %zu, slots %zu)\n",
              socket_path.c_str(), options.max_live, options.max_pending,
              options.slots == 0 ? options.max_live : options.slots);
  std::fflush(stdout);

  const std::size_t served = server.serve(g_stop);

  // Graceful shutdown: every live session checkpoints at its next round
  // boundary; journals stay resumable for the next start.
  std::printf("shutting down after %zu request(s)\n", served);
  manager.shutdown(/*cancel_live=*/true);
  const auto status = manager.service_status();
  std::printf("fleet at exit: %zu done, %zu cancelled, %zu failed\n",
              status.done, status.cancelled, status.failed);
  return 0;
}
