// Quickstart: tune one Spark workload with ROBOTune in ~20 lines.
//
//   $ ./build/examples/quickstart
//
// The objective is the bundled cluster simulator standing in for a real
// 5-worker Spark 2.4 cluster; swap in your own SparkObjective-like adapter
// to tune a real deployment (see README "Adapting to a real cluster").
#include <cstdio>

#include "core/robotune.h"
#include "sparksim/objective.h"

using namespace robotune;

int main() {
  // 1. Describe the system under tuning: the 44-parameter Spark 2.4
  //    space, the paper's 6-node testbed, and a PageRank workload on the
  //    5-million-page dataset (Table 1, D1).
  sparksim::SparkObjective objective(
      sparksim::ClusterSpec::paper_testbed(),
      sparksim::make_workload(sparksim::WorkloadKind::kPageRank, 1),
      sparksim::spark24_config_space(),
      /*seed=*/42);

  // 2. Run ROBOTune with the paper's budget of 100 evaluations.
  core::RoboTune tuner;
  const auto report = tuner.tune_report(objective, /*budget=*/100,
                                        /*seed=*/7);

  // 3. Inspect the result.
  std::printf("tuned %s in %zu evaluations\n",
              objective.workload().full_name().c_str(),
              report.tuning.history.size());
  std::printf("  parameter selection: %zu of 44 parameters kept "
              "(one-time cost %.0f s)\n",
              report.selected.size(), report.selection_cost_s);
  std::printf("  best execution time: %.1f s (search cost %.0f s)\n",
              report.tuning.best_value_s(), report.tuning.search_cost_s);

  const auto& space = objective.space();
  const auto best = space.decode(report.tuning.best_unit());
  std::printf("  best configuration (selected parameters):\n");
  for (std::size_t idx : report.selected) {
    const auto& spec = space.spec(idx);
    if (spec.kind == sparksim::ParamKind::kCategorical) {
      std::printf("    %-44s %s\n", spec.name.c_str(),
                  spec.categories[static_cast<std::size_t>(best[idx])]
                      .c_str());
    } else {
      std::printf("    %-44s %g\n", spec.name.c_str(), best[idx]);
    }
  }

  // 4. Re-tuning the same workload on a bigger dataset reuses the
  //    parameter-selection cache and the memoized configurations.
  sparksim::SparkObjective bigger(
      sparksim::ClusterSpec::paper_testbed(),
      sparksim::make_workload(sparksim::WorkloadKind::kPageRank, 3),
      sparksim::spark24_config_space(), 43);
  const auto repeat = tuner.tune_report(bigger, 100, 8);
  std::printf("\nre-tuned on PR-D3: cache hit=%s, memoized configs=%s, "
              "best %.1f s\n",
              repeat.selection_cache_hit ? "yes" : "no",
              repeat.used_memoized_configs ? "yes" : "no",
              repeat.tuning.best_value_s());
  return 0;
}
