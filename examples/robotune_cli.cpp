// Command-line front end: run any of the four tuners on any workload and
// optionally persist ROBOTune's memoized state across invocations.
//
//   $ ./build/examples/robotune_cli --workload PR --dataset 2
//         --tuner robotune --budget 100 --seed 7 --state /tmp/rt.state
//
// Running the same command twice demonstrates cross-process memoization:
// the second run hits the selection cache and seeds BO with the first
// run's best configurations.
//
// Session assembly lives in core::SessionFactory, shared with the
// robotune_serve daemon — a CLI run and a daemon-hosted session with the
// same spec write byte-identical journals.  With --connect the CLI turns
// into a client of a running daemon instead of tuning locally:
//
//   $ ./build/examples/robotune_cli --connect /tmp/rt.sock
//         --remote start --workload PR --budget 24 --init 8
#include <algorithm>
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/chaos.h"
#include "common/error.h"
#include "core/persistence.h"
#include "core/session.h"
#include "obs/metrics.h"
#include "obs/summary.h"
#include "obs/trace.h"
#include "service/client.h"
#include "sparksim/objective.h"

using namespace robotune;

namespace {

// Graceful shutdown: SIGINT/SIGTERM set the stop flag, the BO engine
// notices it at the next round boundary, flushes its journal, and
// returns with interrupted = true — so ^C leaves a resumable checkpoint
// instead of a torn session.
std::atomic<bool> g_stop{false};
volatile std::sig_atomic_t g_signal = 0;

extern "C" void handle_stop_signal(int sig) {
  g_signal = sig;
  g_stop.store(true, std::memory_order_relaxed);
}

struct CliOptions {
  std::string workload = "PR";
  int dataset = 1;
  std::string tuner = "robotune";
  int budget = 100;
  std::uint64_t seed = 7;
  bool seed_set = false;  ///< --seed given (client mode: no derivation)
  std::string state_path;
  std::string metric = "time";
  std::string fault_profile = "none";
  int retries = 2;
  std::string checkpoint_path;
  bool resume = false;
  /// Load the checkpoint in recover mode: a torn or corrupt journal tail
  /// is truncated to the longest valid prefix instead of aborting.
  bool recover = false;
  /// fsync the journal (and its directory) on every checkpoint flush.
  bool fsync = false;
  /// Internal chaos injection profile (preset or per-site rates).
  std::string chaos_profile = "none";
  bool quiet = false;
  /// Evaluation workers: 0 = no scheduler (legacy sequential seed
  /// streams); N >= 1 = scheduler mode with N workers (0-cost to results:
  /// any N gives bit-identical output, including N = 1).
  int parallel = 0;
  /// BO batch width q (robotune only; changes the trajectory).
  int batch = 1;
  /// Racing early-stop policy for in-flight evaluations (scheduler mode
  /// only): off | median | halving.
  std::string racing = "off";
  /// Per-evaluation simulated-time deadline in seconds (scheduler mode
  /// only; 0 = off).
  double eval_deadline = 0.0;
  /// Spot-instance preemption probability per stage (0 = off).
  double preempt_rate = 0.0;
  /// BO initial-design size override (0 = engine default of 20).
  int init = 0;
  /// Parameter-selection sample-count override (0 = default 100).
  int selection_samples = 0;
  /// Surrogate tier: exact | rff | auto (robotune only).
  std::string surrogate = "auto";
  /// RFF feature count override (0 = engine default of 256).
  int rff_features = 0;
  /// Hyperparameter-refit schedule: fixed | doubling | auto.
  std::string refit_schedule = "auto";
  /// Observability: span timeline and metrics exports (0-cost to
  /// results — the determinism test pins byte-identical output).
  std::string trace_path;
  obs::TraceFormat trace_format = obs::TraceFormat::kJsonl;
  std::string metrics_path;
  /// Session mode for --remote start: "internal" evaluates daemon-side,
  /// "external" leases suggestions to ask/tell clients (DESIGN.md §16).
  std::string mode = "internal";
  /// Client mode: socket of a robotune_serve daemon.
  std::string connect_path;
  /// Client verb: start|status|suggest|observe|checkpoint|cancel|
  /// metrics|shutdown|drive.
  std::string remote = "status";
  std::uint64_t session_id = 0;
  std::uint64_t from = 0;
  /// observe: record-window cap; suggest (external): max leases per ask.
  /// 0 = verb default (observe: all records; ask: 1).
  std::uint64_t limit = 0;
  /// observe as *tell* (external sessions): --eval switches the verb
  /// from reading the journal window to delivering the observation
  /// below for that evaluation index.
  bool tell_set = false;
  std::uint64_t eval_index = 0;
  double tell_value = 0.0;
  double tell_cost = 0.0;
  std::string tell_status = "ok";
  /// metrics verb: "prom" asks the daemon for the Prometheus text
  /// exposition, printed raw (pipe it into a scrape file).
  std::string format;
};

void usage(const char* argv0) {
  std::printf(
      "usage: %s [options]\n"
      "  --workload PR|KM|CC|LR|TS   workload to tune        (default PR)\n"
      "  --dataset 1|2|3             Table-1 dataset          (default 1)\n"
      "  --tuner robotune|bestconfig|gunther|rs               (default robotune)\n"
      "  --budget N                  evaluation budget        (default 100)\n"
      "  --seed N                    RNG seed                 (default 7)\n"
      "  --metric time|coreseconds   objective metric         (default time)\n"
      "  --state PATH                load/save memoized state (robotune only)\n"
      "  --fault-profile P           transient-fault injection (default none)\n"
      "                              preset none|mild|moderate|severe, or\n"
      "                              loss=F,fetch=F,straggler=F[,slowdown=F]\n"
      "  --retries N                 retries per transient failure (default 2)\n"
      "  --checkpoint PATH           journal the session after every\n"
      "                              evaluation (robotune only)\n"
      "  --resume                    resume from --checkpoint if it exists\n"
      "  --recover                   with --resume: truncate a torn or\n"
      "                              corrupt journal tail to the longest\n"
      "                              valid prefix instead of aborting\n"
      "  --fsync                     fsync the journal on every flush\n"
      "  --chaos-profile P           internal fault injection for soak\n"
      "                              testing (default none): preset\n"
      "                              none|surrogate|flaky|full, or\n"
      "                              cholesky=F,acq=F,journal=F,pool=F\n"
      "  --parallel N                evaluate batches on N workers; results\n"
      "                              are bit-identical for any N >= 1\n"
      "                              (default 0 = legacy sequential mode)\n"
      "  --batch q                   BO proposals per round via constant-\n"
      "                              liar fantasies (robotune; default 1)\n"
      "  --racing off|median|halving kill in-flight evaluations whose\n"
      "                              partial time already dominates the\n"
      "                              batch guard threshold (needs\n"
      "                              --parallel >= 1; default off)\n"
      "  --eval-deadline S           per-evaluation simulated-time deadline\n"
      "                              in seconds (needs --parallel >= 1;\n"
      "                              default 0 = off)\n"
      "  --preempt-rate F            spot-instance preemption probability\n"
      "                              per stage (default 0 = off)\n"
      "  --init N                    BO initial-design size override\n"
      "                              (robotune; default 0 = 20)\n"
      "  --selection-samples N       parameter-selection sample count\n"
      "                              override (robotune; default 0 = 100)\n"
      "  --surrogate exact|rff|auto  surrogate tier (robotune; auto uses\n"
      "                              the exact GP below 256 observations\n"
      "                              and random features above; default\n"
      "                              auto)\n"
      "  --rff-features M            random-feature count for the rff\n"
      "                              tier (default 0 = 256)\n"
      "  --refit-schedule fixed|doubling|auto\n"
      "                              hyperparameter-refit cadence (auto:\n"
      "                              fixed below the sparse switchover,\n"
      "                              doubling above; default auto)\n"
      "  --trace PATH                export the span timeline to PATH\n"
      "  --trace-format jsonl|chrome trace format (default jsonl; chrome\n"
      "                              loads in Perfetto / chrome://tracing)\n"
      "  --metrics PATH              export session metrics as JSON\n"
      "  --quiet                     only print the summary line\n"
      "client mode (talk to a robotune_serve daemon instead of tuning):\n"
      "  --connect SOCKET            daemon socket path\n"
      "  --remote VERB               start|status|suggest|observe|\n"
      "                              checkpoint|cancel|metrics|shutdown|\n"
      "                              drive\n"
      "                              (default status; start builds the\n"
      "                              session spec from the options above,\n"
      "                              deriving the seed daemon-side unless\n"
      "                              --seed was given)\n"
      "  --session ID                target session for the verb\n"
      "  --mode internal|external    start: external sessions evaluate\n"
      "                              nothing daemon-side — suggestions\n"
      "                              are leased to ask/tell clients\n"
      "                              (default internal)\n"
      "  --from N                    observe: first evaluation index\n"
      "  --limit N                   observe: max records per page;\n"
      "                              suggest/drive (external sessions):\n"
      "                              max leases per ask (0 = default)\n"
      "  --eval N                    observe as *tell*: deliver --value/\n"
      "                              --cost/--status for eval index N to\n"
      "                              an external (ask/tell) session\n"
      "  --value S                   tell: observed objective seconds\n"
      "  --cost S                    tell: observed cost seconds\n"
      "  --status L                  tell: run status label (default ok)\n"
      "  --format prom               metrics: print the daemon's\n"
      "                              Prometheus text exposition raw\n"
      "drive: run the external-evaluator loop against an ask/tell session\n"
      "  (started with --remote start ... plus mode=external daemon-side):\n"
      "  lease suggestions, evaluate them on the local simulator built\n"
      "  from --workload/--dataset/--metric/--seed, and tell the results\n"
      "  back until the session reaches a terminal state.\n",
      argv0);
}

bool parse(int argc, char** argv, CliOptions& options) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return (i + 1 < argc) ? argv[++i] : nullptr;
    };
    if (arg == "--workload") {
      const char* v = next();
      if (!v) return false;
      options.workload = v;
    } else if (arg == "--dataset") {
      const char* v = next();
      if (!v) return false;
      options.dataset = std::atoi(v);
    } else if (arg == "--tuner") {
      const char* v = next();
      if (!v) return false;
      options.tuner = v;
    } else if (arg == "--budget") {
      const char* v = next();
      if (!v) return false;
      options.budget = std::atoi(v);
    } else if (arg == "--seed") {
      const char* v = next();
      if (!v) return false;
      options.seed = static_cast<std::uint64_t>(std::atoll(v));
      options.seed_set = true;
    } else if (arg == "--state") {
      const char* v = next();
      if (!v) return false;
      options.state_path = v;
    } else if (arg == "--metric") {
      const char* v = next();
      if (!v) return false;
      options.metric = v;
    } else if (arg == "--fault-profile") {
      const char* v = next();
      if (!v) return false;
      options.fault_profile = v;
    } else if (arg == "--retries") {
      const char* v = next();
      if (!v) return false;
      options.retries = std::atoi(v);
    } else if (arg == "--checkpoint") {
      const char* v = next();
      if (!v) return false;
      options.checkpoint_path = v;
    } else if (arg == "--resume") {
      options.resume = true;
    } else if (arg == "--recover") {
      options.recover = true;
    } else if (arg == "--fsync") {
      options.fsync = true;
    } else if (arg == "--chaos-profile") {
      const char* v = next();
      if (!v) return false;
      options.chaos_profile = v;
    } else if (arg == "--parallel") {
      const char* v = next();
      if (!v) return false;
      options.parallel = std::atoi(v);
      if (options.parallel < 0) return false;
    } else if (arg == "--batch") {
      const char* v = next();
      if (!v) return false;
      options.batch = std::atoi(v);
      if (options.batch < 1) return false;
    } else if (arg == "--racing") {
      const char* v = next();
      if (!v) return false;
      options.racing = v;
    } else if (arg == "--eval-deadline") {
      const char* v = next();
      if (!v) return false;
      options.eval_deadline = std::atof(v);
      if (options.eval_deadline < 0.0) return false;
    } else if (arg == "--preempt-rate") {
      const char* v = next();
      if (!v) return false;
      options.preempt_rate = std::atof(v);
      if (options.preempt_rate < 0.0 || options.preempt_rate > 1.0) {
        return false;
      }
    } else if (arg == "--init") {
      const char* v = next();
      if (!v) return false;
      options.init = std::atoi(v);
      if (options.init < 0) return false;
    } else if (arg == "--selection-samples") {
      const char* v = next();
      if (!v) return false;
      options.selection_samples = std::atoi(v);
      if (options.selection_samples < 0) return false;
    } else if (arg == "--surrogate") {
      const char* v = next();
      if (!v) return false;
      options.surrogate = v;
    } else if (arg == "--rff-features") {
      const char* v = next();
      if (!v) return false;
      options.rff_features = std::atoi(v);
      if (options.rff_features < 0) return false;
    } else if (arg == "--refit-schedule") {
      const char* v = next();
      if (!v) return false;
      options.refit_schedule = v;
    } else if (arg == "--trace") {
      const char* v = next();
      if (!v) return false;
      options.trace_path = v;
    } else if (arg == "--trace-format") {
      const char* v = next();
      if (!v || !obs::parse_trace_format(v, options.trace_format)) {
        return false;
      }
    } else if (arg == "--metrics") {
      const char* v = next();
      if (!v) return false;
      options.metrics_path = v;
    } else if (arg == "--quiet") {
      options.quiet = true;
    } else if (arg == "--connect") {
      const char* v = next();
      if (!v) return false;
      options.connect_path = v;
    } else if (arg == "--remote") {
      const char* v = next();
      if (!v) return false;
      options.remote = v;
    } else if (arg == "--session") {
      const char* v = next();
      if (!v) return false;
      options.session_id = static_cast<std::uint64_t>(std::atoll(v));
    } else if (arg == "--mode") {
      const char* v = next();
      if (!v) return false;
      options.mode = v;
    } else if (arg == "--from") {
      const char* v = next();
      if (!v) return false;
      options.from = static_cast<std::uint64_t>(std::atoll(v));
    } else if (arg == "--limit") {
      const char* v = next();
      if (!v) return false;
      options.limit = static_cast<std::uint64_t>(std::atoll(v));
    } else if (arg == "--eval") {
      const char* v = next();
      if (!v) return false;
      options.eval_index = static_cast<std::uint64_t>(std::atoll(v));
      options.tell_set = true;
    } else if (arg == "--value") {
      const char* v = next();
      if (!v) return false;
      options.tell_value = std::atof(v);
    } else if (arg == "--cost") {
      const char* v = next();
      if (!v) return false;
      options.tell_cost = std::atof(v);
    } else if (arg == "--status") {
      const char* v = next();
      if (!v) return false;
      options.tell_status = v;
    } else if (arg == "--format") {
      const char* v = next();
      if (!v) return false;
      options.format = v;
    } else {
      return false;
    }
  }
  return options.dataset >= 1 && options.dataset <= 3;
}

/// Maps the local CLI options onto the shared session spec.
core::SessionSpec spec_from(const CliOptions& options) {
  core::SessionSpec spec;
  spec.workload = options.workload;
  spec.dataset = options.dataset;
  spec.tuner = options.tuner;
  spec.budget = options.budget;
  spec.seed = options.seed;
  spec.metric = options.metric;
  spec.fault_profile = options.fault_profile;
  spec.retries = options.retries;
  spec.preempt_rate = options.preempt_rate;
  spec.parallel = options.parallel;
  spec.batch = options.batch;
  spec.racing = options.racing;
  spec.eval_deadline = options.eval_deadline;
  spec.init = options.init;
  spec.selection_samples = options.selection_samples;
  spec.surrogate = options.surrogate;
  spec.rff_features = options.rff_features;
  spec.refit = options.refit_schedule;
  spec.mode = options.mode;
  spec.checkpoint_path = options.checkpoint_path;
  spec.resume = options.resume;
  spec.recover = options.recover;
  spec.sync = options.fsync ? core::SyncPolicy::kFsync
                            : core::SyncPolicy::kNone;
  return spec;
}

/// Parses one external suggest record: `<index> <lease> <deadline>
/// <unit...>` (the wire format dispatch emits for ask grants).
bool parse_grant(const std::string& record, std::uint64_t& index,
                 std::vector<double>& unit) {
  std::istringstream in(record);
  std::uint64_t lease = 0;
  std::uint64_t deadline = 0;
  if (!(in >> index >> lease >> deadline)) return false;
  unit.clear();
  double v = 0.0;
  while (in >> v) unit.push_back(v);
  return !unit.empty();
}

/// The external-evaluator loop (DESIGN.md §16): lease pending
/// suggestions from an ask/tell session, evaluate each on a locally
/// built simulator, and tell the observed (value, cost, status) tuple
/// back — retrying tells the daemon drops (chaos or transport) and
/// treating a duplicate ack as success, so the loop is safe to restart
/// at any point.
int run_drive(service::SocketClient& client, const CliOptions& options) {
  if (options.session_id == 0) {
    std::fprintf(stderr, "drive needs --session ID\n");
    return 2;
  }
  sparksim::WorkloadKind kind = sparksim::WorkloadKind::kPageRank;
  bool known = false;
  for (auto k : sparksim::all_workloads()) {
    if (sparksim::short_name(k) == options.workload) {
      kind = k;
      known = true;
      break;
    }
  }
  if (!known) {
    std::fprintf(stderr, "unknown workload '%s'\n",
                 options.workload.c_str());
    return 2;
  }
  // Same evaluator construction as an internal session (core/session.cpp)
  // so a driven session observes the tuples an internal run of the same
  // spec would journal.
  sparksim::SparkObjective objective(
      sparksim::ClusterSpec::paper_testbed(),
      sparksim::make_workload(kind, options.dataset),
      sparksim::spark24_config_space(), options.seed * 7919, 480.0, 0.04,
      options.metric == "coreseconds"
          ? sparksim::ObjectiveMetric::kCoreSeconds
          : sparksim::ObjectiveMetric::kExecutionTime);
  sparksim::FaultProfile faults;
  if (!sparksim::FaultProfile::from_preset(options.fault_profile, faults)) {
    std::fprintf(stderr,
                 "drive supports preset fault profiles only "
                 "(none|mild|moderate|severe), not '%s'\n",
                 options.fault_profile.c_str());
    return 2;
  }
  objective.set_fault_profile(faults);
  if (faults.active()) {
    sparksim::RetryPolicy retry;
    retry.max_retries = std::max(0, options.retries);
    objective.set_retry_policy(retry);
  }

  std::string error;
  std::size_t told = 0;
  std::size_t duplicates = 0;
  std::string state = "unknown";
  while (!g_stop.load(std::memory_order_relaxed)) {
    service::Request ask;
    ask.verb = "suggest";
    ask.session = options.session_id;
    ask.limit = options.limit;
    service::Response batch;
    if (!client.call(ask, batch, &error)) {
      std::fprintf(stderr, "%s\n", error.c_str());
      return 1;
    }
    if (!batch.ok) {
      std::fprintf(stderr, "error: %s\n", batch.error.c_str());
      return 1;
    }
    if (batch.fields["mode"] != "external") {
      std::fprintf(stderr,
                   "session %llu is not external — drive only applies "
                   "to ask/tell sessions\n",
                   static_cast<unsigned long long>(options.session_id));
      return 1;
    }
    state = batch.fields["state"];
    if (state == "done" || state == "cancelled" || state == "failed") break;
    if (batch.records.empty()) {
      // The engine is between rounds (fitting the surrogate on the
      // observations just told) — poll again shortly.
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
      continue;
    }
    for (const auto& record : batch.records) {
      std::uint64_t index = 0;
      std::vector<double> unit;
      if (!parse_grant(record, index, unit)) {
        std::fprintf(stderr, "bad suggest record '%s'\n", record.c_str());
        return 1;
      }
      const auto outcome = objective.evaluate(unit);
      service::Request tell;
      tell.verb = "observe";
      tell.session = options.session_id;
      tell.has_observation = true;
      tell.eval = index;
      tell.value_s = outcome.value_s;
      tell.cost_s = outcome.cost_s;
      tell.status = sparksim::to_string(outcome.status);
      bool delivered = false;
      for (int attempt = 0; attempt < 8 && !delivered; ++attempt) {
        service::Response ack;
        if (!client.call(tell, ack, &error)) {
          std::fprintf(stderr, "%s\n", error.c_str());
          return 1;
        }
        const std::string verdict = ack.fields["verdict"];
        if (ack.ok) {
          delivered = true;
          if (verdict == "duplicate") ++duplicates;
          ++told;
        } else if (verdict == "conflict") {
          std::fprintf(stderr,
                       "eval %llu conflicts with the recorded tuple "
                       "(value=%s cost=%s status=%s) — aborting\n",
                       static_cast<unsigned long long>(index),
                       ack.fields["value"].c_str(),
                       ack.fields["cost"].c_str(),
                       ack.fields["status"].c_str());
          return 1;
        } else if (ack.error.find("retry") != std::string::npos) {
          // Chaos / transient delivery drop: idempotent, so resend.
          continue;
        } else {
          std::fprintf(stderr, "error: %s\n", ack.error.c_str());
          return 1;
        }
      }
      if (!delivered) {
        std::fprintf(stderr,
                     "eval %llu: delivery kept failing — giving up\n",
                     static_cast<unsigned long long>(index));
        return 1;
      }
    }
  }
  if (!options.quiet) {
    std::printf("drove session %llu to state %s: %zu observation(s) told"
                " (%zu duplicate ack(s))\n",
                static_cast<unsigned long long>(options.session_id),
                state.c_str(), told, duplicates);
  }
  return 0;
}

/// Client mode: one request against a robotune_serve daemon.
int run_client(const CliOptions& options) {
  service::SocketClient client;
  std::string error;
  if (!client.connect(options.connect_path, &error)) {
    std::fprintf(stderr, "%s\n", error.c_str());
    return 1;
  }
  if (options.remote == "drive") return run_drive(client, options);
  service::Request request;
  request.verb = options.remote;
  request.session = options.session_id;
  request.from = options.from;
  request.limit = options.limit;
  request.format = options.format;
  if (request.verb == "observe" && options.tell_set) {
    request.has_observation = true;
    request.eval = options.eval_index;
    request.value_s = options.tell_value;
    request.cost_s = options.tell_cost;
    request.status = options.tell_status;
  }
  if (request.verb == "start") {
    core::SessionSpec spec = spec_from(options);
    spec.checkpoint_path.clear();  // the daemon owns durability wiring
    if (const auto why = spec.validate(); !why.empty()) {
      std::fprintf(stderr, "%s\n", why.c_str());
      return 2;
    }
    request.spec_body = core::encode_spec_body(spec);
    request.derive_seed = !options.seed_set;
  }
  service::Response response;
  if (!client.call(request, response, &error)) {
    std::fprintf(stderr, "%s\n", error.c_str());
    return 1;
  }
  if (!response.ok) {
    std::fprintf(stderr, "error: %s\n", response.error.c_str());
    return 1;
  }
  if (request.verb == "start") {
    std::printf("session %s started\n", response.fields["id"].c_str());
    return 0;
  }
  // `metrics --format prom` prints the exposition raw — pipe it into a
  // node_exporter textfile or straight at a scraper.
  if (const auto prom = response.fields.find("prom");
      prom != response.fields.end()) {
    std::fputs(prom->second.c_str(), stdout);
    return 0;
  }
  for (const auto& [key, value] : response.fields) {
    std::printf("%s=%s\n", key.c_str(), value.c_str());
  }
  for (const auto& record : response.records) {
    const char* prefix = request.verb == "metrics"    ? "session"
                         : request.verb == "suggest" ? "grant"
                                                     : "eval";
    std::printf("%s %s\n", prefix, record.c_str());
  }
  // Truncation detection: the daemon reports the journal's total record
  // count alongside any observe window, so a short page is visible
  // instead of silently passing for the whole history.
  if (request.verb == "observe" && !request.has_observation) {
    if (const auto it = response.fields.find("total");
        it != response.fields.end()) {
      const std::uint64_t total = std::strtoull(it->second.c_str(),
                                                nullptr, 10);
      const std::uint64_t shown = response.records.size();
      if (options.from + shown < total) {
        std::printf("note: truncated — %llu of %llu record(s) shown; "
                    "next page: --from %llu\n",
                    static_cast<unsigned long long>(shown),
                    static_cast<unsigned long long>(total),
                    static_cast<unsigned long long>(options.from + shown));
      }
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  CliOptions options;
  if (!parse(argc, argv, options)) {
    usage(argv[0]);
    return 2;
  }
  if (!options.connect_path.empty()) return run_client(options);

  const core::SessionSpec spec = spec_from(options);
  if (const auto why = spec.validate(); !why.empty()) {
    std::fprintf(stderr, "%s\n", why.c_str());
    return 2;
  }

  chaos::ChaosProfile chaos_profile;
  if (!chaos::ChaosProfile::parse(options.chaos_profile, chaos_profile)) {
    std::fprintf(stderr, "bad --chaos-profile '%s'\n",
                 options.chaos_profile.c_str());
    return 2;
  }
  if (chaos_profile.active() && !chaos::kCompiledIn && !options.quiet) {
    std::printf(
        "note: built with ROBOTUNE_CHAOS=OFF — --chaos-profile is a "
        "no-op\n");
  }
  chaos::injector().configure(chaos_profile, options.seed);

  // Install the graceful-shutdown handlers before any tuning starts.
  {
    struct sigaction sa = {};
    sa.sa_handler = handle_stop_signal;
    sigemptyset(&sa.sa_mask);
    sigaction(SIGINT, &sa, nullptr);
    sigaction(SIGTERM, &sa, nullptr);
  }

  // Tracing costs one relaxed atomic load per span unless requested.
  const bool observing =
      !options.trace_path.empty() || !options.metrics_path.empty();
  if (!options.trace_path.empty()) obs::tracer().set_enabled(true);
  if (observing && !obs::kCompiledIn && !options.quiet) {
    std::printf(
        "note: built with ROBOTUNE_OBS=OFF — trace/metrics output will "
        "be empty\n");
  }

  std::string why;
  auto session = core::SessionFactory::create(spec, &why);
  if (!session) {
    std::fprintf(stderr, "%s\n", why.c_str());
    return 2;
  }
  if (!options.state_path.empty() &&
      session->load_state(options.state_path) && !options.quiet) {
    std::printf("loaded memoized state from %s\n",
                options.state_path.c_str());
  }

  // Resume probe: report what the journal holds before replaying it (the
  // session loads it again itself — the file is tiny).  A strictly
  // corrupt journal aborts here, matching the historical CLI behavior.
  if (!options.checkpoint_path.empty() && options.resume) {
    try {
      const auto mode = options.recover ? core::LoadMode::kRecover
                                        : core::LoadMode::kStrict;
      core::SessionCheckpoint probe;
      core::SessionLoadReport load_report;
      if (core::load_session_file(options.checkpoint_path, probe, mode,
                                  &load_report)) {
        if (!options.quiet) {
          std::printf("resuming from %s (%zu evaluations journaled)\n",
                      options.checkpoint_path.c_str(),
                      probe.evaluations.size());
          if (load_report.recovered) {
            std::printf(
                "recovered journal: dropped %zu torn/corrupt record(s)\n",
                load_report.dropped_records);
          }
        }
      }
    } catch (const std::exception& e) {
      std::fprintf(stderr, "cannot resume from %s: %s\n",
                   options.checkpoint_path.c_str(), e.what());
      return 2;
    }
  }

  const auto outcome = session->run(&g_stop);
  if (!outcome.ok()) {
    std::fprintf(stderr, "%s\n", outcome.error.c_str());
    return 2;
  }
  const auto& result = outcome.result;
  const bool interrupted = outcome.interrupted;

  if (outcome.report && !options.quiet) {
    std::printf("selection: %zu parameters (%s), one-time cost %.0f s\n",
                outcome.report->selected.size(),
                outcome.report->selection_cache_hit ? "cache hit" : "fresh",
                outcome.report->selection_cost_s);
    std::printf("memoized configs used: %s\n",
                outcome.report->used_memoized_configs ? "yes" : "no");
  }
  if (!options.state_path.empty()) session->save_state(options.state_path);

  // Observability exports: by the time the tuner returned, every worker
  // batch has been joined (wait_all), so snapshot/records are quiescent.
  if (!options.trace_path.empty() &&
      !obs::tracer().write_file(options.trace_path, options.trace_format)) {
    std::fprintf(stderr, "cannot write trace to %s\n",
                 options.trace_path.c_str());
    return 2;
  }
  const auto metrics_snapshot = obs::metrics().snapshot();
  if (!options.metrics_path.empty() &&
      !obs::write_metrics_file(metrics_snapshot, options.metrics_path)) {
    std::fprintf(stderr, "cannot write metrics to %s\n",
                 options.metrics_path.c_str());
    return 2;
  }
  if (observing && !options.quiet) {
    std::fputs(
        obs::render_summary(metrics_snapshot, obs::tracer().records())
            .c_str(),
        stdout);
  }

  if (result.history.empty()) {
    std::printf("%s %s-D%d budget=%d interrupted before any evaluation\n",
                options.tuner.c_str(), options.workload.c_str(),
                options.dataset, options.budget);
    return interrupted ? 128 + static_cast<int>(g_signal) : 0;
  }
  std::printf("%s %s-D%d budget=%d best=%.2f cost=%.0f evals=%zu\n",
              options.tuner.c_str(), options.workload.c_str(),
              options.dataset, options.budget, result.best_value_s(),
              result.search_cost_s, result.history.size());
  if (interrupted) {
    std::printf("interrupted by signal %d after %zu evaluations%s\n",
                static_cast<int>(g_signal), result.history.size(),
                options.checkpoint_path.empty()
                    ? ""
                    : "; checkpoint is resumable with --resume");
  }
  sparksim::FaultProfile faults;
  core::parse_fault_profile(options.fault_profile, faults);
  faults.preemption_per_stage = options.preempt_rate;
  if (faults.active()) {
    std::printf(
        "faults: %zu simulator attempts for %zu evaluations, "
        "%zu unrecovered transient failures\n",
        result.total_attempts(), result.history.size(),
        result.transient_failure_count());
  }
  if (!options.quiet) {
    const auto space = sparksim::spark24_config_space();
    const auto best = space.decode(result.best_unit());
    std::printf("best configuration:\n");
    for (std::size_t i = 0; i < space.size(); ++i) {
      const auto& param = space.spec(i);
      if (best[i] == space.defaults()[i]) continue;  // only show changes
      if (param.kind == sparksim::ParamKind::kCategorical) {
        std::printf("  %-46s %s\n", param.name.c_str(),
                    param.categories[static_cast<std::size_t>(best[i])]
                        .c_str());
      } else {
        std::printf("  %-46s %g\n", param.name.c_str(), best[i]);
      }
    }
  }
  // Conventional "killed by signal N" status so wrapper scripts can tell
  // a graceful interruption from a completed run.
  return interrupted ? 128 + static_cast<int>(g_signal) : 0;
}
