// Command-line front end: run any of the four tuners on any workload and
// optionally persist ROBOTune's memoized state across invocations.
//
//   $ ./build/examples/robotune_cli --workload PR --dataset 2 \
//         --tuner robotune --budget 100 --seed 7 --state /tmp/rt.state
//
// Running the same command twice demonstrates cross-process memoization:
// the second run hits the selection cache and seeds BO with the first
// run's best configurations.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>

#include "core/persistence.h"
#include "core/robotune.h"
#include "sparksim/objective.h"
#include "tuners/bestconfig.h"
#include "tuners/gunther.h"
#include "tuners/random_search.h"

using namespace robotune;

namespace {

struct CliOptions {
  std::string workload = "PR";
  int dataset = 1;
  std::string tuner = "robotune";
  int budget = 100;
  std::uint64_t seed = 7;
  std::string state_path;
  std::string metric = "time";
  bool quiet = false;
};

void usage(const char* argv0) {
  std::printf(
      "usage: %s [options]\n"
      "  --workload PR|KM|CC|LR|TS   workload to tune        (default PR)\n"
      "  --dataset 1|2|3             Table-1 dataset          (default 1)\n"
      "  --tuner robotune|bestconfig|gunther|rs               (default robotune)\n"
      "  --budget N                  evaluation budget        (default 100)\n"
      "  --seed N                    RNG seed                 (default 7)\n"
      "  --metric time|coreseconds   objective metric         (default time)\n"
      "  --state PATH                load/save memoized state (robotune only)\n"
      "  --quiet                     only print the summary line\n",
      argv0);
}

bool parse(int argc, char** argv, CliOptions& options) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return (i + 1 < argc) ? argv[++i] : nullptr;
    };
    if (arg == "--workload") {
      const char* v = next();
      if (!v) return false;
      options.workload = v;
    } else if (arg == "--dataset") {
      const char* v = next();
      if (!v) return false;
      options.dataset = std::atoi(v);
    } else if (arg == "--tuner") {
      const char* v = next();
      if (!v) return false;
      options.tuner = v;
    } else if (arg == "--budget") {
      const char* v = next();
      if (!v) return false;
      options.budget = std::atoi(v);
    } else if (arg == "--seed") {
      const char* v = next();
      if (!v) return false;
      options.seed = static_cast<std::uint64_t>(std::atoll(v));
    } else if (arg == "--state") {
      const char* v = next();
      if (!v) return false;
      options.state_path = v;
    } else if (arg == "--metric") {
      const char* v = next();
      if (!v) return false;
      options.metric = v;
    } else if (arg == "--quiet") {
      options.quiet = true;
    } else {
      return false;
    }
  }
  return options.dataset >= 1 && options.dataset <= 3;
}

}  // namespace

int main(int argc, char** argv) {
  CliOptions options;
  if (!parse(argc, argv, options)) {
    usage(argv[0]);
    return 2;
  }

  sparksim::WorkloadKind kind = sparksim::WorkloadKind::kPageRank;
  bool found = false;
  for (auto k : sparksim::all_workloads()) {
    if (sparksim::short_name(k) == options.workload) {
      kind = k;
      found = true;
    }
  }
  if (!found) {
    std::fprintf(stderr, "unknown workload '%s'\n",
                 options.workload.c_str());
    return 2;
  }
  const auto metric = options.metric == "coreseconds"
                          ? sparksim::ObjectiveMetric::kCoreSeconds
                          : sparksim::ObjectiveMetric::kExecutionTime;

  sparksim::SparkObjective objective(
      sparksim::ClusterSpec::paper_testbed(),
      sparksim::make_workload(kind, options.dataset),
      sparksim::spark24_config_space(), options.seed * 7919, 480.0, 0.04,
      metric);

  tuners::TuningResult result;
  if (options.tuner == "robotune") {
    core::RoboTune tuner;
    if (!options.state_path.empty() &&
        core::load_state_file(options.state_path, tuner.selection_cache(),
                              tuner.memo_buffer())) {
      if (!options.quiet) {
        std::printf("loaded memoized state from %s\n",
                    options.state_path.c_str());
      }
    }
    const auto report =
        tuner.tune_report(objective, options.budget, options.seed);
    result = report.tuning;
    if (!options.quiet) {
      std::printf("selection: %zu parameters (%s), one-time cost %.0f s\n",
                  report.selected.size(),
                  report.selection_cache_hit ? "cache hit" : "fresh",
                  report.selection_cost_s);
      std::printf("memoized configs used: %s\n",
                  report.used_memoized_configs ? "yes" : "no");
    }
    if (!options.state_path.empty()) {
      core::save_state_file(tuner.selection_cache(), tuner.memo_buffer(),
                            options.state_path);
    }
  } else {
    std::unique_ptr<tuners::Tuner> tuner;
    if (options.tuner == "bestconfig") {
      tuner = std::make_unique<tuners::BestConfig>();
    } else if (options.tuner == "gunther") {
      tuner = std::make_unique<tuners::Gunther>();
    } else if (options.tuner == "rs") {
      tuner = std::make_unique<tuners::RandomSearch>();
    } else {
      std::fprintf(stderr, "unknown tuner '%s'\n", options.tuner.c_str());
      return 2;
    }
    result = tuner->tune(objective, options.budget, options.seed);
  }

  std::printf("%s %s-D%d budget=%d best=%.2f cost=%.0f evals=%zu\n",
              options.tuner.c_str(), options.workload.c_str(),
              options.dataset, options.budget, result.best_value_s(),
              result.search_cost_s, result.history.size());
  if (!options.quiet) {
    const auto& space = objective.space();
    const auto best = space.decode(result.best_unit());
    std::printf("best configuration:\n");
    for (std::size_t i = 0; i < space.size(); ++i) {
      const auto& spec = space.spec(i);
      if (best[i] == space.defaults()[i]) continue;  // only show changes
      if (spec.kind == sparksim::ParamKind::kCategorical) {
        std::printf("  %-46s %s\n", spec.name.c_str(),
                    spec.categories[static_cast<std::size_t>(best[i])]
                        .c_str());
      } else {
        std::printf("  %-46s %g\n", spec.name.c_str(), best[i]);
      }
    }
  }
  return 0;
}
