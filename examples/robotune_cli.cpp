// Command-line front end: run any of the four tuners on any workload and
// optionally persist ROBOTune's memoized state across invocations.
//
//   $ ./build/examples/robotune_cli --workload PR --dataset 2
//         --tuner robotune --budget 100 --seed 7 --state /tmp/rt.state
//
// Running the same command twice demonstrates cross-process memoization:
// the second run hits the selection cache and seeds BO with the first
// run's best configurations.
#include <algorithm>
#include <atomic>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>

#include "common/chaos.h"
#include "common/error.h"
#include "core/persistence.h"
#include "core/robotune.h"
#include "exec/eval_scheduler.h"
#include "obs/metrics.h"
#include "obs/summary.h"
#include "obs/trace.h"
#include "sparksim/objective.h"
#include "tuners/bestconfig.h"
#include "tuners/gunther.h"
#include "tuners/random_search.h"

using namespace robotune;

namespace {

// Graceful shutdown: SIGINT/SIGTERM set the stop flag, the BO engine
// notices it at the next round boundary, flushes its journal, and
// returns with interrupted = true — so ^C leaves a resumable checkpoint
// instead of a torn session.
std::atomic<bool> g_stop{false};
volatile std::sig_atomic_t g_signal = 0;

extern "C" void handle_stop_signal(int sig) {
  g_signal = sig;
  g_stop.store(true, std::memory_order_relaxed);
}

struct CliOptions {
  std::string workload = "PR";
  int dataset = 1;
  std::string tuner = "robotune";
  int budget = 100;
  std::uint64_t seed = 7;
  std::string state_path;
  std::string metric = "time";
  std::string fault_profile = "none";
  int retries = 2;
  std::string checkpoint_path;
  bool resume = false;
  /// Load the checkpoint in recover mode: a torn or corrupt journal tail
  /// is truncated to the longest valid prefix instead of aborting.
  bool recover = false;
  /// fsync the journal (and its directory) on every checkpoint flush.
  bool fsync = false;
  /// Internal chaos injection profile (preset or per-site rates).
  std::string chaos_profile = "none";
  bool quiet = false;
  /// Evaluation workers: 0 = no scheduler (legacy sequential seed
  /// streams); N >= 1 = scheduler mode with N workers (0-cost to results:
  /// any N gives bit-identical output, including N = 1).
  int parallel = 0;
  /// BO batch width q (robotune only; changes the trajectory).
  int batch = 1;
  /// Racing early-stop policy for in-flight evaluations (scheduler mode
  /// only): off | median | halving.
  std::string racing = "off";
  /// Per-evaluation simulated-time deadline in seconds (scheduler mode
  /// only; 0 = off).
  double eval_deadline = 0.0;
  /// Spot-instance preemption probability per stage (0 = off).
  double preempt_rate = 0.0;
  /// Observability: span timeline and metrics exports (0-cost to
  /// results — the determinism test pins byte-identical output).
  std::string trace_path;
  obs::TraceFormat trace_format = obs::TraceFormat::kJsonl;
  std::string metrics_path;
};

void usage(const char* argv0) {
  std::printf(
      "usage: %s [options]\n"
      "  --workload PR|KM|CC|LR|TS   workload to tune        (default PR)\n"
      "  --dataset 1|2|3             Table-1 dataset          (default 1)\n"
      "  --tuner robotune|bestconfig|gunther|rs               (default robotune)\n"
      "  --budget N                  evaluation budget        (default 100)\n"
      "  --seed N                    RNG seed                 (default 7)\n"
      "  --metric time|coreseconds   objective metric         (default time)\n"
      "  --state PATH                load/save memoized state (robotune only)\n"
      "  --fault-profile P           transient-fault injection (default none)\n"
      "                              preset none|mild|moderate|severe, or\n"
      "                              loss=F,fetch=F,straggler=F[,slowdown=F]\n"
      "  --retries N                 retries per transient failure (default 2)\n"
      "  --checkpoint PATH           journal the session after every\n"
      "                              evaluation (robotune only)\n"
      "  --resume                    resume from --checkpoint if it exists\n"
      "  --recover                   with --resume: truncate a torn or\n"
      "                              corrupt journal tail to the longest\n"
      "                              valid prefix instead of aborting\n"
      "  --fsync                     fsync the journal on every flush\n"
      "  --chaos-profile P           internal fault injection for soak\n"
      "                              testing (default none): preset\n"
      "                              none|surrogate|flaky|full, or\n"
      "                              cholesky=F,acq=F,journal=F,pool=F\n"
      "  --parallel N                evaluate batches on N workers; results\n"
      "                              are bit-identical for any N >= 1\n"
      "                              (default 0 = legacy sequential mode)\n"
      "  --batch q                   BO proposals per round via constant-\n"
      "                              liar fantasies (robotune; default 1)\n"
      "  --racing off|median|halving kill in-flight evaluations whose\n"
      "                              partial time already dominates the\n"
      "                              batch guard threshold (needs\n"
      "                              --parallel >= 1; default off)\n"
      "  --eval-deadline S           per-evaluation simulated-time deadline\n"
      "                              in seconds (needs --parallel >= 1;\n"
      "                              default 0 = off)\n"
      "  --preempt-rate F            spot-instance preemption probability\n"
      "                              per stage (default 0 = off)\n"
      "  --trace PATH                export the span timeline to PATH\n"
      "  --trace-format jsonl|chrome trace format (default jsonl; chrome\n"
      "                              loads in Perfetto / chrome://tracing)\n"
      "  --metrics PATH              export session metrics as JSON\n"
      "  --quiet                     only print the summary line\n",
      argv0);
}

/// Parses a preset name or a "loss=F,fetch=F,straggler=F[,slowdown=F]"
/// list into a FaultProfile.
bool parse_fault_profile(const std::string& text,
                         sparksim::FaultProfile& out) {
  if (sparksim::FaultProfile::from_preset(text, out)) return true;
  out = sparksim::FaultProfile{};
  std::size_t pos = 0;
  bool any = false;
  while (pos < text.size()) {
    const std::size_t comma = text.find(',', pos);
    const std::string item =
        text.substr(pos, comma == std::string::npos ? comma : comma - pos);
    const std::size_t eq = item.find('=');
    if (eq == std::string::npos) return false;
    const std::string key = item.substr(0, eq);
    char* end = nullptr;
    const double value = std::strtod(item.c_str() + eq + 1, &end);
    if (end == item.c_str() + eq + 1) return false;
    if (key == "loss") {
      out.executor_loss_per_stage = value;
    } else if (key == "fetch") {
      out.fetch_failure_per_stage = value;
    } else if (key == "straggler") {
      out.straggler_per_stage = value;
    } else if (key == "slowdown") {
      out.straggler_max_slowdown = value;
    } else {
      return false;
    }
    any = true;
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return any;
}

bool parse(int argc, char** argv, CliOptions& options) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return (i + 1 < argc) ? argv[++i] : nullptr;
    };
    if (arg == "--workload") {
      const char* v = next();
      if (!v) return false;
      options.workload = v;
    } else if (arg == "--dataset") {
      const char* v = next();
      if (!v) return false;
      options.dataset = std::atoi(v);
    } else if (arg == "--tuner") {
      const char* v = next();
      if (!v) return false;
      options.tuner = v;
    } else if (arg == "--budget") {
      const char* v = next();
      if (!v) return false;
      options.budget = std::atoi(v);
    } else if (arg == "--seed") {
      const char* v = next();
      if (!v) return false;
      options.seed = static_cast<std::uint64_t>(std::atoll(v));
    } else if (arg == "--state") {
      const char* v = next();
      if (!v) return false;
      options.state_path = v;
    } else if (arg == "--metric") {
      const char* v = next();
      if (!v) return false;
      options.metric = v;
    } else if (arg == "--fault-profile") {
      const char* v = next();
      if (!v) return false;
      options.fault_profile = v;
    } else if (arg == "--retries") {
      const char* v = next();
      if (!v) return false;
      options.retries = std::atoi(v);
    } else if (arg == "--checkpoint") {
      const char* v = next();
      if (!v) return false;
      options.checkpoint_path = v;
    } else if (arg == "--resume") {
      options.resume = true;
    } else if (arg == "--recover") {
      options.recover = true;
    } else if (arg == "--fsync") {
      options.fsync = true;
    } else if (arg == "--chaos-profile") {
      const char* v = next();
      if (!v) return false;
      options.chaos_profile = v;
    } else if (arg == "--parallel") {
      const char* v = next();
      if (!v) return false;
      options.parallel = std::atoi(v);
      if (options.parallel < 0) return false;
    } else if (arg == "--batch") {
      const char* v = next();
      if (!v) return false;
      options.batch = std::atoi(v);
      if (options.batch < 1) return false;
    } else if (arg == "--racing") {
      const char* v = next();
      if (!v) return false;
      options.racing = v;
    } else if (arg == "--eval-deadline") {
      const char* v = next();
      if (!v) return false;
      options.eval_deadline = std::atof(v);
      if (options.eval_deadline < 0.0) return false;
    } else if (arg == "--preempt-rate") {
      const char* v = next();
      if (!v) return false;
      options.preempt_rate = std::atof(v);
      if (options.preempt_rate < 0.0 || options.preempt_rate > 1.0) {
        return false;
      }
    } else if (arg == "--trace") {
      const char* v = next();
      if (!v) return false;
      options.trace_path = v;
    } else if (arg == "--trace-format") {
      const char* v = next();
      if (!v || !obs::parse_trace_format(v, options.trace_format)) {
        return false;
      }
    } else if (arg == "--metrics") {
      const char* v = next();
      if (!v) return false;
      options.metrics_path = v;
    } else if (arg == "--quiet") {
      options.quiet = true;
    } else {
      return false;
    }
  }
  return options.dataset >= 1 && options.dataset <= 3;
}

}  // namespace

int main(int argc, char** argv) {
  CliOptions options;
  if (!parse(argc, argv, options)) {
    usage(argv[0]);
    return 2;
  }

  sparksim::WorkloadKind kind = sparksim::WorkloadKind::kPageRank;
  bool found = false;
  for (auto k : sparksim::all_workloads()) {
    if (sparksim::short_name(k) == options.workload) {
      kind = k;
      found = true;
    }
  }
  if (!found) {
    std::fprintf(stderr, "unknown workload '%s'\n",
                 options.workload.c_str());
    return 2;
  }
  const auto metric = options.metric == "coreseconds"
                          ? sparksim::ObjectiveMetric::kCoreSeconds
                          : sparksim::ObjectiveMetric::kExecutionTime;

  sparksim::FaultProfile faults;
  if (!parse_fault_profile(options.fault_profile, faults)) {
    std::fprintf(stderr, "bad --fault-profile '%s'\n",
                 options.fault_profile.c_str());
    return 2;
  }
  // Spot-preemption intensity rides on top of whatever profile/preset
  // was chosen (all presets leave it at zero).
  faults.preemption_per_stage = options.preempt_rate;

  exec::RacingMode racing_mode = exec::RacingMode::kOff;
  if (!exec::racing_mode_from_string(options.racing, racing_mode)) {
    std::fprintf(stderr, "bad --racing '%s' (off|median|halving)\n",
                 options.racing.c_str());
    return 2;
  }
  if ((racing_mode != exec::RacingMode::kOff ||
       options.eval_deadline > 0.0) &&
      options.parallel < 1) {
    std::fprintf(stderr,
                 "--racing/--eval-deadline need the batch scheduler: "
                 "pass --parallel N (N >= 1)\n");
    return 2;
  }

  chaos::ChaosProfile chaos_profile;
  if (!chaos::ChaosProfile::parse(options.chaos_profile, chaos_profile)) {
    std::fprintf(stderr, "bad --chaos-profile '%s'\n",
                 options.chaos_profile.c_str());
    return 2;
  }
  if (chaos_profile.active() && !chaos::kCompiledIn && !options.quiet) {
    std::printf(
        "note: built with ROBOTUNE_CHAOS=OFF — --chaos-profile is a "
        "no-op\n");
  }
  chaos::injector().configure(chaos_profile, options.seed);

  // Install the graceful-shutdown handlers before any tuning starts.
  {
    struct sigaction sa = {};
    sa.sa_handler = handle_stop_signal;
    sigemptyset(&sa.sa_mask);
    sigaction(SIGINT, &sa, nullptr);
    sigaction(SIGTERM, &sa, nullptr);
  }

  sparksim::SparkObjective objective(
      sparksim::ClusterSpec::paper_testbed(),
      sparksim::make_workload(kind, options.dataset),
      sparksim::spark24_config_space(), options.seed * 7919, 480.0, 0.04,
      metric);
  objective.set_fault_profile(faults);
  if (faults.active()) {
    sparksim::RetryPolicy retry;
    retry.max_retries = std::max(0, options.retries);
    objective.set_retry_policy(retry);
  }

  // Tracing costs one relaxed atomic load per span unless requested.
  const bool observing =
      !options.trace_path.empty() || !options.metrics_path.empty();
  if (!options.trace_path.empty()) obs::tracer().set_enabled(true);
  if (observing && !obs::kCompiledIn && !options.quiet) {
    std::printf(
        "note: built with ROBOTUNE_OBS=OFF — trace/metrics output will "
        "be empty\n");
  }

  // --parallel N attaches the batch-evaluation scheduler: evaluations run
  // on N workers with seed streams derived from (seed, eval index), so
  // the results are bit-identical for any N (but differ from the legacy
  // sequential mode at --parallel 0).
  std::unique_ptr<exec::EvalScheduler> scheduler;
  if (options.parallel >= 1) {
    exec::SchedulerOptions sched;
    sched.parallelism = options.parallel;
    sched.racing.mode = racing_mode;
    sched.racing.deadline_s = options.eval_deadline;
    scheduler = std::make_unique<exec::EvalScheduler>(sched);
  }

  tuners::TuningResult result;
  bool interrupted = false;
  if (options.tuner == "robotune") {
    core::RoboTuneOptions tuner_options;
    tuner_options.bo.batch_size = options.batch;
    tuner_options.bo.cancel = &g_stop;
    core::RoboTune tuner(tuner_options);
    if (!options.state_path.empty() &&
        core::load_state_file(options.state_path, tuner.selection_cache(),
                              tuner.memo_buffer())) {
      if (!options.quiet) {
        std::printf("loaded memoized state from %s\n",
                    options.state_path.c_str());
      }
    }
    // Checkpoint/resume: journal the session after every evaluation; on
    // --resume, replay the journal for an identical continuation.
    core::SessionLog session;
    core::SessionLog* session_ptr = nullptr;
    if (!options.checkpoint_path.empty()) {
      try {
        const auto mode = options.recover ? core::LoadMode::kRecover
                                          : core::LoadMode::kStrict;
        core::SessionLoadReport load_report;
        if (options.resume &&
            core::load_session_file(options.checkpoint_path, session.state,
                                    mode, &load_report)) {
          if (!options.quiet) {
            std::printf("resuming from %s (%zu evaluations journaled)\n",
                        options.checkpoint_path.c_str(),
                        session.state.evaluations.size());
            if (load_report.recovered) {
              std::printf(
                  "recovered journal: dropped %zu torn/corrupt record(s)\n",
                  load_report.dropped_records);
            }
          }
        }
      } catch (const std::exception& e) {
        std::fprintf(stderr, "cannot resume from %s: %s\n",
                     options.checkpoint_path.c_str(), e.what());
        return 2;
      }
      const std::string path = options.checkpoint_path;
      const auto sync = options.fsync ? core::SyncPolicy::kFsync
                                      : core::SyncPolicy::kNone;
      session.flush = [path, sync](const core::SessionCheckpoint& state) {
        core::save_session_file(state, path, sync);
      };
      session_ptr = &session;
    }
    core::RoboTuneReport report;
    try {
      report = tuner.tune_report(objective, options.budget, options.seed,
                                 nullptr, session_ptr, scheduler.get());
    } catch (const InvalidArgument& e) {
      std::fprintf(stderr, "cannot resume from %s: %s\n",
                   options.checkpoint_path.c_str(), e.what());
      return 2;
    }
    result = report.tuning;
    interrupted = report.bo.interrupted;
    if (!options.quiet) {
      std::printf("selection: %zu parameters (%s), one-time cost %.0f s\n",
                  report.selected.size(),
                  report.selection_cache_hit ? "cache hit" : "fresh",
                  report.selection_cost_s);
      std::printf("memoized configs used: %s\n",
                  report.used_memoized_configs ? "yes" : "no");
    }
    if (!options.state_path.empty()) {
      core::save_state_file(tuner.selection_cache(), tuner.memo_buffer(),
                            options.state_path);
    }
  } else {
    std::unique_ptr<tuners::Tuner> tuner;
    if (options.tuner == "bestconfig") {
      tuner = std::make_unique<tuners::BestConfig>();
    } else if (options.tuner == "gunther") {
      tuner = std::make_unique<tuners::Gunther>();
    } else if (options.tuner == "rs") {
      tuner = std::make_unique<tuners::RandomSearch>();
    } else {
      std::fprintf(stderr, "unknown tuner '%s'\n", options.tuner.c_str());
      return 2;
    }
    tuner->set_scheduler(scheduler.get());
    result = tuner->tune(objective, options.budget, options.seed);
  }

  // Observability exports: by the time the tuner returned, every worker
  // batch has been joined (wait_all), so snapshot/records are quiescent.
  if (!options.trace_path.empty() &&
      !obs::tracer().write_file(options.trace_path, options.trace_format)) {
    std::fprintf(stderr, "cannot write trace to %s\n",
                 options.trace_path.c_str());
    return 2;
  }
  const auto metrics_snapshot = obs::metrics().snapshot();
  if (!options.metrics_path.empty() &&
      !obs::write_metrics_file(metrics_snapshot, options.metrics_path)) {
    std::fprintf(stderr, "cannot write metrics to %s\n",
                 options.metrics_path.c_str());
    return 2;
  }
  if (observing && !options.quiet) {
    std::fputs(
        obs::render_summary(metrics_snapshot, obs::tracer().records())
            .c_str(),
        stdout);
  }

  if (result.history.empty()) {
    std::printf("%s %s-D%d budget=%d interrupted before any evaluation\n",
                options.tuner.c_str(), options.workload.c_str(),
                options.dataset, options.budget);
    return interrupted ? 128 + static_cast<int>(g_signal) : 0;
  }
  std::printf("%s %s-D%d budget=%d best=%.2f cost=%.0f evals=%zu\n",
              options.tuner.c_str(), options.workload.c_str(),
              options.dataset, options.budget, result.best_value_s(),
              result.search_cost_s, result.history.size());
  if (interrupted) {
    std::printf("interrupted by signal %d after %zu evaluations%s\n",
                static_cast<int>(g_signal), result.history.size(),
                options.checkpoint_path.empty()
                    ? ""
                    : "; checkpoint is resumable with --resume");
  }
  if (faults.active()) {
    std::printf(
        "faults: %zu simulator attempts for %zu evaluations, "
        "%zu unrecovered transient failures\n",
        result.total_attempts(), result.history.size(),
        result.transient_failure_count());
  }
  if (!options.quiet) {
    const auto& space = objective.space();
    const auto best = space.decode(result.best_unit());
    std::printf("best configuration:\n");
    for (std::size_t i = 0; i < space.size(); ++i) {
      const auto& spec = space.spec(i);
      if (best[i] == space.defaults()[i]) continue;  // only show changes
      if (spec.kind == sparksim::ParamKind::kCategorical) {
        std::printf("  %-46s %s\n", spec.name.c_str(),
                    spec.categories[static_cast<std::size_t>(best[i])]
                        .c_str());
      } else {
        std::printf("  %-46s %g\n", spec.name.c_str(), best[i]);
      }
    }
  }
  // Conventional "killed by signal N" status so wrapper scripts can tell
  // a graceful interruption from a completed run.
  return interrupted ? 128 + static_cast<int>(g_signal) : 0;
}
