// Compare all four tuners (ROBOTune, BestConfig, Gunther, Random Search)
// on one workload — a miniature of the paper's Figures 3 and 4.
//
//   $ ./build/examples/compare_tuners [workload] [dataset] [budget]
//     workload: PR | KM | CC | LR | TS   (default PR)
//     dataset:  1 | 2 | 3                (default 1)
//     budget:   evaluations per tuner    (default 100)
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>

#include "core/robotune.h"
#include "sparksim/objective.h"
#include "tuners/bestconfig.h"
#include "tuners/gunther.h"
#include "tuners/random_search.h"

using namespace robotune;

namespace {

sparksim::WorkloadKind parse_workload(const char* name) {
  for (auto kind : sparksim::all_workloads()) {
    if (sparksim::short_name(kind) == name) return kind;
  }
  std::fprintf(stderr, "unknown workload '%s' (use PR/KM/CC/LR/TS)\n", name);
  std::exit(1);
}

}  // namespace

int main(int argc, char** argv) {
  const auto kind =
      argc > 1 ? parse_workload(argv[1]) : sparksim::WorkloadKind::kPageRank;
  const int dataset = argc > 2 ? std::atoi(argv[2]) : 1;
  const int budget = argc > 3 ? std::atoi(argv[3]) : 100;

  std::printf("comparing tuners on %s-D%d (budget %d evaluations each)\n\n",
              sparksim::short_name(kind).c_str(), dataset, budget);

  core::RoboTune robotune;
  tuners::BestConfig bestconfig;
  tuners::Gunther gunther;
  tuners::RandomSearch rs;
  std::vector<tuners::Tuner*> all = {&robotune, &bestconfig, &gunther, &rs};

  std::printf("%-12s %12s %14s %16s\n", "tuner", "best (s)",
              "search cost (s)", "failed configs");
  double rs_best = 0.0, rs_cost = 0.0;
  std::vector<std::pair<std::string, std::pair<double, double>>> rows;
  for (auto* tuner : all) {
    sparksim::SparkObjective objective(
        sparksim::ClusterSpec::paper_testbed(),
        sparksim::make_workload(kind, dataset),
        sparksim::spark24_config_space(), 4242);
    const auto result = tuner->tune(objective, budget, 17);
    int failed = 0;
    for (const auto& e : result.history) {
      if (!e.ok() && !e.stopped_early) ++failed;
    }
    std::printf("%-12s %12.1f %14.0f %16d\n", tuner->name().c_str(),
                result.best_value_s(), result.search_cost_s, failed);
    rows.push_back({tuner->name(),
                    {result.best_value_s(), result.search_cost_s}});
    if (tuner->name() == "RS") {
      rs_best = result.best_value_s();
      rs_cost = result.search_cost_s;
    }
  }
  std::printf("\nscaled to Random Search (the paper's Fig. 3/4 format):\n");
  for (const auto& [name, vals] : rows) {
    std::printf("  %-12s time %.3fx   cost %.3fx\n", name.c_str(),
                vals.first / rs_best, vals.second / rs_cost);
  }
  return 0;
}
