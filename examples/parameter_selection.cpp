// Inspect ROBOTune's dimension-reduction stage on its own: collect 100
// generic LHS samples, train the Random Forest, and print the ranked
// joint-parameter importances with the 0.05 selection threshold.
//
//   $ ./build/examples/parameter_selection [workload]
//     workload: PR | KM | CC | LR | TS (default PR)
#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "core/parameter_selection.h"
#include "sparksim/objective.h"

using namespace robotune;

int main(int argc, char** argv) {
  sparksim::WorkloadKind kind = sparksim::WorkloadKind::kPageRank;
  if (argc > 1) {
    bool found = false;
    for (auto k : sparksim::all_workloads()) {
      if (sparksim::short_name(k) == argv[1]) {
        kind = k;
        found = true;
      }
    }
    if (!found) {
      std::fprintf(stderr, "unknown workload '%s'\n", argv[1]);
      return 1;
    }
  }

  sparksim::SparkObjective objective(
      sparksim::ClusterSpec::paper_testbed(),
      sparksim::make_workload(kind, 1), sparksim::spark24_config_space(),
      1234);

  core::SelectionOptions options;  // paper defaults: 100 samples, 0.05
  const auto report = core::select_parameters(
      objective, sparksim::spark24_joint_parameter_groups(), options);

  std::printf("parameter selection for %s (100 generic LHS samples)\n",
              sparksim::to_string(kind).c_str());
  std::printf("forest OOB R^2: %.3f   sampling cost: %.0f s (one-time)\n\n",
              report.oob_r2, report.sampling_cost_s);
  std::printf("%-70s %10s %9s\n", "joint parameter (group)", "R^2 drop",
              "selected");
  for (const auto& imp : report.importances) {
    // A group counts as selected when its features made the final set
    // (threshold, robustness floor, or domain-knowledge pin).
    bool selected = true;
    for (std::size_t f : imp.group.features) {
      selected = selected && std::find(report.selected.begin(),
                                       report.selected.end(),
                                       f) != report.selected.end();
    }
    if (imp.mean_drop < 0.005 && !selected) continue;  // trim the tail
    std::printf("%-70s %10.3f %9s\n", imp.group.name.c_str(), imp.mean_drop,
                selected ? "yes" : "");
  }
  std::printf("\n(plus the pinned domain-knowledge group: "
              "spark.executor.cores+spark.executor.memory.mb)\n");
  std::printf("selected %zu of %zu parameters for the BO stage\n",
              report.selected.size(), objective.space().size());
  return 0;
}
