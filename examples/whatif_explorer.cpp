// What-if explorer for the Spark cluster simulator: evaluate a
// configuration, print the per-stage timeline and the bottleneck
// breakdown, then show the marginal effect of changing one parameter.
//
//   $ ./build/examples/whatif_explorer
//
// Useful for understanding *why* a configuration is slow — the same
// information a Spark UI + GC logs post-mortem would give.
#include <cstdio>

#include "sparksim/objective.h"

using namespace robotune;
using namespace robotune::sparksim;

namespace {

void describe(SparkObjective& objective, const DecodedConfig& values,
              const char* label) {
  const auto out = objective.evaluate_decoded(values, 0.0, false);
  std::printf("\n== %s ==\n", label);
  if (!out.raw.ok()) {
    std::printf("  run FAILED (%s) after %.1f s in stage '%s'\n",
                to_string(out.status).c_str(), out.raw.seconds,
                out.raw.failure_stage.c_str());
    return;
  }
  const auto& m = out.raw.metrics;
  std::printf("  total %.1f s over %d tasks in %d waves\n", out.value_s,
              m.total_tasks, m.total_waves);
  std::printf("  aggregate task time: cpu %.0f s, disk %.0f s, "
              "network %.0f s\n",
              m.cpu_seconds, m.disk_seconds, m.network_seconds);
  std::printf("  gc overhead %.1f%%, cache evicted %.0f%%, spill %.1f GB, "
              "straggler factor %.2f\n",
              100.0 * m.gc_fraction, 100.0 * m.cache_evicted_fraction,
              m.spill_gb, m.straggler_factor);
  std::printf("  stage timeline (s):");
  for (std::size_t i = 0; i < out.raw.stage_seconds.size() && i < 8; ++i) {
    std::printf(" %.1f", out.raw.stage_seconds[i]);
  }
  if (out.raw.stage_seconds.size() > 8) std::printf(" ...");
  std::printf("\n");
}

}  // namespace

int main() {
  const auto space = spark24_config_space();
  SparkObjective objective(ClusterSpec::paper_testbed(),
                           make_workload(WorkloadKind::kKMeans, 1), space,
                           /*seed=*/7, /*cap=*/0.0, /*noise=*/0.0);

  // The framework default: 1 GB executors.
  describe(objective, space.defaults(), "framework default (KMeans-D1)");

  // A sensible hand-tuned configuration.
  auto tuned = space.defaults();
  const auto set = [&](const char* name, double value) {
    tuned[*space.index_of(name)] = value;
  };
  set("spark.executor.cores", 8);
  set("spark.executor.memory.mb", 32 * 1024);
  set("spark.memory.fraction", 0.7);
  set("spark.serializer", 1);  // Kryo
  set("spark.default.parallelism", 320);
  set("spark.executor.gc", 1);  // G1
  describe(objective, tuned, "hand-tuned (8 cores / 32 GB / Kryo / G1)");

  // What-if: sweep executor memory with everything else fixed.
  std::printf("\n== what-if: executor memory sweep (rest as hand-tuned) "
              "==\n");
  std::printf("%10s %12s %10s %10s\n", "memory", "time (s)", "evicted", "gc%");
  for (double gb : {8, 16, 32, 64, 128}) {
    auto probe = tuned;
    probe[*space.index_of("spark.executor.memory.mb")] = gb * 1024;
    const auto out = objective.evaluate_decoded(probe, 0.0, false);
    if (out.raw.ok()) {
      std::printf("%8.0fGB %12.1f %9.0f%% %9.1f%%\n", gb, out.value_s,
                  100.0 * out.raw.metrics.cache_evicted_fraction,
                  100.0 * out.raw.metrics.gc_fraction);
    } else {
      std::printf("%8.0fGB %12s\n", gb, to_string(out.status).c_str());
    }
  }
  std::printf("\n(the sweep shows the cores-vs-memory balance: too little "
              "memory evicts the\ncache, too much trades away executors "
              "and inflates GC pauses)\n");
  return 0;
}
