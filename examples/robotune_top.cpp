// robotune_top: a live fleet monitor for the tuning daemon.
//
//   $ ./build/examples/robotune_serve --root /tmp/rt-fleet &
//   $ ./build/examples/robotune_top --socket /tmp/rt-fleet/robotune.sock
//
//   robotune fleet @ /tmp/rt-fleet/robotune.sock        poll 1.0s
//   queued 1  running 2  done 4  cancelled 0  failed 0  accepting yes
//   rpc 312 requests, 2 errors | suggest p50 41.0us p95 88.5us p99 120.2us
//
//       id state        evals       best s   wait ms  sug p99 us
//        1 done            24        41.52       0.3        55.0
//        2 running         11        44.80       1.2        61.4
//   ...
//
// It polls the daemon's `metrics` verb (DESIGN.md §14) — the same data
// a Prometheus scrape sees — and renders a per-session table: state,
// journaled evaluations, incumbent value, admission→running queue wait,
// and the session's suggest-latency p99.  One request per refresh; the
// daemon's hot path is untouched between polls.
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "service/client.h"

using namespace robotune;

namespace {

volatile std::sig_atomic_t g_stop = 0;

extern "C" void handle_stop_signal(int) { g_stop = 1; }

void usage(const char* argv0) {
  std::printf(
      "usage: %s --socket PATH [options]\n"
      "  --socket PATH   daemon socket (robotune_serve --socket)\n"
      "  --interval MS   refresh period in milliseconds (default 1000)\n"
      "  --limit N       show at most N sessions (default all)\n"
      "  --once          print one snapshot and exit (no screen clearing;\n"
      "                  for scripts and tests)\n",
      argv0);
}

std::string field(const service::Response& response, const char* key) {
  const auto it = response.fields.find(key);
  return it == response.fields.end() ? std::string() : it->second;
}

/// One `metrics` record: "<id> <state> <evals> <best> <wait_ms> <p99us>".
struct Row {
  std::string id;
  std::string state;
  std::string evals;
  double best = 0.0;
  double wait_ms = 0.0;
  double p99_us = 0.0;
  bool ok = false;
};

Row parse_row(const std::string& record) {
  Row row;
  std::istringstream in(record);
  row.ok = static_cast<bool>(in >> row.id >> row.state >> row.evals >>
                             row.best >> row.wait_ms >> row.p99_us);
  return row;
}

void render(const service::Response& response, const std::string& socket,
            double interval_s, std::size_t limit, bool clear) {
  std::string out;
  char line[256];
  if (clear) out += "\x1b[H\x1b[2J";  // cursor home + clear screen
  std::snprintf(line, sizeof(line), "robotune fleet @ %s        poll %.1fs\n",
                socket.c_str(), interval_s);
  out += line;
  std::snprintf(line, sizeof(line),
                "queued %s  running %s  done %s  cancelled %s  failed %s  "
                "accepting %s\n",
                field(response, "queued").c_str(),
                field(response, "running").c_str(),
                field(response, "done").c_str(),
                field(response, "cancelled").c_str(),
                field(response, "failed").c_str(),
                field(response, "accepting") == "1" ? "yes" : "no");
  out += line;
  std::snprintf(line, sizeof(line),
                "rpc %s requests, %s errors | suggest p50 %sus p95 %sus "
                "p99 %sus | events seq %s\n\n",
                field(response, "rpc_requests").c_str(),
                field(response, "rpc_errors").c_str(),
                field(response, "suggest_p50_us").c_str(),
                field(response, "suggest_p95_us").c_str(),
                field(response, "suggest_p99_us").c_str(),
                field(response, "events_seq").c_str());
  out += line;
  std::snprintf(line, sizeof(line), "%6s %-10s %6s %12s %9s %11s\n", "id",
                "state", "evals", "best s", "wait ms", "sug p99 us");
  out += line;
  std::size_t shown = 0;
  for (const std::string& record : response.records) {
    if (limit != 0 && shown >= limit) {
      std::snprintf(line, sizeof(line), "  ... %zu more session(s)\n",
                    response.records.size() - shown);
      out += line;
      break;
    }
    const Row row = parse_row(record);
    if (!row.ok) continue;
    char best[24];
    if (row.best > 1e300) {
      std::snprintf(best, sizeof(best), "-");
    } else {
      std::snprintf(best, sizeof(best), "%.2f", row.best);
    }
    std::snprintf(line, sizeof(line), "%6s %-10s %6s %12s %9.1f %11.1f\n",
                  row.id.c_str(), row.state.c_str(), row.evals.c_str(),
                  best, row.wait_ms, row.p99_us);
    out += line;
    ++shown;
  }
  std::fputs(out.c_str(), stdout);
  std::fflush(stdout);
}

}  // namespace

int main(int argc, char** argv) {
  std::string socket_path;
  long interval_ms = 1000;
  std::size_t limit = 0;
  bool once = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return (i + 1 < argc) ? argv[++i] : nullptr;
    };
    if (arg == "--socket") {
      const char* v = next();
      if (!v) return usage(argv[0]), 2;
      socket_path = v;
    } else if (arg == "--interval") {
      const char* v = next();
      if (!v || std::atol(v) < 1) return usage(argv[0]), 2;
      interval_ms = std::atol(v);
    } else if (arg == "--limit") {
      const char* v = next();
      if (!v || std::atol(v) < 0) return usage(argv[0]), 2;
      limit = static_cast<std::size_t>(std::atol(v));
    } else if (arg == "--once") {
      once = true;
    } else {
      usage(argv[0]);
      return 2;
    }
  }
  if (socket_path.empty()) {
    usage(argv[0]);
    return 2;
  }

  {
    struct sigaction sa = {};
    sa.sa_handler = handle_stop_signal;
    sigemptyset(&sa.sa_mask);
    sigaction(SIGINT, &sa, nullptr);
    sigaction(SIGTERM, &sa, nullptr);
  }

  service::SocketClient client;
  std::string error;
  if (!client.connect(socket_path, &error)) {
    std::fprintf(stderr, "cannot connect to %s: %s\n", socket_path.c_str(),
                 error.c_str());
    return 1;
  }

  while (g_stop == 0) {
    service::Request request;
    request.verb = "metrics";
    service::Response response;
    if (!client.call(request, response, &error)) {
      std::fprintf(stderr, "daemon went away: %s\n", error.c_str());
      return 1;
    }
    if (!response.ok) {
      std::fprintf(stderr, "metrics request failed: %s\n",
                   response.error.c_str());
      return 1;
    }
    render(response, socket_path, interval_ms / 1000.0, limit,
           /*clear=*/!once);
    if (once) return 0;
    std::this_thread::sleep_for(std::chrono::milliseconds(interval_ms));
  }
  return 0;
}
