#!/usr/bin/env python3
"""Plot a tuning-session CSV trace exported by tuners::write_csv.

Usage:
    examples/robotune_cli --workload PR --budget 100 ... (then export a
    trace with write_csv_file from your own driver), or adapt any bench
    to dump traces; then:

    python3 scripts/plot_session.py trace1.csv [trace2.csv ...] -o out.png

Produces the paper's Figure-6-style best-so-far curves, one line per
trace.  Requires matplotlib; degrades to an ASCII plot without it.
"""
import argparse
import csv
import sys


def load(path):
    rows = []
    with open(path) as fh:
        for row in csv.DictReader(fh):
            best = row.get("best_so_far", "")
            rows.append(float(best) if best else None)
    label = path.rsplit("/", 1)[-1].removesuffix(".csv")
    return label, rows


def ascii_plot(traces, width=72, height=18):
    finite = [v for _, t in traces for v in t if v is not None]
    lo, hi = min(finite), max(finite)
    span = (hi - lo) or 1.0
    n = max(len(t) for _, t in traces)
    grid = [[" "] * width for _ in range(height)]
    marks = "ox+*#"
    for k, (_, trace) in enumerate(traces):
        for i, v in enumerate(trace):
            if v is None:
                continue
            x = int(i / max(1, n - 1) * (width - 1))
            y = int((v - lo) / span * (height - 1))
            grid[height - 1 - y][x] = marks[k % len(marks)]
    print(f"best-so-far (s): {lo:.0f} .. {hi:.0f}")
    for line in grid:
        print("".join(line))
    for k, (label, _) in enumerate(traces):
        print(f"  {marks[k % len(marks)]} = {label}")


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("traces", nargs="+")
    parser.add_argument("-o", "--output", default=None)
    args = parser.parse_args()
    traces = [load(p) for p in args.traces]

    try:
        import matplotlib

        matplotlib.use("Agg")
        import matplotlib.pyplot as plt
    except ImportError:
        ascii_plot(traces)
        return 0

    fig, ax = plt.subplots(figsize=(7, 4))
    for label, trace in traces:
        xs = [i + 1 for i, v in enumerate(trace) if v is not None]
        ys = [v for v in trace if v is not None]
        ax.plot(xs, ys, label=label, linewidth=1.6)
    ax.set_xlabel("iteration")
    ax.set_ylabel("minimum execution time (s)")
    ax.legend()
    ax.grid(alpha=0.3)
    out = args.output or "session.png"
    fig.tight_layout()
    fig.savefig(out, dpi=140)
    print(f"wrote {out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
