file(REMOVE_RECURSE
  "CMakeFiles/fig9_response_surface.dir/fig9_response_surface.cpp.o"
  "CMakeFiles/fig9_response_surface.dir/fig9_response_surface.cpp.o.d"
  "fig9_response_surface"
  "fig9_response_surface.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_response_surface.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
