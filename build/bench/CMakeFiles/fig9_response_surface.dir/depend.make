# Empty dependencies file for fig9_response_surface.
# This may be replaced when dependencies are built.
