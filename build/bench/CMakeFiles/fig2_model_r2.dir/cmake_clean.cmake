file(REMOVE_RECURSE
  "CMakeFiles/fig2_model_r2.dir/fig2_model_r2.cpp.o"
  "CMakeFiles/fig2_model_r2.dir/fig2_model_r2.cpp.o.d"
  "fig2_model_r2"
  "fig2_model_r2.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_model_r2.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
