# Empty compiler generated dependencies file for fig2_model_r2.
# This may be replaced when dependencies are built.
