file(REMOVE_RECURSE
  "CMakeFiles/abl_learning_based.dir/abl_learning_based.cpp.o"
  "CMakeFiles/abl_learning_based.dir/abl_learning_based.cpp.o.d"
  "abl_learning_based"
  "abl_learning_based.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_learning_based.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
