# Empty compiler generated dependencies file for abl_learning_based.
# This may be replaced when dependencies are built.
