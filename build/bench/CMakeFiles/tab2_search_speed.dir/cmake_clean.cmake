file(REMOVE_RECURSE
  "CMakeFiles/tab2_search_speed.dir/tab2_search_speed.cpp.o"
  "CMakeFiles/tab2_search_speed.dir/tab2_search_speed.cpp.o.d"
  "tab2_search_speed"
  "tab2_search_speed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab2_search_speed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
