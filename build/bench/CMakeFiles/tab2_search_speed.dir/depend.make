# Empty dependencies file for tab2_search_speed.
# This may be replaced when dependencies are built.
