file(REMOVE_RECURSE
  "CMakeFiles/fig7_selection_recall.dir/fig7_selection_recall.cpp.o"
  "CMakeFiles/fig7_selection_recall.dir/fig7_selection_recall.cpp.o.d"
  "fig7_selection_recall"
  "fig7_selection_recall.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_selection_recall.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
