# Empty dependencies file for fig7_selection_recall.
# This may be replaced when dependencies are built.
