file(REMOVE_RECURSE
  "CMakeFiles/sec52_default_comparison.dir/sec52_default_comparison.cpp.o"
  "CMakeFiles/sec52_default_comparison.dir/sec52_default_comparison.cpp.o.d"
  "sec52_default_comparison"
  "sec52_default_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec52_default_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
