# Empty dependencies file for sec52_default_comparison.
# This may be replaced when dependencies are built.
