file(REMOVE_RECURSE
  "CMakeFiles/fig3_best_config_quality.dir/fig3_best_config_quality.cpp.o"
  "CMakeFiles/fig3_best_config_quality.dir/fig3_best_config_quality.cpp.o.d"
  "fig3_best_config_quality"
  "fig3_best_config_quality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_best_config_quality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
