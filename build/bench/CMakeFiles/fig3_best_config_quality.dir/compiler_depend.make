# Empty compiler generated dependencies file for fig3_best_config_quality.
# This may be replaced when dependencies are built.
