# Empty dependencies file for fig4_search_cost.
# This may be replaced when dependencies are built.
