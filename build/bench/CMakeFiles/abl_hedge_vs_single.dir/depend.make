# Empty dependencies file for abl_hedge_vs_single.
# This may be replaced when dependencies are built.
