file(REMOVE_RECURSE
  "CMakeFiles/abl_hedge_vs_single.dir/abl_hedge_vs_single.cpp.o"
  "CMakeFiles/abl_hedge_vs_single.dir/abl_hedge_vs_single.cpp.o.d"
  "abl_hedge_vs_single"
  "abl_hedge_vs_single.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_hedge_vs_single.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
