# Empty compiler generated dependencies file for fig6_search_speed_curves.
# This may be replaced when dependencies are built.
