file(REMOVE_RECURSE
  "CMakeFiles/fig6_search_speed_curves.dir/fig6_search_speed_curves.cpp.o"
  "CMakeFiles/fig6_search_speed_curves.dir/fig6_search_speed_curves.cpp.o.d"
  "fig6_search_speed_curves"
  "fig6_search_speed_curves.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_search_speed_curves.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
