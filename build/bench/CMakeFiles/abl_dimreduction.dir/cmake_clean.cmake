file(REMOVE_RECURSE
  "CMakeFiles/abl_dimreduction.dir/abl_dimreduction.cpp.o"
  "CMakeFiles/abl_dimreduction.dir/abl_dimreduction.cpp.o.d"
  "abl_dimreduction"
  "abl_dimreduction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_dimreduction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
