# Empty dependencies file for abl_dimreduction.
# This may be replaced when dependencies are built.
