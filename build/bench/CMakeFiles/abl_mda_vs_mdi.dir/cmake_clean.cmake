file(REMOVE_RECURSE
  "CMakeFiles/abl_mda_vs_mdi.dir/abl_mda_vs_mdi.cpp.o"
  "CMakeFiles/abl_mda_vs_mdi.dir/abl_mda_vs_mdi.cpp.o.d"
  "abl_mda_vs_mdi"
  "abl_mda_vs_mdi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_mda_vs_mdi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
