# Empty compiler generated dependencies file for abl_mda_vs_mdi.
# This may be replaced when dependencies are built.
