# Empty dependencies file for fig5_exec_time_distribution.
# This may be replaced when dependencies are built.
