file(REMOVE_RECURSE
  "CMakeFiles/abl_lhs_vs_random.dir/abl_lhs_vs_random.cpp.o"
  "CMakeFiles/abl_lhs_vs_random.dir/abl_lhs_vs_random.cpp.o.d"
  "abl_lhs_vs_random"
  "abl_lhs_vs_random.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_lhs_vs_random.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
