# Empty dependencies file for abl_lhs_vs_random.
# This may be replaced when dependencies are built.
