# Empty dependencies file for fig8_sampling_behavior.
# This may be replaced when dependencies are built.
