file(REMOVE_RECURSE
  "CMakeFiles/fig8_sampling_behavior.dir/fig8_sampling_behavior.cpp.o"
  "CMakeFiles/fig8_sampling_behavior.dir/fig8_sampling_behavior.cpp.o.d"
  "fig8_sampling_behavior"
  "fig8_sampling_behavior.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_sampling_behavior.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
