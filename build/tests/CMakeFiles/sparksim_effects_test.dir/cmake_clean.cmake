file(REMOVE_RECURSE
  "CMakeFiles/sparksim_effects_test.dir/sparksim_effects_test.cpp.o"
  "CMakeFiles/sparksim_effects_test.dir/sparksim_effects_test.cpp.o.d"
  "sparksim_effects_test"
  "sparksim_effects_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sparksim_effects_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
