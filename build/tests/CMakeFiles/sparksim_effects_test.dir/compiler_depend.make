# Empty compiler generated dependencies file for sparksim_effects_test.
# This may be replaced when dependencies are built.
