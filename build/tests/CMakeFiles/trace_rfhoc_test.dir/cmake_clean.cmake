file(REMOVE_RECURSE
  "CMakeFiles/trace_rfhoc_test.dir/trace_rfhoc_test.cpp.o"
  "CMakeFiles/trace_rfhoc_test.dir/trace_rfhoc_test.cpp.o.d"
  "trace_rfhoc_test"
  "trace_rfhoc_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trace_rfhoc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
