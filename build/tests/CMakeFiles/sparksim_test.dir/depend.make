# Empty dependencies file for sparksim_test.
# This may be replaced when dependencies are built.
