file(REMOVE_RECURSE
  "CMakeFiles/sparksim_test.dir/sparksim_test.cpp.o"
  "CMakeFiles/sparksim_test.dir/sparksim_test.cpp.o.d"
  "sparksim_test"
  "sparksim_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sparksim_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
