file(REMOVE_RECURSE
  "CMakeFiles/tuners_test.dir/tuners_test.cpp.o"
  "CMakeFiles/tuners_test.dir/tuners_test.cpp.o.d"
  "tuners_test"
  "tuners_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tuners_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
