file(REMOVE_RECURSE
  "CMakeFiles/bo_options_test.dir/bo_options_test.cpp.o"
  "CMakeFiles/bo_options_test.dir/bo_options_test.cpp.o.d"
  "bo_options_test"
  "bo_options_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bo_options_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
