# Empty compiler generated dependencies file for bo_options_test.
# This may be replaced when dependencies are built.
