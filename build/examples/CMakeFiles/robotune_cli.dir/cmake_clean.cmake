file(REMOVE_RECURSE
  "CMakeFiles/robotune_cli.dir/robotune_cli.cpp.o"
  "CMakeFiles/robotune_cli.dir/robotune_cli.cpp.o.d"
  "robotune_cli"
  "robotune_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/robotune_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
