# Empty compiler generated dependencies file for robotune_cli.
# This may be replaced when dependencies are built.
