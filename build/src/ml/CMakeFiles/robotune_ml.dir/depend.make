# Empty dependencies file for robotune_ml.
# This may be replaced when dependencies are built.
