file(REMOVE_RECURSE
  "librobotune_ml.a"
)
