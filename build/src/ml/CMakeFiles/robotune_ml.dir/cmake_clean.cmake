file(REMOVE_RECURSE
  "CMakeFiles/robotune_ml.dir/cross_validation.cpp.o"
  "CMakeFiles/robotune_ml.dir/cross_validation.cpp.o.d"
  "CMakeFiles/robotune_ml.dir/decision_tree.cpp.o"
  "CMakeFiles/robotune_ml.dir/decision_tree.cpp.o.d"
  "CMakeFiles/robotune_ml.dir/linear_models.cpp.o"
  "CMakeFiles/robotune_ml.dir/linear_models.cpp.o.d"
  "CMakeFiles/robotune_ml.dir/permutation_importance.cpp.o"
  "CMakeFiles/robotune_ml.dir/permutation_importance.cpp.o.d"
  "CMakeFiles/robotune_ml.dir/random_forest.cpp.o"
  "CMakeFiles/robotune_ml.dir/random_forest.cpp.o.d"
  "librobotune_ml.a"
  "librobotune_ml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/robotune_ml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
