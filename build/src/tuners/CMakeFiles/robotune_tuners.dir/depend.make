# Empty dependencies file for robotune_tuners.
# This may be replaced when dependencies are built.
