file(REMOVE_RECURSE
  "CMakeFiles/robotune_tuners.dir/bestconfig.cpp.o"
  "CMakeFiles/robotune_tuners.dir/bestconfig.cpp.o.d"
  "CMakeFiles/robotune_tuners.dir/gunther.cpp.o"
  "CMakeFiles/robotune_tuners.dir/gunther.cpp.o.d"
  "CMakeFiles/robotune_tuners.dir/random_search.cpp.o"
  "CMakeFiles/robotune_tuners.dir/random_search.cpp.o.d"
  "CMakeFiles/robotune_tuners.dir/rfhoc.cpp.o"
  "CMakeFiles/robotune_tuners.dir/rfhoc.cpp.o.d"
  "CMakeFiles/robotune_tuners.dir/session_trace.cpp.o"
  "CMakeFiles/robotune_tuners.dir/session_trace.cpp.o.d"
  "CMakeFiles/robotune_tuners.dir/tuner.cpp.o"
  "CMakeFiles/robotune_tuners.dir/tuner.cpp.o.d"
  "librobotune_tuners.a"
  "librobotune_tuners.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/robotune_tuners.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
