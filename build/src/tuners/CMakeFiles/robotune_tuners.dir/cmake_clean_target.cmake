file(REMOVE_RECURSE
  "librobotune_tuners.a"
)
