
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tuners/bestconfig.cpp" "src/tuners/CMakeFiles/robotune_tuners.dir/bestconfig.cpp.o" "gcc" "src/tuners/CMakeFiles/robotune_tuners.dir/bestconfig.cpp.o.d"
  "/root/repo/src/tuners/gunther.cpp" "src/tuners/CMakeFiles/robotune_tuners.dir/gunther.cpp.o" "gcc" "src/tuners/CMakeFiles/robotune_tuners.dir/gunther.cpp.o.d"
  "/root/repo/src/tuners/random_search.cpp" "src/tuners/CMakeFiles/robotune_tuners.dir/random_search.cpp.o" "gcc" "src/tuners/CMakeFiles/robotune_tuners.dir/random_search.cpp.o.d"
  "/root/repo/src/tuners/rfhoc.cpp" "src/tuners/CMakeFiles/robotune_tuners.dir/rfhoc.cpp.o" "gcc" "src/tuners/CMakeFiles/robotune_tuners.dir/rfhoc.cpp.o.d"
  "/root/repo/src/tuners/session_trace.cpp" "src/tuners/CMakeFiles/robotune_tuners.dir/session_trace.cpp.o" "gcc" "src/tuners/CMakeFiles/robotune_tuners.dir/session_trace.cpp.o.d"
  "/root/repo/src/tuners/tuner.cpp" "src/tuners/CMakeFiles/robotune_tuners.dir/tuner.cpp.o" "gcc" "src/tuners/CMakeFiles/robotune_tuners.dir/tuner.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/robotune_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sampling/CMakeFiles/robotune_sampling.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/robotune_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/sparksim/CMakeFiles/robotune_sparksim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
