# Empty compiler generated dependencies file for robotune_sampling.
# This may be replaced when dependencies are built.
