file(REMOVE_RECURSE
  "librobotune_sampling.a"
)
