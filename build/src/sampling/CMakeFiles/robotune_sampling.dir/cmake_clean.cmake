file(REMOVE_RECURSE
  "CMakeFiles/robotune_sampling.dir/latin_hypercube.cpp.o"
  "CMakeFiles/robotune_sampling.dir/latin_hypercube.cpp.o.d"
  "librobotune_sampling.a"
  "librobotune_sampling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/robotune_sampling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
