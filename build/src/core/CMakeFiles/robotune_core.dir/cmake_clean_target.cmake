file(REMOVE_RECURSE
  "librobotune_core.a"
)
