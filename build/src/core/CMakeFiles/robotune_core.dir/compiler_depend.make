# Empty compiler generated dependencies file for robotune_core.
# This may be replaced when dependencies are built.
