file(REMOVE_RECURSE
  "CMakeFiles/robotune_core.dir/bo_engine.cpp.o"
  "CMakeFiles/robotune_core.dir/bo_engine.cpp.o.d"
  "CMakeFiles/robotune_core.dir/memoization.cpp.o"
  "CMakeFiles/robotune_core.dir/memoization.cpp.o.d"
  "CMakeFiles/robotune_core.dir/parameter_selection.cpp.o"
  "CMakeFiles/robotune_core.dir/parameter_selection.cpp.o.d"
  "CMakeFiles/robotune_core.dir/persistence.cpp.o"
  "CMakeFiles/robotune_core.dir/persistence.cpp.o.d"
  "CMakeFiles/robotune_core.dir/robotune.cpp.o"
  "CMakeFiles/robotune_core.dir/robotune.cpp.o.d"
  "librobotune_core.a"
  "librobotune_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/robotune_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
