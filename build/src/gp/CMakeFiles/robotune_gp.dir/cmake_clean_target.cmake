file(REMOVE_RECURSE
  "librobotune_gp.a"
)
