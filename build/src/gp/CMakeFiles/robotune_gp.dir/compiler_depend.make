# Empty compiler generated dependencies file for robotune_gp.
# This may be replaced when dependencies are built.
