file(REMOVE_RECURSE
  "CMakeFiles/robotune_gp.dir/acquisition.cpp.o"
  "CMakeFiles/robotune_gp.dir/acquisition.cpp.o.d"
  "CMakeFiles/robotune_gp.dir/gaussian_process.cpp.o"
  "CMakeFiles/robotune_gp.dir/gaussian_process.cpp.o.d"
  "CMakeFiles/robotune_gp.dir/kernel.cpp.o"
  "CMakeFiles/robotune_gp.dir/kernel.cpp.o.d"
  "librobotune_gp.a"
  "librobotune_gp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/robotune_gp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
