# Empty compiler generated dependencies file for robotune_opt.
# This may be replaced when dependencies are built.
