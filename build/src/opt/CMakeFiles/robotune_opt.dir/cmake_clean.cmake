file(REMOVE_RECURSE
  "CMakeFiles/robotune_opt.dir/lbfgsb.cpp.o"
  "CMakeFiles/robotune_opt.dir/lbfgsb.cpp.o.d"
  "librobotune_opt.a"
  "librobotune_opt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/robotune_opt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
