file(REMOVE_RECURSE
  "librobotune_opt.a"
)
