file(REMOVE_RECURSE
  "librobotune_common.a"
)
