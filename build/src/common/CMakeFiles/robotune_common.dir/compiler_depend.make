# Empty compiler generated dependencies file for robotune_common.
# This may be replaced when dependencies are built.
