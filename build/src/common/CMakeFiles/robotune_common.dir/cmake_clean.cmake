file(REMOVE_RECURSE
  "CMakeFiles/robotune_common.dir/statistics.cpp.o"
  "CMakeFiles/robotune_common.dir/statistics.cpp.o.d"
  "CMakeFiles/robotune_common.dir/thread_pool.cpp.o"
  "CMakeFiles/robotune_common.dir/thread_pool.cpp.o.d"
  "librobotune_common.a"
  "librobotune_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/robotune_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
