file(REMOVE_RECURSE
  "CMakeFiles/robotune_sparksim.dir/cluster.cpp.o"
  "CMakeFiles/robotune_sparksim.dir/cluster.cpp.o.d"
  "CMakeFiles/robotune_sparksim.dir/engine.cpp.o"
  "CMakeFiles/robotune_sparksim.dir/engine.cpp.o.d"
  "CMakeFiles/robotune_sparksim.dir/objective.cpp.o"
  "CMakeFiles/robotune_sparksim.dir/objective.cpp.o.d"
  "CMakeFiles/robotune_sparksim.dir/param_space.cpp.o"
  "CMakeFiles/robotune_sparksim.dir/param_space.cpp.o.d"
  "CMakeFiles/robotune_sparksim.dir/spark_config.cpp.o"
  "CMakeFiles/robotune_sparksim.dir/spark_config.cpp.o.d"
  "CMakeFiles/robotune_sparksim.dir/workload.cpp.o"
  "CMakeFiles/robotune_sparksim.dir/workload.cpp.o.d"
  "librobotune_sparksim.a"
  "librobotune_sparksim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/robotune_sparksim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
