# Empty compiler generated dependencies file for robotune_sparksim.
# This may be replaced when dependencies are built.
