file(REMOVE_RECURSE
  "librobotune_sparksim.a"
)
