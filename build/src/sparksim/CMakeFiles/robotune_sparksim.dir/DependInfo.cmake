
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sparksim/cluster.cpp" "src/sparksim/CMakeFiles/robotune_sparksim.dir/cluster.cpp.o" "gcc" "src/sparksim/CMakeFiles/robotune_sparksim.dir/cluster.cpp.o.d"
  "/root/repo/src/sparksim/engine.cpp" "src/sparksim/CMakeFiles/robotune_sparksim.dir/engine.cpp.o" "gcc" "src/sparksim/CMakeFiles/robotune_sparksim.dir/engine.cpp.o.d"
  "/root/repo/src/sparksim/objective.cpp" "src/sparksim/CMakeFiles/robotune_sparksim.dir/objective.cpp.o" "gcc" "src/sparksim/CMakeFiles/robotune_sparksim.dir/objective.cpp.o.d"
  "/root/repo/src/sparksim/param_space.cpp" "src/sparksim/CMakeFiles/robotune_sparksim.dir/param_space.cpp.o" "gcc" "src/sparksim/CMakeFiles/robotune_sparksim.dir/param_space.cpp.o.d"
  "/root/repo/src/sparksim/spark_config.cpp" "src/sparksim/CMakeFiles/robotune_sparksim.dir/spark_config.cpp.o" "gcc" "src/sparksim/CMakeFiles/robotune_sparksim.dir/spark_config.cpp.o.d"
  "/root/repo/src/sparksim/workload.cpp" "src/sparksim/CMakeFiles/robotune_sparksim.dir/workload.cpp.o" "gcc" "src/sparksim/CMakeFiles/robotune_sparksim.dir/workload.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/robotune_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
