# Empty compiler generated dependencies file for robotune_linalg.
# This may be replaced when dependencies are built.
