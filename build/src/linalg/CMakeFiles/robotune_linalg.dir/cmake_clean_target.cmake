file(REMOVE_RECURSE
  "librobotune_linalg.a"
)
