file(REMOVE_RECURSE
  "CMakeFiles/robotune_linalg.dir/matrix.cpp.o"
  "CMakeFiles/robotune_linalg.dir/matrix.cpp.o.d"
  "librobotune_linalg.a"
  "librobotune_linalg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/robotune_linalg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
