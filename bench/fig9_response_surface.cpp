// Figure 9 reproduction: the GP's perceived response surface over the
// executor cores-vs-memory plane at different iterations of a PR tuning
// session (paper shows iterations 25/50/75; lighter = faster).
//
// We snapshot the posterior mean on a grid whenever the BO loop passes
// the corresponding iteration and render it as an ASCII heat map
// (digits 0..9, 0 = fastest region).
#include <algorithm>
#include <cstdio>
#include <map>
#include <vector>

#include "bench/harness.h"

using namespace robotune;

int main() {
  const int budget = bench::bench_budget();
  std::printf("=== Figure 9: GP response surface on the cores-vs-memory "
              "plane (PR-D3) ===\n");
  const auto space = sparksim::spark24_config_space();
  const auto cores_idx = *space.index_of("spark.executor.cores");
  const auto memory_idx = *space.index_of("spark.executor.memory.mb");

  core::RoboTune robotune;
  auto objective =
      bench::make_objective(sparksim::WorkloadKind::kPageRank, 3, 314);

  // BO iterations are counted after the 20 initial samples; the paper's
  // "iteration 25/50/75" indexes evaluated configurations, so shift by the
  // initial sample count.
  const int initial = robotune.options().bo.initial_samples;
  const std::vector<int> snapshots_at = {25 - initial, 50 - initial,
                                         75 - initial};
  std::map<int, std::vector<double>> surfaces;
  constexpr int kGrid = 12;

  const auto report = robotune.tune_report(
      objective, budget, 99, [&](const core::BoObserverInfo& info) {
        if (std::find(snapshots_at.begin(), snapshots_at.end(),
                      info.iteration) == snapshots_at.end()) {
          return;
        }
        // Locate the plane's axes inside the selected subspace.  (Copy the
        // optional: lookup() returns by value.)
        const auto selected_opt =
            robotune.selection_cache().lookup("PageRank");
        if (!selected_opt) return;
        const auto& selected = *selected_opt;
        int sub_cores = -1, sub_memory = -1;
        for (std::size_t i = 0; i < selected.size(); ++i) {
          if (selected[i] == cores_idx) sub_cores = static_cast<int>(i);
          if (selected[i] == memory_idx) sub_memory = static_cast<int>(i);
        }
        if (sub_cores < 0 || sub_memory < 0) return;
        std::vector<std::vector<double>> grid;
        for (int my = 0; my < kGrid; ++my) {
          for (int cx = 0; cx < kGrid; ++cx) {
            std::vector<double> p = info.choice->point;  // incumbent context
            p[static_cast<std::size_t>(sub_cores)] =
                (cx + 0.5) / kGrid;
            p[static_cast<std::size_t>(sub_memory)] =
                (my + 0.5) / kGrid;
            grid.push_back(std::move(p));
          }
        }
        surfaces[info.iteration + initial] = info.gp->predict_mean(grid);
      });

  for (const auto& [iteration, means] : surfaces) {
    std::printf("\n-- perceived surface at evaluation %d "
                "(0 = fastest .. 9 = slowest) --\n",
                iteration);
    const double lo = *std::min_element(means.begin(), means.end());
    const double hi = *std::max_element(means.begin(), means.end());
    std::printf("memory^ / cores->\n");
    for (int my = kGrid - 1; my >= 0; --my) {
      std::printf("  ");
      for (int cx = 0; cx < kGrid; ++cx) {
        const double v = means[static_cast<std::size_t>(my * kGrid + cx)];
        const int level = hi > lo ? static_cast<int>(
                                        9.999 * (v - lo) / (hi - lo))
                                  : 0;
        std::printf("%d", level);
      }
      std::printf("\n");
    }
  }
  std::printf("\nfinal best: %.1f s\n", report.tuning.best_value_s());
  std::printf("Expected shape (paper Fig. 9): a low-time region is already "
              "visible at evaluation 25 and sharpens by 75, with sampling "
              "densest inside it.\n");
  return 0;
}
