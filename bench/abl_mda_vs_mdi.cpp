// Ablation: Mean-Decrease-in-Accuracy (permutation) importance vs
// Mean-Decrease-in-Impurity importance for parameter selection.
//
// Paper §3.3 (citing Strobl et al. 2007): MDI is biased when predictors
// differ in scale or number of categories — exactly the Spark space,
// which mixes booleans, small categoricals, and wide numeric ranges.
// We demonstrate the bias on a synthetic ground truth and then show both
// rankings on the real PR-D1 response.
#include <cstdio>

#include "bench/harness.h"
#include "core/parameter_selection.h"
#include "ml/permutation_importance.h"
#include "sampling/latin_hypercube.h"

using namespace robotune;

int main() {
  std::printf("=== Ablation: MDA (permutation) vs MDI importance ===\n");

  // --- Synthetic bias demo -------------------------------------------------
  // y depends ONLY on a binary feature; continuous distractors are pure
  // noise.  MDI systematically inflates the high-cardinality distractors.
  {
    Rng rng(3);
    ml::Dataset d(6);
    for (int i = 0; i < 300; ++i) {
      std::vector<double> x(6);
      for (auto& v : x) v = rng.uniform();
      const double binary = x[0] > 0.5 ? 1.0 : 0.0;
      d.add_row(x, 10.0 * binary + rng.normal(0, 1.0));
    }
    ml::ForestOptions fo;
    fo.num_trees = 200;
    ml::RandomForest rf(fo, 7);
    rf.fit(d);
    const auto mdi = rf.mdi_importance();
    std::vector<ml::FeatureGroup> groups;
    for (std::size_t f = 0; f < 6; ++f) {
      groups.push_back({"x" + std::to_string(f), {f}});
    }
    const auto mda = ml::permutation_importance(rf, groups, {.repeats = 5});
    std::printf("\nsynthetic (x0 binary signal, x1..x5 continuous noise):\n");
    std::printf("%-6s %10s %10s\n", "feat", "MDI", "MDA-drop");
    double mda_by_feature[6] = {};
    for (const auto& r : mda) {
      mda_by_feature[r.group.features[0]] = r.mean_drop;
    }
    double noise_mdi = 0.0;
    for (std::size_t f = 0; f < 6; ++f) {
      std::printf("x%-5zu %10.3f %10.3f\n", f, mdi[f], mda_by_feature[f]);
      if (f > 0) noise_mdi += mdi[f];
    }
    std::printf("MDI mass assigned to pure-noise features: %.2f "
                "(MDA gives them ~0)\n",
                noise_mdi);
  }

  // --- Real configuration space -------------------------------------------
  {
    auto objective =
        bench::make_objective(sparksim::WorkloadKind::kPageRank, 1, 21);
    const auto space = sparksim::spark24_config_space();
    Rng rng(9);
    const auto design = sampling::latin_hypercube(150, space.size(), rng);
    ml::Dataset data(space.size());
    std::vector<std::vector<double>> units;
    std::vector<double> values;
    for (const auto& unit : design) {
      const double y = objective.evaluate(unit, 480.0).value_s;
      data.add_row(unit, std::log(y));
      units.push_back(unit);
      values.push_back(y);
    }
    ml::ForestOptions fo;
    fo.num_trees = 300;
    fo.tree.max_features = space.size();
    ml::RandomForest rf(fo, 7);
    rf.fit(data);
    const auto mdi = rf.mdi_importance();
    std::printf("\nPR-D1, top-8 parameters by MDI vs by MDA:\n");
    std::vector<std::size_t> order(space.size());
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      return mdi[a] > mdi[b];
    });
    std::printf("  MDI:");
    for (int i = 0; i < 8; ++i) {
      std::printf(" %s", space.spec(order[static_cast<std::size_t>(i)])
                             .name.c_str());
    }
    std::printf("\n");
    core::SelectionOptions options;
    options.permutation_repeats = 5;
    const auto report = core::select_parameters_from_samples(
        space, units, values, sparksim::spark24_joint_parameter_groups(),
        options);
    std::printf("  MDA:");
    for (std::size_t i = 0; i < 8 && i < report.importances.size(); ++i) {
      std::printf(" [%s]", report.importances[i].group.name.c_str());
    }
    std::printf("\n");
  }
  return 0;
}
