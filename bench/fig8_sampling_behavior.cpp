// Figure 8 reproduction: where each tuner samples in the executor
// cores-vs-memory configuration plane during one PR-D3 session.
//
// Paper's claim: ROBOTune concentrates samples in a promising region while
// still probing other areas (exploitation + exploration); the baselines
// scatter without a discernible pattern.  We print the sampled (cores,
// memory) pairs and a concentration statistic: the fraction of samples
// inside the quartile-sized box around each tuner's own best point.
#include <cmath>
#include <cstdio>

#include "bench/harness.h"

using namespace robotune;

int main() {
  const int budget = bench::bench_budget();
  std::printf("=== Figure 8: sampling behavior in the cores-vs-memory "
              "plane (PR-D3) ===\n");
  const auto space = sparksim::spark24_config_space();
  const auto cores_idx = *space.index_of("spark.executor.cores");
  const auto memory_idx = *space.index_of("spark.executor.memory.mb");

  core::RoboTune robotune;
  // Warm the caches first so the plotted session exploits memoization, as
  // in the paper's PR-D3 narrative.
  auto warm = bench::make_objective(sparksim::WorkloadKind::kPageRank, 1, 41);
  robotune.tune_report(warm, budget, 11);

  tuners::BestConfig bestconfig;
  tuners::Gunther gunther;
  tuners::RandomSearch rs;
  std::vector<std::pair<std::string, tuners::Tuner*>> tuners_list = {
      {"ROBOTune", &robotune},
      {"BestConfig", &bestconfig},
      {"Gunther", &gunther},
      {"RS", &rs}};

  for (auto& [name, tuner] : tuners_list) {
    auto objective =
        bench::make_objective(sparksim::WorkloadKind::kPageRank, 3, 42);
    const auto result = tuner->tune(objective, budget, 12);
    // Samples in unit coordinates of the plane.
    std::vector<std::pair<double, double>> points;
    for (const auto& e : result.history) {
      points.emplace_back(e.unit[cores_idx], e.unit[memory_idx]);
    }
    const auto& best = result.best_unit();
    const double bx = best[cores_idx];
    const double by = best[memory_idx];
    int close = 0;
    for (const auto& [x, y] : points) {
      if (std::abs(x - bx) < 0.125 && std::abs(y - by) < 0.125) ++close;
    }
    std::printf("\n-- %s: best at cores=%.0f, memory=%.1f GB; "
                "%d/%zu samples inside the +-0.125 unit box around it --\n",
                name.c_str(), space.spec(cores_idx).decode(bx),
                space.spec(memory_idx).decode(by) / 1024.0, close,
                points.size());
    // 10x10 occupancy grid of the plane (counts per cell).
    int gridc[10][10] = {};
    for (const auto& [x, y] : points) {
      gridc[std::min(9, static_cast<int>(y * 10))]
           [std::min(9, static_cast<int>(x * 10))]++;
    }
    std::printf("memory^ / cores->\n");
    for (int r = 9; r >= 0; --r) {
      std::printf("  ");
      for (int c = 0; c < 10; ++c) {
        std::printf("%2d ", gridc[r][c]);
      }
      std::printf("\n");
    }
  }
  std::printf("\nExpected shape (paper Fig. 8): ROBOTune's grid shows a "
              "dense cluster plus scattered probes; baselines scatter "
              "uniformly.\n");
  return 0;
}
