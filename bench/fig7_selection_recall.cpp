// Figure 7 reproduction: recall of the parameter-selection step as the
// number of generic LHS samples shrinks.  Ground truth = the parameters a
// model trained on 200 samples selects (paper §5.5).
//
// Paper's claim: average recall stays 1.0 until the sample count drops
// below 100, which is why ROBOTune uses 100 generic samples.
#include <cstdio>

#include "bench/harness.h"
#include "common/statistics.h"
#include "core/parameter_selection.h"

using namespace robotune;

int main() {
  std::printf("=== Figure 7: selection recall vs number of generic LHS "
              "samples ===\n");
  const int reps = bench::env_int("ROBOTUNE_BENCH_FIG7_REPS", 2);
  const std::vector<std::size_t> counts = {25, 50, 75, 100, 150, 200};
  const auto joint = sparksim::spark24_joint_parameter_groups();

  std::printf("%-6s", "count");
  for (auto kind : sparksim::all_workloads()) {
    std::printf("%8s", sparksim::short_name(kind).c_str());
  }
  std::printf("%8s\n", "avg");

  std::map<std::size_t, std::vector<double>> recall_by_count;
  for (auto kind : sparksim::all_workloads()) {
    // Ground truth from 200 samples (one draw, as in the paper).
    auto gt_objective = bench::make_objective(kind, 1, 31337);
    core::SelectionOptions gt_options;
    gt_options.generic_samples = 200;
    gt_options.seed = 4242;
    const auto truth =
        core::select_parameters(gt_objective, joint, gt_options).selected;

    for (std::size_t count : counts) {
      std::vector<double> recalls;
      for (int rep = 0; rep < reps; ++rep) {
        auto objective = bench::make_objective(
            kind, 1, 900 + static_cast<std::uint64_t>(rep));
        core::SelectionOptions options;
        options.generic_samples = count;
        options.seed = 100 + static_cast<std::uint64_t>(rep) * 17;
        const auto selected =
            core::select_parameters(objective, joint, options).selected;
        recalls.push_back(stats::recall(truth, selected));
      }
      recall_by_count[count].push_back(stats::mean(recalls));
    }
  }
  for (std::size_t count : counts) {
    std::printf("%-6zu", count);
    const auto& per_workload = recall_by_count[count];
    for (double r : per_workload) std::printf("%8.2f", r);
    std::printf("%8.2f\n", stats::mean(per_workload));
  }
  std::printf("\nExpected shape (paper Fig. 7): recall near 1.0 at >= 100 "
              "samples, degrading below.\n");
  return 0;
}
