// Fault-resilience comparison: ROBOTune vs. Random Search under
// increasing transient-fault intensity (executor loss, shuffle-fetch
// failure, stragglers — see sparksim/faults.h).
//
// For each fault rate the same per-stage probability drives all three
// event classes (FaultProfile::uniform).  Both tuners get the same
// bounded RetryPolicy, so the comparison isolates how well the *search*
// copes with flaky observations: ROBOTune censors transient failures at
// the guard threshold and withholds them from its surrogate, while RS
// merely burns budget.
//
// Emits a table to stdout and machine-readable JSON to
// bench_results/fault_resilience.json (relative to the working
// directory; run from the repo root).
//
// Environment knobs: ROBOTUNE_BENCH_REPS, ROBOTUNE_BENCH_BUDGET (see
// bench/harness.h).
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "bench/harness.h"

using namespace robotune;

namespace {

struct Cell {
  std::vector<double> best;
  std::vector<double> cost;
  std::vector<double> transient_failures;
  std::vector<double> attempts;
};

}  // namespace

int main() {
  const int budget = bench::bench_budget();
  const int reps = bench::bench_reps();
  const std::vector<double> rates = {0.0, 0.02, 0.05, 0.10};
  const auto kind = sparksim::WorkloadKind::kPageRank;
  const int dataset = 1;

  std::printf(
      "=== Fault resilience: ROBOTune vs. RS on PR-D1 "
      "(budget=%d, reps=%d) ===\n",
      budget, reps);

  sparksim::RetryPolicy retry;
  retry.max_retries = 2;

  // rate -> tuner -> cell
  std::vector<std::pair<double, std::map<std::string, Cell>>> results;
  for (double rate : rates) {
    const auto profile = sparksim::FaultProfile::uniform(rate);
    std::map<std::string, Cell> row;
    for (int rep = 0; rep < reps; ++rep) {
      const std::uint64_t seed = 3000 + static_cast<std::uint64_t>(rep);
      core::RoboTune robotune;
      tuners::RandomSearch rs;
      std::vector<std::pair<std::string, tuners::Tuner*>> tuners_list = {
          {"ROBOTune", &robotune}, {"RS", &rs}};
      for (auto& [name, tuner] : tuners_list) {
        auto objective = bench::make_objective(kind, dataset, seed * 7919);
        objective.set_fault_profile(profile);
        if (profile.active()) objective.set_retry_policy(retry);
        const auto result = tuner->tune(objective, budget, seed);
        auto& cell = row[name];
        cell.best.push_back(result.found_any() ? result.best_value_s()
                                               : 480.0);
        cell.cost.push_back(result.search_cost_s);
        cell.transient_failures.push_back(
            static_cast<double>(result.transient_failure_count()));
        cell.attempts.push_back(
            static_cast<double>(result.total_attempts()));
      }
    }
    results.emplace_back(rate, std::move(row));
  }

  std::printf("%-8s%12s%12s%14s%14s\n", "rate", "RT best", "RS best",
              "RT flakes", "RS flakes");
  for (const auto& [rate, row] : results) {
    std::printf("%-8.2f%12.2f%12.2f%14.1f%14.1f\n", rate,
                bench::mean_of(row.at("ROBOTune").best),
                bench::mean_of(row.at("RS").best),
                bench::mean_of(row.at("ROBOTune").transient_failures),
                bench::mean_of(row.at("RS").transient_failures));
  }

  std::filesystem::create_directories("bench_results");
  const char* path = "bench_results/fault_resilience.json";
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path);
    return 1;
  }
  std::fprintf(f,
               "{\n  \"workload\": \"PR-D1\",\n  \"budget\": %d,\n"
               "  \"reps\": %d,\n  \"max_retries\": %d,\n  \"rows\": [\n",
               budget, reps, retry.max_retries);
  for (std::size_t i = 0; i < results.size(); ++i) {
    const auto& [rate, row] = results[i];
    std::fprintf(f, "    {\"fault_rate\": %.3f", rate);
    for (const char* name : {"ROBOTune", "RS"}) {
      const auto& cell = row.at(name);
      const std::string key = name == std::string("RS") ? "rs" : "robotune";
      std::fprintf(
          f,
          ", \"%s_best_s\": %.3f, \"%s_cost_s\": %.1f"
          ", \"%s_transient_failures\": %.2f, \"%s_attempts\": %.2f",
          key.c_str(), bench::mean_of(cell.best), key.c_str(),
          bench::mean_of(cell.cost), key.c_str(),
          bench::mean_of(cell.transient_failures), key.c_str(),
          bench::mean_of(cell.attempts));
    }
    std::fprintf(f, "}%s\n", i + 1 < results.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("\nwrote %s\n", path);
  return 0;
}
