// Figure 6 reproduction: minimum execution time seen at each iteration
// for two datasets of the PageRank workload, with and without memoized
// configurations.
//
// Paper's claims: tuning PR-D1 cold, ROBOTune needs ~58 iterations to get
// within 5% of the observed minimum; re-tuning the same workload on PR-D3
// with memoized configurations only ~21, and the curve starts within ~10%
// of the final best right after initialization.
#include <cstdio>

#include "bench/harness.h"

using namespace robotune;

namespace {

void print_curve(const char* label, const std::vector<double>& traj) {
  std::printf("%s:", label);
  for (std::size_t i = 0; i < traj.size(); i += 10) {
    std::printf(" %zu:%.0f", i + 1, traj[i]);
  }
  std::printf(" %zu:%.0f\n", traj.size(), traj.back());
}

int iterations_to_within(const std::vector<double>& traj, double fraction) {
  const double target = traj.back() * (1.0 + fraction);
  for (std::size_t i = 0; i < traj.size(); ++i) {
    if (traj[i] <= target) return static_cast<int>(i + 1);
  }
  return static_cast<int>(traj.size());
}

}  // namespace

int main() {
  const int budget = bench::bench_budget();
  std::printf(
      "=== Figure 6: best-so-far execution time per iteration, PR-D1 "
      "(cold) vs PR-D3 (memoized) ===\n");

  core::RoboTune robotune;
  // Cold session on PR-D1: no caches populated yet.
  auto d1 = bench::make_objective(sparksim::WorkloadKind::kPageRank, 1, 777);
  const auto r1 = robotune.tune_report(d1, budget, 21);
  // Warm-up session on D2 (populates the memo buffer further), then D3.
  auto d2 = bench::make_objective(sparksim::WorkloadKind::kPageRank, 2, 778);
  robotune.tune_report(d2, budget, 22);
  auto d3 = bench::make_objective(sparksim::WorkloadKind::kPageRank, 3, 779);
  const auto r3 = robotune.tune_report(d3, budget, 23);

  const auto t1 = r1.tuning.best_trajectory();
  const auto t3 = r3.tuning.best_trajectory();
  print_curve("ROBOTune PR-D1 (cold)    ", t1);
  print_curve("ROBOTune PR-D3 (memoized)", t3);
  std::printf("memoized configs used on D3: %s\n",
              r3.used_memoized_configs ? "yes" : "no");

  std::printf("\niterations to reach within 5%% of final best: "
              "D1(cold)=%d  D3(memoized)=%d\n",
              iterations_to_within(t1, 0.05), iterations_to_within(t3, 0.05));

  // Baseline curves on PR-D3 for comparison.
  std::printf("\nBaselines on PR-D3 (same budget):\n");
  tuners::BestConfig bestconfig;
  tuners::Gunther gunther;
  tuners::RandomSearch rs;
  for (auto& [name, tuner] :
       std::vector<std::pair<std::string, tuners::Tuner*>>{
           {"BestConfig", &bestconfig},
           {"Gunther   ", &gunther},
           {"RS        ", &rs}}) {
    auto objective =
        bench::make_objective(sparksim::WorkloadKind::kPageRank, 3, 780);
    const auto result = tuner->tune(objective, budget, 23);
    print_curve(name.c_str(), result.best_trajectory());
  }
  return 0;
}
