// Ablation: the GP-Hedge portfolio vs each single acquisition function
// (paper §3.4 adopts Hedge because "an adaptive portfolio of multiple
// functions often performs substantially better than the best individual
// function", citing Hoffman et al. 2011).
#include <cstdio>
#include <optional>

#include "bench/harness.h"
#include "common/statistics.h"
#include "core/bo_engine.h"

using namespace robotune;

int main() {
  const int budget = bench::bench_budget();
  const int reps = bench::env_int("ROBOTUNE_BENCH_ABL_REPS", 3);
  std::printf("=== Ablation: Hedge portfolio vs single acquisition "
              "functions (PR-D1, budget=%d, reps=%d) ===\n",
              budget, reps);

  // Fix the selected subspace so every variant searches the same space.
  const auto space = sparksim::spark24_config_space();
  std::vector<std::size_t> selected;
  for (const char* name :
       {"spark.executor.cores", "spark.executor.memory.mb", "spark.cores.max",
        "spark.default.parallelism", "spark.serializer",
        "spark.kryoserializer.buffer.max.mb", "spark.kryo.referenceTracking"}) {
    selected.push_back(*space.index_of(name));
  }

  struct Variant {
    const char* label;
    std::optional<gp::AcquisitionKind> force;
  };
  const Variant variants[] = {
      {"Hedge (PI+EI+LCB)", std::nullopt},
      {"PI only", gp::AcquisitionKind::kPI},
      {"EI only", gp::AcquisitionKind::kEI},
      {"LCB only", gp::AcquisitionKind::kLCB},
  };

  std::printf("%-20s %12s %12s\n", "strategy", "mean best(s)", "mean cost(s)");
  for (const auto& variant : variants) {
    std::vector<double> bests, costs;
    for (int rep = 0; rep < reps; ++rep) {
      auto objective = bench::make_objective(
          sparksim::WorkloadKind::kPageRank, 1,
          1234 + static_cast<std::uint64_t>(rep));
      core::BoOptions options;
      options.budget = budget;
      options.seed = 10 + static_cast<std::uint64_t>(rep);
      options.force_acquisition = variant.force;
      core::BoEngine engine(selected, space.default_unit(), options);
      const auto result = engine.run(objective);
      bests.push_back(result.tuning.best_value_s());
      costs.push_back(result.tuning.search_cost_s);
    }
    std::printf("%-20s %12.1f %12.0f\n", variant.label, stats::mean(bests),
                stats::mean(costs));
  }
  std::printf("\nExpected: the portfolio is at least competitive with the "
              "best single function\nand avoids the worst one's failure "
              "mode (PI over-exploits, LCB can over-explore).\n");
  return 0;
}
