// Tuning-as-a-service throughput study (DESIGN.md §13): a fleet of
// small seeded sessions pushed through the SessionManager behind the
// full wire codec (LocalClient round-trips every request through
// encode → decode → dispatch → encode → decode, exactly what the socket
// daemon executes).
//
// Measures, for one interleaved fleet:
//   - session throughput (sessions per wall second) and evaluation
//     throughput (journaled evaluations per wall second),
//   - admission backpressure (start requests bounced off the full queue
//     until capacity frees),
//   - control-plane responsiveness: p50/p99 latency of `suggest`
//     requests issued continuously while the fleet churns,
//   - the determinism acceptance: every daemon journal is byte-identical
//     to a standalone run of the spec file the daemon wrote (the spec
//     carries the derived seed, so this also proves the seeding
//     discipline is replayable).
//
// Emits a table to stdout and machine-readable JSON to
// bench_results/fig_service.json (run from the repo root).
//
// Environment knobs:
//   ROBOTUNE_BENCH_SESSIONS  fleet size                  [default 256]
//   ROBOTUNE_BENCH_BUDGET    evaluations per session     [default 6]
//   ROBOTUNE_BENCH_VERIFY    1 = byte-verify every journal [default 1]
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench/harness.h"
#include "core/session.h"
#include "service/client.h"
#include "service/session_manager.h"

using namespace robotune;
namespace fs = std::filesystem;

namespace {

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::stringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

core::SessionSpec bench_spec(int budget) {
  core::SessionSpec spec;
  spec.workload = "PR";
  spec.dataset = 1;
  spec.tuner = "robotune";
  spec.budget = budget;
  spec.parallel = 1;
  spec.init = std::min(4, budget);
  spec.selection_samples = 20;
  return spec;
}

double percentile(std::vector<double> sorted_us, double p) {
  if (sorted_us.empty()) return 0.0;
  const auto idx = static_cast<std::size_t>(
      p * static_cast<double>(sorted_us.size() - 1));
  return sorted_us[idx];
}

}  // namespace

int main() {
  const int sessions = bench::env_int("ROBOTUNE_BENCH_SESSIONS", 256);
  const int budget = bench::env_int("ROBOTUNE_BENCH_BUDGET", 6);
  const bool verify = bench::env_int("ROBOTUNE_BENCH_VERIFY", 1) != 0;

  service::ServiceOptions options;
  options.root = (fs::temp_directory_path() / "robotune-fig-service").string();
  options.max_live = 4;
  options.slots = 2;
  options.max_pending = 16;
  options.seed = 2024;
  fs::remove_all(options.root);

  std::printf(
      "=== Service throughput: %d sessions, budget=%d, max-live %zu, "
      "slots %zu, queue %zu ===\n",
      sessions, budget, options.max_live, options.slots,
      options.max_pending);

  service::SessionManager manager(options);
  service::LocalClient client(manager);

  const auto t0 = std::chrono::steady_clock::now();

  // Producer: pushes the whole fleet through admission control, retrying
  // whenever backpressure bounces a start off the full queue.
  std::size_t rejections = 0;
  std::thread producer([&] {
    const std::string body = core::encode_spec_body(bench_spec(budget));
    for (int i = 0; i < sessions; ++i) {
      service::Request start;
      start.verb = "start";
      start.spec_body = body;
      start.derive_seed = true;  // the daemon's seeding discipline
      for (;;) {
        const auto response = client.call(start);
        if (response.ok) break;
        ++rejections;
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
    }
  });

  // Control-plane prober: hammers `suggest` (the latency-sensitive verb)
  // against a rotating session while the fleet churns.  A second client
  // keeps request ids independent of the producer's.
  service::LocalClient prober(manager);
  std::vector<double> latencies_us;
  std::uint64_t probe_id = 1;
  for (;;) {
    service::Request fleet_status;
    fleet_status.verb = "status";
    const auto status = prober.call(fleet_status);
    const auto terminal = std::stoull(status.fields.at("done")) +
                          std::stoull(status.fields.at("cancelled")) +
                          std::stoull(status.fields.at("failed"));
    if (terminal >= static_cast<std::uint64_t>(sessions)) break;

    service::Request suggest;
    suggest.verb = "suggest";
    suggest.session = probe_id;
    probe_id = probe_id % static_cast<std::uint64_t>(sessions) + 1;
    const auto p0 = std::chrono::steady_clock::now();
    (void)prober.call(suggest);  // "no evaluation yet" still measures
    const auto p1 = std::chrono::steady_clock::now();
    latencies_us.push_back(
        std::chrono::duration<double, std::micro>(p1 - p0).count());
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  producer.join();
  manager.drain();
  const double wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  std::size_t total_evals = 0;
  for (int id = 1; id <= sessions; ++id) {
    const auto status = manager.status(static_cast<std::uint64_t>(id));
    if (status) total_evals += status->evaluations;
  }

  std::sort(latencies_us.begin(), latencies_us.end());
  const double p50 = percentile(latencies_us, 0.50);
  const double p99 = percentile(latencies_us, 0.99);

  // Determinism acceptance: replay every spec file the daemon wrote
  // (it carries the derived seed) standalone and compare journal bytes.
  std::size_t verified = 0, mismatches = 0;
  if (verify) {
    const std::string replay_root = options.root + "-replay";
    fs::remove_all(replay_root);
    fs::create_directories(replay_root);
    for (int id = 1; id <= sessions; ++id) {
      core::SessionSpec spec;
      if (!core::load_spec_file(
              manager.spec_path(static_cast<std::uint64_t>(id)), spec)) {
        ++mismatches;
        continue;
      }
      spec.checkpoint_path =
          replay_root + "/replay-" + std::to_string(id) + ".journal";
      std::string error;
      auto session = core::SessionFactory::create(spec, &error);
      if (!session || !session->run().ok()) {
        ++mismatches;
        continue;
      }
      ++verified;
      if (slurp(spec.checkpoint_path) !=
          slurp(manager.journal_path(static_cast<std::uint64_t>(id)))) {
        ++mismatches;
      }
    }
    fs::remove_all(replay_root);
  }

  const double sessions_per_s = static_cast<double>(sessions) / wall_s;
  const double evals_per_s = static_cast<double>(total_evals) / wall_s;
  std::printf("fleet drained in %.2f s\n", wall_s);
  std::printf("%-28s %10.2f\n", "sessions / s", sessions_per_s);
  std::printf("%-28s %10.2f\n", "evaluations / s", evals_per_s);
  std::printf("%-28s %10zu\n", "admission rejections", rejections);
  std::printf("%-28s %10.1f us\n", "suggest p50", p50);
  std::printf("%-28s %10.1f us\n", "suggest p99", p99);
  if (verify) {
    std::printf("%-28s %zu/%d (%zu mismatches)\n",
                "journals byte-verified", verified, sessions, mismatches);
  }

  fs::create_directories("bench_results");
  std::FILE* out = std::fopen("bench_results/fig_service.json", "w");
  if (out != nullptr) {
    std::fprintf(out,
                 "{\n"
                 "  \"sessions\": %d,\n"
                 "  \"budget\": %d,\n"
                 "  \"max_live\": %zu,\n"
                 "  \"slots\": %zu,\n"
                 "  \"max_pending\": %zu,\n"
                 "  \"wall_s\": %.3f,\n"
                 "  \"sessions_per_s\": %.3f,\n"
                 "  \"evals_per_s\": %.3f,\n"
                 "  \"admission_rejections\": %zu,\n"
                 "  \"suggest_p50_us\": %.1f,\n"
                 "  \"suggest_p99_us\": %.1f,\n"
                 "  \"suggest_samples\": %zu,\n"
                 "  \"verified\": %zu,\n"
                 "  \"mismatches\": %zu\n"
                 "}\n",
                 sessions, budget, options.max_live, options.slots,
                 options.max_pending, wall_s, sessions_per_s, evals_per_s,
                 rejections, p50, p99, latencies_us.size(), verified,
                 mismatches);
    std::fclose(out);
    std::printf("wrote bench_results/fig_service.json\n");
  }
  fs::remove_all(options.root);
  return mismatches == 0 ? 0 : 1;
}
