// §5.2 "Comparison with the default" reproduction: how the framework's
// default configuration behaves on every workload/dataset versus a tuned
// configuration (no evaluation cap — the paper reports raw outcomes).
//
// Paper's claims: default OOMs PR and CC (spark.executor.memory default of
// 1024 MB); TS OOMs on its two larger datasets but completes 20 GB with a
// 4.16x slowdown; KM and LR complete with 27.1x and 2.17x average
// speedups after tuning (KM worst by far).
#include <cstdio>

#include "bench/harness.h"

using namespace robotune;

int main() {
  std::printf("=== Section 5.2: default configuration vs tuned ===\n");
  const auto space = sparksim::spark24_config_space();

  std::printf("%-6s %12s %12s %12s %10s\n", "case", "default", "tuned",
              "speedup", "(status)");
  for (auto kind : sparksim::all_workloads()) {
    // Tune once per workload with ROBOTune, then compare on each dataset.
    core::RoboTune robotune;
    for (int dataset = 1; dataset <= 3; ++dataset) {
      auto objective = bench::make_objective(
          kind, dataset, 600 + static_cast<std::uint64_t>(dataset));
      const auto result =
          robotune.tune(objective, bench::bench_budget(),
                        31 + static_cast<std::uint64_t>(dataset));
      // Default evaluated without cap (§5.2 reports its raw behaviour).
      const auto def = objective.evaluate_decoded(space.defaults(), 0.0,
                                                  /*apply_cap=*/false);
      const std::string label =
          sparksim::short_name(kind) + "-D" + std::to_string(dataset);
      if (def.status == sparksim::RunStatus::kOk) {
        std::printf("%-6s %11.1fs %11.1fs %11.2fx %10s\n", label.c_str(),
                    def.value_s, result.best_value_s(),
                    def.value_s / result.best_value_s(), "ok");
      } else {
        std::printf("%-6s %12s %11.1fs %12s %10s\n", label.c_str(),
                    "FAILED", result.best_value_s(), "-",
                    to_string(def.status).c_str());
      }
    }
  }
  std::printf(
      "\nExpected shape (paper §5.2): PR/CC fail (OOM) with the default on "
      "all\ndatasets; TS fails on D2/D3 but completes D1 with a large "
      "slowdown; KM and\nLR complete with large speedups after tuning, KM "
      "by far the worst.\n");
  return 0;
}
