// Figure 2 reproduction: five-fold cross-validated R² of Lasso,
// ElasticNet, Random Forests and Extremely Randomized Trees on 200 LHS
// configurations for each dataset of the PageRank and KMeans workloads.
//
// Paper's claim: both tree models clearly beat both linear models, with
// RF the best overall ("explains most of the variance").
#include <cstdio>
#include <memory>

#include "bench/harness.h"
#include "ml/cross_validation.h"
#include "ml/linear_models.h"
#include "ml/random_forest.h"
#include "sampling/latin_hypercube.h"

using namespace robotune;

int main() {
  std::printf("=== Figure 2: R^2 scores of examined models (5-fold CV) ===\n");
  const auto space = sparksim::spark24_config_space();
  const int samples = bench::env_int("ROBOTUNE_BENCH_FIG2_SAMPLES", 200);

  std::printf("%-8s %10s %12s %10s %10s\n", "dataset", "Lasso", "ElasticNet",
              "RF", "ET");
  for (auto kind :
       {sparksim::WorkloadKind::kPageRank, sparksim::WorkloadKind::kKMeans}) {
    for (int dataset = 1; dataset <= 3; ++dataset) {
      auto objective = bench::make_objective(kind, dataset, 4242);
      Rng rng(17 + static_cast<std::uint64_t>(dataset));
      const auto design = sampling::latin_hypercube(
          static_cast<std::size_t>(samples), space.size(), rng);
      ml::Dataset data(space.size());
      for (const auto& unit : design) {
        // The model-comparison study measures full execution times (no
        // tuning-session kill threshold): a capped response collapses to a
        // constant for slow configurations and wrecks every model's R².
        const auto outcome =
            objective.evaluate_decoded(space.decode(unit), 0.0,
                                       /*apply_cap=*/false);
        data.add_row(unit, outcome.value_s);
      }
      const auto cv = [&](ml::ModelFactory factory) {
        return ml::cross_validate(data, factory, 5, 13).mean_score;
      };
      const double lasso = cv([] {
        return std::make_unique<ml::Lasso>(0.1);
      });
      const double enet = cv([] {
        return std::make_unique<ml::ElasticNet>(
            ml::LinearModelOptions{.alpha = 0.1, .l1_ratio = 0.5});
      });
      const double rf = cv([] {
        ml::ForestOptions fo;
        fo.num_trees = 200;
        fo.tree.max_features = 44;
        return std::make_unique<ml::RandomForest>(fo, 7);
      });
      const double et = cv([] {
        auto model = std::make_unique<ml::RandomForest>(
            ml::RandomForest::extra_trees(200, 7));
        return model;
      });
      std::printf("%s-D%d %10.3f %12.3f %10.3f %10.3f\n",
                  sparksim::short_name(kind).c_str(), dataset, lasso, enet,
                  rf, et);
    }
  }
  std::printf(
      "\nExpected shape (paper Fig. 2): tree models >> linear models,\n"
      "RF best overall.\n");
  return 0;
}
