// Ablation: Bayesian optimization on the full 44-dimensional space vs on
// the RF-selected subspace (paper §3.1: BO's efficiency and accuracy are
// limited to low-dimensional objectives, hence the parameter-selection
// stage).
#include <chrono>
#include <cstdio>
#include <numeric>

#include "bench/harness.h"
#include "common/statistics.h"
#include "core/bo_engine.h"
#include "core/parameter_selection.h"

using namespace robotune;

int main() {
  const int budget = bench::bench_budget();
  const int reps = bench::env_int("ROBOTUNE_BENCH_ABL_REPS", 2);
  std::printf("=== Ablation: BO over all 44 dims vs the selected subspace "
              "(PR-D1, budget=%d, reps=%d) ===\n",
              budget, reps);
  const auto space = sparksim::spark24_config_space();

  // Selected subspace from the standard pipeline.
  auto sel_objective =
      bench::make_objective(sparksim::WorkloadKind::kPageRank, 1, 51);
  const auto report = core::select_parameters(
      sel_objective, sparksim::spark24_joint_parameter_groups(), {});
  std::printf("selected %zu of 44 parameters\n", report.selected.size());

  std::vector<std::size_t> all_dims(space.size());
  std::iota(all_dims.begin(), all_dims.end(), std::size_t{0});

  struct Variant {
    const char* label;
    const std::vector<std::size_t>* dims;
  };
  const Variant variants[] = {{"selected subspace", &report.selected},
                              {"all 44 dimensions", &all_dims}};

  std::printf("%-20s %12s %12s %14s\n", "search space", "mean best(s)",
              "mean cost(s)", "tuner wall(s)");
  for (const auto& variant : variants) {
    std::vector<double> bests, costs;
    const auto wall_start = std::chrono::steady_clock::now();
    for (int rep = 0; rep < reps; ++rep) {
      auto objective = bench::make_objective(
          sparksim::WorkloadKind::kPageRank, 1,
          3000 + static_cast<std::uint64_t>(rep));
      core::BoOptions options;
      options.budget = budget;
      options.seed = 60 + static_cast<std::uint64_t>(rep);
      core::BoEngine engine(*variant.dims, space.default_unit(), options);
      const auto result = engine.run(objective);
      bests.push_back(result.tuning.best_value_s());
      costs.push_back(result.tuning.search_cost_s);
    }
    const double wall =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      wall_start)
            .count() /
        reps;
    std::printf("%-20s %12.1f %12.0f %14.1f\n", variant.label,
                stats::mean(bests), stats::mean(costs), wall);
  }
  std::printf(
      "\nExpected: the subspace search matches or beats the full-space "
      "search at a\nfraction of the cluster search cost AND of the "
      "tuner-side compute: the GP fit\nand acquisition optimization scale "
      "steeply with dimensionality (the paper's\nefficiency argument, "
      "§3.1).  With an ARD kernel the full-space search remains\n"
      "surprisingly competitive on final quality in this simulator; see "
      "EXPERIMENTS.md.\n");
  return 0;
}
