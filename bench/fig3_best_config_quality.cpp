// Figure 3 reproduction: execution time of the best configuration each
// tuner finds within the 100-evaluation budget, scaled to Random Search.
// Five workloads x three datasets.
//
// Paper's claims: ROBOTune beats BestConfig by 1.14x avg (up to 1.3x) and
// Gunther by 1.15x avg (up to 1.28x); wins concentrate on PR/CC/LR, KM is
// near parity (<10%), TS mediocre (~1.1x).
#include <cstdio>

#include "bench/harness.h"

using namespace robotune;

int main() {
  const int budget = bench::bench_budget();
  const int reps = bench::bench_reps();
  std::printf(
      "=== Figure 3: best-found execution time scaled to RS "
      "(budget=%d, reps=%d) ===\n",
      budget, reps);
  const auto grid = bench::run_comparison(budget, reps, 3000);
  bench::print_scaled_grid(grid, /*use_cost=*/false, "best execution time");

  // Also print the absolute best times for EXPERIMENTS.md.
  std::printf("\nAbsolute best execution times (s):\n");
  std::printf("%-8s", "dataset");
  for (const auto& name : bench::tuner_names()) {
    std::printf("%12s", name.c_str());
  }
  std::printf("\n");
  for (const auto& [key, cells] : grid) {
    std::printf("%-8s", key.c_str());
    for (const auto& name : bench::tuner_names()) {
      std::printf("%12.1f", bench::mean_of(cells.at(name).best));
    }
    std::printf("\n");
  }
  return 0;
}
