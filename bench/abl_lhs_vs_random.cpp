// Ablation: LHS vs uniform-random initialization of the BO engine
// (paper §3.2 argues LHS reaches the same coverage with fewer samples than
// random sampling, citing McKay et al.).
#include <cstdio>

#include "bench/harness.h"
#include "common/statistics.h"
#include "core/bo_engine.h"
#include "sampling/latin_hypercube.h"

using namespace robotune;

int main() {
  const int budget = bench::bench_budget();
  const int reps = bench::env_int("ROBOTUNE_BENCH_ABL_REPS", 3);
  std::printf("=== Ablation: LHS vs uniform-random BO initialization "
              "(PR-D1, budget=%d, reps=%d) ===\n",
              budget, reps);

  const auto space = sparksim::spark24_config_space();
  std::vector<std::size_t> selected;
  for (const char* name :
       {"spark.executor.cores", "spark.executor.memory.mb", "spark.cores.max",
        "spark.default.parallelism", "spark.serializer"}) {
    selected.push_back(*space.index_of(name));
  }

  std::printf("%-10s %14s %16s\n", "init", "mean best(s)",
              "best after init(s)");
  for (bool lhs : {true, false}) {
    std::vector<double> finals, after_init;
    for (int rep = 0; rep < reps; ++rep) {
      auto objective = bench::make_objective(
          sparksim::WorkloadKind::kPageRank, 1,
          777 + static_cast<std::uint64_t>(rep));
      core::BoOptions options;
      options.budget = budget;
      options.seed = 40 + static_cast<std::uint64_t>(rep);
      options.lhs_initialization = lhs;
      core::BoEngine engine(selected, space.default_unit(), options);
      const auto result = engine.run(objective);
      const auto traj = result.tuning.best_trajectory();
      finals.push_back(traj.back());
      after_init.push_back(
          traj[static_cast<std::size_t>(options.initial_samples - 1)]);
    }
    std::printf("%-10s %14.1f %16.1f\n", lhs ? "LHS" : "random",
                stats::mean(finals), stats::mean(after_init));
  }

  // Space-coverage side of the claim: minimal pairwise distance of the
  // designs themselves.
  Rng rng(5);
  double lhs_dist = 0.0, rnd_dist = 0.0;
  for (int rep = 0; rep < 20; ++rep) {
    lhs_dist += sampling::min_pairwise_distance(
        sampling::latin_hypercube(20, selected.size(), rng));
    rnd_dist += sampling::min_pairwise_distance(
        sampling::uniform_random(20, selected.size(), rng));
  }
  std::printf("\nmin pairwise distance of a 20-point design (avg of 20): "
              "LHS %.3f vs random %.3f\n",
              lhs_dist / 20.0, rnd_dist / 20.0);
  std::printf("Expected: LHS covers the space more evenly (larger minimal "
              "distance) and\nits initialization is never worse on "
              "average.\n");
  return 0;
}
