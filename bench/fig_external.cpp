// Ask/tell control-plane study (DESIGN.md §16): a fleet of external
// sessions driven through the full wire codec (LocalClient round-trips
// every request through encode → decode → dispatch → encode → decode,
// exactly what the socket daemon executes) by a single synchronous
// executor, plus the lease reaper's sweep cost in isolation.
//
// Measures:
//   - suggest→observe round-trip latency (p50/p99): the control-plane
//     overhead an external executor pays per evaluation on top of the
//     measurement itself — one suggest call that granted work plus the
//     observe call that delivered its result,
//   - observe (tell) latency alone, which includes the ledger append
//     and the journal flush,
//   - reclaim sweep latency: how long one reaper tick takes to expire a
//     round's worth of abandoned leases and journal the expiries.
//
// Emits a table to stdout and machine-readable JSON to
// bench_results/fig_external.json (run from the repo root).
//
// Environment knobs:
//   ROBOTUNE_BENCH_EXT_SESSIONS  fleet size               [default 8]
//   ROBOTUNE_BENCH_EXT_BUDGET    evaluations per session  [default 6]
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench/harness.h"
#include "core/persistence.h"
#include "core/session.h"
#include "service/client.h"
#include "service/session_manager.h"

using namespace robotune;
namespace fs = std::filesystem;

namespace {

core::SessionSpec external_spec(std::uint64_t seed, int budget) {
  core::SessionSpec spec;
  spec.workload = "PR";
  spec.dataset = 1;
  spec.tuner = "robotune";
  spec.mode = "external";
  spec.budget = budget;
  spec.seed = seed;
  spec.init = std::min(4, budget);
  spec.batch = 4;
  spec.selection_samples = 20;
  return spec;
}

// The executor stand-in: a pure function of (unit, index), so the run
// is deterministic end-to-end.
void fake_measurement(const std::vector<double>& unit, std::uint64_t index,
                      double& value_s, double& cost_s) {
  double v = 0.0;
  for (std::size_t i = 0; i < unit.size(); ++i) {
    v += unit[i] * static_cast<double>(i + 1);
  }
  value_s = 60.0 +
            10.0 * v / static_cast<double>(unit.size() ? unit.size() : 1) +
            static_cast<double>(index % 3);
  cost_s = value_s + 2.5;
}

bool terminal(service::SessionState state) {
  return state == service::SessionState::kDone ||
         state == service::SessionState::kCancelled ||
         state == service::SessionState::kFailed;
}

double percentile(const std::vector<double>& sorted_us, double p) {
  if (sorted_us.empty()) return 0.0;
  const auto idx = static_cast<std::size_t>(
      p * static_cast<double>(sorted_us.size() - 1));
  return sorted_us[idx];
}

}  // namespace

int main() {
  const int sessions = bench::env_int("ROBOTUNE_BENCH_EXT_SESSIONS", 8);
  const int budget = bench::env_int("ROBOTUNE_BENCH_EXT_BUDGET", 6);

  service::ServiceOptions options;
  options.root = (fs::temp_directory_path() / "robotune-fig-external").string();
  options.max_live = static_cast<std::size_t>(sessions);
  options.max_pending = static_cast<std::size_t>(sessions);
  options.slots = 1;
  options.seed = 2024;
  // Long leases: the driver below never abandons one, and the reaper is
  // measured separately against a short-lease manager.
  options.lease_timeout_ticks = 600;
  fs::remove_all(options.root);

  std::printf(
      "=== External ask/tell: %d sessions, budget=%d, batch=4 ===\n",
      sessions, budget);

  service::SessionManager manager(options);
  service::LocalClient client(manager);

  for (int i = 1; i <= sessions; ++i) {
    service::Request start;
    start.verb = "start";
    start.spec_body = core::encode_spec_body(
        external_spec(static_cast<std::uint64_t>(100 + i), budget));
    const auto response = client.call(start);
    if (!response.ok) {
      std::fprintf(stderr, "start failed: %s\n", response.error.c_str());
      return 1;
    }
  }

  // Single synchronous executor, round-robin over the fleet: every
  // granted suggestion is measured and told straight back, so each
  // (suggest that granted, observe) pair is one control-plane round
  // trip as an external executor experiences it.
  std::vector<double> round_trip_us, observe_us;
  std::size_t accepted = 0, other_verdicts = 0;
  const auto t0 = std::chrono::steady_clock::now();
  for (;;) {
    int done = 0;
    bool granted = false;
    for (int id = 1; id <= sessions; ++id) {
      const auto status = manager.status(static_cast<std::uint64_t>(id));
      if (status && terminal(status->state)) {
        ++done;
        continue;
      }
      service::Request suggest;
      suggest.verb = "suggest";
      suggest.session = static_cast<std::uint64_t>(id);
      suggest.limit = 16;
      const auto s0 = std::chrono::steady_clock::now();
      const auto batch = client.call(suggest);
      const auto s1 = std::chrono::steady_clock::now();
      if (!batch.ok) continue;
      const double suggest_us =
          std::chrono::duration<double, std::micro>(s1 - s0).count();
      for (const auto& record : batch.records) {
        std::istringstream in(record);
        std::uint64_t index = 0, lease = 0, deadline = 0;
        if (!(in >> index >> lease >> deadline)) continue;
        std::vector<double> unit;
        double coord = 0.0;
        while (in >> coord) unit.push_back(coord);
        service::Request tell;
        tell.verb = "observe";
        tell.session = static_cast<std::uint64_t>(id);
        tell.has_observation = true;
        tell.eval = index;
        tell.status = "ok";
        fake_measurement(unit, index, tell.value_s, tell.cost_s);
        const auto o0 = std::chrono::steady_clock::now();
        const auto ack = client.call(tell);
        const auto o1 = std::chrono::steady_clock::now();
        const double tell_us =
            std::chrono::duration<double, std::micro>(o1 - o0).count();
        observe_us.push_back(tell_us);
        round_trip_us.push_back(suggest_us + tell_us);
        if (ack.ok && ack.fields.count("verdict") &&
            ack.fields.at("verdict") == "accepted") {
          ++accepted;
        } else {
          ++other_verdicts;
        }
        granted = true;
      }
    }
    if (done == sessions) break;
    if (!granted) std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  manager.drain();
  const double wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  // Reaper in isolation: a one-tick lease against a dedicated manager.
  // Each cycle leases the whole pending round, abandons it, and times
  // the sweep that expires + journals + re-pools every lease.  The
  // pending set is never resolved, so the same round reclaims forever.
  std::vector<double> reclaim_us;
  {
    service::ServiceOptions reap_options = options;
    reap_options.root = options.root + "-reaper";
    reap_options.lease_timeout_ticks = 1;
    fs::remove_all(reap_options.root);
    service::SessionManager reaper(reap_options);
    const auto started = reaper.start(external_spec(7, budget));
    if (!started.admitted) {
      std::fprintf(stderr, "reaper start failed: %s\n",
                   started.error.c_str());
      return 1;
    }
    for (int cycle = 0; cycle < 32;) {
      const auto ask = reaper.ask(started.id, 16);
      if (!ask.ok) break;
      if (ask.grants.empty()) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
        continue;
      }
      const auto r0 = std::chrono::steady_clock::now();
      const auto reclaimed = reaper.tick();
      const auto r1 = std::chrono::steady_clock::now();
      if (reclaimed != ask.grants.size()) {
        std::fprintf(stderr, "reclaimed %zu of %zu leases\n",
                     static_cast<std::size_t>(reclaimed), ask.grants.size());
        return 1;
      }
      reclaim_us.push_back(
          std::chrono::duration<double, std::micro>(r1 - r0).count());
      ++cycle;
    }
    reaper.cancel(started.id);
    reaper.drain();
    fs::remove_all(reap_options.root);
  }

  std::sort(round_trip_us.begin(), round_trip_us.end());
  std::sort(observe_us.begin(), observe_us.end());
  std::sort(reclaim_us.begin(), reclaim_us.end());
  const double rt_p50 = percentile(round_trip_us, 0.50);
  const double rt_p99 = percentile(round_trip_us, 0.99);
  const double ob_p50 = percentile(observe_us, 0.50);
  const double ob_p99 = percentile(observe_us, 0.99);
  const double rc_p50 = percentile(reclaim_us, 0.50);
  const double rc_p99 = percentile(reclaim_us, 0.99);

  const auto expected =
      static_cast<std::size_t>(sessions) * static_cast<std::size_t>(budget);
  std::printf("fleet drained in %.2f s\n", wall_s);
  std::printf("%-28s %zu/%zu (%zu other verdicts)\n", "accepted acks",
              accepted, expected, other_verdicts);
  std::printf("%-28s %10.1f us\n", "round-trip p50", rt_p50);
  std::printf("%-28s %10.1f us\n", "round-trip p99", rt_p99);
  std::printf("%-28s %10.1f us\n", "observe p50", ob_p50);
  std::printf("%-28s %10.1f us\n", "observe p99", ob_p99);
  std::printf("%-28s %10.1f us\n", "reclaim sweep p50", rc_p50);
  std::printf("%-28s %10.1f us\n", "reclaim sweep p99", rc_p99);

  fs::create_directories("bench_results");
  std::FILE* out = std::fopen("bench_results/fig_external.json", "w");
  if (out != nullptr) {
    std::fprintf(out,
                 "{\n"
                 "  \"sessions\": %d,\n"
                 "  \"budget\": %d,\n"
                 "  \"wall_s\": %.3f,\n"
                 "  \"accepted\": %zu,\n"
                 "  \"expected\": %zu,\n"
                 "  \"other_verdicts\": %zu,\n"
                 "  \"round_trip_p50_us\": %.1f,\n"
                 "  \"round_trip_p99_us\": %.1f,\n"
                 "  \"observe_p50_us\": %.1f,\n"
                 "  \"observe_p99_us\": %.1f,\n"
                 "  \"reclaim_sweep_p50_us\": %.1f,\n"
                 "  \"reclaim_sweep_p99_us\": %.1f,\n"
                 "  \"reclaim_samples\": %zu\n"
                 "}\n",
                 sessions, budget, wall_s, accepted, expected, other_verdicts,
                 rt_p50, rt_p99, ob_p50, ob_p99, rc_p50, rc_p99,
                 reclaim_us.size());
    std::fclose(out);
    std::printf("wrote bench_results/fig_external.json\n");
  }
  fs::remove_all(options.root);
  return accepted == expected ? 0 : 1;
}
