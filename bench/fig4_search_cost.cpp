// Figure 4 reproduction: total search cost (time generating + evaluating
// configurations) of each tuner, scaled to Random Search.  ROBOTune's
// one-time parameter-selection sampling is excluded per §5.3.
//
// Paper's claims: ROBOTune outperforms BestConfig by 1.59x avg (up to
// 2.27x), Gunther by 1.53x (up to 1.71x) and RS by 1.6x (up to 1.93x).
#include <cstdio>

#include "bench/harness.h"

using namespace robotune;

int main() {
  const int budget = bench::bench_budget();
  const int reps = bench::bench_reps();
  std::printf(
      "=== Figure 4: search cost scaled to RS (budget=%d, reps=%d) ===\n",
      budget, reps);
  const auto grid = bench::run_comparison(budget, reps, 5000);
  bench::print_scaled_grid(grid, /*use_cost=*/true, "search cost");

  std::printf("\nAbsolute search cost (s of simulated cluster time):\n");
  std::printf("%-8s", "dataset");
  for (const auto& name : bench::tuner_names()) {
    std::printf("%12s", name.c_str());
  }
  std::printf("\n");
  for (const auto& [key, cells] : grid) {
    std::printf("%-8s", key.c_str());
    for (const auto& name : bench::tuner_names()) {
      std::printf("%12.0f", bench::mean_of(cells.at(name).cost));
    }
    std::printf("\n");
  }
  std::printf(
      "\nAverage improvement of ROBOTune over a tuner T = geomean of\n"
      "cost(T)/cost(ROBOTune); the paper reports 1.59x (BestConfig),\n"
      "1.53x (Gunther), 1.6x (RS).\n");
  return 0;
}
