// Racing early-stop study: effective-evaluation throughput and
// best-found quality of the evaluation lifecycle layer (DESIGN.md §12),
// racing off vs the median rule, at scheduler widths q in {1, 4, 8}.
//
// Cluster-run latency is emulated exactly as in fig_batch_scaling: the
// scheduler sleeps ROBOTUNE_BENCH_EVAL_LATENCY wall-seconds per simulated
// cost second, on the worker that runs the evaluation.  A racer kill
// truncates the evaluation's simulated cost at the stage boundary where
// the token landed, so the killed run sleeps only its partial cost — the
// racing refund is real wall-clock time, which is what this bench
// measures as effective-eval throughput (evaluations per wall second).
//
// Emits a table to stdout and machine-readable JSON to
// bench_results/fig_racing.json (run from the repo root).
//
// Environment knobs:
//   ROBOTUNE_BENCH_BUDGET        evaluation budget        [default 100]
//   ROBOTUNE_BENCH_EVAL_LATENCY  wall s per simulated s   [default 0.003]
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <vector>

#include "bench/harness.h"
#include "exec/eval_scheduler.h"

using namespace robotune;

int main() {
  const int budget = bench::bench_budget();
  const double latency =
      bench::env_double("ROBOTUNE_BENCH_EVAL_LATENCY", 0.003);
  const std::vector<int> widths = {1, 4, 8};
  const auto kind = sparksim::WorkloadKind::kKMeans;
  const int dataset = 2;
  const std::uint64_t seed = 11;
  // Per-attempt deadline for the racing-on cells.  KM-D2's slow tail sits
  // well above the healthy band (~160 s), so a 250 s deadline trims the
  // per-round barrier (round wall = max of the batch) without touching
  // runs the racer should spare.
  const double kDeadlineS = 250.0;

  std::printf(
      "=== Racing early-stop on KM-D2 (budget=%d, latency=%.4f s/s) ===\n",
      budget, latency);

  // One shared parameter selection (identical for every cell), primed
  // into the cache so the timed region is just the BO session.
  auto selection_objective = bench::make_objective(kind, dataset, seed * 7919);
  core::SelectionOptions sel;
  sel.seed ^= seed;
  const auto selection = core::select_parameters(
      selection_objective, sparksim::spark24_joint_parameter_groups(), sel);
  const std::string workload_key = sparksim::to_string(kind);

  struct Row {
    int q = 0;
    bool racing = false;
    double wall_s = 0.0;
    double best_s = 0.0;
    double search_cost_s = 0.0;
    std::size_t evals = 0;
    std::size_t kills = 0;
  };
  std::vector<Row> rows;
  for (int q : widths) {
    for (bool racing : {false, true}) {
      core::RoboTuneOptions options;
      options.bo.batch_size = q;
      core::RoboTune tuner(options);
      tuner.selection_cache().store(workload_key, selection.selected);

      exec::SchedulerOptions sched;
      sched.parallelism = q;
      sched.emulate_latency_per_cost_s = latency;
      if (racing) {
        sched.racing.mode = exec::RacingMode::kMedian;
        sched.racing.deadline_s = kDeadlineS;
      }
      exec::EvalScheduler scheduler(sched);

      auto objective = bench::make_objective(kind, dataset, seed * 7919);
      const auto start = std::chrono::steady_clock::now();
      const auto report = tuner.tune_report(objective, budget, seed, nullptr,
                                            nullptr, &scheduler);
      const auto elapsed =
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        start)
              .count();
      Row row;
      row.q = q;
      row.racing = racing;
      row.wall_s = elapsed;
      row.best_s = report.tuning.found_any() ? report.tuning.best_value_s()
                                             : 480.0;
      row.search_cost_s = report.tuning.search_cost_s;
      row.evals = report.tuning.history.size();
      for (const auto& e : report.tuning.history) {
        if (e.status == sparksim::RunStatus::kKilled) ++row.kills;
      }
      rows.push_back(row);
    }
  }

  std::printf("%-6s%-9s%12s%12s%12s%12s%8s\n", "q", "racing", "wall s",
              "evals/s", "best s", "cost s", "kills");
  for (const auto& row : rows) {
    std::printf("%-6d%-9s%12.2f%12.3f%12.2f%12.0f%8zu\n", row.q,
                row.racing ? "median+ddl" : "off", row.wall_s,
                row.evals / row.wall_s, row.best_s, row.search_cost_s,
                row.kills);
  }

  std::printf("\n%-6s%18s%15s\n", "q", "throughput gain", "quality ratio");
  struct Summary {
    int q = 0;
    double throughput_ratio = 0.0;
    double quality_ratio = 0.0;
  };
  std::vector<Summary> summaries;
  for (std::size_t i = 0; i + 1 < rows.size(); i += 2) {
    const Row& off = rows[i];
    const Row& on = rows[i + 1];
    Summary s;
    s.q = off.q;
    s.throughput_ratio =
        (on.evals / on.wall_s) / (off.evals / off.wall_s);
    s.quality_ratio = on.best_s / off.best_s;
    summaries.push_back(s);
    std::printf("%-6d%17.2fx%15.4f\n", s.q, s.throughput_ratio,
                s.quality_ratio);
  }
  std::printf(
      "(throughput gain = racing-on evals/s over racing-off at the same "
      "q;\n quality ratio = racing-on best over racing-off best, 1.0 = "
      "no loss)\n");

  std::filesystem::create_directories("bench_results");
  const char* path = "bench_results/fig_racing.json";
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path);
    return 1;
  }
  std::fprintf(f,
               "{\n  \"workload\": \"KM-D2\",\n  \"budget\": %d,\n"
               "  \"eval_latency_s\": %.6f,\n  \"rows\": [\n",
               budget, latency);
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const auto& row = rows[i];
    std::fprintf(f,
                 "    {\"q\": %d, \"racing\": \"%s\", \"wall_s\": %.3f, "
                 "\"throughput_eps\": %.4f, \"best_s\": %.3f, "
                 "\"search_cost_s\": %.1f, \"evals\": %zu, "
                 "\"kills\": %zu}%s\n",
                 row.q, row.racing ? "median+ddl" : "off", row.wall_s,
                 row.evals / row.wall_s, row.best_s, row.search_cost_s,
                 row.evals, row.kills, i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n  \"summary\": [\n");
  for (std::size_t i = 0; i < summaries.size(); ++i) {
    const auto& s = summaries[i];
    std::fprintf(f,
                 "    {\"q\": %d, \"throughput_ratio\": %.3f, "
                 "\"quality_ratio\": %.4f}%s\n",
                 s.q, s.throughput_ratio, s.quality_ratio,
                 i + 1 < summaries.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("\nwrote %s\n", path);
  return 0;
}
