// Ablation: a learning-based tuner (RFHOC-style) under the same small
// budget as the search-based tuners.
//
// The paper excludes learning-based approaches from its comparison
// because they "require at least 2,000 executions of each workload to
// train models and are infeasible in most real-life scenarios" (§5.1).
// This bench quantifies that argument: with ~70 training runs the RF
// surrogate misguides the model-side GA, and the tuner lands near Random
// Search while ROBOTune's on-line BO uses the same information far more
// efficiently.
#include <cstdio>

#include "bench/harness.h"
#include "common/statistics.h"
#include "tuners/rfhoc.h"

using namespace robotune;

int main() {
  const int budget = bench::bench_budget();
  const int reps = bench::env_int("ROBOTUNE_BENCH_ABL_REPS", 3);
  std::printf("=== Ablation: learning-based tuning (RFHOC-style) at a "
              "search-tuner budget (PR-D1, budget=%d, reps=%d) ===\n",
              budget, reps);

  std::printf("%-10s %12s %12s\n", "tuner", "mean best(s)", "mean cost(s)");
  for (const char* which : {"RFHOC", "ROBOTune", "RS"}) {
    std::vector<double> bests, costs;
    core::RoboTune robotune;
    tuners::Rfhoc rfhoc;
    tuners::RandomSearch rs;
    for (int rep = 0; rep < reps; ++rep) {
      auto objective = bench::make_objective(
          sparksim::WorkloadKind::kPageRank, 1,
          8800 + static_cast<std::uint64_t>(rep));
      tuners::Tuner* tuner = nullptr;
      if (std::string(which) == "RFHOC") {
        tuner = &rfhoc;
      } else if (std::string(which) == "ROBOTune") {
        tuner = &robotune;
      } else {
        tuner = &rs;
      }
      const auto result =
          tuner->tune(objective, budget, 90 + static_cast<std::uint64_t>(rep));
      bests.push_back(result.best_value_s());
      costs.push_back(result.search_cost_s);
    }
    std::printf("%-10s %12.1f %12.0f\n", which, stats::mean(bests),
                stats::mean(costs));
  }
  std::printf("\nExpected: RFHOC at this budget is no better than RS "
              "(too few samples for the\nmodel), while ROBOTune converts "
              "the same budget into a better configuration at\nlower cost "
              "— the paper's §1/§5.1 rationale for excluding "
              "learning-based tuners.\n");
  return 0;
}
