// Hot-path performance regression bench (DESIGN.md §8).
//
// Measures the GP/acquisition kernels this library spends its time in —
// fit, single/batched prediction, and acquisition optimization with
// numeric vs analytic gradients — and writes one JSON report that CI
// gates on: the analytic path must beat the numeric path at the largest
// training-set size.
//
// Unlike the figN benches this harness times *microseconds*, so it takes
// the best of ROBOTUNE_BENCH_HOTPATH_REPS repetitions (minimum = least
// scheduler noise) and reports nanoseconds per operation.
//
// Environment knobs:
//   ROBOTUNE_BENCH_HOTPATH_SIZES  comma-separated training sizes [20,50,100]
//   ROBOTUNE_BENCH_HOTPATH_REPS   repetitions per measurement    [5]
//   ROBOTUNE_BENCH_HOTPATH_DIMS   search-space dimensionality    [10]
//
// Usage: perf_hotpath [output.json]   (default bench_results/BENCH_hotpath.json)
#include <chrono>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <limits>
#include <string>
#include <vector>

#include "bench/harness.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "gp/acquisition.h"
#include "gp/gaussian_process.h"
#include "gp/kernel.h"
#include "gp/rff_gp.h"

namespace {

using namespace robotune;

double now_ns() {
  return static_cast<double>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Best-of-reps wall time of fn(), in nanoseconds.
template <typename Fn>
double time_best_ns(int reps, Fn&& fn) {
  double best = std::numeric_limits<double>::infinity();
  for (int r = 0; r < reps; ++r) {
    const double t0 = now_ns();
    fn();
    const double t1 = now_ns();
    best = std::min(best, t1 - t0);
  }
  return best;
}

std::vector<int> parse_sizes(const char* env, std::vector<int> fallback) {
  const char* v = std::getenv(env);
  if (v == nullptr || *v == '\0') return fallback;
  std::vector<int> out;
  int current = 0;
  bool have = false;
  for (const char* p = v;; ++p) {
    if (*p >= '0' && *p <= '9') {
      current = current * 10 + (*p - '0');
      have = true;
    } else {
      if (have) out.push_back(current);
      current = 0;
      have = false;
      if (*p == '\0') break;
    }
  }
  return out.empty() ? fallback : out;
}

struct SizeReport {
  int n = 0;
  double gp_fit_ns = 0.0;
  double predict_ns = 0.0;
  double predict_batch_per_point_ns = 0.0;
  double acq_opt_numeric_ns = 0.0;
  double acq_opt_analytic_ns = 0.0;
  double acq_opt_analytic_parallel_ns = 0.0;
  double speedup_analytic = 0.0;  ///< numeric / analytic (sequential both)
  double speedup_batch = 0.0;     ///< predict / predict_batch per point
  // ---- DESIGN.md §15: the O(n³)-wall columns -----------------------------
  double gp_add_point_ns = 0.0;     ///< rank-1 factor extension, O(n²)
  double gp_remove_point_ns = 0.0;  ///< LIFO truncation (purge path)
  double rff_fit_ns = 0.0;          ///< sparse-tier fit, m = 256 features
  double speedup_sparse = 0.0;      ///< gp_fit / rff_fit (the kAuto win)
  double purge_cycle_ns = 0.0;      ///< q = 8 CL plant + purge via rank-1
  double speedup_purge = 0.0;       ///< gp_fit / purge_cycle (vs old refit)
};

SizeReport measure(int n, int dims, int reps) {
  Rng rng(1234 + static_cast<std::uint64_t>(n));
  std::vector<std::vector<double>> x;
  std::vector<double> y;
  for (int i = 0; i < n; ++i) {
    std::vector<double> p(static_cast<std::size_t>(dims));
    for (auto& v : p) v = rng.uniform();
    x.push_back(p);
    y.push_back(std::sin(5.0 * p[0]) + p[1] * p[2] - 0.5 * p[3]);
  }

  SizeReport report;
  report.n = n;

  report.gp_fit_ns = time_best_ns(reps, [&] {
    gp::GaussianProcess model(gp::ard_kernel(static_cast<std::size_t>(dims)),
                              gp::GpOptions{false}, 1);
    model.fit(x, y);
  });

  gp::GaussianProcess model(gp::ard_kernel(static_cast<std::size_t>(dims)),
                            gp::GpOptions{false}, 1);
  model.fit(x, y);

  constexpr std::size_t kQueries = 256;
  std::vector<std::vector<double>> queries;
  for (std::size_t i = 0; i < kQueries; ++i) {
    std::vector<double> q(static_cast<std::size_t>(dims));
    for (auto& v : q) v = rng.uniform();
    queries.push_back(q);
  }
  double sink = 0.0;
  report.predict_ns = time_best_ns(reps, [&] {
                        for (const auto& q : queries) {
                          sink += model.predict(q).mean;
                        }
                      }) /
                      static_cast<double>(kQueries);
  report.predict_batch_per_point_ns =
      time_best_ns(reps, [&] {
        for (const auto& p : model.predict_batch(queries)) sink += p.mean;
      }) /
      static_cast<double>(kQueries);
  report.speedup_batch = report.predict_ns / report.predict_batch_per_point_ns;

  // Incremental add/remove (the q > 1 constant-liar hot path): each
  // cycle adds fantasies and purges them LIFO, restoring the model
  // bit-identically — so one model serves every repetition.
  constexpr int kPurgeQ = 8;
  std::vector<std::vector<double>> fantasies;
  for (int k = 0; k < kPurgeQ; ++k) {
    std::vector<double> f(static_cast<std::size_t>(dims));
    for (auto& v : f) v = rng.uniform();
    fantasies.push_back(f);
  }
  double best_add = std::numeric_limits<double>::infinity();
  double best_remove = best_add;
  for (int r = 0; r < reps; ++r) {
    const double t0 = now_ns();
    model.add_point(fantasies[0], -1.0);
    const double t1 = now_ns();
    model.remove_point(model.num_points() - 1);
    const double t2 = now_ns();
    best_add = std::min(best_add, t1 - t0);
    best_remove = std::min(best_remove, t2 - t1);
  }
  report.gp_add_point_ns = best_add;
  report.gp_remove_point_ns = best_remove;
  report.purge_cycle_ns = time_best_ns(reps, [&] {
    for (int k = 0; k + 1 < kPurgeQ; ++k) model.add_point(fantasies[k], -1.0);
    for (int k = 0; k + 1 < kPurgeQ; ++k) {
      model.remove_point(model.num_points() - 1);
    }
  });
  // The pre-§15 purge was a full fixed-hyperparameter refit per round.
  report.speedup_purge = report.gp_fit_ns / report.purge_cycle_ns;

  // Sparse-tier fit (what SurrogateTier::kAuto runs past the threshold).
  gp::MaternHyperparams hypers;
  hypers.length_scales.assign(static_cast<std::size_t>(dims), 0.5);
  report.rff_fit_ns = time_best_ns(reps, [&] {
    gp::RffGp sparse(gp::RffOptions{256, 0x5eedULL});
    sparse.fit(x, y, hypers);
    sink += sparse.predict(queries[0]).mean;
  });
  report.speedup_sparse = report.gp_fit_ns / report.rff_fit_ns;

  // Acquisition optimization: identical probes and starts for every
  // variant (the optimizer consumes exactly one draw from an identically
  // seeded Rng), so the timing difference is the gradient path.  The
  // numeric baseline is O(dims·n²) per L-BFGS step — past n = 512 it
  // dominates the whole bench run for a column nobody gates on, so the
  // acquisition matrix stops there.
  if (n <= 512) {
    const auto time_acq = [&](bool analytic, int workers) {
      gp::AcquisitionOptimizerOptions options;
      options.analytic_gradients = analytic;
      options.workers = workers;
      return time_best_ns(reps, [&] {
        Rng acq_rng(99);
        sink += gp::optimize_acquisition(model, gp::AcquisitionKind::kEI,
                                         static_cast<std::size_t>(dims),
                                         acq_rng, {}, options)[0];
      });
    };
    report.acq_opt_numeric_ns = time_acq(/*analytic=*/false, /*workers=*/1);
    report.acq_opt_analytic_ns = time_acq(true, 1);
    report.acq_opt_analytic_parallel_ns = time_acq(true, /*global pool*/ 0);
    report.speedup_analytic =
        report.acq_opt_numeric_ns / report.acq_opt_analytic_ns;
  }

  if (sink == 42.0) std::printf("\n");  // defeat dead-code elimination
  return report;
}

void write_json(const std::string& path, int dims, int reps,
                const std::vector<SizeReport>& reports) {
  const std::filesystem::path out_path(path);
  if (out_path.has_parent_path()) {
    std::filesystem::create_directories(out_path.parent_path());
  }
  std::ofstream out(path);
  out << "{\n  \"bench\": \"perf_hotpath\",\n";
  out << "  \"dims\": " << dims << ",\n  \"reps\": " << reps << ",\n";
  out << "  \"sizes\": [\n";
  for (std::size_t i = 0; i < reports.size(); ++i) {
    const auto& r = reports[i];
    out << "    {\"n\": " << r.n
        << ", \"gp_fit_ns\": " << r.gp_fit_ns
        << ", \"predict_ns\": " << r.predict_ns
        << ", \"predict_batch_per_point_ns\": " << r.predict_batch_per_point_ns
        << ", \"speedup_batch\": " << r.speedup_batch
        << ", \"gp_add_point_ns\": " << r.gp_add_point_ns
        << ", \"gp_remove_point_ns\": " << r.gp_remove_point_ns
        << ", \"purge_cycle_ns\": " << r.purge_cycle_ns
        << ", \"speedup_purge\": " << r.speedup_purge
        << ", \"rff_fit_ns\": " << r.rff_fit_ns
        << ", \"speedup_sparse\": " << r.speedup_sparse
        << ", \"acq_opt_numeric_ns\": " << r.acq_opt_numeric_ns
        << ", \"acq_opt_analytic_ns\": " << r.acq_opt_analytic_ns
        << ", \"acq_opt_analytic_parallel_ns\": "
        << r.acq_opt_analytic_parallel_ns
        << ", \"speedup_analytic\": " << r.speedup_analytic << "}"
        << (i + 1 < reports.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
}

}  // namespace

int main(int argc, char** argv) {
  const std::string out_path =
      argc > 1 ? argv[1] : "bench_results/BENCH_hotpath.json";
  const std::vector<int> sizes =
      parse_sizes("ROBOTUNE_BENCH_HOTPATH_SIZES", {20, 50, 100});
  const int reps = bench::env_int("ROBOTUNE_BENCH_HOTPATH_REPS", 5);
  const int dims = bench::env_int("ROBOTUNE_BENCH_HOTPATH_DIMS", 10);

  std::printf("%6s %12s %12s %12s %10s %10s %12s %12s %10s %10s\n", "n",
              "gp_fit_us", "predict_ns", "batch_ns", "add_us", "rm_us",
              "purge8_us", "rff_fit_us", "sparse_x", "acq_x");
  std::vector<SizeReport> reports;
  for (int n : sizes) {
    // The exact fit is O(n³): past n = 1000 a handful of repetitions is
    // already minutes of wall clock, and best-of-2 is stable enough.
    const int size_reps = n >= 1000 ? std::min(reps, 2) : reps;
    const SizeReport r = measure(n, dims, size_reps);
    reports.push_back(r);
    std::printf(
        "%6d %12.1f %12.1f %12.1f %10.1f %10.1f %12.1f %12.1f %9.2fx %9.2fx\n",
        r.n, r.gp_fit_ns / 1e3, r.predict_ns, r.predict_batch_per_point_ns,
        r.gp_add_point_ns / 1e3, r.gp_remove_point_ns / 1e3,
        r.purge_cycle_ns / 1e3, r.rff_fit_ns / 1e3, r.speedup_sparse,
        r.speedup_analytic);
  }
  write_json(out_path, dims, reps, reports);
  std::printf("\nwrote %s\n", out_path.c_str());
  return 0;
}
