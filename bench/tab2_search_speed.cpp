// Table 2 reproduction: average number of evaluations ROBOTune needs to
// reach within 1% / 5% / 10% of the best execution time it achieves.
//
// Paper's Table 2 (avg iterations): PR 83/33/26, KM 57/17/12, CC 70/32/21,
// LR 42/20/20, TS 86/37/19.
#include <cstdio>

#include "bench/harness.h"
#include "common/statistics.h"

using namespace robotune;

namespace {

int iterations_to_within(const std::vector<double>& traj, double fraction) {
  const double target = traj.back() * (1.0 + fraction);
  for (std::size_t i = 0; i < traj.size(); ++i) {
    if (traj[i] <= target) return static_cast<int>(i + 1);
  }
  return static_cast<int>(traj.size());
}

}  // namespace

int main() {
  const int budget = bench::bench_budget();
  const int reps = bench::bench_reps();
  std::printf("=== Table 2: avg evaluations to reach within x%% of the "
              "best achieved time (budget=%d) ===\n",
              budget);
  std::printf("%-22s %10s %10s %11s\n", "Workload", "Within 1%", "Within 5%",
              "Within 10%");
  for (auto kind : sparksim::all_workloads()) {
    std::vector<double> to1, to5, to10;
    core::RoboTune robotune;  // caches shared across the workload's runs
    for (int dataset = 1; dataset <= 3; ++dataset) {
      for (int rep = 0; rep < reps; ++rep) {
        auto objective = bench::make_objective(
            kind, dataset,
            11000 + static_cast<std::uint64_t>(dataset * 10 + rep));
        const auto result = robotune.tune(
            objective, budget, 500 + static_cast<std::uint64_t>(rep));
        const auto traj = result.best_trajectory();
        to1.push_back(iterations_to_within(traj, 0.01));
        to5.push_back(iterations_to_within(traj, 0.05));
        to10.push_back(iterations_to_within(traj, 0.10));
      }
    }
    std::printf("%-22s %10.0f %10.0f %11.0f\n",
                sparksim::to_string(kind).c_str(), stats::mean(to1),
                stats::mean(to5), stats::mean(to10));
  }
  std::printf("\nPaper's Table 2: PR 83/33/26, KM 57/17/12, CC 70/32/21, "
              "LR 42/20/20, TS 86/37/19.\n");
  return 0;
}
